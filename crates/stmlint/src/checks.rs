//! The token-level lint rules.
//!
//! Every rule works on the flat token stream from [`crate::lexer`] plus a
//! per-line index built once per file.  The comment-adjacency convention
//! shared by `safety-comment` and `ordering-comment` is deliberately strict
//! (and matches what `clippy::undocumented_unsafe_blocks` accepts): the
//! justification comment must sit in the contiguous comment run directly
//! above the construct's line — only blank lines and attribute lines may
//! intervene — or start on the construct's own line (a trailing
//! `// ORDERING: ...` after the use, or `unsafe { // SAFETY: ...`).
//! Anything further away stops reading as a justification the moment the
//! code around it is edited, so distance is treated as absence.

use crate::lexer::{Token, TokenKind};
use crate::Finding;

/// Per-line classification used by the adjacency walk.
#[derive(Debug, Clone, Copy, Default)]
struct LineInfo {
    /// Line holds at least one non-comment token.
    has_code: bool,
    /// Line's first token is `#` (an attribute line, possibly the start of
    /// a multi-line attribute).
    starts_attribute: bool,
    /// Line is covered by a comment token (including interior lines of a
    /// multi-line block comment).
    has_comment: bool,
}

/// A file prepared for scanning: tokens plus the per-line index.
pub struct FileScan<'a> {
    pub path: &'a str,
    pub tokens: Vec<Token<'a>>,
    lines: Vec<LineInfo>, // indexed by line number (entry 0 unused)
    /// For each line, the comments *starting* on it.
    comments_on: Vec<Vec<usize>>, // token indices
}

impl<'a> FileScan<'a> {
    pub fn new(path: &'a str, src: &'a str) -> Self {
        let tokens = crate::lexer::tokenize(src);
        let last_line = src.lines().count().max(1);
        let mut lines = vec![LineInfo::default(); last_line + 2];
        let mut comments_on = vec![Vec::new(); last_line + 2];
        for (i, t) in tokens.iter().enumerate() {
            let l = t.line as usize;
            if t.is_comment() {
                comments_on[l].push(i);
                // A block comment covers every line it spans.
                for (off, _) in t.text.lines().enumerate() {
                    if let Some(info) = lines.get_mut(l + off) {
                        info.has_comment = true;
                    }
                }
            } else {
                if !lines[l].has_code && !lines[l].has_comment {
                    lines[l].starts_attribute = t.text == "#";
                }
                lines[l].has_code = true;
            }
        }
        FileScan {
            path,
            tokens,
            lines,
            comments_on,
        }
    }

    /// Whether a comment justifying line `line` carries `marker` (or any of
    /// `extra_markers`): either a comment starting on `line` itself, or the
    /// contiguous comment run directly above, skipping blank and
    /// attribute-only lines.
    fn justified(&self, line: u32, markers: &[&str]) -> bool {
        let line = line as usize;
        let has_marker = |idx: &usize| -> bool {
            let text = self.tokens[*idx].text;
            markers.iter().any(|m| text.contains(m))
        };
        if self.comments_on[line].iter().any(has_marker) {
            return true;
        }
        // Walk upward to the nearest comment run.
        let mut l = line.saturating_sub(1);
        while l >= 1 {
            let info = self.lines[l];
            if info.has_comment && !info.has_code {
                // Found the run; check all of its comments (a run may span
                // several lines, with the marker on its first line).
                let mut top = l;
                while top >= 1 && self.lines[top].has_comment && !self.lines[top].has_code {
                    top -= 1;
                }
                return (top + 1..=l).any(|rl| self.comments_on[rl].iter().any(has_marker));
            }
            if info.has_code && !info.starts_attribute {
                return false; // plain code directly above: no justification
            }
            // Blank or attribute line: keep walking.
            l -= 1;
        }
        false
    }
}

/// `safety-comment`: every `unsafe` keyword (block, fn, impl, trait) must
/// be justified by an adjacent `// SAFETY:` comment; `unsafe fn`s may
/// alternatively carry a `/// # Safety` doc section.
pub fn check_safety_comments(scan: &FileScan, out: &mut Vec<Finding>) {
    for (i, t) in scan.tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || t.text != "unsafe" {
            continue;
        }
        let mut after = scan.tokens[i + 1..]
            .iter()
            .filter(|n| !n.is_comment())
            .map(|n| n.text);
        let next = after.next().unwrap_or("");
        // `unsafe fn(` with no name is a function-*pointer type*
        // (`destroy: unsafe fn(*mut u8)`), not a declaration: the contract
        // belongs to the fns stored in it, which carry their own comments.
        if next == "fn" && after.next() == Some("(") {
            continue;
        }
        let markers: &[&str] = if next == "fn" {
            &["SAFETY:", "# Safety"]
        } else {
            &["SAFETY:"]
        };
        if !scan.justified(t.line, markers) {
            let what = match next {
                "fn" => "unsafe fn (needs `// SAFETY:` or a `# Safety` doc section)",
                "impl" => "unsafe impl",
                "trait" => "unsafe trait",
                _ => "unsafe block",
            };
            out.push(Finding::new(
                "safety-comment",
                scan.path,
                t.line,
                format!("{what} without an adjacent `// SAFETY:` comment"),
            ));
        }
    }
}

const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// `ordering-comment`: outside the allowlisted core modules, every
/// `Ordering::<variant>` use needs an adjacent `// ORDERING:` comment.
pub fn check_ordering_comments(scan: &FileScan, out: &mut Vec<Finding>) {
    let mut flagged_lines: Vec<u32> = Vec::new();
    for (i, t) in scan.tokens.iter().enumerate() {
        // Match the token run `Ordering :: <variant>`.
        if t.kind != TokenKind::Ident || t.text != "Ordering" {
            continue;
        }
        let rest: Vec<&Token> = scan.tokens[i + 1..]
            .iter()
            .filter(|n| !n.is_comment())
            .take(3)
            .collect();
        let [a, b, c] = rest[..] else { continue };
        if !(a.text == ":" && b.text == ":" && ORDERINGS.contains(&c.text)) {
            continue;
        }
        // One justification covers every use on its line (compare_exchange
        // takes two orderings in one call).
        if flagged_lines.contains(&t.line) || scan.justified(t.line, &["ORDERING:"]) {
            continue;
        }
        flagged_lines.push(t.line);
        out.push(Finding::new(
            "ordering-comment",
            scan.path,
            t.line,
            format!(
                "Ordering::{} outside the core-module allowlist without an adjacent \
                 `// ORDERING:` comment",
                c.text
            ),
        ));
    }
}

/// `reclamation`: `Box::leak`, `mem::forget`, `transmute`, and raw
/// `dealloc` calls are forbidden outside the allowlisted modules — leaked
/// or manually freed memory must flow through the epoch collector's
/// audited internals.
pub fn check_reclamation(scan: &FileScan, out: &mut Vec<Finding>) {
    let toks = &scan.tokens;
    let non_comment_before = |i: usize| -> [&str; 3] {
        let mut found = ["", "", ""]; // nearest first
        let mut n = 0;
        for t in toks[..i].iter().rev() {
            if t.is_comment() {
                continue;
            }
            found[n] = t.text;
            n += 1;
            if n == 3 {
                break;
            }
        }
        found
    };
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        // Only call-position uses are flagged: the next token is `(` or a
        // turbofish; `use std::mem::forget;` imports are inert until called.
        let next = toks[i + 1..]
            .iter()
            .find(|n| !n.is_comment())
            .map(|n| n.text)
            .unwrap_or("");
        let called = next == "(" || next == ":" || next == "<";
        if !called {
            continue;
        }
        let before = non_comment_before(i);
        // Declarations (`fn forget(self)`) are not uses of the primitives.
        if before[0] == "fn" {
            continue;
        }
        let path_is = |name: &str| before[0] == ":" && before[1] == ":" && before[2] == name;
        let forbidden = match t.text {
            "transmute" | "transmute_copy" => true,
            "dealloc" => true,
            "forget" => path_is("mem") || before[0] != ".",
            "leak" => path_is("Box"),
            _ => false,
        };
        if forbidden {
            out.push(Finding::new(
                "reclamation",
                scan.path,
                t.line,
                format!(
                    "`{}` outside the reclamation allowlist (memory must be retired \
                     through the epoch collector)",
                    t.text
                ),
            ));
        }
    }
}

/// Counts `unsafe` keyword tokens (the `unsafe-ratchet` currency).
pub fn count_unsafe(scan: &FileScan) -> usize {
    scan.tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Ident && t.text == "unsafe")
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> FileScan<'_> {
        FileScan::new("test.rs", src)
    }

    fn safety_findings(src: &str) -> Vec<u32> {
        let s = scan(src);
        let mut out = Vec::new();
        check_safety_comments(&s, &mut out);
        out.into_iter().map(|f| f.line).collect()
    }

    #[test]
    fn documented_block_is_clean() {
        let src = "fn f() {\n    // SAFETY: ptr is valid.\n    unsafe { g() }\n}\n";
        assert_eq!(safety_findings(src), Vec::<u32>::new());
    }

    #[test]
    fn multiline_comment_run_counts() {
        let src = "// SAFETY: the pin is held\n// across this call.\nunsafe { g() }\n";
        assert_eq!(safety_findings(src), Vec::<u32>::new());
    }

    #[test]
    fn undocumented_block_fires() {
        let src = "fn f() {\n    unsafe { g() }\n}\n";
        assert_eq!(safety_findings(src), vec![2]);
    }

    #[test]
    fn unrelated_comment_does_not_count() {
        let src = "// grab the value\nunsafe { g() }\n";
        assert_eq!(safety_findings(src), vec![2]);
    }

    #[test]
    fn code_between_comment_and_unsafe_breaks_adjacency() {
        let src = "// SAFETY: only for the first one\nunsafe { a() };\nunsafe { b() };\n";
        assert_eq!(safety_findings(src), vec![3]);
    }

    #[test]
    fn attributes_and_blanks_may_intervene() {
        let src = "/// # Safety\n/// caller checks i < len\n#[inline]\n\npub unsafe fn g() {}\n";
        assert_eq!(safety_findings(src), Vec::<u32>::new());
    }

    #[test]
    fn trailing_same_line_comment_counts() {
        let src = "let x = unsafe { // SAFETY: z\n    g()\n};\n";
        assert_eq!(safety_findings(src), Vec::<u32>::new());
    }

    #[test]
    fn unsafe_fn_pointer_type_is_not_a_declaration() {
        let src = "struct D {\n    destroy: unsafe fn(*mut u8),\n}\n";
        assert_eq!(safety_findings(src), Vec::<u32>::new());
        // A named unsafe fn still needs its comment.
        assert_eq!(safety_findings("unsafe fn g(p: *mut u8) {}\n"), vec![1]);
    }

    #[test]
    fn unsafe_in_comment_or_string_is_ignored() {
        let src = "// this mentions unsafe code\nlet s = \"unsafe\";\n";
        assert_eq!(safety_findings(src), Vec::<u32>::new());
    }

    #[test]
    fn safety_doc_section_covers_unsafe_fn_only() {
        let ok = "/// # Safety\n/// caller ensures init\npub unsafe fn f() {}\n";
        assert_eq!(safety_findings(ok), Vec::<u32>::new());
        // ...but a doc section does not justify an unsafe *block*.
        let bad = "/// # Safety\nfn f() {\n    unsafe { g() }\n}\n";
        assert_eq!(safety_findings(bad), vec![3]);
    }

    fn ordering_findings(src: &str) -> Vec<u32> {
        let s = scan(src);
        let mut out = Vec::new();
        check_ordering_comments(&s, &mut out);
        out.into_iter().map(|f| f.line).collect()
    }

    #[test]
    fn trailing_ordering_comment_is_accepted() {
        let src = "x.store(1, Ordering::Release); // ORDERING: publishes the node\n";
        assert_eq!(ordering_findings(src), Vec::<u32>::new());
    }

    #[test]
    fn comment_above_is_accepted_and_covers_whole_line() {
        let src = "// ORDERING: AcqRel pairs with the load in pop\n\
                   x.compare_exchange(a, b, Ordering::AcqRel, Ordering::Acquire);\n";
        assert_eq!(ordering_findings(src), Vec::<u32>::new());
    }

    #[test]
    fn bare_ordering_fires_once_per_line() {
        let src = "x.compare_exchange(a, b, Ordering::AcqRel, Ordering::Acquire);\n";
        assert_eq!(ordering_findings(src), vec![1]);
    }

    #[test]
    fn cmp_ordering_is_not_flagged() {
        let src = "match a.cmp(&b) { Ordering::Less => {} _ => {} }\n";
        assert_eq!(ordering_findings(src), Vec::<u32>::new());
    }

    fn reclamation_findings(src: &str) -> Vec<u32> {
        let s = scan(src);
        let mut out = Vec::new();
        check_reclamation(&s, &mut out);
        out.into_iter().map(|f| f.line).collect()
    }

    #[test]
    fn transmute_and_friends_fire() {
        assert_eq!(reclamation_findings("let y = transmute::<A, B>(x);\n"), [1]);
        assert_eq!(reclamation_findings("std::mem::forget(guard);\n"), [1]);
        assert_eq!(reclamation_findings("let r = Box::leak(b);\n"), [1]);
        assert_eq!(reclamation_findings("unsafe { dealloc(p, layout) }\n"), [1]);
    }

    #[test]
    fn imports_and_methods_do_not_fire() {
        assert_eq!(
            reclamation_findings("use std::mem::{forget, transmute};\n"),
            Vec::<u32>::new()
        );
        // A method named .leak() on some unrelated type is not Box::leak.
        assert_eq!(
            reclamation_findings("let s = my_string.leak();\n"),
            Vec::<u32>::new()
        );
        // .forget() as a method (e.g. on a guard type) is not mem::forget.
        assert_eq!(reclamation_findings("guard.forget();\n"), Vec::<u32>::new());
    }

    #[test]
    fn unsafe_count_ignores_comments() {
        let s = scan("// unsafe unsafe\nunsafe fn f() { unsafe { g() } }\n");
        assert_eq!(count_unsafe(&s), 2);
    }
}
