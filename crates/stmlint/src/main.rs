//! The `stmlint` binary: run the full pass locally or in CI.
//!
//! ```text
//! cargo run -p stmlint                      # lint the whole tree
//! cargo run -p stmlint -- --list            # one line per rule
//! cargo run -p stmlint -- --explain <rule>  # the full contract of one rule
//! cargo run -p stmlint -- --write-manifest  # regenerate the [unsafe] table
//! cargo run -p stmlint -- --root <path>     # lint a different tree
//! ```
//!
//! Exit status: 0 clean, 1 findings, 2 configuration error.  Flag handling
//! follows the harness convention ([`harness::figures::opts_from_args`]):
//! an unknown or malformed flag warns on stderr, listing the expected
//! flags, rather than being silently ignored — a typo like `--expalin`
//! must not turn the run into a full (slower, differently-exiting) lint
//! pass without saying so.

use std::path::PathBuf;
use std::process::ExitCode;

/// Parsed command-line options.
#[derive(Default)]
struct Opts {
    root: Option<PathBuf>,
    explain: Option<String>,
    list: bool,
    write_manifest: bool,
}

/// Parses flags, warning (not failing) on anything unknown — the same
/// convention as the harness binaries' `opts_from_args`.
fn opts_from_args(args: impl Iterator<Item = String>) -> Opts {
    let mut opts = Opts::default();
    let args: Vec<String> = args.collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list" => opts.list = true,
            "--write-manifest" => opts.write_manifest = true,
            "--explain" => {
                i += 1;
                match args.get(i) {
                    Some(rule) => opts.explain = Some(rule.clone()),
                    None => eprintln!("warning: ignoring `--explain`: expected a rule name"),
                }
            }
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(p) => opts.root = Some(PathBuf::from(p)),
                    None => eprintln!("warning: ignoring `--root`: expected a path"),
                }
            }
            other => {
                eprintln!(
                    "warning: ignoring unknown argument `{other}` (expected --list, \
                     --explain <rule>, --write-manifest or --root <path>)"
                );
            }
        }
        i += 1;
    }
    opts
}

fn main() -> ExitCode {
    let opts = opts_from_args(std::env::args().skip(1));

    if opts.list {
        for r in stmlint::RULES {
            println!("{:<18} {}", r.name, r.summary);
        }
        return ExitCode::SUCCESS;
    }
    if let Some(rule) = &opts.explain {
        return match stmlint::RULES.iter().find(|r| r.name == rule) {
            Some(r) => {
                println!("{} — {}\n\n{}", r.name, r.summary, r.explain);
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("error: unknown rule `{rule}` (run `stmlint --list` for the rule names)");
                ExitCode::from(2)
            }
        };
    }

    let root = match &opts.root {
        Some(r) => r.clone(),
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match stmlint::find_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "error: no stmlint.toml found above {} (run from inside the repo \
                         or pass --root)",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let manifest = match std::fs::read_to_string(root.join("stmlint.toml")) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: cannot read {}/stmlint.toml: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let cfg = match stmlint::config::parse(&manifest) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.write_manifest {
        return match stmlint::render_unsafe_table(&root, &cfg) {
            Ok(table) => {
                // The [unsafe] table is by convention the last section of
                // stmlint.toml; splice the regenerated one over it (or
                // append it) so everything above — including comments that
                // merely mention "[unsafe]" — survives.  Only a section
                // header at the start of a line counts.
                let header_pos = if manifest.starts_with("[unsafe]") {
                    Some(0)
                } else {
                    manifest.find("\n[unsafe]").map(|p| p + 1)
                };
                let head = match header_pos {
                    Some(pos) => &manifest[..pos],
                    None => manifest.as_str(),
                };
                let sep = if head.is_empty() || head.ends_with('\n') {
                    ""
                } else {
                    "\n"
                };
                let path = root.join("stmlint.toml");
                match std::fs::write(&path, format!("{head}{sep}{table}")) {
                    Ok(()) => {
                        println!("stmlint: rewrote the [unsafe] table in {}", path.display());
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("error: cannot write {}: {e}", path.display());
                        ExitCode::from(2)
                    }
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        };
    }

    match stmlint::run(&root, &cfg) {
        Ok(findings) if findings.is_empty() => {
            println!("stmlint: clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            println!(
                "stmlint: {} finding(s); run `cargo run -p stmlint -- --explain <rule>` \
                 for any rule's contract",
                findings.len()
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
