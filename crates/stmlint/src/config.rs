//! `stmlint.toml` — the lint configuration and unsafe-surface manifest.
//!
//! The file is parsed with a hand-rolled reader covering exactly the TOML
//! subset the manifest uses (the offline toolchain has no `toml` crate):
//!
//! * `[section]` headers;
//! * `key = true` / `key = false` booleans;
//! * `key = 123` integers;
//! * `key = ["a", "b"]` string arrays, single-line or spread over several
//!   lines;
//! * bare or `"quoted"` keys (file paths are quoted);
//! * `#` comments and blank lines.
//!
//! Anything outside that subset is a hard error: the manifest is a reviewed
//! contract, and a typo that silently parsed as "no constraint" would defeat
//! the ratchet.

use std::collections::BTreeMap;

/// Parsed `stmlint.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// `[rules]`: per-rule enable flags.  Rules missing from the table
    /// default to enabled; the table exists to turn a rule *off*.
    pub rules: BTreeMap<String, bool>,
    /// `[scan] exclude`: path prefixes (repo-relative, `/`-separated) that
    /// are never scanned — fixtures, vendored code.
    pub exclude: Vec<String>,
    /// `[ordering] allow`: path prefixes whose `Ordering::*` uses need no
    /// `// ORDERING:` justification (the core concurrency modules).
    pub ordering_allow: Vec<String>,
    /// `[reclamation] allow`: path prefixes allowed to use `Box::leak`,
    /// `mem::forget`, `transmute`, and raw `dealloc`.
    pub reclamation_allow: Vec<String>,
    /// `[layout]`: the files holding the tag/mask/alignment constants the
    /// bit-layout rule cross-checks.
    pub layout_word: String,
    pub layout_map: String,
    /// `[unsafe]`: per-file allowed `unsafe`-keyword counts, in file order
    /// (the manifest-hygiene rule checks the order itself).
    pub unsafe_counts: Vec<(String, usize)>,
}

impl Config {
    /// Whether `rule` is enabled (rules default to on).
    pub fn rule_enabled(&self, rule: &str) -> bool {
        self.rules.get(rule).copied().unwrap_or(true)
    }

    /// The allowed unsafe count for `path`, if listed.
    pub fn allowed_unsafe(&self, path: &str) -> Option<usize> {
        self.unsafe_counts
            .iter()
            .find(|(p, _)| p == path)
            .map(|&(_, n)| n)
    }
}

/// Parses the manifest text.  Errors name the offending line.
pub fn parse(text: &str) -> Result<Config, String> {
    let mut cfg = Config {
        layout_word: "crates/spectm/src/word.rs".to_string(),
        layout_map: "crates/spectm-kv/src/map.rs".to_string(),
        ..Config::default()
    };
    let mut section = String::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let name = rest
                .strip_suffix(']')
                .ok_or_else(|| format!("stmlint.toml:{lineno}: unclosed section header"))?;
            section = name.trim().to_string();
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("stmlint.toml:{lineno}: expected `key = value`"))?;
        let key = unquote(key.trim())
            .ok_or_else(|| format!("stmlint.toml:{lineno}: malformed key `{}`", key.trim()))?;
        let mut value = value.trim().to_string();
        // A `[` value may continue over following lines until the closing
        // bracket.
        if value.starts_with('[') && !value.ends_with(']') {
            for (_, cont) in lines.by_ref() {
                let cont = strip_comment(cont).trim().to_string();
                value.push_str(&cont);
                if cont.ends_with(']') {
                    break;
                }
            }
            if !value.ends_with(']') {
                return Err(format!("stmlint.toml:{lineno}: unclosed array for `{key}`"));
            }
        }
        apply(&mut cfg, &section, &key, &value)
            .map_err(|e| format!("stmlint.toml:{lineno}: {e}"))?;
    }
    Ok(cfg)
}

fn apply(cfg: &mut Config, section: &str, key: &str, value: &str) -> Result<(), String> {
    match section {
        "rules" => {
            let b = match value {
                "true" => true,
                "false" => false,
                other => return Err(format!("rule `{key}`: expected true/false, got `{other}`")),
            };
            cfg.rules.insert(key.to_string(), b);
        }
        "scan" if key == "exclude" => cfg.exclude = parse_string_array(value)?,
        "ordering" if key == "allow" => cfg.ordering_allow = parse_string_array(value)?,
        "reclamation" if key == "allow" => cfg.reclamation_allow = parse_string_array(value)?,
        "layout" if key == "word" => {
            cfg.layout_word =
                unquote(value).ok_or_else(|| "layout.word: expected a string".to_string())?
        }
        "layout" if key == "map" => {
            cfg.layout_map =
                unquote(value).ok_or_else(|| "layout.map: expected a string".to_string())?
        }
        "unsafe" => {
            let n: usize = value
                .parse()
                .map_err(|_| format!("`{key}`: expected an integer count, got `{value}`"))?;
            cfg.unsafe_counts.push((key.to_string(), n));
        }
        _ => {
            return Err(format!(
                "unknown entry `{key}` in section `[{section}]` (sections: rules, scan, \
                 ordering, reclamation, layout, unsafe)"
            ));
        }
    }
    Ok(())
}

/// Strips a `#` comment, honouring `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Removes surrounding quotes if present; bare tokens pass through.
/// Returns `None` for unbalanced quotes or embedded quotes.
fn unquote(s: &str) -> Option<String> {
    if let Some(inner) = s.strip_prefix('"') {
        let inner = inner.strip_suffix('"')?;
        if inner.contains('"') {
            return None;
        }
        Some(inner.to_string())
    } else if s.contains('"') {
        None
    } else {
        Some(s.to_string())
    }
}

fn parse_string_array(value: &str) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| format!("expected a [\"...\"] array, got `{value}`"))?;
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue; // trailing comma
        }
        out.push(
            unquote(item)
                .filter(|_| item.starts_with('"'))
                .ok_or_else(|| format!("expected a quoted string, got `{item}`"))?,
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# comment
[rules]
safety-comment = true
bit-layout = false

[scan]
exclude = [
    "vendor",      # inline comment
    "target",
]

[ordering]
allow = ["crates/spectm/src"]

[unsafe]
"crates/a.rs" = 3
"crates/b.rs" = 0
"#;

    #[test]
    fn parses_sample() {
        let cfg = parse(SAMPLE).unwrap();
        assert!(cfg.rule_enabled("safety-comment"));
        assert!(!cfg.rule_enabled("bit-layout"));
        assert!(cfg.rule_enabled("unlisted-rule-defaults-on"));
        assert_eq!(cfg.exclude, ["vendor", "target"]);
        assert_eq!(cfg.ordering_allow, ["crates/spectm/src"]);
        assert_eq!(cfg.allowed_unsafe("crates/a.rs"), Some(3));
        assert_eq!(cfg.allowed_unsafe("crates/b.rs"), Some(0));
        assert_eq!(cfg.allowed_unsafe("crates/c.rs"), None);
    }

    #[test]
    fn rejects_typos_loudly() {
        assert!(parse("[rules]\nsafety = yes\n").is_err());
        assert!(parse("[unknown]\nx = 1\n").is_err());
        assert!(parse("[unsafe]\n\"a.rs\" = lots\n").is_err());
        assert!(parse("[scan]\nexclude = [\"a\"\n").is_err());
        assert!(parse("just some text\n").is_err());
    }

    #[test]
    fn hash_inside_quoted_path_is_not_a_comment() {
        let cfg = parse("[unsafe]\n\"crates/a#weird.rs\" = 1\n").unwrap();
        assert_eq!(cfg.allowed_unsafe("crates/a#weird.rs"), Some(1));
    }
}
