//! The `bit-layout` rule: cross-checks the tag/mask/alignment constants of
//! `spectm::word` and `spectm-kv::map`.
//!
//! The value-word encoding (word.rs) and the bucket item/stat words
//! (map.rs) pack tags into bits that pointer alignment leaves clear.  The
//! constants live in two crates and the alignment lives in `#[repr(align)]`
//! attributes in a third place; nothing ties them together at the type
//! level, so an edit to any one of them can silently break the others.
//! This rule parses all of them out of the source and re-derives the
//! invariants; the same facts are mirrored as `const _: () = assert!(...)`
//! guards next to the definitions, so both the compiler and the lint hold a
//! copy.  The lint's copy additionally covers the *cross-file* facts the
//! in-crate asserts cannot see (map tags vs. the spectm value-word tags).
//!
//! The evaluator handles the expression forms those constant definitions
//! actually use: integer literals (any radix, `_` separators, type
//! suffixes), references to previously defined constants, unary `!`/`-`,
//! the binary operators `| & ^ << >> + - *` with Rust precedence,
//! parentheses, `size_of::<T>()` (words only) and `<int type>::BITS`.

use std::collections::BTreeMap;

use crate::lexer::{tokenize, Token, TokenKind};
use crate::Finding;

const WORD_BYTES: u64 = 8;
const WORD_BITS: u64 = 64;

/// Constants and `#[repr(align(N))]` values parsed from one file.
#[derive(Debug, Default)]
pub struct ParsedLayout {
    pub consts: BTreeMap<String, u64>,
    pub aligns: BTreeMap<String, u64>,
}

/// Parses every `const NAME: <int type> = <expr>;` and
/// `#[repr(align(N))] struct NAME` in `src`.  Constants whose expressions
/// use unsupported forms are skipped (recorded in `skipped`) rather than
/// failing the parse: the rule only needs the handful of layout constants,
/// and it reports loudly if one of *those* is missing.
pub fn parse_layout(src: &str) -> ParsedLayout {
    let toks: Vec<Token> = tokenize(src)
        .into_iter()
        .filter(|t| !t.is_comment())
        .collect();
    let mut out = ParsedLayout::default();
    let mut i = 0;
    while i < toks.len() {
        // #[repr(align(N))] (pub)? struct NAME
        if toks[i].text == "repr" && i + 5 < toks.len() && toks[i + 1].text == "(" {
            // repr ( align ( N ) )
            if toks[i + 2].text == "align" && toks[i + 3].text == "(" {
                if let Some(n) = int_literal(&toks[i + 4]) {
                    // Find the following `struct NAME`.
                    let mut j = i + 5;
                    while j < toks.len() && toks[j].text != "struct" && toks[j].text != "const" {
                        j += 1;
                    }
                    if j + 1 < toks.len() && toks[j].text == "struct" {
                        out.aligns.insert(toks[j + 1].text.to_string(), n);
                    }
                }
            }
        }
        // const NAME : <simple type> = expr ;  — `const fn`s are not items
        // of interest, and a type containing braces/parens (or a missing
        // `=`) abandons the item rather than scanning into unrelated code.
        if toks[i].text == "const"
            && i + 2 < toks.len()
            && toks[i + 1].kind == TokenKind::Ident
            && toks[i + 1].text != "fn"
            && toks[i + 2].text == ":"
        {
            let name = toks[i + 1].text;
            let mut j = i + 3;
            while j < toks.len() && !matches!(toks[j].text, "=" | ";" | "{" | "}" | "(" | ")") {
                j += 1;
            }
            if j < toks.len() && toks[j].text == "=" {
                let start = j + 1;
                let mut end = start;
                while end < toks.len() && toks[end].text != ";" {
                    end += 1;
                }
                let mut p = Parser {
                    toks: &toks[start..end],
                    pos: 0,
                    env: &out.consts,
                };
                if let Some(v) = p.expr(0) {
                    if p.pos == p.toks.len() {
                        out.consts.insert(name.to_string(), v);
                    }
                }
                i = end;
                continue;
            }
        }
        i += 1;
    }
    out
}

fn int_literal(t: &Token) -> Option<u64> {
    if t.kind != TokenKind::Literal {
        return None;
    }
    let s: String = t.text.chars().filter(|c| *c != '_').collect();
    let s = s
        .trim_end_matches("usize")
        .trim_end_matches("u64")
        .trim_end_matches("u32")
        .trim_end_matches("u8");
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else if let Some(bin) = s.strip_prefix("0b") {
        u64::from_str_radix(bin, 2).ok()
    } else if let Some(oct) = s.strip_prefix("0o") {
        u64::from_str_radix(oct, 8).ok()
    } else {
        s.parse().ok()
    }
}

/// Pratt parser over the token slice of one constant expression.  All
/// arithmetic is wrapping `u64` (the constants are bit masks of `usize`
/// width; the target is 64-bit, which the mirrored in-code asserts verify).
struct Parser<'a, 'b> {
    toks: &'a [Token<'b>],
    pos: usize,
    env: &'a BTreeMap<String, u64>,
}

impl<'b> Parser<'_, 'b> {
    fn peek(&self) -> &'b str {
        self.toks.get(self.pos).map(|t| t.text).unwrap_or("")
    }

    fn bump(&mut self) -> &'b str {
        let t = self.peek();
        self.pos += 1;
        t
    }

    /// Binding powers (higher binds tighter), Rust precedence.
    fn bp(op: &str) -> Option<u8> {
        Some(match op {
            "*" => 70,
            "+" | "-" => 60,
            "<<" | ">>" => 50,
            "&" => 40,
            "^" => 30,
            "|" => 20,
            _ => return None,
        })
    }

    /// Peeks the next binary operator, gluing `<<`/`>>` from two adjacent
    /// punct tokens.
    fn peek_op(&self) -> Option<(String, usize)> {
        let a = self.toks.get(self.pos)?.text;
        let b = self.toks.get(self.pos + 1).map(|t| t.text).unwrap_or("");
        match (a, b) {
            ("<", "<") => Some(("<<".into(), 2)),
            (">", ">") => Some((">>".into(), 2)),
            ("*" | "+" | "-" | "&" | "^" | "|", _) => Some((a.into(), 1)),
            _ => None,
        }
    }

    fn expr(&mut self, min_bp: u8) -> Option<u64> {
        let mut lhs = self.atom()?;
        while let Some((op, len)) = self.peek_op() {
            let bp = Self::bp(&op)?;
            if bp < min_bp {
                break;
            }
            self.pos += len;
            let rhs = self.expr(bp + 1)?;
            lhs = match op.as_str() {
                "*" => lhs.wrapping_mul(rhs),
                "+" => lhs.wrapping_add(rhs),
                "-" => lhs.wrapping_sub(rhs),
                "<<" => lhs.wrapping_shl(rhs as u32),
                ">>" => lhs.wrapping_shr(rhs as u32),
                "&" => lhs & rhs,
                "^" => lhs ^ rhs,
                "|" => lhs | rhs,
                _ => return None,
            };
        }
        Some(lhs)
    }

    fn atom(&mut self) -> Option<u64> {
        match self.bump() {
            "!" => Some(!self.atom()?),
            "-" => Some(self.atom()?.wrapping_neg()),
            "(" => {
                let v = self.expr(0)?;
                if self.bump() != ")" {
                    return None;
                }
                Some(v)
            }
            ident if !ident.is_empty() => {
                // `std :: mem :: size_of :: < T > ( )`, `Word :: BITS`,
                // `usize :: BITS`, a known constant, or a literal.
                if let Some(v) = int_literal(&self.toks[self.pos - 1]) {
                    return Some(v);
                }
                // Swallow a leading path (`a::b::c`): keep the last segment.
                let mut last = ident.to_string();
                while self.peek() == ":" {
                    let save = self.pos;
                    self.pos += 1;
                    if self.bump() != ":" {
                        self.pos = save;
                        break;
                    }
                    // `::<` turbofish belongs to the call handling below.
                    if self.peek() == "<" {
                        self.pos = save;
                        break;
                    }
                    last = self.bump().to_string();
                }
                match last.as_str() {
                    "size_of" => {
                        // :: < T > ( )
                        let tail: Vec<&str> = (0..7)
                            .map(|k| self.toks.get(self.pos + k).map(|t| t.text).unwrap_or(""))
                            .collect();
                        if tail[0] == ":" && tail[1] == ":" && tail[2] == "<" {
                            // Only word-sized types appear in the layout
                            // constants; anything else fails the parse.
                            let ty = tail[3];
                            if !matches!(ty, "Word" | "usize" | "u64") {
                                return None;
                            }
                            if tail[4] == ">" && tail[5] == "(" && tail[6] == ")" {
                                self.pos += 7;
                                return Some(WORD_BYTES);
                            }
                        }
                        None
                    }
                    "BITS" => {
                        if matches!(ident, "Word" | "usize" | "u64") {
                            Some(WORD_BITS)
                        } else {
                            None
                        }
                    }
                    name => self.env.get(name).copied(),
                }
            }
            _ => None,
        }
    }
}

/// A missing constant is itself a finding: the rule must fail loudly when
/// a rename breaks its view of the layout.
fn require(
    parsed: &ParsedLayout,
    file: &str,
    kind: &str,
    name: &str,
    out: &mut Vec<Finding>,
) -> Option<u64> {
    let v = match kind {
        "const" => parsed.consts.get(name),
        _ => parsed.aligns.get(name),
    };
    if v.is_none() {
        out.push(Finding::new(
            "bit-layout",
            file,
            1,
            format!(
                "could not parse {kind} `{name}` (renamed or rewritten? update \
                 stmlint's layout rule to match)"
            ),
        ));
    }
    v.copied()
}

/// Runs the cross-file layout checks.  `word_src`/`map_src` are the
/// contents of the files named by `[layout]` in stmlint.toml.
pub fn check_bit_layout(
    word_path: &str,
    word_src: &str,
    map_path: &str,
    map_src: &str,
    out: &mut Vec<Finding>,
) {
    let word = parse_layout(word_src);
    let map = parse_layout(map_src);

    let mut fail = |file: &str, msg: String| out.push(Finding::new("bit-layout", file, 1, msg));

    // --- word.rs: the value-word tag scheme ------------------------------
    let mut missing = Vec::new();
    let mark = require(&word, word_path, "const", "MARK_BIT", &mut missing);
    let ib = require(&word, word_path, "const", "INLINE_BYTES_BIT", &mut missing);
    let ii = require(&word, word_path, "const", "INLINE_INT_BIT", &mut missing);
    let max_inline = require(&word, word_path, "const", "MAX_INLINE_BYTES", &mut missing);
    let int_bits = require(&word, word_path, "const", "INLINE_INT_BITS", &mut missing);
    if let (Some(mark), Some(ib), Some(ii), Some(max_inline), Some(int_bits)) =
        (mark, ib, ii, max_inline, int_bits)
    {
        if (mark | ib | ii) & 1 != 0 {
            fail(
                word_path,
                "a tag bit collides with bit 0, the val layout's lock bit".into(),
            );
        }
        if ib & ii != 0 {
            fail(
                word_path,
                format!(
                    "INLINE_BYTES_BIT ({ib:#x}) and INLINE_INT_BIT ({ii:#x}) overlap: a \
                     value word's form would be ambiguous"
                ),
            );
        }
        if (ib | ii) >= WORD_BYTES {
            fail(
                word_path,
                format!(
                    "value-word tags {:#x} exceed the low bits a word-aligned ValueCell \
                     pointer keeps clear (< {WORD_BYTES:#x})",
                    ib | ii | 1
                ),
            );
        }
        if max_inline >= 8 {
            fail(
                word_path,
                format!("MAX_INLINE_BYTES ({max_inline}) does not fit the 3-bit length field"),
            );
        }
        if int_bits != WORD_BITS - 3 {
            fail(
                word_path,
                format!("INLINE_INT_BITS ({int_bits}) must leave exactly 3 tag bits"),
            );
        }
    }

    // --- map.rs: bucket item/stat words ----------------------------------
    let slots = require(&map, map_path, "const", "BUCKET_SLOTS", &mut missing);
    let tag = require(&map, map_path, "const", "TAG_MASK", &mut missing);
    let item_ptr = require(&map, map_path, "const", "ITEM_PTR_MASK", &mut missing);
    let freq = require(&map, map_path, "const", "FREQ_MASK", &mut missing);
    let chain_ptr = require(&map, map_path, "const", "CHAIN_PTR_MASK", &mut missing);
    let node_align = require(&map, map_path, "align", "Node", &mut missing);
    let bucket_align = require(&map, map_path, "align", "Bucket", &mut missing);
    let overflow_align = require(&map, map_path, "align", "OverflowBucket", &mut missing);
    if let (
        Some(slots),
        Some(tag),
        Some(item_ptr),
        Some(freq),
        Some(chain_ptr),
        Some(node_align),
        Some(bucket_align),
        Some(overflow_align),
    ) = (
        slots,
        tag,
        item_ptr,
        freq,
        chain_ptr,
        node_align,
        bucket_align,
        overflow_align,
    ) {
        if tag & 1 != 0 {
            fail(
                map_path,
                "TAG_MASK uses bit 0, the val layout's lock bit".into(),
            );
        }
        if item_ptr != !(tag | 1) {
            fail(
                map_path,
                format!(
                    "ITEM_PTR_MASK ({item_ptr:#x}) and TAG_MASK|1 ({:#x}) do not partition \
                     the item word",
                    tag | 1
                ),
            );
        }
        if (tag | 1) >= node_align {
            fail(
                map_path,
                format!(
                    "tag+lock bits ({:#x}) exceed what Node's {node_align}-byte alignment \
                     keeps clear",
                    tag | 1
                ),
            );
        }
        // The tag must be a contiguous bit run starting at bit 1, or the
        // hash-tag extraction's shift-and-mask would drop bits.
        if tag >> 1 == 0 || ((tag >> 1) + 1) & (tag >> 1) != 0 {
            fail(
                map_path,
                format!("TAG_MASK ({tag:#x}) is not a contiguous run of bits from bit 1"),
            );
        }
        if freq & 1 != 0 {
            fail(
                map_path,
                "FREQ_MASK uses bit 0, the val layout's lock bit".into(),
            );
        }
        if chain_ptr != !(freq | 1) {
            fail(
                map_path,
                format!(
                    "CHAIN_PTR_MASK ({chain_ptr:#x}) and FREQ_MASK|1 ({:#x}) do not \
                     partition the stat word",
                    freq | 1
                ),
            );
        }
        if (freq | 1) >= overflow_align {
            fail(
                map_path,
                format!(
                    "freq+lock bits ({:#x}) exceed what OverflowBucket's \
                     {overflow_align}-byte alignment keeps clear",
                    freq | 1
                ),
            );
        }
        if (slots + 1) * WORD_BYTES != 64 || bucket_align != 64 {
            fail(
                map_path,
                format!(
                    "a bucket of {slots}+1 words with alignment {bucket_align} is not one \
                     64-byte cache line"
                ),
            );
        }
        // The eviction clock reads the frequency byte by shift-and-mask;
        // the three constants must describe the same bit field or the
        // policy silently reads garbage (or always-zero) frequencies.
        let freq_shift = require(&map, map_path, "const", "FREQ_SHIFT", &mut missing);
        let freq_max = require(&map, map_path, "const", "FREQ_MAX", &mut missing);
        if let (Some(freq_shift), Some(freq_max)) = (freq_shift, freq_max) {
            if (freq_max + 1) & freq_max != 0 {
                fail(
                    map_path,
                    format!("FREQ_MAX ({freq_max:#x}) is not a contiguous all-ones field"),
                );
            }
            if freq != freq_max << freq_shift {
                fail(
                    map_path,
                    format!(
                        "FREQ_MASK ({freq:#x}) is not FREQ_MAX << FREQ_SHIFT ({:#x}): the \
                         frequency-byte extraction would drop bits",
                        freq_max << freq_shift
                    ),
                );
            }
        }
        // The TTL deadline word shares the val layout with value words, so
        // its payload must stay clear of bit 0 (the lock bit) — a shift of
        // zero would let a millisecond count toggle locks.
        if let Some(deadline_shift) =
            require(&map, map_path, "const", "DEADLINE_SHIFT", &mut missing)
        {
            if deadline_shift < 1 {
                fail(
                    map_path,
                    format!(
                        "DEADLINE_SHIFT ({deadline_shift}) must leave bit 0 clear: the \
                         deadline word shares the val layout's lock bit"
                    ),
                );
            }
        }
        // Cross-file: out-of-line *value words* (a ValueCell pointer with
        // the word.rs tag bits clear) are stored through the same map
        // cells, so the node alignment that frees the item-word tag bits
        // must be at least as strong as what the value-word pointer form
        // assumes — a Node pointer could otherwise alias an inline tag.
        if let (Some(ib), Some(ii)) = (ib, ii) {
            if node_align <= (ib | ii) {
                fail(
                    map_path,
                    format!(
                        "Node alignment ({node_align}) does not clear the value-word tag \
                         bits ({:#x})",
                        ib | ii
                    ),
                );
            }
        }
    }

    out.extend(missing);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluates_the_real_constant_forms() {
        let src = r#"
            pub const BUCKET_SLOTS: usize = 7;
            const TAG_MASK: Word = 0x3E;
            const ITEM_PTR_MASK: Word = !(TAG_MASK | 1);
            const FREQ_MASK: Word = 0x1FE;
            const CHAIN_PTR_MASK: Word = !(FREQ_MASK | 1);
            pub const MAX_INLINE_BYTES: usize = std::mem::size_of::<Word>() - 1;
            pub const INLINE_INT_BITS: u32 = Word::BITS - 3;
            pub const VAL_SPARE_BITS: u32 = Word::BITS - 1;
            const SHIFTED: usize = (1 << 20) + 0b10 * 3;
        "#;
        let p = parse_layout(src);
        assert_eq!(p.consts["BUCKET_SLOTS"], 7);
        assert_eq!(p.consts["TAG_MASK"], 0x3E);
        assert_eq!(p.consts["ITEM_PTR_MASK"], !(0x3E_u64 | 1));
        assert_eq!(p.consts["CHAIN_PTR_MASK"], !(0x1FE_u64 | 1));
        assert_eq!(p.consts["MAX_INLINE_BYTES"], 7);
        assert_eq!(p.consts["INLINE_INT_BITS"], 61);
        assert_eq!(p.consts["SHIFTED"], (1 << 20) + 6);
    }

    #[test]
    fn parses_repr_align() {
        let src = r#"
            #[repr(align(64))]
            struct Node<S: Stm> { key: u64 }
            #[repr(align(64))]
            pub struct Bucket<S: Stm> { item: [S::Cell; 7] }
            #[repr(align(512))]
            struct OverflowBucket<S: Stm> { bucket: Bucket<S> }
        "#;
        let p = parse_layout(src);
        assert_eq!(p.aligns["Node"], 64);
        assert_eq!(p.aligns["Bucket"], 64);
        assert_eq!(p.aligns["OverflowBucket"], 512);
    }

    #[test]
    fn unsupported_expressions_are_skipped_not_misparsed() {
        let src = "const WEIRD: usize = some_fn(3); const OK: usize = 4;";
        let p = parse_layout(src);
        assert!(!p.consts.contains_key("WEIRD"));
        assert_eq!(p.consts["OK"], 4);
    }

    const GOOD_WORD: &str = r#"
        pub const MARK_BIT: Word = 0b10;
        pub const INLINE_BYTES_BIT: Word = 0b010;
        pub const INLINE_INT_BIT: Word = 0b100;
        pub const MAX_INLINE_BYTES: usize = std::mem::size_of::<Word>() - 1;
        pub const INLINE_INT_BITS: u32 = Word::BITS - 3;
    "#;

    const GOOD_MAP: &str = r#"
        pub const BUCKET_SLOTS: usize = 7;
        const TAG_MASK: Word = 0x3E;
        const ITEM_PTR_MASK: Word = !(TAG_MASK | 1);
        const FREQ_MASK: Word = 0x1FE;
        const FREQ_SHIFT: u32 = 1;
        const FREQ_MAX: Word = 0xFF;
        const CHAIN_PTR_MASK: Word = !(FREQ_MASK | 1);
        pub(crate) const DEADLINE_SHIFT: u32 = 1;
        #[repr(align(64))]
        struct Node<S: Stm> { key: u64 }
        #[repr(align(64))]
        struct Bucket<S: Stm> { item: [S::Cell; BUCKET_SLOTS] }
        #[repr(align(512))]
        struct OverflowBucket<S: Stm> { bucket: Bucket<S> }
    "#;

    fn findings(word: &str, map: &str) -> Vec<String> {
        let mut out = Vec::new();
        check_bit_layout("word.rs", word, "map.rs", map, &mut out);
        out.into_iter().map(|f| f.message).collect()
    }

    #[test]
    fn clean_layout_passes() {
        assert_eq!(findings(GOOD_WORD, GOOD_MAP), Vec::<String>::new());
    }

    #[test]
    fn overlapping_inline_tags_fire() {
        let bad = GOOD_WORD.replace(
            "INLINE_INT_BIT: Word = 0b100",
            "INLINE_INT_BIT: Word = 0b010",
        );
        let msgs = findings(&bad, GOOD_MAP);
        assert!(msgs.iter().any(|m| m.contains("overlap")), "{msgs:?}");
    }

    #[test]
    fn tag_mask_using_lock_bit_fires() {
        let bad = GOOD_MAP.replace("TAG_MASK: Word = 0x3E", "TAG_MASK: Word = 0x3F");
        let msgs = findings(GOOD_WORD, &bad);
        assert!(msgs.iter().any(|m| m.contains("bit 0")), "{msgs:?}");
    }

    #[test]
    fn insufficient_node_alignment_fires() {
        let bad = GOOD_MAP.replace(
            "#[repr(align(64))]\n        struct Node",
            "#[repr(align(16))]\n        struct Node",
        );
        let msgs = findings(GOOD_WORD, &bad);
        assert!(msgs.iter().any(|m| m.contains("alignment")), "{msgs:?}");
    }

    #[test]
    fn stale_mask_partition_fires() {
        let bad = GOOD_MAP.replace("!(TAG_MASK | 1)", "!(0x7E | 1)");
        let msgs = findings(GOOD_WORD, &bad);
        assert!(msgs.iter().any(|m| m.contains("partition")), "{msgs:?}");
    }

    #[test]
    fn frequency_field_mismatch_fires() {
        // Widening the mask without moving FREQ_MAX along with it means the
        // extraction and the saturation test disagree about the field.
        let bad = GOOD_MAP
            .replace("FREQ_MASK: Word = 0x1FE", "FREQ_MASK: Word = 0x3FE")
            .replace("!(FREQ_MASK | 1)", "!(0x3FE | 1)");
        let msgs = findings(GOOD_WORD, &bad);
        assert!(
            msgs.iter().any(|m| m.contains("FREQ_MAX << FREQ_SHIFT")),
            "{msgs:?}"
        );
    }

    #[test]
    fn non_contiguous_freq_max_fires() {
        let bad = GOOD_MAP.replace("FREQ_MAX: Word = 0xFF", "FREQ_MAX: Word = 0xFD");
        let msgs = findings(GOOD_WORD, &bad);
        assert!(msgs.iter().any(|m| m.contains("contiguous")), "{msgs:?}");
    }

    #[test]
    fn zero_deadline_shift_fires() {
        let bad = GOOD_MAP.replace("DEADLINE_SHIFT: u32 = 1", "DEADLINE_SHIFT: u32 = 0");
        let msgs = findings(GOOD_WORD, &bad);
        assert!(msgs.iter().any(|m| m.contains("lock bit")), "{msgs:?}");
    }

    #[test]
    fn renamed_constant_fails_loudly() {
        let bad = GOOD_MAP.replace("TAG_MASK", "HASH_TAG_MASK");
        let msgs = findings(GOOD_WORD, &bad);
        assert!(
            msgs.iter().any(|m| m.contains("could not parse")),
            "{msgs:?}"
        );
    }
}
