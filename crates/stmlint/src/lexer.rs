//! A minimal hand-rolled Rust lexer.
//!
//! The checks in this crate need to find *tokens* — the `unsafe` keyword, a
//! `Ordering::SeqCst` path, a `transmute` call — without being fooled by the
//! same words appearing inside comments, doc comments, or string literals.
//! The offline toolchain rules out `syn`, so this module tokenizes Rust
//! source directly.  It handles exactly the lexical subtleties that matter
//! for token-level scanning:
//!
//! * line comments (`//`, `///`, `//!`) and (nested) block comments
//!   (`/* /* */ */`), kept as trivia tokens so the checks can look for
//!   `SAFETY:` / `ORDERING:` justifications;
//! * string literals (`"..."` with escapes), raw strings (`r#"..."#` with
//!   any number of `#`s), byte strings (`b"..."`, `br#"..."#`), and C
//!   strings (`c"..."`);
//! * char literals (`'a'`, `'\n'`, `'\''`) disambiguated from lifetimes
//!   (`'a`, `'static`) and labels;
//! * identifiers (including raw identifiers `r#fn` and keywords — the
//!   checks decide which identifiers are interesting), numeric literals
//!   (enough to skip them: `0x1F_usize`, `1.5e3`, `0b10`), and punctuation
//!   (one token per character; the checks match multi-character operators
//!   like `::` as adjacent `:` `:` tokens).
//!
//! It does **not** build a syntax tree; every check works on the flat token
//! stream plus line numbers.

/// The coarse classification a check can dispatch on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier, keyword, or raw identifier (`r#type` yields `type`).
    Ident,
    /// A `//`-style comment, including doc comments; text excludes the
    /// trailing newline.
    LineComment,
    /// A `/* ... */` comment (possibly nested), including doc variants.
    BlockComment,
    /// A string, raw-string, byte-string, c-string, char, or numeric
    /// literal.  The checks never look inside literals; they only need to
    /// not look *through* them.
    Literal,
    /// A lifetime or loop label (`'a`, `'static`).
    Lifetime,
    /// A single punctuation character (`:`, `{`, `#`, ...).
    Punct,
}

/// One lexed token: classification, source text, and 1-based start line.
#[derive(Debug, Clone)]
pub struct Token<'a> {
    pub kind: TokenKind,
    pub text: &'a str,
    pub line: u32,
}

impl Token<'_> {
    /// Whether this token is comment trivia.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Tokenizes `src`.  Unterminated constructs (running off the end of the
/// file inside a string or block comment) terminate the token at EOF rather
/// than failing: the lint must degrade gracefully on files rustc would
/// reject, because it runs before the compiler does.
pub fn tokenize(src: &str) -> Vec<Token<'_>> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    out: Vec<Token<'a>>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token<'a>> {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let line = self.line;
            let b = self.bytes[self.pos];
            match b {
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'\n' => {
                    self.pos += 1;
                    self.line += 1;
                }
                b'/' if self.peek(1) == Some(b'/') => {
                    self.line_comment();
                    self.push(TokenKind::LineComment, start, line);
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.block_comment();
                    self.push(TokenKind::BlockComment, start, line);
                }
                b'r' | b'b' | b'c' => {
                    if self.try_string_prefix() {
                        self.push(TokenKind::Literal, start, line);
                    } else {
                        self.ident();
                        self.push(TokenKind::Ident, start, line);
                    }
                }
                b'"' => {
                    self.pos += 1;
                    self.string_body();
                    self.push(TokenKind::Literal, start, line);
                }
                b'\'' => {
                    if self.try_char_literal() {
                        self.push(TokenKind::Literal, start, line);
                    } else {
                        // Lifetime or label: consume the quote and the name.
                        self.pos += 1;
                        self.ident();
                        self.push(TokenKind::Lifetime, start, line);
                    }
                }
                b'0'..=b'9' => {
                    self.number();
                    self.push(TokenKind::Literal, start, line);
                }
                _ if is_ident_start(b) => {
                    self.ident();
                    self.push(TokenKind::Ident, start, line);
                }
                _ => {
                    // Punctuation, or a multi-byte UTF-8 character (only
                    // legal inside comments/strings/idents in Rust, but
                    // degrade gracefully): one token per char.
                    let ch_len = utf8_len(b);
                    self.pos += ch_len;
                    self.push(TokenKind::Punct, start, line);
                }
            }
        }
        self.out
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32) {
        let mut text = &self.src[start..self.pos];
        if kind == TokenKind::Ident {
            // Raw identifiers lex as their unescaped name.
            text = text.strip_prefix("r#").unwrap_or(text);
        }
        self.out.push(Token { kind, text, line });
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn line_comment(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
    }

    fn block_comment(&mut self) {
        self.pos += 2; // consume `/*`
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            match self.bytes[self.pos] {
                b'/' if self.peek(1) == Some(b'*') => {
                    depth += 1;
                    self.pos += 2;
                }
                b'*' if self.peek(1) == Some(b'/') => {
                    depth -= 1;
                    self.pos += 2;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// At a `r`, `b`, or `c`: if this starts a (raw/byte/c) string or raw
    /// identifier prefix that is actually a string, consume it and return
    /// true.  `r#ident` is *not* a string and returns false.
    fn try_string_prefix(&mut self) -> bool {
        let b0 = self.bytes[self.pos];
        // `br"`, `br#"`, `cr"`, `cr#"` — two-letter prefixes.
        let (prefix_len, raw) = match (b0, self.peek(1)) {
            (b'r', Some(b'"')) => (1, true),
            (b'r', Some(b'#')) => {
                // Distinguish r"..."/r#"..."# from raw identifier r#foo.
                let mut i = self.pos + 1;
                while self.bytes.get(i) == Some(&b'#') {
                    i += 1;
                }
                if self.bytes.get(i) == Some(&b'"') {
                    (1, true)
                } else {
                    return false;
                }
            }
            (b'b' | b'c', Some(b'"')) => (1, false),
            (b'b' | b'c', Some(b'r')) => match self.peek(2) {
                Some(b'"') => (2, true),
                Some(b'#') => {
                    let mut i = self.pos + 2;
                    while self.bytes.get(i) == Some(&b'#') {
                        i += 1;
                    }
                    if self.bytes.get(i) == Some(&b'"') {
                        (2, true)
                    } else {
                        return false;
                    }
                }
                _ => return false,
            },
            (b'b', Some(b'\'')) => {
                // Byte char literal b'x'.
                self.pos += 1;
                if !self.try_char_literal() {
                    // `b'` not followed by a char literal can't occur in
                    // valid Rust; consume the quote to make progress.
                    self.pos += 1;
                }
                return true;
            }
            _ => return false,
        };
        self.pos += prefix_len;
        if raw {
            self.raw_string_body();
        } else {
            self.pos += 1; // opening quote
            self.string_body();
        }
        true
    }

    /// Consumes a `"..."` body (opening quote already consumed), honouring
    /// `\"` and `\\` escapes and counting newlines.
    fn string_body(&mut self) {
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => self.pos += 2,
                b'"' => {
                    self.pos += 1;
                    return;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// Consumes `#*"..."#*` (positioned at the first `#` or the `"`).  No
    /// escapes inside raw strings; the body ends at `"` followed by the same
    /// number of `#`s.
    fn raw_string_body(&mut self) {
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening quote
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'"' => {
                    let mut i = 0;
                    while i < hashes && self.peek(1 + i) == Some(b'#') {
                        i += 1;
                    }
                    self.pos += 1 + i;
                    if i == hashes {
                        return;
                    }
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// At a `'`: consume a char literal and return true, or return false if
    /// this is a lifetime/label (position unchanged).
    fn try_char_literal(&mut self) -> bool {
        // A char literal is 'x', '\..' or '<multibyte>'; a lifetime is
        // 'ident NOT followed by a closing quote ('a' the char vs 'a the
        // lifetime differ in the byte after the name).
        match self.peek(1) {
            Some(b'\\') => {
                // Escape: consume until the closing quote.
                self.pos += 2; // ' and backslash
                self.pos += 1; // escaped char (enough for \n \' \\ \0; for
                               // \x41 and \u{..} the loop below finds ')
                while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\'' {
                    self.pos += 1;
                }
                self.pos += 1;
                true
            }
            Some(c) if !is_ident_start(c) && c != b'\'' => {
                // 'x' with x non-identifier (punctuation, digit, space):
                // always a char literal.
                let ch_len = utf8_len(c);
                if self.peek(1 + ch_len) == Some(b'\'') {
                    self.pos += 2 + ch_len;
                    true
                } else {
                    false
                }
            }
            Some(c) if is_ident_start(c) => {
                // 'a' vs 'a: scan the identifier; a closing quote right
                // after a single char means char literal.
                let ch_len = utf8_len(c);
                if self.peek(1 + ch_len) == Some(b'\'') {
                    self.pos += 2 + ch_len;
                    true
                } else {
                    false
                }
            }
            _ => false,
        }
    }

    fn ident(&mut self) {
        if self.peek(0) == Some(b'r') && self.peek(1) == Some(b'#') {
            self.pos += 2;
        }
        while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
            self.pos += 1;
        }
    }

    fn number(&mut self) {
        // Numeric literals never contain the tokens the checks look for;
        // consume the maximal run of characters that can appear in one
        // (digits, radix prefixes, `_`, `.`, exponents, type suffixes).
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            let prev = self.bytes[self.pos - 1];
            let cont = b.is_ascii_alphanumeric()
                || b == b'_'
                || (b == b'.' && self.peek(1).is_some_and(|n| n.is_ascii_digit()))
                || ((b == b'+' || b == b'-') && (prev == b'e' || prev == b'E'));
            if !cont {
                break;
            }
            self.pos += 1;
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<&str> {
        tokenize(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_hide_keywords() {
        let src = "// unsafe here\n/* unsafe there */ fn ok() {}";
        assert_eq!(idents(src), ["fn", "ok"]);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner unsafe */ still comment */ unsafe";
        assert_eq!(idents(src), ["unsafe"]);
        assert_eq!(tokenize(src)[0].kind, TokenKind::BlockComment);
    }

    #[test]
    fn strings_hide_keywords() {
        let src = "let s = \"unsafe { }\"; let e = \"esc \\\" unsafe\";";
        assert!(!idents(src).contains(&"unsafe"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r###"let s = r#"embedded " quote and unsafe"#; unsafe"###;
        assert_eq!(idents(src).last(), Some(&"unsafe"));
        // Exactly one Ident token named unsafe.
        assert_eq!(idents(src).iter().filter(|t| **t == "unsafe").count(), 1);
    }

    #[test]
    fn byte_and_c_strings() {
        let src = r#"let a = b"unsafe"; let b = c"unsafe"; let c = br"unsafe";"#;
        assert!(!idents(src).contains(&"unsafe"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "let c = 'u'; fn f<'unsafe_lt>(x: &'unsafe_lt u8) {} let q = '\\'';";
        let toks = tokenize(src);
        assert!(!idents(src).contains(&"unsafe"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "'unsafe_lt"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Literal && t.text == "'u'"));
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(idents("r#unsafe r#fn plain"), ["unsafe", "fn", "plain"]);
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "/* a\nb\nc */\n\"x\ny\"\nunsafe";
        let toks = tokenize(src);
        let u = toks.iter().find(|t| t.text == "unsafe").unwrap();
        assert_eq!(u.line, 6);
    }

    #[test]
    fn numbers_lex_as_literals() {
        let src = "const M: usize = 0x3E_usize; let f = 1.5e-3; let b = 0b10;";
        let toks = tokenize(src);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Literal && t.text == "0x3E_usize"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Literal && t.text == "1.5e-3"));
    }

    #[test]
    fn ordering_path_is_adjacent_tokens() {
        let toks = tokenize("Ordering::SeqCst");
        let texts: Vec<&str> = toks.iter().map(|t| t.text).collect();
        assert_eq!(texts, ["Ordering", ":", ":", "SeqCst"]);
    }
}
