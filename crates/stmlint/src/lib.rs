//! `stmlint` — the workspace protocol-conformance lint pass.
//!
//! The SpecTM reproduction is built on hand-rolled protocols whose
//! correctness arguments live outside the type system: tag bits packed into
//! pointer-alignment slack, epoch-deferred reclamation with a value-word
//! ownership contract, per-chain spinlocks in stat-word bit 0.  The
//! invariants are written down (DESIGN.md, `SAFETY:` comments) but the
//! offline stable-only toolchain cannot run Miri or TSan, so nothing
//! machine-checked them.  This crate encodes the repo's contracts as six
//! source-level rules and enforces them three ways: as a `#[test]` (tier-1
//! `cargo test` runs the whole pass over the real tree), as a dedicated CI
//! step, and as a local binary (`cargo run -p stmlint`).
//!
//! The rules (see [`RULES`] for the full explanations):
//!
//! | rule              | contract                                              |
//! |-------------------|-------------------------------------------------------|
//! | `safety-comment`  | every `unsafe` is justified by an adjacent `SAFETY:`  |
//! | `unsafe-ratchet`  | per-file unsafe counts only grow via a manifest edit  |
//! | `ordering-comment`| atomic orderings outside core carry `ORDERING:`       |
//! | `reclamation`     | leak/forget/transmute/dealloc only in audited modules |
//! | `bit-layout`      | tag masks disjoint, alignments cover the tag bits     |
//! | `manifest-hygiene`| `stmlint.toml` stays sorted, deduped, non-stale       |
//!
//! Everything is dependency-free: a hand-rolled lexer ([`lexer`]), a
//! minimal TOML reader ([`config`]), and a constant-expression evaluator
//! ([`layout`]) — no `syn`, no `toml`, no network.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

pub mod checks;
pub mod config;
pub mod layout;
pub mod lexer;

use checks::FileScan;
use config::Config;

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    pub file: String,
    pub line: u32,
    pub message: String,
}

impl Finding {
    pub fn new(rule: &'static str, file: &str, line: u32, message: String) -> Self {
        Finding {
            rule,
            file: file.to_string(),
            line,
            message,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A rule's name and documentation, surfaced by `--list` / `--explain`.
pub struct RuleInfo {
    pub name: &'static str,
    pub summary: &'static str,
    pub explain: &'static str,
}

/// The rule registry.  Each rule can be disabled in `stmlint.toml` under
/// `[rules]`; all default to enabled.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "safety-comment",
        summary: "every unsafe block/fn/impl carries an adjacent `// SAFETY:` comment",
        explain: "\
Every `unsafe` keyword — block, fn, impl, or trait — must be justified by a
`// SAFETY:` comment in the contiguous comment run directly above it (blank
lines and #[attribute] lines may intervene; any other code breaks
adjacency), or by a comment starting on the same line.  An `unsafe fn` may
instead document its contract with a `/// # Safety` doc section, the
convention rustdoc renders for callers.

The rule is the repo-local twin of `clippy::undocumented_unsafe_blocks`
(also denied workspace-wide): clippy checks blocks, stmlint additionally
covers unsafe fns, impls, and traits, and runs without a full compile.
Write the comment to say which protocol invariant makes the operation
sound — 'the epoch pin is held', 'the committed transaction owns the
displaced word' — not merely that it is.",
    },
    RuleInfo {
        name: "unsafe-ratchet",
        summary: "per-file unsafe counts may only grow through a reviewed stmlint.toml edit",
        explain: "\
stmlint.toml's [unsafe] table lists, per file, the number of `unsafe`
keywords the file is allowed to contain.  A file whose actual count exceeds
its entry — or any unsafe in a file with no entry — fails the lint.  Counts
below the manifest are fine (shrinking the unsafe surface needs no
ceremony), so the manifest acts as a ratchet: growth is always a conscious,
reviewed diff to stmlint.toml, never an accident.

To legitimately add unsafe code: write it (with its SAFETY: comment), run
`cargo run -p stmlint -- --write-manifest` to regenerate the table in
stmlint.toml, and let the reviewer see both hunks together.",
    },
    RuleInfo {
        name: "ordering-comment",
        summary: "atomic Ordering uses outside core modules carry `// ORDERING:` justifications",
        explain: "\
Every `Ordering::{Relaxed,Acquire,Release,AcqRel,SeqCst}` use outside the
[ordering] allow-listed core modules (the STM engine, the epoch collector,
the lock-free baselines — where the memory-model reasoning is the module's
whole subject) must carry an adjacent `// ORDERING:` comment: directly
above the line or trailing on it.  One comment covers every ordering on its
line, so a compare_exchange's success/failure pair needs a single
justification.

The comment should name the pairing that makes the ordering sufficient
('Acquire pairs with the Release store in publish') or state why Relaxed is
enough ('counter only read after join').  std::cmp::Ordering never
triggers the rule; its variants differ.",
    },
    RuleInfo {
        name: "reclamation",
        summary: "leak/forget/transmute/dealloc are confined to the audited reclamation modules",
        explain: "\
Calls to `Box::leak`, `mem::forget`, `transmute`/`transmute_copy`, and raw
`dealloc` are forbidden outside the [reclamation] allow-listed modules
(value.rs, map.rs, the epoch collector, the lock-free internals).  Memory
that leaves the normal Drop discipline must flow through the epoch
collector's audited ownership contracts; a stray mem::forget elsewhere is
either a leak or the start of an un-reviewed reclamation scheme.

Only call positions are flagged (`use std::mem::forget;` is inert), and
method syntax on other types (`string.leak()`, `guard.forget()`) is not
confused with the free functions.",
    },
    RuleInfo {
        name: "bit-layout",
        summary: "tag/mask constants stay disjoint and within alignment slack, across crates",
        explain: "\
Parses the value-word tag constants in spectm::word and the bucket
item/stat word constants in spectm-kv::map (files configurable under
[layout]) and re-derives the packing invariants: tag masks keep bit 0 (the
val layout's lock bit) clear, the inline-bytes and inline-int tags are
disjoint, pointer masks exactly complement tag|lock bits, TAG_MASK is a
contiguous run within Node's 64-byte alignment slack, FREQ_MASK fits the
overflow bucket's 512-byte alignment, and 8 words = one 64-byte line.

The same facts are mirrored as `const _: () = assert!(..)` guards beside
the definitions, so the compiler enforces the in-crate half even when
stmlint does not run; stmlint adds the cross-crate half and fails loudly if
a rename hides a constant from its parser.",
    },
    RuleInfo {
        name: "manifest-hygiene",
        summary: "stmlint.toml's [unsafe] table stays sorted, deduped, and free of stale paths",
        explain: "\
The [unsafe] table must be sorted by path (byte order), contain no
duplicate entries, and name only files that exist; entries for files whose
actual count is far below their ceiling still pass (the ratchet tightens
lazily), but a deleted file's entry must go.  Sorted order keeps manifest
diffs one-hunk reviewable: an insertion shows up exactly where the new
file's unsafe budget was granted.",
    },
];

/// Locates the repo root: walks upward from `start` to the first directory
/// containing `stmlint.toml`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("stmlint.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Collects every `.rs` file under `root` (repo-relative, `/`-separated,
/// sorted), skipping `.git`/`target` and the configured excludes.
pub fn collect_files(root: &Path, cfg: &Config) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let rel = rel_path(root, &path);
            if path.is_dir() {
                if name == ".git" || name == "target" || name.starts_with('.') {
                    continue;
                }
                if is_excluded(&rel, cfg) {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") && !is_excluded(&rel, cfg) {
                out.push(rel);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let s = rel.to_string_lossy().replace('\\', "/");
    s.to_string()
}

fn is_excluded(rel: &str, cfg: &Config) -> bool {
    cfg.exclude.iter().any(|p| {
        rel == p || rel.starts_with(&format!("{p}/")) || p.ends_with('/') && rel.starts_with(p)
    })
}

fn path_allowed(rel: &str, allow: &[String]) -> bool {
    allow
        .iter()
        .any(|p| rel == p || rel.starts_with(&format!("{p}/")))
}

/// Runs every enabled rule over the tree at `root` with the given config.
/// IO errors (unreadable files) surface as findings on the offending file,
/// not process aborts: CI must report them, not vanish.
pub fn run(root: &Path, cfg: &Config) -> std::io::Result<Vec<Finding>> {
    let files = collect_files(root, cfg)?;
    let mut findings = Vec::new();
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();

    for rel in &files {
        let src = match std::fs::read_to_string(root.join(rel)) {
            Ok(s) => s,
            Err(e) => {
                findings.push(Finding::new(
                    "manifest-hygiene",
                    rel,
                    0,
                    format!("unreadable file: {e}"),
                ));
                continue;
            }
        };
        let scan = FileScan::new(rel, &src);
        if cfg.rule_enabled("safety-comment") {
            checks::check_safety_comments(&scan, &mut findings);
        }
        if cfg.rule_enabled("ordering-comment") && !path_allowed(rel, &cfg.ordering_allow) {
            checks::check_ordering_comments(&scan, &mut findings);
        }
        if cfg.rule_enabled("reclamation") && !path_allowed(rel, &cfg.reclamation_allow) {
            checks::check_reclamation(&scan, &mut findings);
        }
        counts.insert(rel.clone(), checks::count_unsafe(&scan));
    }

    if cfg.rule_enabled("unsafe-ratchet") {
        check_ratchet(&counts, cfg, &mut findings);
    }
    if cfg.rule_enabled("manifest-hygiene") {
        check_manifest_hygiene(root, cfg, &mut findings);
    }
    if cfg.rule_enabled("bit-layout") {
        let word_src = std::fs::read_to_string(root.join(&cfg.layout_word));
        let map_src = std::fs::read_to_string(root.join(&cfg.layout_map));
        match (word_src, map_src) {
            (Ok(w), Ok(m)) => {
                layout::check_bit_layout(&cfg.layout_word, &w, &cfg.layout_map, &m, &mut findings)
            }
            (w, m) => {
                for (path, res) in [(&cfg.layout_word, w), (&cfg.layout_map, m)] {
                    if let Err(e) = res {
                        findings.push(Finding::new(
                            "bit-layout",
                            path,
                            0,
                            format!("cannot read layout file: {e} (fix [layout] in stmlint.toml)"),
                        ));
                    }
                }
            }
        }
    }

    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(findings)
}

/// Convenience entry: load `root/stmlint.toml` and run.
pub fn run_repo(root: &Path) -> Result<Vec<Finding>, String> {
    let manifest = std::fs::read_to_string(root.join("stmlint.toml"))
        .map_err(|e| format!("cannot read {}/stmlint.toml: {e}", root.display()))?;
    let cfg = config::parse(&manifest)?;
    run(root, &cfg).map_err(|e| format!("scan failed: {e}"))
}

fn check_ratchet(counts: &BTreeMap<String, usize>, cfg: &Config, out: &mut Vec<Finding>) {
    for (rel, &count) in counts {
        let allowed = cfg.allowed_unsafe(rel);
        match allowed {
            Some(limit) if count > limit => out.push(Finding::new(
                "unsafe-ratchet",
                rel,
                0,
                format!(
                    "{count} unsafe keyword(s), manifest allows {limit}: growing the unsafe \
                     surface requires a reviewed stmlint.toml edit (regenerate with \
                     `cargo run -p stmlint -- --write-manifest`)"
                ),
            )),
            None if count > 0 => out.push(Finding::new(
                "unsafe-ratchet",
                rel,
                0,
                format!(
                    "{count} unsafe keyword(s) in a file with no [unsafe] manifest entry: \
                     add one to stmlint.toml to consciously expand the unsafe surface"
                ),
            )),
            _ => {}
        }
    }
}

fn check_manifest_hygiene(root: &Path, cfg: &Config, out: &mut Vec<Finding>) {
    let mut prev: Option<&str> = None;
    for (path, _) in &cfg.unsafe_counts {
        if let Some(p) = prev {
            if path.as_str() == p {
                out.push(Finding::new(
                    "manifest-hygiene",
                    "stmlint.toml",
                    0,
                    format!("duplicate [unsafe] entry `{path}`"),
                ));
            } else if path.as_str() < p {
                out.push(Finding::new(
                    "manifest-hygiene",
                    "stmlint.toml",
                    0,
                    format!("[unsafe] entries out of order: `{path}` after `{p}` (keep sorted)"),
                ));
            }
        }
        if !root.join(path).is_file() {
            out.push(Finding::new(
                "manifest-hygiene",
                "stmlint.toml",
                0,
                format!("[unsafe] entry `{path}` names a file that does not exist"),
            ));
        }
        prev = Some(path);
    }
}

/// Renders the `[unsafe]` table for the current tree (the
/// `--write-manifest` output): sorted, deduped, zero-count files omitted.
pub fn render_unsafe_table(root: &Path, cfg: &Config) -> std::io::Result<String> {
    let files = collect_files(root, cfg)?;
    let mut s = String::from("[unsafe]\n");
    for rel in files {
        let src = std::fs::read_to_string(root.join(&rel))?;
        let scan = FileScan::new(&rel, &src);
        let n = checks::count_unsafe(&scan);
        if n > 0 {
            s.push_str(&format!("\"{rel}\" = {n}\n"));
        }
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rules_are_documented_and_named_consistently() {
        assert_eq!(RULES.len(), 6);
        for r in RULES {
            assert!(!r.summary.is_empty());
            assert!(r.explain.len() > 100, "{} needs a real explanation", r.name);
            assert_eq!(r.name, r.name.to_lowercase());
        }
    }

    #[test]
    fn hygiene_flags_unsorted_and_duplicate_entries() {
        let cfg = Config {
            unsafe_counts: vec![
                ("b.rs".into(), 1),
                ("a.rs".into(), 1),
                ("a.rs".into(), 2),
                ("ghost.rs".into(), 1),
            ],
            ..Config::default()
        };
        let mut out = Vec::new();
        check_manifest_hygiene(Path::new("/nonexistent"), &cfg, &mut out);
        let msgs: Vec<&str> = out.iter().map(|f| f.message.as_str()).collect();
        assert!(msgs.iter().any(|m| m.contains("out of order")));
        assert!(msgs.iter().any(|m| m.contains("duplicate")));
        assert!(msgs.iter().any(|m| m.contains("does not exist")));
    }

    #[test]
    fn ratchet_allows_shrinkage_flags_growth() {
        let cfg = Config {
            unsafe_counts: vec![("a.rs".into(), 5), ("b.rs".into(), 1)],
            ..Config::default()
        };
        let counts: BTreeMap<String, usize> = [
            ("a.rs".to_string(), 3), // below ceiling: fine
            ("b.rs".to_string(), 2), // above ceiling: fires
            ("c.rs".to_string(), 1), // unlisted: fires
            ("d.rs".to_string(), 0), // unlisted, no unsafe: fine
        ]
        .into_iter()
        .collect();
        let mut out = Vec::new();
        check_ratchet(&counts, &cfg, &mut out);
        let files: Vec<&str> = out.iter().map(|f| f.file.as_str()).collect();
        assert_eq!(files, ["b.rs", "c.rs"]);
    }
}
