// Fixture: every justified-unsafe shape the safety-comment rule must
// accept.  Never compiled; scanned by tests/corpus.rs.

fn comment_above() {
    let p = &mut 0u8 as *mut u8;
    // SAFETY: `p` points at a live local for the whole statement.
    unsafe { *p = 1 };
}

fn comment_above_with_attribute() {
    // SAFETY: the attribute between the comment and the block is fine.
    #[allow(clippy::all)]
    unsafe {
        std::hint::unreachable_unchecked()
    };
}

fn same_line() {
    let p = &mut 0u8 as *mut u8;
    unsafe { *p = 1 }; // SAFETY: same-line justification also counts.
}

/// Does nothing interesting.
///
/// # Safety
///
/// `p` must be valid for writes.
unsafe fn doc_safety_section(p: *mut u8) {
    // SAFETY: guaranteed by this fn's own contract.
    unsafe { *p = 2 };
}

// SAFETY: the raw pointer is never dereferenced off-thread.
unsafe impl Send for Wrapper {}

struct Wrapper(*mut u8);

struct Table {
    // An `unsafe fn(..)` *type* declares no unsafe code; exempt.
    destroy: unsafe fn(*mut u8),
}
