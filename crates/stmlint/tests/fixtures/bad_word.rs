// Fixture: the inline-int tag collides with the inline-bytes tag, so the
// two value-word layouts are indistinguishable.  Never compiled.

pub const MARK_BIT: Word = 0b10;
pub const INLINE_BYTES_BIT: Word = 0b010;
pub const INLINE_INT_BIT: Word = 0b010;
pub const MAX_INLINE_BYTES: usize = std::mem::size_of::<Word>() - 1;
pub const INLINE_INT_BITS: u32 = Word::BITS - 3;
