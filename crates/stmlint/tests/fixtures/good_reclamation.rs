// Fixture: shapes the reclamation rule must NOT confuse with the raw
// primitives.  Never compiled; scanned by tests/corpus.rs.

use std::mem::forget;

fn method_syntax_on_other_types(s: String, guard: Guard) -> &'static str {
    guard.forget();
    // `String::leak` is not `Box::leak`; method syntax is exempt.
    s.leak()
}

struct Guard;

impl Guard {
    fn forget(self) {}
}
