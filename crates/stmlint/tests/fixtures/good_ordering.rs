// Fixture: justified and exempt ordering uses.  Never compiled; scanned
// by tests/corpus.rs.

use std::sync::atomic::{AtomicUsize, Ordering};

fn justified(counter: &AtomicUsize, flag: &AtomicUsize) -> usize {
    // ORDERING: test oracle counter, read after join.
    counter.fetch_add(1, Ordering::Relaxed);
    flag.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire) // ORDERING: publish pairing.
        .ok();
    // ORDERING: read after all workers joined; join synchronizes.
    counter.load(Ordering::Relaxed)
}

fn cmp_ordering_is_not_atomic(a: u32, b: u32) -> std::cmp::Ordering {
    // `std::cmp::Ordering` variants (Less/Equal/Greater) never trigger
    // the rule; only the atomic variants do.
    a.cmp(&b)
}
