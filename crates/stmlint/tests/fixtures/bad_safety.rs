// Fixture: every form of undocumented unsafe the safety-comment rule
// must flag.  Never compiled; scanned by tests/corpus.rs.

fn undocumented_block() {
    let p = &mut 0u8 as *mut u8;
    unsafe { *p = 1 };
}

unsafe fn undocumented_fn(p: *mut u8) {
    unsafe { *p = 2 };
}

unsafe impl Send for Wrapper {}

struct Wrapper(*mut u8);
