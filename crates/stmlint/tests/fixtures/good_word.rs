// Fixture: a minimal clean mirror of spectm::word's tag constants, used
// as the [layout] word file in corpus end-to-end runs.  Never compiled.

pub const MARK_BIT: Word = 0b10;
pub const INLINE_BYTES_BIT: Word = 0b010;
pub const INLINE_INT_BIT: Word = 0b100;
pub const MAX_INLINE_BYTES: usize = std::mem::size_of::<Word>() - 1;
pub const INLINE_INT_BITS: u32 = Word::BITS - 3;
