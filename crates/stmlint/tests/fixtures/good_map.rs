// Fixture: a minimal clean mirror of spectm-kv::map's bucket constants,
// used as the [layout] map file in corpus end-to-end runs.  Never compiled.

pub const BUCKET_SLOTS: usize = 7;
const TAG_MASK: Word = 0x3E;
const ITEM_PTR_MASK: Word = !(TAG_MASK | 1);
const FREQ_MASK: Word = 0x1FE;
const FREQ_SHIFT: u32 = 1;
const FREQ_MAX: Word = 0xFF;
const CHAIN_PTR_MASK: Word = !(FREQ_MASK | 1);
pub(crate) const DEADLINE_SHIFT: u32 = 1;

#[repr(align(64))]
struct Node<S: Stm> {
    key: u64,
}

#[repr(align(64))]
struct Bucket<S: Stm> {
    item: [S::Cell; BUCKET_SLOTS],
}

#[repr(align(512))]
struct OverflowBucket<S: Stm> {
    bucket: Bucket<S>,
}
