// Fixture: atomic orderings with no justification, outside the core
// allowlist.  Never compiled; scanned by tests/corpus.rs.

use std::sync::atomic::{AtomicUsize, Ordering};

fn unjustified(counter: &AtomicUsize) -> usize {
    counter.fetch_add(1, Ordering::SeqCst);
    counter.load(Ordering::Relaxed)
}
