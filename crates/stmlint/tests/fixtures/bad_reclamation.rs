// Fixture: reclamation primitives used outside the audited modules.  The
// unsafe blocks are SAFETY-annotated so only the reclamation rule fires.
// Never compiled; scanned by tests/corpus.rs.

fn leaks(v: Vec<u8>) {
    std::mem::forget(v);
}

fn leaks_boxed(b: Box<u8>) -> &'static mut u8 {
    Box::leak(b)
}

fn punned(x: u64) -> f64 {
    // SAFETY: fixture only; u64 and f64 have the same size.
    unsafe { std::mem::transmute(x) }
}

fn frees(p: *mut u8, layout: std::alloc::Layout) {
    // SAFETY: fixture only; `p` came from `alloc` with the same layout.
    unsafe { std::alloc::dealloc(p, layout) };
}
