// Fixture: TAG_MASK includes bit 0, colliding with the val layout's lock
// bit.  Never compiled.

pub const BUCKET_SLOTS: usize = 7;
const TAG_MASK: Word = 0x3F;
const ITEM_PTR_MASK: Word = !(TAG_MASK | 1);
const FREQ_MASK: Word = 0x1FE;
const CHAIN_PTR_MASK: Word = !(FREQ_MASK | 1);

#[repr(align(64))]
struct Node<S: Stm> {
    key: u64,
}

#[repr(align(64))]
struct Bucket<S: Stm> {
    item: [S::Cell; BUCKET_SLOTS],
}

#[repr(align(512))]
struct OverflowBucket<S: Stm> {
    bucket: Bucket<S>,
}
