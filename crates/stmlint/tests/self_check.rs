//! The self-check: the real tree must pass its own lint.  This is the
//! tier-1 integration point — `cargo test` runs the whole stmlint pass
//! over the workspace, so a contract violation fails the build even when
//! nobody runs the binary or CI.

use std::path::Path;

#[test]
fn workspace_tree_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/stmlint sits two levels below the repo root");
    assert!(
        root.join("stmlint.toml").is_file(),
        "no stmlint.toml at {}",
        root.display()
    );
    let findings = stmlint::run_repo(root).expect("stmlint.toml must parse");
    assert!(
        findings.is_empty(),
        "the tree violates its own contracts:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
