//! Fixture-corpus tests: every rule fires on its bad fixture, stays silent
//! on the good one, and the binary's exit-code contract (0 clean / 1
//! findings / 2 config error) holds end to end over temp repos.

use std::path::{Path, PathBuf};
use std::process::Command;

use stmlint::checks::{self, FileScan};
use stmlint::Finding;

fn fixture(name: &str) -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

fn scan_with(name: &str, check: fn(&FileScan, &mut Vec<Finding>)) -> Vec<Finding> {
    let src = fixture(name);
    let scan = FileScan::new(name, &src);
    let mut out = Vec::new();
    check(&scan, &mut out);
    out
}

// ---------------------------------------------------------------------
// Per-rule checks over the fixture sources
// ---------------------------------------------------------------------

#[test]
fn safety_rule_fires_on_every_undocumented_form() {
    let bad = scan_with("bad_safety.rs", checks::check_safety_comments);
    // An undocumented block, an undocumented unsafe fn (plus its inner
    // block), and an undocumented unsafe impl.
    assert_eq!(bad.len(), 4, "{bad:?}");
    assert!(bad.iter().all(|f| f.rule == "safety-comment"));
}

#[test]
fn safety_rule_accepts_every_justified_form() {
    let good = scan_with("good_safety.rs", checks::check_safety_comments);
    assert_eq!(good, Vec::<Finding>::new());
}

#[test]
fn ordering_rule_fires_only_on_unjustified_atomics() {
    let bad = scan_with("bad_ordering.rs", checks::check_ordering_comments);
    assert_eq!(bad.len(), 2, "{bad:?}");
    assert!(bad.iter().all(|f| f.rule == "ordering-comment"));

    let good = scan_with("good_ordering.rs", checks::check_ordering_comments);
    assert_eq!(good, Vec::<Finding>::new());
}

#[test]
fn reclamation_rule_fires_only_on_the_raw_primitives() {
    let bad = scan_with("bad_reclamation.rs", checks::check_reclamation);
    // forget, Box::leak, transmute, dealloc.
    assert_eq!(bad.len(), 4, "{bad:?}");
    assert!(bad.iter().all(|f| f.rule == "reclamation"));

    let good = scan_with("good_reclamation.rs", checks::check_reclamation);
    assert_eq!(good, Vec::<Finding>::new());
}

#[test]
fn layout_rule_fires_on_each_bad_side() {
    let good_w = fixture("good_word.rs");
    let good_m = fixture("good_map.rs");

    let mut out = Vec::new();
    stmlint::layout::check_bit_layout("word.rs", &good_w, "map.rs", &good_m, &mut out);
    assert_eq!(out, Vec::<Finding>::new());

    let mut out = Vec::new();
    stmlint::layout::check_bit_layout(
        "word.rs",
        &fixture("bad_word.rs"),
        "map.rs",
        &good_m,
        &mut out,
    );
    assert!(out.iter().any(|f| f.message.contains("overlap")), "{out:?}");

    let mut out = Vec::new();
    stmlint::layout::check_bit_layout(
        "word.rs",
        &good_w,
        "map.rs",
        &fixture("bad_map.rs"),
        &mut out,
    );
    assert!(out.iter().any(|f| f.message.contains("bit 0")), "{out:?}");
}

// ---------------------------------------------------------------------
// End-to-end: the binary's exit codes over small temp repos
// ---------------------------------------------------------------------

/// The manifest used by the temp repos: everything on, no allowlists, the
/// layout files named `word.rs` / `map.rs` at the root.
const BASE_MANIFEST: &str = "\
[layout]
word = \"word.rs\"
map = \"map.rs\"

[unsafe]
";

/// Creates a fresh temp repo containing `stmlint.toml` plus the given
/// (dest-name, fixture-name) files.  `word.rs`/`map.rs` default to the
/// good layout fixtures unless overridden.
fn temp_repo(name: &str, files: &[(&str, &str)], manifest: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stmlint-corpus-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("stmlint.toml"), manifest).unwrap();
    if !files.iter().any(|(d, _)| *d == "word.rs") {
        std::fs::write(dir.join("word.rs"), fixture("good_word.rs")).unwrap();
    }
    if !files.iter().any(|(d, _)| *d == "map.rs") {
        std::fs::write(dir.join("map.rs"), fixture("good_map.rs")).unwrap();
    }
    for (dest, fx) in files {
        std::fs::write(dir.join(dest), fixture(fx)).unwrap();
    }
    dir
}

fn run_lint(root: &Path, args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_stmlint"))
        .arg("--root")
        .arg(root)
        .args(args)
        .output()
        .expect("spawn stmlint");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Regenerates the repo's [unsafe] table, then lints: the per-class repos
/// must fail for exactly the reason under test, not a stale ratchet.
fn write_manifest_then_lint(root: &Path) -> (i32, String, String) {
    let (code, _, err) = run_lint(root, &["--write-manifest"]);
    assert_eq!(code, 0, "--write-manifest failed: {err}");
    run_lint(root, &[])
}

#[test]
fn binary_is_clean_on_a_clean_tree() {
    let root = temp_repo(
        "clean",
        &[
            ("good_safety.rs", "good_safety.rs"),
            ("good_ordering.rs", "good_ordering.rs"),
            ("good_reclamation.rs", "good_reclamation.rs"),
        ],
        BASE_MANIFEST,
    );
    let (code, out, _) = write_manifest_then_lint(&root);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("clean"), "{out}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn binary_fails_per_violation_class() {
    for (class, dest, fx, rule) in [
        ("safety", "bad_safety.rs", "bad_safety.rs", "safety-comment"),
        (
            "ordering",
            "bad_ordering.rs",
            "bad_ordering.rs",
            "ordering-comment",
        ),
        (
            "reclamation",
            "bad_reclamation.rs",
            "bad_reclamation.rs",
            "reclamation",
        ),
        ("layout-word", "word.rs", "bad_word.rs", "bit-layout"),
        ("layout-map", "map.rs", "bad_map.rs", "bit-layout"),
    ] {
        let root = temp_repo(class, &[(dest, fx)], BASE_MANIFEST);
        let (code, out, _) = write_manifest_then_lint(&root);
        assert_eq!(code, 1, "class {class}: {out}");
        assert!(out.contains(rule), "class {class} must name {rule}: {out}");
        let _ = std::fs::remove_dir_all(&root);
    }
}

#[test]
fn binary_fails_on_ratchet_growth() {
    // good_safety.rs contains (documented) unsafe, but the manifest grants
    // it no budget: only the ratchet may fire.
    let root = temp_repo(
        "ratchet",
        &[("good_safety.rs", "good_safety.rs")],
        BASE_MANIFEST,
    );
    let (code, out, _) = run_lint(&root, &[]);
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("unsafe-ratchet"), "{out}");
    assert!(!out.contains("safety-comment"), "{out}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn binary_fails_on_manifest_disorder() {
    let manifest = format!("{BASE_MANIFEST}\"word.rs\" = 9\n\"map.rs\" = 9\n");
    let root = temp_repo("hygiene", &[], &manifest);
    let (code, out, _) = run_lint(&root, &[]);
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("manifest-hygiene"), "{out}");
    assert!(out.contains("out of order"), "{out}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn binary_reports_config_errors_distinctly() {
    let root = temp_repo("config-error", &[], "[rules]\nsafety-comment = maybe\n");
    let (code, _, err) = run_lint(&root, &[]);
    assert_eq!(code, 2, "{err}");
    assert!(err.contains("error"), "{err}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn binary_warns_on_unknown_flags_instead_of_ignoring() {
    let root = temp_repo("unknown-flag", &[], BASE_MANIFEST);
    let (code, _, err) = write_manifest_then_lint(&root);
    assert_eq!(code, 0);
    let (_, _, err2) = run_lint(&root, &["--expalin"]);
    assert!(
        err2.contains("warning") && err2.contains("--expalin"),
        "{err2}"
    );
    drop(err);
    let _ = std::fs::remove_dir_all(&root);
}
