//! Type-erased deferred destructor calls.

/// A single retired object: a pointer plus the function that destroys it.
///
/// The function pointer is stored rather than a boxed closure so that retiring
/// an object never allocates beyond the `Vec` push in the owning bag.
pub(crate) struct Deferred {
    ptr: *mut u8,
    destroy: unsafe fn(*mut u8),
}

// SAFETY: A `Deferred` is only ever executed once, by whichever thread ends up
// reclaiming the bag that holds it.  The pointed-to object has been unlinked
// from all shared structures before being retired, so ownership has been
// transferred to the reclamation machinery and may move between threads.
unsafe impl Send for Deferred {}

impl Deferred {
    /// Creates a deferred destructor for `ptr`.
    ///
    /// # Safety
    ///
    /// `destroy(ptr)` must be safe to call exactly once, at any later time, on
    /// any thread.
    pub(crate) unsafe fn new(ptr: *mut u8, destroy: unsafe fn(*mut u8)) -> Self {
        Self { ptr, destroy }
    }

    /// Runs the destructor.
    ///
    /// # Safety
    ///
    /// Must be called at most once, after the grace period has elapsed.
    pub(crate) unsafe fn execute(self) {
        // SAFETY: guaranteed by the constructor contract and the caller.
        unsafe { (self.destroy)(self.ptr) };
    }
}

/// Destructor used by `defer_drop`: re-boxes and drops a `T`.
///
/// # Safety
///
/// `ptr` must have originated from `Box::<T>::into_raw` and must not be used
/// again afterwards.
pub(crate) unsafe fn drop_box<T>(ptr: *mut u8) {
    // SAFETY: guaranteed by the caller (see function-level contract).
    drop(unsafe { Box::from_raw(ptr.cast::<T>()) });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    struct SetOnDrop(Arc<AtomicBool>);
    impl Drop for SetOnDrop {
        fn drop(&mut self) {
            self.0.store(true, Ordering::SeqCst);
        }
    }

    #[test]
    fn execute_runs_drop_exactly_once() {
        let flag = Arc::new(AtomicBool::new(false));
        let raw = Box::into_raw(Box::new(SetOnDrop(Arc::clone(&flag)))).cast::<u8>();
        // SAFETY: `raw` comes from `Box::into_raw` of the matching type.
        let d = unsafe { Deferred::new(raw, drop_box::<SetOnDrop>) };
        assert!(!flag.load(Ordering::SeqCst));
        // SAFETY: executed exactly once.
        unsafe { d.execute() };
        assert!(flag.load(Ordering::SeqCst));
    }
}
