//! RAII pin guards.

use std::marker::PhantomData;

use crate::deferred::drop_box;
use crate::local::Local;

/// A guard that keeps the current thread pinned in the epoch it observed.
///
/// While a guard is live, objects retired by *other* threads after the guard
/// was created will not be freed, so pointers read from shared memory under
/// the guard remain valid until the guard is dropped.
///
/// Guards are re-entrant: nesting them is allowed and only the outermost one
/// announces/clears the active flag.
pub struct Guard {
    local: *const Local,
    _not_send: PhantomData<*mut ()>,
}

impl Guard {
    pub(crate) fn new(local: *const Local) -> Self {
        Self {
            local,
            _not_send: PhantomData,
        }
    }

    #[inline]
    fn local(&self) -> &Local {
        // SAFETY: the guard holds a reference count on the `Local`.
        unsafe { &*self.local }
    }

    /// Retires a pointer produced by `Box::into_raw`, dropping the box after
    /// the grace period.
    ///
    /// # Safety
    ///
    /// * `ptr` must have been produced by `Box::<T>::into_raw`.
    /// * The object must already be unreachable for threads that pin *after*
    ///   this call (i.e. it has been unlinked from all shared structures).
    /// * The caller must not use `ptr` again.
    #[inline]
    pub unsafe fn defer_drop<T>(&self, ptr: *mut T) {
        // SAFETY: forwarded contract; `drop_box::<T>` matches the allocation.
        unsafe { self.local().defer(ptr.cast(), drop_box::<T>) };
    }

    /// Retires a raw pointer with a caller-provided destructor.
    ///
    /// # Safety
    ///
    /// `destroy(ptr)` must be safe to call exactly once at any later point on
    /// any thread, and the object must already be unreachable for new readers.
    #[inline]
    pub unsafe fn defer_unchecked(&self, ptr: *mut u8, destroy: unsafe fn(*mut u8)) {
        // SAFETY: forwarded contract.
        unsafe { self.local().defer(ptr, destroy) };
    }

    /// Eagerly attempts to advance the epoch and reclaim garbage.
    pub fn flush(&self) {
        self.local().collect();
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        Local::release_guard(self.local);
    }
}

impl std::fmt::Debug for Guard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Guard { .. }")
    }
}
