//! Global epoch state shared by every participating thread.

use std::fmt;
use std::ptr;
use std::sync::atomic::{fence, AtomicBool, AtomicPtr, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::deferred::Deferred;
use crate::local::Local;
use crate::LocalHandle;

/// A participant record: one per registered thread slot.
///
/// `state` packs the observed epoch in the upper bits and an *active* flag in
/// bit 0.  Records are never unlinked from the list; a thread that exits marks
/// its record as free (`in_use == false`) and a later registration may reuse
/// it, so the list length is bounded by the peak number of concurrently
/// registered handles.
pub(crate) struct Participant {
    /// `(epoch << 1) | active`.
    pub(crate) state: AtomicUsize,
    /// Whether this slot is currently owned by a live `LocalHandle`.
    pub(crate) in_use: AtomicBool,
    /// Next record in the collector's singly-linked participant list.
    pub(crate) next: AtomicPtr<Participant>,
}

impl Participant {
    fn new() -> Self {
        Self {
            state: AtomicUsize::new(0),
            in_use: AtomicBool::new(true),
            next: AtomicPtr::new(ptr::null_mut()),
        }
    }

    /// Returns `(epoch, active)` decoded from the packed state word.
    #[inline]
    pub(crate) fn load_state(&self, order: Ordering) -> (usize, bool) {
        let s = self.state.load(order);
        (s >> 1, s & 1 == 1)
    }

    /// Announces this participant as active in `epoch`.
    #[inline]
    pub(crate) fn set_active(&self, epoch: usize) {
        self.state.store((epoch << 1) | 1, Ordering::SeqCst);
        // A full fence orders the announcement before any subsequent shared
        // read performed under the guard (Fraser, §5.2.3).
        fence(Ordering::SeqCst);
    }

    /// Announces this participant as quiescent (not inside any guard).
    #[inline]
    pub(crate) fn set_inactive(&self) {
        let (epoch, _) = self.load_state(Ordering::Relaxed);
        self.state.store(epoch << 1, Ordering::Release);
    }
}

/// Shared collector state; reference-counted behind [`Collector`] and every
/// [`LocalHandle`].
pub(crate) struct Inner {
    /// The global epoch counter.
    pub(crate) epoch: AtomicUsize,
    /// Head of the participant list.
    head: AtomicPtr<Participant>,
    /// Garbage from threads that unregistered before it became reclaimable,
    /// tagged with the epoch in which it was retired.
    pub(crate) orphans: Mutex<Vec<(usize, Deferred)>>,
    /// Number of objects freed so far (for statistics and tests).
    pub(crate) reclaimed: AtomicUsize,
    /// Number of objects retired so far (for statistics and tests).
    pub(crate) retired: AtomicUsize,
}

impl Inner {
    fn new() -> Self {
        Self {
            epoch: AtomicUsize::new(0),
            head: AtomicPtr::new(ptr::null_mut()),
            orphans: Mutex::new(Vec::new()),
            reclaimed: AtomicUsize::new(0),
            retired: AtomicUsize::new(0),
        }
    }

    /// Acquires a participant slot, reusing a free one if possible.
    pub(crate) fn acquire_participant(&self) -> *const Participant {
        // First try to reuse a slot left behind by an exited thread.
        let mut cur = self.head.load(Ordering::Acquire);
        while !cur.is_null() {
            // SAFETY: participant records are never freed while `Inner` is
            // alive, so `cur` is valid.
            let p = unsafe { &*cur };
            if !p.in_use.load(Ordering::Relaxed)
                && p.in_use
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                p.state.store(0, Ordering::Release);
                return cur;
            }
            cur = p.next.load(Ordering::Acquire);
        }

        // No free slot: push a fresh record at the head of the list.
        let node = Box::into_raw(Box::new(Participant::new()));
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            // SAFETY: `node` is owned by us until the CAS below publishes it.
            unsafe { (*node).next.store(head, Ordering::Relaxed) };
            match self
                .head
                .compare_exchange(head, node, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return node,
                Err(h) => head = h,
            }
        }
    }

    /// Attempts to advance the global epoch by one.
    ///
    /// Advancing from `e` to `e + 1` is permitted only when every *active*
    /// participant has announced epoch `e`.  Returns the (possibly advanced)
    /// global epoch.
    pub(crate) fn try_advance(&self) -> usize {
        let global = self.epoch.load(Ordering::SeqCst);
        let mut cur = self.head.load(Ordering::Acquire);
        while !cur.is_null() {
            // SAFETY: records live as long as `Inner`.
            let p = unsafe { &*cur };
            if p.in_use.load(Ordering::Relaxed) {
                let (epoch, active) = p.load_state(Ordering::SeqCst);
                if active && epoch != global {
                    return global;
                }
            }
            cur = p.next.load(Ordering::Acquire);
        }
        // All active participants are in `global`; it is safe to move on.
        let _ = self
            .epoch
            .compare_exchange(global, global + 1, Ordering::SeqCst, Ordering::SeqCst);
        self.epoch.load(Ordering::SeqCst)
    }

    /// Frees orphaned garbage that has become reclaimable.
    pub(crate) fn collect_orphans(&self, global: usize) {
        if let Ok(mut orphans) = self.orphans.try_lock() {
            let mut i = 0;
            while i < orphans.len() {
                if global >= orphans[i].0 + 2 {
                    let (_, d) = orphans.swap_remove(i);
                    // SAFETY: the grace period has elapsed: the object was
                    // retired at least two epochs ago.
                    unsafe { d.execute() };
                    self.reclaimed.fetch_add(1, Ordering::Relaxed);
                } else {
                    i += 1;
                }
            }
        }
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        // No participant can be active any more: dropping `Inner` means every
        // `Collector` clone and every `LocalHandle` has been dropped.  Free the
        // participant records and run any remaining deferred destructors.
        let mut cur = *self.head.get_mut();
        while !cur.is_null() {
            // SAFETY: records were allocated with `Box::into_raw` and are not
            // referenced by anyone else at this point.
            let boxed = unsafe { Box::from_raw(cur) };
            cur = boxed.next.load(Ordering::Relaxed);
        }
        let orphans = std::mem::take(self.orphans.get_mut().expect("poisoned orphan list"));
        for (_, d) in orphans {
            // SAFETY: nothing can reference retired objects once all handles
            // are gone.
            unsafe { d.execute() };
            self.reclaimed.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Counters describing the work a [`Collector`] has performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectorStats {
    /// Current value of the global epoch.
    pub global_epoch: usize,
    /// Total number of objects handed to `defer_*` so far.
    pub retired: usize,
    /// Total number of objects whose destructors have already run.
    pub reclaimed: usize,
}

/// An epoch-based garbage collector domain.
///
/// Cloning a `Collector` is cheap and yields another handle to the same
/// domain.  Threads join the domain with [`Collector::register`].
///
/// # Examples
///
/// ```
/// use txepoch::Collector;
/// let c = Collector::new();
/// let h = c.register();
/// let guard = h.pin();
/// drop(guard);
/// assert_eq!(c.stats().retired, 0);
/// ```
#[derive(Clone)]
pub struct Collector {
    pub(crate) inner: Arc<Inner>,
}

impl Collector {
    /// Creates a new, empty reclamation domain.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Inner::new()),
        }
    }

    /// Registers the calling thread and returns its local handle.
    ///
    /// The handle is `!Send`: it must stay on the thread that created it.
    pub fn register(&self) -> LocalHandle {
        let participant = self.inner.acquire_participant();
        LocalHandle::new(Local::new(Arc::clone(&self.inner), participant))
    }

    /// Returns a snapshot of the collector's counters.
    pub fn stats(&self) -> CollectorStats {
        CollectorStats {
            global_epoch: self.inner.epoch.load(Ordering::SeqCst),
            retired: self.inner.retired.load(Ordering::Relaxed),
            reclaimed: self.inner.reclaimed.load(Ordering::Relaxed),
        }
    }

    /// Returns the current global epoch (exposed for tests and diagnostics).
    pub fn global_epoch(&self) -> usize {
        self.inner.epoch.load(Ordering::SeqCst)
    }
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Collector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Collector")
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_starts_at_zero() {
        let c = Collector::new();
        assert_eq!(c.global_epoch(), 0);
    }

    #[test]
    fn participant_state_roundtrip() {
        let p = Participant::new();
        p.set_active(7);
        assert_eq!(p.load_state(Ordering::SeqCst), (7, true));
        p.set_inactive();
        assert_eq!(p.load_state(Ordering::SeqCst), (7, false));
    }

    #[test]
    fn participant_slots_are_reused() {
        let c = Collector::new();
        let h1 = c.register();
        drop(h1);
        let inner = &c.inner;
        let first = inner.head.load(Ordering::Acquire);
        let h2 = c.register();
        let second = inner.head.load(Ordering::Acquire);
        // Re-registration must not have pushed a second node.
        assert_eq!(first, second);
        drop(h2);
    }

    #[test]
    fn advance_blocked_by_active_participant() {
        let c = Collector::new();
        let h = c.register();
        let g = h.pin();
        let e0 = c.global_epoch();
        // The pinned thread has observed `e0`, so one advance is allowed...
        c.inner.try_advance();
        assert_eq!(c.global_epoch(), e0 + 1);
        // ...but a second advance is blocked until the guard re-pins.
        c.inner.try_advance();
        assert_eq!(c.global_epoch(), e0 + 1);
        drop(g);
        c.inner.try_advance();
        assert_eq!(c.global_epoch(), e0 + 2);
        drop(h);
    }

    #[test]
    fn clone_shares_domain() {
        let c = Collector::new();
        let c2 = c.clone();
        c.inner.try_advance();
        assert_eq!(c2.global_epoch(), 1);
    }
}
