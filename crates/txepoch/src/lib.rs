//! Fraser-style epoch-based memory reclamation.
//!
//! The SpecTM paper (Dragojević & Harris, EuroSys 2012) uses the epoch-based
//! scheme from Fraser's thesis for all of its data structures: a node removed
//! from a shared structure is not freed immediately, because other threads may
//! still hold references obtained before the removal.  Instead the node is
//! *retired* and physically freed only once every thread has passed through a
//! grace period, which the scheme tracks with a small global epoch counter.
//!
//! This crate is a from-scratch implementation of that scheme (it does not use
//! `crossbeam-epoch`), because the reclamation substrate is part of the system
//! the paper studies and is shared by the STM variants and by the lock-free
//! baselines.
//!
//! # Model
//!
//! * A [`Collector`] owns the global epoch and the list of participants.
//! * Each thread that accesses shared data registers a [`LocalHandle`]
//!   (usually via [`Collector::register`]).
//! * Before touching shared memory the thread calls [`LocalHandle::pin`],
//!   obtaining a [`Guard`].  While at least one guard is live the thread is
//!   *active* in the epoch it observed when pinning.
//! * Removed nodes are handed to [`Guard::defer_drop`] (or
//!   [`Guard::defer_unchecked`] for raw destructors).  They are freed once the
//!   global epoch has advanced twice past the epoch in which they were
//!   retired, which implies that no thread can still hold a reference.
//!
//! # Examples
//!
//! ```
//! use txepoch::Collector;
//!
//! let collector = Collector::new();
//! let handle = collector.register();
//! let guard = handle.pin();
//! // Shared-memory reads happen while the guard is alive.
//! let node = Box::into_raw(Box::new(42_u64));
//! // SAFETY: `node` was just allocated by `Box::into_raw` and is never
//! // reachable by other threads in this example.
//! unsafe { guard.defer_drop(node) };
//! drop(guard);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod collector;
mod deferred;
mod guard;
mod local;

pub use collector::{Collector, CollectorStats};
pub use guard::Guard;
pub use local::LocalHandle;

/// Number of epoch equivalence classes tracked simultaneously.
///
/// Garbage retired in epoch `e` may only be freed once the global epoch has
/// reached `e + 2`, so three classes (`e`, `e + 1`, `e + 2`) are live at any
/// point in time and bags can be indexed modulo three.
pub const EPOCH_CLASSES: usize = 3;

/// Number of retired objects buffered locally before a thread attempts to
/// advance the global epoch and reclaim old garbage.
pub const COLLECT_THRESHOLD: usize = 64;

use std::sync::OnceLock;

/// Returns a process-wide default collector.
///
/// Most users want a single collector shared by every data structure in the
/// process; this mirrors the single epoch domain used in the paper's
/// implementation.
///
/// # Examples
///
/// ```
/// let handle = txepoch::default_collector().register();
/// let _guard = handle.pin();
/// ```
pub fn default_collector() -> &'static Collector {
    static DEFAULT: OnceLock<Collector> = OnceLock::new();
    DEFAULT.get_or_init(Collector::new)
}

thread_local! {
    static DEFAULT_HANDLE: LocalHandle = default_collector().register();
}

/// Pins the current thread against the [`default_collector`].
///
/// This is a convenience wrapper that registers a thread-local handle on first
/// use.  The returned guard borrows a thread-local and therefore cannot be
/// sent to another thread.
///
/// # Examples
///
/// ```
/// let guard = txepoch::pin();
/// drop(guard);
/// ```
pub fn pin() -> Guard {
    DEFAULT_HANDLE.with(|h| h.pin_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn default_collector_is_singleton() {
        let a = default_collector() as *const Collector;
        let b = default_collector() as *const Collector;
        assert_eq!(a, b);
    }

    #[test]
    fn thread_local_pin_works() {
        let g = pin();
        let g2 = pin();
        drop(g);
        drop(g2);
    }

    #[test]
    fn deferred_drop_runs_destructor_eventually() {
        struct Flagged(Arc<AtomicUsize>);
        impl Drop for Flagged {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }

        let collector = Collector::new();
        let handle = collector.register();
        let dropped = Arc::new(AtomicUsize::new(0));
        const N: usize = 1000;
        for _ in 0..N {
            let guard = handle.pin();
            let p = Box::into_raw(Box::new(Flagged(Arc::clone(&dropped))));
            // SAFETY: `p` is uniquely owned; no other thread can access it.
            unsafe { guard.defer_drop(p) };
        }
        drop(handle);
        drop(collector);
        assert_eq!(dropped.load(Ordering::SeqCst), N);
    }
}
