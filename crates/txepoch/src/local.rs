//! Per-thread epoch state: the local handle and its garbage bags.

use std::cell::{Cell, UnsafeCell};
use std::marker::PhantomData;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::collector::{Inner, Participant};
use crate::deferred::Deferred;
use crate::guard::Guard;
use crate::{COLLECT_THRESHOLD, EPOCH_CLASSES};

/// Heap-allocated per-thread state.
///
/// The struct is reference counted manually (`handles` + `guards`) so that a
/// [`Guard`] returned from a thread-local handle does not borrow the handle
/// (see [`crate::pin`]).
pub(crate) struct Local {
    pub(crate) inner: Arc<Inner>,
    participant: *const Participant,
    /// Garbage bags indexed by `epoch % EPOCH_CLASSES`.
    bags: UnsafeCell<[Vec<Deferred>; EPOCH_CLASSES]>,
    /// The epoch in which the garbage currently held by each bag was retired.
    bag_epochs: UnsafeCell<[usize; EPOCH_CLASSES]>,
    /// Number of live `LocalHandle`s pointing at this `Local` (0 or 1).
    handles: Cell<usize>,
    /// Number of live `Guard`s pointing at this `Local`.
    guards: Cell<usize>,
    /// Epoch observed by the outermost live guard.
    pinned_epoch: Cell<usize>,
    /// Objects retired since the last reclamation attempt.
    since_collect: Cell<usize>,
}

impl Local {
    pub(crate) fn new(inner: Arc<Inner>, participant: *const Participant) -> *const Local {
        Box::into_raw(Box::new(Local {
            inner,
            participant,
            bags: UnsafeCell::new(Default::default()),
            bag_epochs: UnsafeCell::new([0; EPOCH_CLASSES]),
            handles: Cell::new(1),
            guards: Cell::new(0),
            pinned_epoch: Cell::new(0),
            since_collect: Cell::new(0),
        }))
    }

    fn participant(&self) -> &Participant {
        // SAFETY: the participant record lives as long as `inner`, which we
        // hold an `Arc` to.
        unsafe { &*self.participant }
    }

    /// Enters a critical section (outermost pin announces the epoch).
    pub(crate) fn pin(&self) {
        let guards = self.guards.get();
        self.guards.set(guards + 1);
        if guards == 0 {
            let epoch = self.inner.epoch.load(Ordering::SeqCst);
            self.participant().set_active(epoch);
            self.pinned_epoch.set(epoch);
        }
    }

    /// Leaves a critical section (outermost unpin clears the active flag).
    pub(crate) fn unpin(&self) {
        let guards = self.guards.get();
        debug_assert!(guards > 0, "unpin without matching pin");
        self.guards.set(guards - 1);
        if guards == 1 {
            self.participant().set_inactive();
        }
    }

    /// Whether the thread currently holds at least one guard.
    pub(crate) fn is_pinned(&self) -> bool {
        self.guards.get() > 0
    }

    /// Retires an object, to be destroyed by `destroy` after a grace period.
    ///
    /// # Safety
    ///
    /// See [`Guard::defer_unchecked`].
    pub(crate) unsafe fn defer(&self, ptr: *mut u8, destroy: unsafe fn(*mut u8)) {
        debug_assert!(self.is_pinned(), "defer called while not pinned");
        let epoch = self.pinned_epoch.get();
        let idx = epoch % EPOCH_CLASSES;
        // SAFETY: `bags`/`bag_epochs` are only touched from the owning thread
        // (`Local` is `!Sync`), so the unique access rule is upheld.
        let bags = unsafe { &mut *self.bags.get() };
        // SAFETY: as above — same owning-thread unique access.
        let bag_epochs = unsafe { &mut *self.bag_epochs.get() };

        // If the slot still holds garbage from an older epoch (== epoch - 3),
        // that garbage is at least two epochs old and can be freed now.
        if bag_epochs[idx] != epoch && !bags[idx].is_empty() {
            debug_assert!(epoch >= bag_epochs[idx] + EPOCH_CLASSES);
            Self::free_bag(&self.inner, &mut bags[idx]);
        }
        bag_epochs[idx] = epoch;
        // SAFETY: forwarded caller contract.
        bags[idx].push(unsafe { Deferred::new(ptr, destroy) });
        self.inner.retired.fetch_add(1, Ordering::Relaxed);

        let n = self.since_collect.get() + 1;
        self.since_collect.set(n);
        if n >= COLLECT_THRESHOLD {
            self.since_collect.set(0);
            self.collect();
        }
    }

    fn free_bag(inner: &Inner, bag: &mut Vec<Deferred>) {
        let n = bag.len();
        for d in bag.drain(..) {
            // SAFETY: the caller only invokes this once the bag's epoch is at
            // least two behind the global epoch.
            unsafe { d.execute() };
        }
        inner.reclaimed.fetch_add(n, Ordering::Relaxed);
    }

    /// Attempts to advance the epoch and free every reclaimable local bag.
    pub(crate) fn collect(&self) {
        let global = self.inner.try_advance();
        // SAFETY: unique access from the owning thread (see `defer`).
        let bags = unsafe { &mut *self.bags.get() };
        // SAFETY: as above — same owning-thread unique access.
        let bag_epochs = unsafe { &*self.bag_epochs.get() };
        for i in 0..EPOCH_CLASSES {
            if !bags[i].is_empty() && global >= bag_epochs[i] + 2 {
                Self::free_bag(&self.inner, &mut bags[i]);
            }
        }
        self.inner.collect_orphans(global);

        // Re-announce the current epoch if we are pinned, so that we do not
        // stall future advances with a stale announcement.
        if self.is_pinned() {
            let epoch = self.inner.epoch.load(Ordering::SeqCst);
            if epoch != self.pinned_epoch.get() {
                self.participant().set_active(epoch);
                self.pinned_epoch.set(epoch);
            }
        }
    }

    /// Number of objects waiting in local bags (test/diagnostic aid).
    pub(crate) fn pending(&self) -> usize {
        // SAFETY: unique access from the owning thread.
        let bags = unsafe { &*self.bags.get() };
        bags.iter().map(Vec::len).sum()
    }

    pub(crate) fn acquire_handle(&self) {
        self.handles.set(self.handles.get() + 1);
    }

    pub(crate) fn acquire_guard(&self) {
        self.pin();
    }

    /// Releases one handle reference; returns true when the `Local` must die.
    fn release(&self) -> bool {
        self.handles.get() == 0 && self.guards.get() == 0
    }

    pub(crate) fn release_handle(ptr: *const Local) {
        // SAFETY: `ptr` is valid: it is only freed below, when both counts
        // reach zero, and the caller owned one handle reference.
        let local = unsafe { &*ptr };
        local.handles.set(local.handles.get() - 1);
        if local.release() {
            // SAFETY: both reference counts are zero, so nothing else points
            // at this `Local` and it was allocated by `Box::into_raw`.
            unsafe { Self::destroy(ptr) };
        }
    }

    pub(crate) fn release_guard(ptr: *const Local) {
        // SAFETY: as above; the caller owned one guard reference.
        let local = unsafe { &*ptr };
        local.unpin();
        if local.release() {
            // SAFETY: see `release_handle`.
            unsafe { Self::destroy(ptr) };
        }
    }

    /// Frees the `Local`, handing any unreclaimed garbage to the collector.
    ///
    /// # Safety
    ///
    /// `ptr` must have no outstanding handle or guard references.
    unsafe fn destroy(ptr: *const Local) {
        // SAFETY: guaranteed by the caller.
        let local = unsafe { Box::from_raw(ptr.cast_mut()) };
        local.participant().set_inactive();
        {
            // SAFETY: no other reference to this `Local` exists any more.
            let bags = unsafe { &mut *local.bags.get() };
            // SAFETY: as above — no other reference to this `Local`.
            let bag_epochs = unsafe { &*local.bag_epochs.get() };
            let mut orphans = local.inner.orphans.lock().expect("poisoned orphan list");
            for (i, bag) in bags.iter_mut().enumerate() {
                for d in bag.drain(..) {
                    orphans.push((bag_epochs[i], d));
                }
            }
        }
        local.participant().in_use.store(false, Ordering::Release);
        // Give the collector a chance to free what we just handed over.
        let global = local.inner.try_advance();
        local.inner.collect_orphans(global);
    }
}

/// A per-thread handle onto a [`crate::Collector`].
///
/// The handle owns the thread's garbage bags; it is cheap to pin repeatedly.
/// Handles are `!Send` and `!Sync` — register one handle per thread.
pub struct LocalHandle {
    local: *const Local,
    _not_send: PhantomData<*mut ()>,
}

impl LocalHandle {
    pub(crate) fn new(local: *const Local) -> Self {
        Self {
            local,
            _not_send: PhantomData,
        }
    }

    #[inline]
    fn local(&self) -> &Local {
        // SAFETY: the handle holds one reference, so the `Local` is alive.
        unsafe { &*self.local }
    }

    /// Pins the current thread, returning a guard tied to this handle's
    /// lifetime by reference count (not by borrow).
    #[inline]
    pub fn pin(&self) -> Guard {
        self.local().acquire_guard();
        Guard::new(self.local)
    }

    /// Pins and returns a guard that keeps the underlying thread state alive
    /// on its own (used by the thread-local [`crate::pin`] helper).
    #[inline]
    pub fn pin_owned(&self) -> Guard {
        self.pin()
    }

    /// Whether this thread currently holds at least one guard.
    #[inline]
    pub fn is_pinned(&self) -> bool {
        self.local().is_pinned()
    }

    /// Eagerly attempts to advance the epoch and reclaim local garbage.
    pub fn flush(&self) {
        self.local().collect();
    }

    /// Number of retired objects not yet reclaimed by this thread.
    pub fn pending(&self) -> usize {
        self.local().pending()
    }

    /// Retires a `Box`-allocated object for deferred destruction.
    ///
    /// Convenience wrapper over [`Guard::defer_drop`] for callers that hold a
    /// handle but no guard; it pins internally.
    ///
    /// # Safety
    ///
    /// `ptr` must originate from `Box::into_raw`, must already be unreachable
    /// for new readers, and must not be used again by the caller.
    pub unsafe fn retire_box<T>(&self, ptr: *mut T) {
        let guard = self.pin();
        // SAFETY: forwarded contract.
        unsafe { guard.defer_drop(ptr) };
    }
}

impl Clone for LocalHandle {
    fn clone(&self) -> Self {
        self.local().acquire_handle();
        Self::new(self.local)
    }
}

impl Drop for LocalHandle {
    fn drop(&mut self) {
        Local::release_handle(self.local);
    }
}

impl std::fmt::Debug for LocalHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalHandle")
            .field("pinned", &self.is_pinned())
            .field("pending", &self.pending())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::Collector;

    #[test]
    fn nested_pins_are_counted() {
        let c = Collector::new();
        let h = c.register();
        let g1 = h.pin();
        let g2 = h.pin();
        assert!(h.is_pinned());
        drop(g1);
        assert!(h.is_pinned());
        drop(g2);
        assert!(!h.is_pinned());
    }

    #[test]
    fn flush_reclaims_after_grace_period() {
        let c = Collector::new();
        let h = c.register();
        {
            let g = h.pin();
            for _ in 0..10 {
                let p = Box::into_raw(Box::new(0_u64));
                // SAFETY: freshly allocated, unreachable by others.
                unsafe { g.defer_drop(p) };
            }
        }
        assert_eq!(h.pending(), 10);
        // Two flushes advance the epoch twice, making the garbage eligible.
        h.flush();
        h.flush();
        h.flush();
        assert_eq!(h.pending(), 0);
        assert_eq!(c.stats().reclaimed, 10);
    }

    #[test]
    fn handle_clone_shares_bags() {
        let c = Collector::new();
        let h = c.register();
        let h2 = h.clone();
        let g = h.pin();
        let p = Box::into_raw(Box::new(1_u32));
        // SAFETY: freshly allocated, unreachable by others.
        unsafe { g.defer_drop(p) };
        drop(g);
        assert_eq!(h2.pending(), 1);
    }

    #[test]
    fn dropping_handle_hands_garbage_to_collector() {
        let c = Collector::new();
        let h = c.register();
        {
            let g = h.pin();
            let p = Box::into_raw(Box::new([0_u8; 32]));
            // SAFETY: freshly allocated, unreachable by others.
            unsafe { g.defer_drop(p) };
        }
        drop(h);
        // The garbage either got reclaimed on handle drop or sits in the
        // orphan list; dropping the collector must free it (checked by Miri /
        // LeakSanitizer-style tests and by the retired/reclaimed counters).
        let stats = c.stats();
        assert_eq!(stats.retired, 1);
        drop(c);
    }
}
