//! Multi-threaded integration tests for the epoch reclamation substrate.

use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

use txepoch::Collector;

/// A Treiber stack built directly on the collector, used as a torture test:
/// every popped node is retired, and every pop dereferences nodes that other
/// threads may concurrently retire.
struct Stack {
    head: AtomicPtr<Node>,
    collector: Collector,
}

struct Node {
    value: usize,
    next: *mut Node,
}

impl Stack {
    fn new(collector: Collector) -> Self {
        Self {
            head: AtomicPtr::new(std::ptr::null_mut()),
            collector,
        }
    }

    fn push(&self, value: usize) {
        let node = Box::into_raw(Box::new(Node {
            value,
            next: std::ptr::null_mut(),
        }));
        // ORDERING: Acquire pairs with the AcqRel CAS publishing nodes.
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            // SAFETY: `node` is not yet shared.
            unsafe { (*node).next = head };
            match self
                .head
                // ORDERING: AcqRel publishes `node` (its fields were
                // written above); failure reloads with Acquire.
                .compare_exchange(head, node, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return,
                Err(h) => head = h,
            }
        }
    }

    fn pop(&self, handle: &txepoch::LocalHandle) -> Option<usize> {
        let guard = handle.pin();
        loop {
            // ORDERING: Acquire pairs with push's publishing CAS, so
            // `head`'s fields are visible before we dereference it.
            let head = self.head.load(Ordering::Acquire);
            if head.is_null() {
                return None;
            }
            // SAFETY: `head` was read under the guard, so even if another
            // thread pops and retires it concurrently, it cannot be freed
            // until we unpin.
            let next = unsafe { (*head).next };
            if self
                .head
                // ORDERING: AcqRel makes the unlink visible before the
                // node is retired; failure reloads with Acquire.
                .compare_exchange(head, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // SAFETY: we won the CAS, so we are the unique retirer.
                let value = unsafe { (*head).value };
                // SAFETY: unique retirer (won the CAS); freed after a grace
                // period, so pinned readers never see a dangling node.
                unsafe { guard.defer_drop(head) };
                return Some(value);
            }
        }
    }
}

impl Drop for Stack {
    fn drop(&mut self) {
        let handle = self.collector.register();
        while self.pop(&handle).is_some() {}
    }
}

#[test]
fn treiber_stack_torture() {
    const THREADS: usize = 4;
    const OPS: usize = 8_000;

    let collector = Collector::new();
    let stack = Arc::new(Stack::new(collector.clone()));
    let pushed = Arc::new(AtomicUsize::new(0));
    let popped = Arc::new(AtomicUsize::new(0));

    let mut joins = Vec::new();
    for t in 0..THREADS {
        let stack = Arc::clone(&stack);
        let collector = collector.clone();
        let pushed = Arc::clone(&pushed);
        let popped = Arc::clone(&popped);
        joins.push(thread::spawn(move || {
            let handle = collector.register();
            for i in 0..OPS {
                if (i + t) % 2 == 0 {
                    stack.push(i);
                    // ORDERING: test oracle counter, read after join.
                    pushed.fetch_add(i, Ordering::Relaxed);
                } else if let Some(v) = stack.pop(&handle) {
                    // ORDERING: test oracle counter, read after join.
                    popped.fetch_add(v, Ordering::Relaxed);
                }
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }

    // Drain what is left and check value conservation.
    let handle = collector.register();
    while let Some(v) = stack.pop(&handle) {
        // ORDERING: single-threaded drain; counters compared below.
        popped.fetch_add(v, Ordering::Relaxed);
    }
    assert_eq!(
        // ORDERING: read after all workers joined; join synchronizes.
        pushed.load(Ordering::Relaxed),
        popped.load(Ordering::Relaxed) // ORDERING: as above
    );

    drop(stack);
    drop(handle);
    let stats = collector.stats();
    assert!(stats.retired >= THREADS * OPS / 4);
    drop(collector);
}

#[test]
fn reclamation_happens_under_churn() {
    const THREADS: usize = 3;
    const OPS: usize = 10_000;

    let collector = Collector::new();
    let mut joins = Vec::new();
    for _ in 0..THREADS {
        let collector = collector.clone();
        joins.push(thread::spawn(move || {
            let handle = collector.register();
            for i in 0..OPS {
                let guard = handle.pin();
                let p = Box::into_raw(Box::new(i));
                // SAFETY: freshly allocated and never shared.
                unsafe { guard.defer_drop(p) };
            }
            handle.flush();
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    let stats = collector.stats();
    assert_eq!(stats.retired, THREADS * OPS);
    // Most garbage must have been reclaimed while threads were still running;
    // the remainder is freed when the collector itself is dropped.
    assert!(stats.reclaimed > 0);
    drop(collector);
}

#[test]
fn guards_keep_memory_alive_across_threads() {
    // A reader pins and reads a pointer; a writer swaps it out and retires the
    // old object.  The reader must still be able to dereference its snapshot.
    let collector = Collector::new();
    let slot = Arc::new(AtomicPtr::new(Box::into_raw(Box::new(123_usize))));

    let reader_collector = collector.clone();
    let reader_slot = Arc::clone(&slot);
    let reader = thread::spawn(move || {
        let handle = reader_collector.register();
        for _ in 0..5_000 {
            let guard = handle.pin();
            // ORDERING: Acquire pairs with the writer's AcqRel swap, so
            // the pointee's value is visible before the read below.
            let p = reader_slot.load(Ordering::Acquire);
            // SAFETY: protected by the guard; the writer retires but cannot
            // free `p` while we are pinned.
            let v = unsafe { *p };
            assert!(v == 123 || v == 456);
            drop(guard);
        }
    });

    let writer_collector = collector.clone();
    let writer_slot = Arc::clone(&slot);
    let writer = thread::spawn(move || {
        let handle = writer_collector.register();
        for i in 0..10_000 {
            let guard = handle.pin();
            let newv = if i % 2 == 0 { 456 } else { 123 };
            let new = Box::into_raw(Box::new(newv));
            // ORDERING: AcqRel publishes `*new` and orders the unlink
            // before the deferred free.
            let old = writer_slot.swap(new, Ordering::AcqRel);
            // SAFETY: `old` has been unlinked by the swap above.
            unsafe { guard.defer_drop(old) };
        }
    });

    reader.join().unwrap();
    writer.join().unwrap();

    // ORDERING: Acquire pairs with the writer's final swap; both threads
    // have joined, so this is the quiescent value.
    let last = slot.load(Ordering::Acquire);
    // SAFETY: all threads are done; we own the final object.
    unsafe { drop(Box::from_raw(last)) };
    drop(collector);
}
