//! The sharded store: a router in front of per-shard transactional maps,
//! each paired with an ordered skip-list index.
//!
//! Every shard's [`StmHashMap`] and its index are built over the **same**
//! STM instance.  That one decision is what makes the store more than an
//! array of independent maps: single-key operations stay short transactions
//! confined to the owning shard (no cross-shard coordination on the hot
//! path), while [`ShardedKv::rmw`], [`ShardedKv::multi_get`],
//! [`ShardedKv::scan`] and [`ShardedKv::range`] open one full transaction
//! whose read and write sets span shards — and the STM serializes it against
//! every concurrent short transaction, because they share the clock, the
//! ownership metadata and the epoch collector.
//!
//! The **index invariant**: a key is linked and live in a shard's skip-list
//! index if and only if it is present in that shard's hash map.  Membership
//! changes (`put` of an absent key, `del`) run as one full transaction that
//! updates both structures, so the invariant holds at every serialization
//! point; value overwrites (`put` of a present key, `rmw`) never touch the
//! index and keep their short/hot shapes.  Scans walk the indexes and read
//! every value through the hash maps inside a single full transaction — an
//! atomically consistent snapshot even against concurrent cross-shard
//! `rmw`.  DESIGN.md § "The ordered index and range scans" has the full
//! argument.

use spectm::{Stm, StmThread};
use spectm_ds::{ApiMode, StmSkipList, TowerSlot};

use crate::map::{NodeSlot, StmHashMap};
use crate::router::ShardRouter;

/// Maximum number of keys one [`ShardedKv::rmw`] / [`ShardedKv::multi_get`]
/// may touch (bounds the fixed-size value buffer; full transactions
/// themselves have no such limit).
pub const MAX_RMW_KEYS: usize = 8;

/// A sharded, concurrent `u64 -> u64` store over one STM instance.
///
/// See the crate docs for an example.
pub struct ShardedKv<S: Stm + Clone> {
    stm: S,
    router: ShardRouter,
    shards: Vec<StmHashMap<S>>,
    /// Per-shard ordered key index, kept transactionally consistent with
    /// the hash shard of the same position (see the module docs).
    indexes: Vec<StmSkipList<S>>,
}

impl<S: Stm + Clone> ShardedKv<S> {
    /// Creates a store with `shards` shards (rounded up to a power of two)
    /// of `buckets_per_shard` chains each, all driven in `mode`.
    pub fn new(stm: &S, shards: usize, buckets_per_shard: usize, mode: ApiMode) -> Self {
        let router = ShardRouter::new(shards);
        let shards: Vec<StmHashMap<S>> = (0..router.shard_count())
            .map(|_| StmHashMap::new(stm, buckets_per_shard, mode))
            .collect();
        let indexes = (0..router.shard_count())
            .map(|_| StmSkipList::new(stm, mode))
            .collect();
        Self {
            stm: stm.clone(),
            router,
            shards,
            indexes,
        }
    }

    /// Registers the calling thread with the underlying STM instance.
    pub fn register(&self) -> S::Thread {
        self.stm.register()
    }

    /// The underlying STM instance.
    pub fn stm(&self) -> &S {
        &self.stm
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The router assigning keys to shards.
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    #[inline]
    fn shard(&self, key: u64) -> &StmHashMap<S> {
        &self.shards[self.router.route(key)]
    }

    /// Returns the value stored under `key` (a short transaction on the
    /// owning shard).
    ///
    /// # Examples
    ///
    /// ```
    /// use spectm::{Stm, variants::ValShort};
    /// use spectm_ds::ApiMode;
    /// use spectm_kv::ShardedKv;
    ///
    /// let stm = ValShort::new();
    /// let store = ShardedKv::new(&stm, 4, 64, ApiMode::Short);
    /// let mut thread = store.register();
    /// assert_eq!(store.get(7, &mut thread), None);
    /// store.put(7, 70, &mut thread);
    /// assert_eq!(store.get(7, &mut thread), Some(70));
    /// ```
    pub fn get(&self, key: u64, thread: &mut S::Thread) -> Option<u64> {
        self.shard(key).get(key, thread)
    }

    /// Stores `value` under `key`, returning the previous value if present.
    ///
    /// Overwriting an existing key is a short transaction on the owning
    /// shard (the hot path); inserting an absent key runs one full
    /// transaction that links the key into the shard's hash map **and** its
    /// ordered index together, preserving the index invariant.
    ///
    /// # Examples
    ///
    /// ```
    /// use spectm::{Stm, variants::ValShort};
    /// use spectm_ds::ApiMode;
    /// use spectm_kv::ShardedKv;
    ///
    /// let stm = ValShort::new();
    /// let store = ShardedKv::new(&stm, 4, 64, ApiMode::Short);
    /// let mut thread = store.register();
    /// assert_eq!(store.put(1, 10, &mut thread), None);       // insert
    /// assert_eq!(store.put(1, 11, &mut thread), Some(10));   // overwrite
    /// ```
    pub fn put(&self, key: u64, value: u64, thread: &mut S::Thread) -> Option<u64> {
        let shard = self.router.route(key);
        // Fast path: overwrite an existing key — membership (and thus the
        // ordered index) is unchanged.
        if let Some(old) = self.shards[shard].update(key, value, thread) {
            return Some(old);
        }
        // Slow path: the key looked absent — insert it into the hash map
        // and the index in one transaction.  A concurrent insert may win
        // the race, in which case `put_in` degrades to an in-place update
        // and the index is left alone.
        let mut node_slot = NodeSlot::new();
        let mut tower_slot = TowerSlot::new();
        let previous = thread
            .atomic(|tx| {
                let previous = self.shards[shard].put_in(key, value, &mut node_slot, tx)?;
                if previous.is_none() {
                    let linked = self.indexes[shard].insert_in(key, 0, &mut tower_slot, tx)?;
                    debug_assert!(linked, "key {key} was in the index but not the shard");
                }
                Ok(previous)
            })
            .expect("put is never cancelled");
        if previous.is_none() {
            node_slot.mark_published();
            tower_slot.mark_published();
        }
        previous
    }

    /// Removes `key`, returning the value it held.  One full transaction
    /// unlinks the key from the owning shard's hash map **and** its ordered
    /// index together, preserving the index invariant.
    pub fn del(&self, key: u64, thread: &mut S::Thread) -> Option<u64> {
        let shard = self.router.route(key);
        let mut retired_node = None;
        let mut retired_tower = None;
        let removed = thread
            .atomic(|tx| {
                retired_node = None;
                retired_tower = None;
                let Some((value, node)) = self.shards[shard].del_in(key, tx)? else {
                    return Ok(None);
                };
                retired_node = Some(node);
                retired_tower = self.indexes[shard].remove_in(key, tx)?;
                debug_assert!(
                    retired_tower.is_some(),
                    "key {key} was in the shard but not the index"
                );
                Ok(Some(value))
            })
            .expect("del is never cancelled");
        if removed.is_some() {
            if let Some(node) = retired_node {
                node.retire(thread);
            }
            if let Some(tower) = retired_tower {
                tower.retire(thread);
            }
        }
        removed
    }

    /// Atomically reads every key in `keys` inside one full transaction
    /// spanning the owning shards.  Returns `None` if any key is absent.
    ///
    /// # Panics
    ///
    /// Panics if `keys.len() > MAX_RMW_KEYS`.
    pub fn multi_get(&self, keys: &[u64], thread: &mut S::Thread) -> Option<Vec<u64>> {
        assert!(keys.len() <= MAX_RMW_KEYS, "at most {MAX_RMW_KEYS} keys");
        thread
            .atomic(|tx| {
                let mut vals = Vec::with_capacity(keys.len());
                for &key in keys {
                    match self.shard(key).read_in(key, tx)? {
                        Some(v) => vals.push(v),
                        None => return Ok(None),
                    }
                }
                Ok(Some(vals))
            })
            .expect("multi_get is never cancelled")
    }

    /// Atomically reads every key in `keys`, lets `update` rewrite the
    /// values in place, and writes them back — one full transaction spanning
    /// the owning shards, serializable with all concurrent operations.
    ///
    /// Returns `false` (writing nothing) if any key is absent.  `update` may
    /// be invoked multiple times (once per conflict retry) and must be pure
    /// with respect to everything but its argument.
    ///
    /// # Panics
    ///
    /// Panics if `keys.len() > MAX_RMW_KEYS`.
    pub fn rmw<F>(&self, keys: &[u64], mut update: F, thread: &mut S::Thread) -> bool
    where
        F: FnMut(&mut [u64]),
    {
        assert!(keys.len() <= MAX_RMW_KEYS, "at most {MAX_RMW_KEYS} keys");
        thread
            .atomic(|tx| {
                let mut vals = [0u64; MAX_RMW_KEYS];
                let vals = &mut vals[..keys.len()];
                for (slot, &key) in vals.iter_mut().zip(keys) {
                    match self.shard(key).read_in(key, tx)? {
                        Some(v) => *slot = v,
                        None => return Ok(false),
                    }
                }
                update(vals);
                for (slot, &key) in vals.iter().zip(keys) {
                    // The key was read above inside this same transaction,
                    // so the write cannot miss (opacity keeps the chain
                    // stable for the duration of the attempt).
                    let wrote = self.shard(key).write_in(key, *slot, tx)?;
                    debug_assert!(wrote, "key {key} vanished within the transaction");
                }
                Ok(true)
            })
            .expect("rmw is never cancelled")
    }

    /// Adds `delta` to every key in `keys`, atomically across shards.
    /// Returns `false` (writing nothing) if any key is absent.
    pub fn rmw_add(&self, keys: &[u64], delta: u64, thread: &mut S::Thread) -> bool {
        self.rmw(
            keys,
            |vals| {
                for v in vals {
                    *v = v.wrapping_add(delta);
                }
            },
            thread,
        )
    }

    /// Returns up to `limit` `(key, value)` pairs with `key >= start`, in
    /// ascending key order — the YCSB-E scan shape.
    ///
    /// One full transaction fans out over every shard's ordered index,
    /// reads each candidate value through the owning hash shard, and
    /// merge-sorts the per-shard runs.  The result is an **atomically
    /// consistent snapshot**: it is serializable with every concurrent
    /// operation, including multi-key [`ShardedKv::rmw`] — a scan can never
    /// observe a torn cross-shard update (the lock-free baseline's scan,
    /// by contrast, offers no such guarantee).
    ///
    /// # Examples
    ///
    /// ```
    /// use spectm::{Stm, variants::ValShort};
    /// use spectm_ds::ApiMode;
    /// use spectm_kv::ShardedKv;
    ///
    /// let stm = ValShort::new();
    /// let store = ShardedKv::new(&stm, 4, 64, ApiMode::Short);
    /// let mut thread = store.register();
    /// for key in 0..10u64 {
    ///     store.put(key, key * 100, &mut thread);
    /// }
    /// assert_eq!(
    ///     store.scan(6, 3, &mut thread),
    ///     vec![(6, 600), (7, 700), (8, 800)],
    /// );
    /// ```
    pub fn scan(&self, start: u64, limit: usize, thread: &mut S::Thread) -> Vec<(u64, u64)> {
        if limit == 0 {
            return Vec::new();
        }
        thread
            .atomic(|tx| {
                let mut runs = Vec::with_capacity(self.shards.len());
                for (index, shard) in self.indexes.iter().zip(&self.shards) {
                    // Each shard may contribute up to `limit` of the merged
                    // result, so every run must be that deep.
                    let keys = index.collect_tail_keys_in(start, limit, tx)?;
                    runs.push(Self::read_run(shard, keys, tx)?);
                }
                Ok(Self::merge_runs(runs, limit))
            })
            .expect("scan is never cancelled")
    }

    /// Returns every `(key, value)` pair with `start <= key < end`, in
    /// ascending key order, as one atomically consistent snapshot (see
    /// [`ShardedKv::scan`] for the guarantees).
    pub fn range(&self, start: u64, end: u64, thread: &mut S::Thread) -> Vec<(u64, u64)> {
        if start >= end {
            return Vec::new();
        }
        thread
            .atomic(|tx| {
                let mut runs = Vec::with_capacity(self.shards.len());
                for (index, shard) in self.indexes.iter().zip(&self.shards) {
                    let keys = index.collect_keys_in(start, end, usize::MAX, tx)?;
                    runs.push(Self::read_run(shard, keys, tx)?);
                }
                Ok(Self::merge_runs(runs, usize::MAX))
            })
            .expect("range is never cancelled")
    }

    /// Reads the value for every key of one per-shard run inside the scan's
    /// transaction.  The index invariant guarantees each key is present in
    /// the hash shard at the transaction's serialization point.
    fn read_run(
        shard: &StmHashMap<S>,
        keys: Vec<u64>,
        tx: &mut spectm::FullTx<'_, S::Thread>,
    ) -> spectm::TxResult<Vec<(u64, u64)>> {
        let mut run = Vec::with_capacity(keys.len());
        for key in keys {
            let value = shard.read_in(key, tx)?;
            debug_assert!(value.is_some(), "index key {key} missing from its shard");
            if let Some(value) = value {
                run.push((key, value));
            }
        }
        Ok(run)
    }

    /// Merges sorted per-shard runs into one ascending result of at most
    /// `limit` pairs.  Shards partition the key space, so keys are unique
    /// across runs and a plain k-way smallest-head merge suffices.
    fn merge_runs(runs: Vec<Vec<(u64, u64)>>, limit: usize) -> Vec<(u64, u64)> {
        let total: usize = runs.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total.min(limit));
        let mut cursors = vec![0usize; runs.len()];
        while out.len() < limit {
            let mut best: Option<usize> = None;
            for (i, run) in runs.iter().enumerate() {
                if cursors[i] < run.len() {
                    let candidate = run[cursors[i]].0;
                    let beats = match best {
                        None => true,
                        Some(b) => candidate < runs[b][cursors[b]].0,
                    };
                    if beats {
                        best = Some(i);
                    }
                }
            }
            let Some(i) = best else { break };
            out.push(runs[i][cursors[i]]);
            cursors[i] += 1;
        }
        out
    }

    /// Collects every `(key, value)` pair across all shards
    /// (non-transactional; only meaningful when no concurrent operations
    /// run).
    pub fn quiescent_snapshot(&self) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = self
            .shards
            .iter()
            .flat_map(|s| s.quiescent_snapshot())
            .collect();
        out.sort_unstable();
        out
    }

    /// Checks the index invariant at quiescence: every shard's index holds
    /// exactly the keys of its hash map.  Panics on violation (test
    /// support; non-transactional).
    pub fn assert_index_consistent(&self) {
        for (i, (index, shard)) in self.indexes.iter().zip(&self.shards).enumerate() {
            let index_keys = index.quiescent_snapshot();
            let shard_keys: Vec<u64> = shard
                .quiescent_snapshot()
                .into_iter()
                .map(|(k, _)| k)
                .collect();
            assert_eq!(
                index_keys, shard_keys,
                "shard {i}: ordered index diverged from the hash map"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectm::variants::{OrecFullG, ValShort};
    use std::collections::BTreeMap;

    #[test]
    fn routes_and_roundtrips_across_shards() {
        let stm = ValShort::new();
        let store = ShardedKv::new(&stm, 4, 16, ApiMode::Short);
        let mut t = store.register();
        let mut oracle = BTreeMap::new();
        for k in 0..500u64 {
            assert_eq!(store.put(k, k * 3, &mut t), None);
            oracle.insert(k, k * 3);
        }
        for k in (0..500u64).step_by(3) {
            assert_eq!(store.del(k, &mut t), oracle.remove(&k));
        }
        for k in 0..500u64 {
            assert_eq!(store.get(k, &mut t), oracle.get(&k).copied());
        }
        assert_eq!(
            store.quiescent_snapshot(),
            oracle.into_iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn rmw_is_atomic_and_total_on_absence() {
        let stm = OrecFullG::new();
        let store = ShardedKv::new(&stm, 4, 16, ApiMode::Full);
        let mut t = store.register();
        store.put(10, 100, &mut t);
        store.put(11, 200, &mut t);
        // Absent key: nothing is written, even to the present keys.
        assert!(!store.rmw_add(&[10, 11, 999], 1, &mut t));
        assert_eq!(store.get(10, &mut t), Some(100));
        assert_eq!(store.get(11, &mut t), Some(200));
        // All present: everything is written.
        assert!(store.rmw_add(&[10, 11], 1, &mut t));
        assert_eq!(store.multi_get(&[10, 11], &mut t), Some(vec![101, 201]));
        assert_eq!(store.multi_get(&[10, 999], &mut t), None);
    }

    #[test]
    fn rmw_handles_duplicate_keys() {
        let stm = ValShort::new();
        let store = ShardedKv::new(&stm, 2, 16, ApiMode::Short);
        let mut t = store.register();
        store.put(5, 10, &mut t);
        // Both slots read the same cell; the second write wins.
        assert!(store.rmw(
            &[5, 5],
            |vals| {
                vals[0] += 1;
                vals[1] += 2;
            },
            &mut t
        ));
        assert_eq!(store.get(5, &mut t), Some(12));
    }

    #[test]
    fn scan_merges_shard_runs_in_key_order() {
        let stm = ValShort::new();
        let store = ShardedKv::new(&stm, 4, 16, ApiMode::Short);
        let mut t = store.register();
        // Keys land on different shards (the router mixes bits), so runs
        // must interleave in the merge.
        for k in 0..64u64 {
            store.put(k, k * 2, &mut t);
        }
        let run = store.scan(10, 7, &mut t);
        let expect: Vec<(u64, u64)> = (10..17).map(|k| (k, k * 2)).collect();
        assert_eq!(run, expect);
        assert_eq!(store.scan(60, 100, &mut t).len(), 4, "tail clamps");
        assert!(store.scan(64, 5, &mut t).is_empty());
        assert!(store.scan(0, 0, &mut t).is_empty());
        assert_eq!(store.range(20, 25, &mut t).len(), 5);
        assert!(store.range(25, 20, &mut t).is_empty());
    }

    #[test]
    fn del_and_reinsert_keep_the_index_in_lockstep() {
        let stm = ValShort::new();
        let store = ShardedKv::new(&stm, 2, 16, ApiMode::Short);
        let mut t = store.register();
        for k in 0..32u64 {
            store.put(k, k, &mut t);
        }
        for k in (0..32u64).step_by(2) {
            assert_eq!(store.del(k, &mut t), Some(k));
        }
        assert_eq!(store.del(2, &mut t), None, "double delete");
        let run = store.scan(0, usize::MAX, &mut t);
        assert_eq!(run.len(), 16);
        assert!(run.iter().all(|&(k, _)| k % 2 == 1), "deleted keys scanned");
        // Re-insert through the put slow path and observe them again.
        for k in (0..32u64).step_by(2) {
            assert_eq!(store.put(k, k + 100, &mut t), None);
        }
        assert_eq!(store.scan(0, usize::MAX, &mut t).len(), 32);
        store.assert_index_consistent();
    }

    #[test]
    fn scan_observes_rmw_writes_atomically() {
        let stm = ValShort::new();
        let store = ShardedKv::new(&stm, 4, 16, ApiMode::Short);
        let mut t = store.register();
        store.put(1, 100, &mut t);
        store.put(2, 200, &mut t);
        assert!(store.rmw(
            &[1, 2],
            |v| {
                v[0] -= 40;
                v[1] += 40;
            },
            &mut t
        ));
        assert_eq!(store.scan(0, 8, &mut t), vec![(1, 60), (2, 240)]);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn rmw_rejects_oversized_key_sets() {
        let stm = ValShort::new();
        let store = ShardedKv::new(&stm, 2, 16, ApiMode::Short);
        let mut t = store.register();
        let keys = [0u64; MAX_RMW_KEYS + 1];
        store.rmw_add(&keys, 1, &mut t);
    }
}
