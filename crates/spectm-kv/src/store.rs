//! The sharded store: a router in front of per-shard transactional maps.
//!
//! Every shard's [`StmHashMap`] is built over the **same** STM instance.
//! That one decision is what makes the store more than an array of
//! independent maps: single-key operations stay short transactions confined
//! to the owning shard (no cross-shard coordination on the hot path), while
//! [`ShardedKv::rmw`] and [`ShardedKv::multi_get`] open one full transaction
//! whose read and write sets span shards — and the STM serializes it against
//! every concurrent short transaction, because they share the clock, the
//! ownership metadata and the epoch collector.

use spectm::{Stm, StmThread};
use spectm_ds::ApiMode;

use crate::map::StmHashMap;
use crate::router::ShardRouter;

/// Maximum number of keys one [`ShardedKv::rmw`] / [`ShardedKv::multi_get`]
/// may touch (bounds the fixed-size value buffer; full transactions
/// themselves have no such limit).
pub const MAX_RMW_KEYS: usize = 8;

/// A sharded, concurrent `u64 -> u64` store over one STM instance.
///
/// See the crate docs for an example.
pub struct ShardedKv<S: Stm + Clone> {
    stm: S,
    router: ShardRouter,
    shards: Vec<StmHashMap<S>>,
}

impl<S: Stm + Clone> ShardedKv<S> {
    /// Creates a store with `shards` shards (rounded up to a power of two)
    /// of `buckets_per_shard` chains each, all driven in `mode`.
    pub fn new(stm: &S, shards: usize, buckets_per_shard: usize, mode: ApiMode) -> Self {
        let router = ShardRouter::new(shards);
        let shards = (0..router.shard_count())
            .map(|_| StmHashMap::new(stm, buckets_per_shard, mode))
            .collect();
        Self {
            stm: stm.clone(),
            router,
            shards,
        }
    }

    /// Registers the calling thread with the underlying STM instance.
    pub fn register(&self) -> S::Thread {
        self.stm.register()
    }

    /// The underlying STM instance.
    pub fn stm(&self) -> &S {
        &self.stm
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The router assigning keys to shards.
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    #[inline]
    fn shard(&self, key: u64) -> &StmHashMap<S> {
        &self.shards[self.router.route(key)]
    }

    /// Returns the value stored under `key` (a short transaction on the
    /// owning shard).
    pub fn get(&self, key: u64, thread: &mut S::Thread) -> Option<u64> {
        self.shard(key).get(key, thread)
    }

    /// Stores `value` under `key`, returning the previous value if present
    /// (a short transaction on the owning shard).
    pub fn put(&self, key: u64, value: u64, thread: &mut S::Thread) -> Option<u64> {
        self.shard(key).put(key, value, thread)
    }

    /// Removes `key`, returning the value it held (a short transaction on
    /// the owning shard).
    pub fn del(&self, key: u64, thread: &mut S::Thread) -> Option<u64> {
        self.shard(key).del(key, thread)
    }

    /// Atomically reads every key in `keys` inside one full transaction
    /// spanning the owning shards.  Returns `None` if any key is absent.
    ///
    /// # Panics
    ///
    /// Panics if `keys.len() > MAX_RMW_KEYS`.
    pub fn multi_get(&self, keys: &[u64], thread: &mut S::Thread) -> Option<Vec<u64>> {
        assert!(keys.len() <= MAX_RMW_KEYS, "at most {MAX_RMW_KEYS} keys");
        thread
            .atomic(|tx| {
                let mut vals = Vec::with_capacity(keys.len());
                for &key in keys {
                    match self.shard(key).read_in(key, tx)? {
                        Some(v) => vals.push(v),
                        None => return Ok(None),
                    }
                }
                Ok(Some(vals))
            })
            .expect("multi_get is never cancelled")
    }

    /// Atomically reads every key in `keys`, lets `update` rewrite the
    /// values in place, and writes them back — one full transaction spanning
    /// the owning shards, serializable with all concurrent operations.
    ///
    /// Returns `false` (writing nothing) if any key is absent.  `update` may
    /// be invoked multiple times (once per conflict retry) and must be pure
    /// with respect to everything but its argument.
    ///
    /// # Panics
    ///
    /// Panics if `keys.len() > MAX_RMW_KEYS`.
    pub fn rmw<F>(&self, keys: &[u64], mut update: F, thread: &mut S::Thread) -> bool
    where
        F: FnMut(&mut [u64]),
    {
        assert!(keys.len() <= MAX_RMW_KEYS, "at most {MAX_RMW_KEYS} keys");
        thread
            .atomic(|tx| {
                let mut vals = [0u64; MAX_RMW_KEYS];
                let vals = &mut vals[..keys.len()];
                for (slot, &key) in vals.iter_mut().zip(keys) {
                    match self.shard(key).read_in(key, tx)? {
                        Some(v) => *slot = v,
                        None => return Ok(false),
                    }
                }
                update(vals);
                for (slot, &key) in vals.iter().zip(keys) {
                    // The key was read above inside this same transaction,
                    // so the write cannot miss (opacity keeps the chain
                    // stable for the duration of the attempt).
                    let wrote = self.shard(key).write_in(key, *slot, tx)?;
                    debug_assert!(wrote, "key {key} vanished within the transaction");
                }
                Ok(true)
            })
            .expect("rmw is never cancelled")
    }

    /// Adds `delta` to every key in `keys`, atomically across shards.
    /// Returns `false` (writing nothing) if any key is absent.
    pub fn rmw_add(&self, keys: &[u64], delta: u64, thread: &mut S::Thread) -> bool {
        self.rmw(
            keys,
            |vals| {
                for v in vals {
                    *v = v.wrapping_add(delta);
                }
            },
            thread,
        )
    }

    /// Collects every `(key, value)` pair across all shards
    /// (non-transactional; only meaningful when no concurrent operations
    /// run).
    pub fn quiescent_snapshot(&self) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = self
            .shards
            .iter()
            .flat_map(|s| s.quiescent_snapshot())
            .collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectm::variants::{OrecFullG, ValShort};
    use std::collections::BTreeMap;

    #[test]
    fn routes_and_roundtrips_across_shards() {
        let stm = ValShort::new();
        let store = ShardedKv::new(&stm, 4, 16, ApiMode::Short);
        let mut t = store.register();
        let mut oracle = BTreeMap::new();
        for k in 0..500u64 {
            assert_eq!(store.put(k, k * 3, &mut t), None);
            oracle.insert(k, k * 3);
        }
        for k in (0..500u64).step_by(3) {
            assert_eq!(store.del(k, &mut t), oracle.remove(&k));
        }
        for k in 0..500u64 {
            assert_eq!(store.get(k, &mut t), oracle.get(&k).copied());
        }
        assert_eq!(
            store.quiescent_snapshot(),
            oracle.into_iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn rmw_is_atomic_and_total_on_absence() {
        let stm = OrecFullG::new();
        let store = ShardedKv::new(&stm, 4, 16, ApiMode::Full);
        let mut t = store.register();
        store.put(10, 100, &mut t);
        store.put(11, 200, &mut t);
        // Absent key: nothing is written, even to the present keys.
        assert!(!store.rmw_add(&[10, 11, 999], 1, &mut t));
        assert_eq!(store.get(10, &mut t), Some(100));
        assert_eq!(store.get(11, &mut t), Some(200));
        // All present: everything is written.
        assert!(store.rmw_add(&[10, 11], 1, &mut t));
        assert_eq!(store.multi_get(&[10, 11], &mut t), Some(vec![101, 201]));
        assert_eq!(store.multi_get(&[10, 999], &mut t), None);
    }

    #[test]
    fn rmw_handles_duplicate_keys() {
        let stm = ValShort::new();
        let store = ShardedKv::new(&stm, 2, 16, ApiMode::Short);
        let mut t = store.register();
        store.put(5, 10, &mut t);
        // Both slots read the same cell; the second write wins.
        assert!(store.rmw(
            &[5, 5],
            |vals| {
                vals[0] += 1;
                vals[1] += 2;
            },
            &mut t
        ));
        assert_eq!(store.get(5, &mut t), Some(12));
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn rmw_rejects_oversized_key_sets() {
        let stm = ValShort::new();
        let store = ShardedKv::new(&stm, 2, 16, ApiMode::Short);
        let mut t = store.register();
        let keys = [0u64; MAX_RMW_KEYS + 1];
        store.rmw_add(&keys, 1, &mut t);
    }
}
