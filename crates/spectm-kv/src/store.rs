//! The sharded store: a router in front of per-shard transactional maps,
//! each paired with an ordered skip-list index.
//!
//! Every shard's [`StmHashMap`] and its index are built over the **same**
//! STM instance.  That one decision is what makes the store more than an
//! array of independent maps: single-key operations stay short transactions
//! confined to the owning shard (no cross-shard coordination on the hot
//! path), while [`ShardedKv::rmw`], [`ShardedKv::multi_get_atomic`],
//! [`ShardedKv::scan`] and [`ShardedKv::range`] open one full transaction
//! whose read and write sets span shards — and the STM serializes it against
//! every concurrent short transaction, because they share the clock, the
//! ownership metadata and the epoch collector.
//!
//! The **index invariant**: a key is linked and live in a shard's skip-list
//! index if and only if it is present in that shard's hash map.  Membership
//! changes (`put` of an absent key, `del`) run as one full transaction that
//! updates both structures, so the invariant holds at every serialization
//! point; value overwrites (`put` of a present key, `rmw`) never touch the
//! index and keep their short/hot shapes.  Scans walk the indexes and read
//! every value through the hash maps inside a single full transaction — an
//! atomically consistent snapshot even against concurrent cross-shard
//! `rmw`.  DESIGN.md § "The ordered index and range scans" has the full
//! argument.
//!
//! Values are byte payloads behind value words (inline or epoch-reclaimed
//! [`crate::ValueCell`]s); every operation that displaces a word retires it
//! through the epoch collector after its transaction commits, per the
//! [`crate::RetiredValue`] contract.
//!
//! # TTL, byte budget, eviction
//!
//! Configured through [`CacheConfig`] (see [`ShardedKv::with_config`]), the
//! store runs as a bounded cache.  The *mechanism* lives in the map — every
//! item stores a deadline word beside its value word, every home bucket a
//! frequency byte in its stat word — and the *policy* lives here:
//!
//! * **Expiry is lazy plus swept.**  Reads treat a passed deadline as a
//!   miss and immediately remove the corpse (a full transaction over the
//!   shard and its index, re-checking the deadline); the background sweep
//!   ([`ShardedKv::sweep_step`], usually driven by a
//!   [`crate::ttl::Reclaimer`] thread) walks buckets incrementally and
//!   removes what reads never touch.  An expired key is therefore never
//!   *observable* — but may remain physically present until one of the two
//!   removals reaches it.
//! * **Accounting is physical.**  [`ShardedKv::live_bytes`] charges
//!   [`ITEM_OVERHEAD_BYTES`] plus the payload length for every item
//!   physically present — including expired-but-unswept ones — and every
//!   mutation settles its delta right after its transaction commits, riding
//!   the same displaced-ownership hook that retires value words.
//! * **Eviction is budget-driven CLOCK.**  When `max_bytes` is set and the
//!   account exceeds it, the sweep empties buckets at the cursor;
//!   [`EvictionPolicy::Freq`] gives buckets with a non-zero frequency byte
//!   a second chance (halving the counter), so under skewed traffic the hot
//!   set survives.  Writes may overshoot between sweeps; the invariant is
//!   *at-or-under budget after a sweep*.

use std::sync::atomic::{AtomicU64, Ordering};

use spectm::{Stm, StmThread, Word};
use spectm_ds::{ApiMode, StmSkipList, TowerSlot};

use crate::map::{deadline_expired, encode_deadline, MapStats, NodeSlot, StmHashMap};
use crate::router::ShardRouter;
use crate::ttl::{CacheConfig, CacheStats, EvictionPolicy, SweepOutcome};
use crate::value::{RetiredValue, Value, ValueSlot, MAX_VALUE_LEN};
use crate::KvError;

/// Maximum number of keys one [`ShardedKv::rmw`] /
/// [`ShardedKv::multi_get_atomic`] may touch (bounds the per-transaction
/// slot buffers; full transactions themselves have no such limit).  The
/// batched operations of [`crate::batch`] have no key limit — they pipeline
/// per-shard instead of opening one transaction over everything.
pub const MAX_RMW_KEYS: usize = 8;

/// Fixed per-item overhead charged against the byte budget beside the
/// payload length: the 64-byte chain node, its share of the bucket array
/// and the ordered-index tower, and allocator slack.  A deliberately blunt
/// constant — the budget bounds memory to first order; it is not an
/// allocator audit.
pub const ITEM_OVERHEAD_BYTES: u64 = 128;

/// Bytes one item of `len` payload bytes charges to the account.
#[inline]
fn item_cost(len: usize) -> u64 {
    ITEM_OVERHEAD_BYTES + len as u64
}

/// Upper bound on eviction visits per sweep, in whole-table passes: the
/// frequency byte needs at most 8 halvings (`log2(255)`) to reach zero, one
/// more visit empties the bucket, and one pass of slack absorbs concurrent
/// frequency bumps.
const MAX_EVICTION_PASSES: usize = 10;

/// A sharded, concurrent `u64 -> bytes` store over one STM instance.
///
/// See the crate docs for an example.
pub struct ShardedKv<S: Stm + Clone> {
    stm: S,
    router: ShardRouter,
    shards: Vec<StmHashMap<S>>,
    /// Per-shard ordered key index, kept transactionally consistent with
    /// the hash shard of the same position (see the module docs).
    indexes: Vec<StmSkipList<S>>,
    config: CacheConfig,
    /// Whether reads maintain hit/miss counters and frequency bytes — set
    /// when the configuration enables any cache behaviour, so the plain
    /// store pays nothing for them.
    track: bool,
    /// Physical live-byte account (see the module docs).
    live_bytes: AtomicU64,
    /// Sweep position over the flattened `(shard, bucket)` space.
    cursor: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    expired: AtomicU64,
    evicted: AtomicU64,
}

impl<S: Stm + Clone> ShardedKv<S> {
    /// Creates a store with `shards` shards (rounded up to a power of two),
    /// each sized for about `capacity_per_shard` keys (see
    /// [`StmHashMap::new`] — a hint targeting the ~0.75 bucket load factor,
    /// not a limit), all driven in `mode`.  Cache behaviour (TTL, byte
    /// budget) is disabled; use [`ShardedKv::with_config`] for that.
    pub fn new(stm: &S, shards: usize, capacity_per_shard: usize, mode: ApiMode) -> Self {
        Self::with_config(
            stm,
            shards,
            capacity_per_shard,
            mode,
            CacheConfig::default(),
        )
    }

    /// [`ShardedKv::new`] with explicit cache behaviour: byte budget,
    /// default TTL, eviction policy, clock.
    pub fn with_config(
        stm: &S,
        shards: usize,
        capacity_per_shard: usize,
        mode: ApiMode,
        config: CacheConfig,
    ) -> Self {
        let router = ShardRouter::new(shards);
        let shards: Vec<StmHashMap<S>> = (0..router.shard_count())
            .map(|_| StmHashMap::new(stm, capacity_per_shard, mode))
            .collect();
        let indexes = (0..router.shard_count())
            .map(|_| StmSkipList::new(stm, mode))
            .collect();
        let track = config.max_bytes.is_some() || config.default_ttl_ms > 0;
        Self {
            stm: stm.clone(),
            router,
            shards,
            indexes,
            config,
            track,
            live_bytes: AtomicU64::new(0),
            cursor: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    /// Registers the calling thread with the underlying STM instance.
    pub fn register(&self) -> S::Thread {
        self.stm.register()
    }

    /// The underlying STM instance.
    pub fn stm(&self) -> &S {
        &self.stm
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total home buckets across all shards — the cycle length of the
    /// sweep cursor, so `sweep_step(bucket_count(), ..)` is one full
    /// expiry pass over the table.
    pub fn bucket_count(&self) -> usize {
        self.shards.iter().map(|s| s.bucket_count()).sum()
    }

    /// The router assigning keys to shards.
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    #[inline]
    fn shard(&self, key: u64) -> &StmHashMap<S> {
        &self.shards[self.router.route(key)]
    }

    /// The hash map of shard `shard` (the batched pipeline resolves shards
    /// once per batch and then addresses them directly).
    #[inline]
    pub(crate) fn shard_map(&self, shard: usize) -> &StmHashMap<S> {
        &self.shards[shard]
    }

    /// The ordered index of shard `shard`.
    #[inline]
    pub(crate) fn shard_index(&self, shard: usize) -> &StmSkipList<S> {
        &self.indexes[shard]
    }

    /// The cache configuration this store was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Milliseconds on the store's clock — the time base of every deadline.
    #[inline]
    pub fn now_ms(&self) -> u64 {
        self.config.clock.now_ms()
    }

    /// Current physical live-byte account: [`ITEM_OVERHEAD_BYTES`] plus
    /// payload length for every item physically present (expired items
    /// count until a read or the sweep removes them).
    #[inline]
    pub fn live_bytes(&self) -> u64 {
        // ORDERING: relaxed statistics counter; per-operation deltas are
        // settled after their transactions commit, and exact readings are
        // only expected at quiescent points.
        self.live_bytes.load(Ordering::Relaxed)
    }

    /// Snapshot of the cache counters.  Hits and misses are only maintained
    /// when the configuration enables cache behaviour (a byte budget or a
    /// default TTL).
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            // ORDERING: relaxed statistics counters, read at reporting
            // points (each line below likewise).
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed), // ORDERING: as above.
            expired: self.expired.load(Ordering::Relaxed), // ORDERING: as above.
            evicted: self.evicted.load(Ordering::Relaxed), // ORDERING: as above.
            live_bytes: self.live_bytes(),
        }
    }

    /// The deadline word for a put carrying `ttl_ms` (`None` = the
    /// configured default TTL; `0` = immortal, the memcached convention).
    #[inline]
    pub(crate) fn deadline_for(&self, ttl_ms: Option<u64>) -> Word {
        let ttl = ttl_ms.unwrap_or(self.config.default_ttl_ms);
        if ttl == 0 {
            0
        } else {
            encode_deadline(self.now_ms().saturating_add(ttl))
        }
    }

    /// Whether `deadline` (a word from the map) has passed.  Reads the
    /// clock only for mortal entries, so immortal traffic never pays for a
    /// time source.
    #[inline]
    pub(crate) fn entry_expired(&self, deadline: Word) -> bool {
        deadline != 0 && deadline_expired(deadline, self.now_ms())
    }

    /// Charges one freshly inserted item to the account.
    #[inline]
    pub(crate) fn account_insert(&self, len: usize) {
        // ORDERING: relaxed statistics counter (see `live_bytes`).
        self.live_bytes.fetch_add(item_cost(len), Ordering::Relaxed);
    }

    /// Settles an overwrite: the item stays, only the payload length moved.
    #[inline]
    pub(crate) fn account_overwrite(&self, old_len: usize, new_len: usize) {
        if new_len >= old_len {
            self.live_bytes
                // ORDERING: relaxed statistics counter (see `live_bytes`).
                .fetch_add((new_len - old_len) as u64, Ordering::Relaxed);
        } else {
            self.live_bytes
                // ORDERING: relaxed statistics counter (see `live_bytes`).
                .fetch_sub((old_len - new_len) as u64, Ordering::Relaxed);
        }
    }

    /// Credits one physically removed item back to the account.
    #[inline]
    pub(crate) fn account_remove(&self, len: usize) {
        // ORDERING: relaxed statistics counter (see `live_bytes`).
        self.live_bytes.fetch_sub(item_cost(len), Ordering::Relaxed);
    }

    /// Records that an expired-but-unswept entry was physically removed or
    /// overwritten.
    #[inline]
    pub(crate) fn note_expired(&self) {
        // ORDERING: relaxed statistics counter (see `cache_stats`).
        self.expired.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn count_hit(&self) {
        if self.track {
            // ORDERING: relaxed statistics counter (see `cache_stats`).
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[inline]
    pub(crate) fn count_miss(&self) {
        if self.track {
            // ORDERING: relaxed statistics counter (see `cache_stats`).
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Returns the value stored under `key` (a short transaction on the
    /// owning shard).
    ///
    /// # Examples
    ///
    /// ```
    /// use spectm::{Stm, variants::ValShort};
    /// use spectm_ds::ApiMode;
    /// use spectm_kv::{ShardedKv, Value};
    ///
    /// let stm = ValShort::new();
    /// let store = ShardedKv::new(&stm, 4, 64, ApiMode::Short);
    /// let mut thread = store.register();
    /// assert_eq!(store.get(7, &mut thread), None);
    /// store.put(7, b"seventy", &mut thread).unwrap();
    /// assert_eq!(store.get(7, &mut thread), Some(Value::new(b"seventy")));
    /// ```
    pub fn get(&self, key: u64, thread: &mut S::Thread) -> Option<Value> {
        self.get_routed(self.router.route(key), key, thread)
    }

    /// [`ShardedKv::get`] with the shard already resolved — the expiry-aware
    /// read shared with the batched pipeline.  A passed deadline is a miss:
    /// the corpse is removed on the spot (full transaction over the shard
    /// and its index, re-checking the deadline) and `None` returned.  Live
    /// hits bump the home bucket's frequency byte when a byte budget is
    /// configured.
    pub(crate) fn get_routed(
        &self,
        shard: usize,
        key: u64,
        thread: &mut S::Thread,
    ) -> Option<Value> {
        debug_assert_eq!(shard, self.router.route(key));
        match self.shards[shard].get_entry(key, thread) {
            Some((value, deadline)) => {
                if self.entry_expired(deadline) {
                    self.expire_routed(shard, key, thread);
                    self.count_miss();
                    return None;
                }
                if self.config.max_bytes.is_some() {
                    self.shards[shard].bump_freq(key, thread);
                }
                self.count_hit();
                Some(value)
            }
            None => {
                self.count_miss();
                None
            }
        }
    }

    /// [`ShardedKv::get_routed`] for callers that already hold an epoch pin
    /// for the whole call (the batched pipeline).
    pub(crate) fn get_routed_pinned(
        &self,
        shard: usize,
        key: u64,
        thread: &mut S::Thread,
    ) -> Option<Value> {
        debug_assert_eq!(shard, self.router.route(key));
        match self.shards[shard].get_entry_pinned(key, thread) {
            Some((value, deadline)) => {
                if self.entry_expired(deadline) {
                    self.expire_routed(shard, key, thread);
                    self.count_miss();
                    return None;
                }
                if self.config.max_bytes.is_some() {
                    self.shards[shard].bump_freq(key, thread);
                }
                self.count_hit();
                Some(value)
            }
            None => {
                self.count_miss();
                None
            }
        }
    }

    /// Physically removes `key` if (and only if) its deadline has passed —
    /// the removal half of lazy expiry and of the sweep's expiry pass.  The
    /// deadline is re-checked inside the transaction, so a concurrent
    /// refresh or a racing remover turns this into a no-op.  Returns whether
    /// this call removed the entry.
    fn expire_routed(&self, shard: usize, key: u64, thread: &mut S::Thread) -> bool {
        let now = self.now_ms();
        let mut removed = None;
        let mut retired_tower = None;
        let found = thread
            .atomic(|tx| {
                removed = None;
                retired_tower = None;
                let Some((value, node)) = self.shards[shard].del_expired_in(key, now, tx)? else {
                    return Ok(false);
                };
                removed = Some((value, node));
                retired_tower = self.indexes[shard].remove_in(key, tx)?;
                debug_assert!(
                    retired_tower.is_some(),
                    "key {key} was in the shard but not the index"
                );
                Ok(true)
            })
            .expect("expiry is never cancelled");
        if !found {
            return false;
        }
        let (value, node) = removed.take().expect("committed expiry captured a node");
        self.account_remove(value.value().len());
        // ORDERING: relaxed statistics counter (see `cache_stats`).
        self.expired.fetch_add(1, Ordering::Relaxed);
        value.retire(thread.epoch());
        node.retire(thread);
        if let Some(tower) = retired_tower {
            tower.retire(thread);
        }
        true
    }

    /// Stores `value` under `key`, returning the previous value if present,
    /// or [`KvError::ValueTooLarge`] for payloads beyond [`MAX_VALUE_LEN`].
    ///
    /// Overwriting an existing key is a short transaction on the owning
    /// shard (the hot path); inserting an absent key runs one full
    /// transaction that links the key into the shard's hash map **and** its
    /// ordered index together, preserving the index invariant.
    ///
    /// # Examples
    ///
    /// ```
    /// use spectm::{Stm, variants::ValShort};
    /// use spectm_ds::ApiMode;
    /// use spectm_kv::{ShardedKv, Value};
    ///
    /// let stm = ValShort::new();
    /// let store = ShardedKv::new(&stm, 4, 64, ApiMode::Short);
    /// let mut thread = store.register();
    /// assert_eq!(store.put(1, b"ten", &mut thread).unwrap(), None); // insert
    /// assert_eq!(
    ///     store.put(1, b"eleven", &mut thread).unwrap(),            // overwrite
    ///     Some(Value::new(b"ten"))
    /// );
    /// ```
    pub fn put(
        &self,
        key: u64,
        value: &[u8],
        thread: &mut S::Thread,
    ) -> Result<Option<Value>, KvError> {
        self.put_with_ttl(key, value, None, thread)
    }

    /// [`ShardedKv::put`] with an explicit TTL: `None` applies the
    /// configured default, `Some(0)` makes the entry immortal (the
    /// memcached convention), `Some(ms)` expires it `ms` milliseconds from
    /// now on the store's clock.  Overwriting always installs the new
    /// deadline — a put is a full refresh of the entry.
    pub fn put_with_ttl(
        &self,
        key: u64,
        value: &[u8],
        ttl_ms: Option<u64>,
        thread: &mut S::Thread,
    ) -> Result<Option<Value>, KvError> {
        if value.len() > MAX_VALUE_LEN {
            return Err(KvError::ValueTooLarge { len: value.len() });
        }
        Ok(self.put_routed(self.router.route(key), key, value, ttl_ms, thread))
    }

    /// [`ShardedKv::put_with_ttl`] with the shard already resolved and the
    /// length already checked — the body shared by the single-key path and
    /// the batched pipeline (`crate::batch`), which routes once per batch.
    pub(crate) fn put_routed(
        &self,
        shard: usize,
        key: u64,
        value: &[u8],
        ttl_ms: Option<u64>,
        thread: &mut S::Thread,
    ) -> Option<Value> {
        self.put_routed_impl(shard, key, value, ttl_ms, thread, false)
    }

    /// [`ShardedKv::put_routed`] for callers that already hold an epoch pin
    /// for the whole call (the batched pipeline): the overwrite fast path
    /// skips per-attempt pin entry/exit, and the insert slow path's
    /// transaction nests its pins as counter bumps.
    pub(crate) fn put_routed_pinned(
        &self,
        shard: usize,
        key: u64,
        value: &[u8],
        ttl_ms: Option<u64>,
        thread: &mut S::Thread,
    ) -> Option<Value> {
        self.put_routed_impl(shard, key, value, ttl_ms, thread, true)
    }

    fn put_routed_impl(
        &self,
        shard: usize,
        key: u64,
        value: &[u8],
        ttl_ms: Option<u64>,
        thread: &mut S::Thread,
        pinned: bool,
    ) -> Option<Value> {
        debug_assert!(value.len() <= MAX_VALUE_LEN);
        debug_assert_eq!(shard, self.router.route(key));
        let deadline = self.deadline_for(ttl_ms);
        let mut value_slot = ValueSlot::new();
        // Fast path: overwrite an existing key — membership (and thus the
        // ordered index) is unchanged.  The new deadline rides the same
        // short transaction.
        let updated = if pinned {
            self.shards[shard].update_entry_with_slot_pinned(
                key,
                value,
                Some(deadline),
                &mut value_slot,
                thread,
            )
        } else {
            self.shards[shard].update_entry_with_slot(
                key,
                value,
                Some(deadline),
                &mut value_slot,
                thread,
            )
        };
        if let Some((old, old_deadline)) = updated {
            return self.settle_overwrite(old, old_deadline, value.len());
        }
        // Slow path: the key looked absent — insert it into the hash map
        // and the index in one transaction.  A concurrent insert may win
        // the race, in which case `put_in` degrades to an in-place update
        // and the index is left alone.
        let mut node_slot = NodeSlot::new();
        let mut tower_slot = TowerSlot::new();
        let mut displaced: Option<(RetiredValue, Word)> = None;
        let inserted = thread
            .atomic(|tx| {
                displaced = None;
                displaced = self.shards[shard].put_in(
                    key,
                    value,
                    deadline,
                    &mut value_slot,
                    &mut node_slot,
                    tx,
                )?;
                if displaced.is_none() {
                    let linked = self.indexes[shard].insert_in(key, 0, &mut tower_slot, tx)?;
                    debug_assert!(linked, "key {key} was in the index but not the shard");
                }
                Ok(displaced.is_none())
            })
            .expect("put is never cancelled");
        // Insert or degraded overwrite, the committed attempt stored the
        // value word.
        value_slot.mark_published();
        if inserted {
            node_slot.mark_published();
            tower_slot.mark_published();
            self.account_insert(value.len());
            None
        } else {
            let (displaced, old_deadline) = displaced.take().expect("overwrite displaced a word");
            let old = displaced.value();
            displaced.retire(thread.epoch());
            self.settle_overwrite(old, old_deadline, value.len())
        }
    }

    /// Books a committed overwrite and derives its logical result: the
    /// byte account moves by the payload delta, and a displaced value whose
    /// deadline had already passed was not observable — the put behaved as
    /// an insert over a corpse, so the caller reports `None` (and the
    /// corpse counts as expired).
    pub(crate) fn settle_overwrite(
        &self,
        old: Value,
        old_deadline: Word,
        new_len: usize,
    ) -> Option<Value> {
        self.account_overwrite(old.len(), new_len);
        if self.entry_expired(old_deadline) {
            // ORDERING: relaxed statistics counter (see `cache_stats`).
            self.expired.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        Some(old)
    }

    /// Removes `key`, returning the value it held.  One full transaction
    /// unlinks the key from the owning shard's hash map **and** its ordered
    /// index together, preserving the index invariant; the node and its
    /// value cell are then retired through the epoch collector.
    pub fn del(&self, key: u64, thread: &mut S::Thread) -> Option<Value> {
        self.del_routed(self.router.route(key), key, thread)
    }

    /// [`ShardedKv::del`] with the shard already resolved (see
    /// [`ShardedKv::put_routed`]).  Deleting an expired-but-unswept entry
    /// removes it physically but reports `None` — the caller never learns a
    /// dead key still existed.
    pub(crate) fn del_routed(
        &self,
        shard: usize,
        key: u64,
        thread: &mut S::Thread,
    ) -> Option<Value> {
        let (out, deadline) = self.remove_routed(shard, key, thread)?;
        if self.entry_expired(deadline) {
            // ORDERING: relaxed statistics counter (see `cache_stats`).
            self.expired.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        Some(out)
    }

    /// Physically removes `key` from the shard and its index (one full
    /// transaction), settles the byte account, and returns the removed
    /// value with the deadline word it was stored under.  The shared
    /// removal body under [`ShardedKv::del_routed`] and the sweep's
    /// eviction — policy (expired? evicted? report the value?) stays with
    /// the caller.
    fn remove_routed(
        &self,
        shard: usize,
        key: u64,
        thread: &mut S::Thread,
    ) -> Option<(Value, Word)> {
        debug_assert_eq!(shard, self.router.route(key));
        let mut removed = None;
        let mut retired_tower = None;
        let deadline = thread
            .atomic(|tx| {
                removed = None;
                retired_tower = None;
                let Some((value, node, deadline)) = self.shards[shard].del_in(key, tx)? else {
                    return Ok(None);
                };
                removed = Some((value, node));
                retired_tower = self.indexes[shard].remove_in(key, tx)?;
                debug_assert!(
                    retired_tower.is_some(),
                    "key {key} was in the shard but not the index"
                );
                Ok(Some(deadline))
            })
            .expect("del is never cancelled")?;
        let (value, node) = removed.take().expect("committed delete captured a node");
        let out = value.value();
        self.account_remove(out.len());
        value.retire(thread.epoch());
        node.retire(thread);
        if let Some(tower) = retired_tower {
            tower.retire(thread);
        }
        Some((out, deadline))
    }

    /// Atomically reads every key in `keys` inside **one full transaction**
    /// spanning the owning shards — all values belong to a single
    /// serialization point.  Returns `Ok(None)` if any key is absent, or
    /// [`KvError::TooManyKeys`] beyond [`MAX_RMW_KEYS`] keys.
    ///
    /// For large read sets where per-key (rather than cross-key) atomicity
    /// suffices, use the batched [`ShardedKv::multi_get`], which has no key
    /// limit.
    pub fn multi_get_atomic(
        &self,
        keys: &[u64],
        thread: &mut S::Thread,
    ) -> Result<Option<Vec<Value>>, KvError> {
        if keys.len() > MAX_RMW_KEYS {
            return Err(KvError::TooManyKeys { len: keys.len() });
        }
        let now = self.now_ms();
        Ok(thread
            .atomic(|tx| {
                let mut vals = Vec::with_capacity(keys.len());
                for &key in keys {
                    match self.shard(key).read_entry_in(key, tx)? {
                        // An expired entry is absent; physical removal is
                        // left to lazy expiry and the sweep.
                        Some((_, deadline)) if deadline_expired(deadline, now) => {
                            return Ok(None);
                        }
                        Some((v, _)) => vals.push(v),
                        None => return Ok(None),
                    }
                }
                Ok(Some(vals))
            })
            .expect("multi_get_atomic is never cancelled"))
    }

    /// Atomically reads every key in `keys`, lets `update` rewrite the
    /// values in place, and writes them back — one full transaction spanning
    /// the owning shards, serializable with all concurrent operations.
    ///
    /// Returns `Ok(false)` (writing nothing) if any key is absent,
    /// [`KvError::TooManyKeys`] beyond [`MAX_RMW_KEYS`] keys, and
    /// [`KvError::ValueTooLarge`] (writing nothing) if `update` produces a
    /// value beyond [`MAX_VALUE_LEN`].  `update` may be invoked multiple
    /// times (once per conflict retry) and must be pure with respect to
    /// everything but its argument.
    pub fn rmw<F>(
        &self,
        keys: &[u64],
        mut update: F,
        thread: &mut S::Thread,
    ) -> Result<bool, KvError>
    where
        F: FnMut(&mut [Value]),
    {
        if keys.len() > MAX_RMW_KEYS {
            return Err(KvError::TooManyKeys { len: keys.len() });
        }
        let now = self.now_ms();
        let mut slots: Vec<ValueSlot> = (0..keys.len()).map(|_| ValueSlot::new()).collect();
        let mut displaced: Vec<(RetiredValue, usize)> = Vec::with_capacity(keys.len());
        let mut oversize: Option<usize> = None;
        let outcome = thread.atomic(|tx| {
            displaced.clear();
            let mut vals = Vec::with_capacity(keys.len());
            for &key in keys {
                match self.shard(key).read_entry_in(key, tx)? {
                    // An expired entry is absent, and absence makes the
                    // whole rmw a total no-op; physical removal is left to
                    // lazy expiry and the sweep.
                    Some((_, deadline)) if deadline_expired(deadline, now) => {
                        return Ok(false);
                    }
                    Some((v, _)) => vals.push(v),
                    None => return Ok(false),
                }
            }
            update(&mut vals);
            if let Some(v) = vals.iter().find(|v| v.len() > MAX_VALUE_LEN) {
                oversize = Some(v.len());
                return tx.cancel();
            }
            for ((slot, &key), val) in slots.iter_mut().zip(keys).zip(&vals) {
                // The key was read above inside this same transaction, so
                // the write cannot miss (opacity keeps the chain stable for
                // the duration of the attempt).  `write_in` preserves the
                // entry's deadline: a read-modify-write must not refresh a
                // TTL.
                let old = self.shard(key).write_in(key, val, slot, tx)?;
                debug_assert!(old.is_some(), "key {key} vanished within the transaction");
                displaced.extend(old.map(|o| (o, val.len())));
            }
            Ok(true)
        });
        match outcome {
            None => Err(KvError::ValueTooLarge {
                len: oversize.expect("cancel implies an oversized value"),
            }),
            Some(false) => Ok(false),
            Some(true) => {
                for slot in &mut slots {
                    slot.mark_published();
                }
                for (old, new_len) in displaced.drain(..) {
                    self.account_overwrite(old.value().len(), new_len);
                    old.retire(thread.epoch());
                }
                Ok(true)
            }
        }
    }

    /// Adds `delta` to every key in `keys`, atomically across shards,
    /// interpreting each value as a [`Value::as_u64`] little-endian counter
    /// (and writing back the 8-byte encoding).  Returns `Ok(false)` (writing
    /// nothing) if any key is absent.
    pub fn rmw_add(
        &self,
        keys: &[u64],
        delta: u64,
        thread: &mut S::Thread,
    ) -> Result<bool, KvError> {
        self.rmw(
            keys,
            |vals| {
                for v in vals {
                    *v = Value::from_u64(v.as_u64().wrapping_add(delta));
                }
            },
            thread,
        )
    }

    /// Returns up to `limit` `(key, value)` pairs with `key >= start`, in
    /// ascending key order — the YCSB-E scan shape.
    ///
    /// One full transaction fans out over every shard's ordered index,
    /// reads each candidate value through the owning hash shard, and
    /// merge-sorts the per-shard runs.  The result is an **atomically
    /// consistent snapshot**: it is serializable with every concurrent
    /// operation, including multi-key [`ShardedKv::rmw`] — a scan can never
    /// observe a torn cross-shard update (the lock-free baseline's scan,
    /// by contrast, offers no such guarantee).  Value payloads are copied
    /// out inside the transaction, so the bytes are exactly the committed
    /// bytes at the scan's serialization point.
    ///
    /// # Examples
    ///
    /// ```
    /// use spectm::{Stm, variants::ValShort};
    /// use spectm_ds::ApiMode;
    /// use spectm_kv::{ShardedKv, Value};
    ///
    /// let stm = ValShort::new();
    /// let store = ShardedKv::new(&stm, 4, 64, ApiMode::Short);
    /// let mut thread = store.register();
    /// for key in 0..10u64 {
    ///     store.put(key, &(key * 100).to_le_bytes(), &mut thread).unwrap();
    /// }
    /// let run = store.scan(6, 3, &mut thread);
    /// assert_eq!(
    ///     run.iter().map(|(k, v)| (*k, v.as_u64())).collect::<Vec<_>>(),
    ///     vec![(6, 600), (7, 700), (8, 800)],
    /// );
    /// ```
    pub fn scan(&self, start: u64, limit: usize, thread: &mut S::Thread) -> Vec<(u64, Value)> {
        if limit == 0 {
            return Vec::new();
        }
        let now = self.now_ms();
        thread
            .atomic(|tx| {
                let mut runs = Vec::with_capacity(self.shards.len());
                for (index, shard) in self.indexes.iter().zip(&self.shards) {
                    // Each shard may contribute up to `limit` of the merged
                    // result, so every run must be that deep.
                    let keys = index.collect_tail_keys_in(start, limit, tx)?;
                    runs.push(Self::read_run(shard, keys, now, tx)?);
                }
                Ok(Self::merge_runs(runs, limit))
            })
            .expect("scan is never cancelled")
    }

    /// Returns every `(key, value)` pair with `start <= key < end`, in
    /// ascending key order, as one atomically consistent snapshot (see
    /// [`ShardedKv::scan`] for the guarantees).
    pub fn range(&self, start: u64, end: u64, thread: &mut S::Thread) -> Vec<(u64, Value)> {
        if start >= end {
            return Vec::new();
        }
        let now = self.now_ms();
        thread
            .atomic(|tx| {
                let mut runs = Vec::with_capacity(self.shards.len());
                for (index, shard) in self.indexes.iter().zip(&self.shards) {
                    let keys = index.collect_keys_in(start, end, usize::MAX, tx)?;
                    runs.push(Self::read_run(shard, keys, now, tx)?);
                }
                Ok(Self::merge_runs(runs, usize::MAX))
            })
            .expect("range is never cancelled")
    }

    /// Reads the value for every key of one per-shard run inside the scan's
    /// transaction.  The index invariant guarantees each key is present in
    /// the hash shard at the transaction's serialization point; entries
    /// whose deadline has passed at `now_ms` are skipped (so a scan that
    /// lands between an expiry and its sweep may return fewer than `limit`
    /// pairs even when more live keys follow — the same contract as a
    /// concurrent delete).
    fn read_run(
        shard: &StmHashMap<S>,
        keys: Vec<u64>,
        now_ms: u64,
        tx: &mut spectm::FullTx<'_, S::Thread>,
    ) -> spectm::TxResult<Vec<(u64, Value)>> {
        let mut run = Vec::with_capacity(keys.len());
        for key in keys {
            let entry = shard.read_entry_in(key, tx)?;
            debug_assert!(entry.is_some(), "index key {key} missing from its shard");
            if let Some((value, deadline)) = entry {
                if !deadline_expired(deadline, now_ms) {
                    run.push((key, value));
                }
            }
        }
        Ok(run)
    }

    /// Merges sorted per-shard runs into one ascending result of at most
    /// `limit` pairs.  Shards partition the key space, so keys are unique
    /// across runs and a plain k-way smallest-head merge suffices.
    fn merge_runs(mut runs: Vec<Vec<(u64, Value)>>, limit: usize) -> Vec<(u64, Value)> {
        let total: usize = runs.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total.min(limit));
        let mut cursors = vec![0usize; runs.len()];
        while out.len() < limit {
            let mut best: Option<usize> = None;
            for (i, run) in runs.iter().enumerate() {
                if cursors[i] < run.len() {
                    let candidate = run[cursors[i]].0;
                    let beats = match best {
                        None => true,
                        Some(b) => candidate < runs[b][cursors[b]].0,
                    };
                    if beats {
                        best = Some(i);
                    }
                }
            }
            let Some(i) = best else { break };
            let (key, value) = std::mem::replace(&mut runs[i][cursors[i]], (0, Value::new(&[])));
            out.push((key, value));
            cursors[i] += 1;
        }
        out
    }

    /// Collects every `(key, value)` pair across all shards
    /// (non-transactional; only meaningful when no concurrent operations
    /// run).
    pub fn quiescent_snapshot(&self) -> Vec<(u64, Value)> {
        let mut out: Vec<(u64, Value)> = self
            .shards
            .iter()
            .flat_map(|s| s.quiescent_snapshot())
            .collect();
        out.sort_unstable();
        out
    }

    /// Merges the per-shard occupancy and probe-length statistics into one
    /// [`MapStats`] (non-transactional; only meaningful when no concurrent
    /// operations run).
    pub fn stats(&self) -> MapStats {
        let mut stats = MapStats::default();
        for shard in &self.shards {
            stats.merge(&shard.stats());
        }
        stats
    }

    // ------------------------------------------------------------------
    // The sweep: incremental expiry + budget eviction
    // ------------------------------------------------------------------

    /// One increment of the background sweep, callable from any registered
    /// thread (the [`crate::ttl::Reclaimer`] drives it from its own; tests
    /// call it directly for determinism).
    ///
    /// Two passes share a persistent cursor over the flattened
    /// `(shard, home bucket)` space:
    ///
    /// 1. **Expiry** — visits up to `max_buckets` buckets, removing every
    ///    entry whose deadline has passed (re-checked transactionally).  A
    ///    saturated frequency byte is halved here so further hits still
    ///    move it.
    /// 2. **Eviction** — only while [`ShardedKv::live_bytes`] exceeds the
    ///    configured budget: walks on from the cursor emptying buckets.
    ///    Under [`EvictionPolicy::Freq`] a bucket with a non-zero frequency
    ///    byte is spared and halved (CLOCK second chance — this is also the
    ///    frequency decay); under [`EvictionPolicy::Fifo`] the cursor's
    ///    bucket is emptied regardless.  Bounded by
    ///    enough whole-table passes to drain every counter, so a sweep
    ///    always ends at-or-under budget unless concurrent writers outrun
    ///    it.
    pub fn sweep_step(&self, max_buckets: usize, thread: &mut S::Thread) -> SweepOutcome {
        let per_shard = self.shards[0].bucket_count();
        debug_assert!(self.shards.iter().all(|s| s.bucket_count() == per_shard));
        let total = per_shard * self.shards.len();
        let now = self.now_ms();
        let mut outcome = SweepOutcome::default();
        let mut scratch: Vec<(u64, Word)> = Vec::new();
        for _ in 0..max_buckets.min(total) {
            let (shard, bucket) = self.advance_cursor(per_shard, total);
            outcome.scanned += 1;
            self.shards[shard].collect_bucket_entries(bucket, thread, &mut scratch);
            for &(key, deadline) in &scratch {
                if deadline_expired(deadline, now) && self.expire_routed(shard, key, thread) {
                    outcome.expired += 1;
                }
            }
            if self.shards[shard].bucket_freq(bucket, thread) == u8::MAX {
                self.shards[shard].halve_freq(bucket, thread);
            }
        }
        let Some(budget) = self.config.max_bytes else {
            return outcome;
        };
        let mut visited = 0;
        while self.live_bytes() > budget && visited < MAX_EVICTION_PASSES * total {
            visited += 1;
            let (shard, bucket) = self.advance_cursor(per_shard, total);
            if self.config.policy == EvictionPolicy::Freq
                && self.shards[shard].bucket_freq(bucket, thread) > 0
            {
                self.shards[shard].halve_freq(bucket, thread);
                continue;
            }
            self.shards[shard].collect_bucket_entries(bucket, thread, &mut scratch);
            for &(key, deadline) in &scratch {
                if deadline_expired(deadline, now) {
                    if self.expire_routed(shard, key, thread) {
                        outcome.expired += 1;
                    }
                } else if self.remove_routed(shard, key, thread).is_some() {
                    // ORDERING: relaxed statistics counter (see
                    // `cache_stats`).
                    self.evicted.fetch_add(1, Ordering::Relaxed);
                    outcome.evicted += 1;
                }
            }
        }
        outcome
    }

    /// Claims the next sweep position, returning `(shard, home bucket)`.
    #[inline]
    fn advance_cursor(&self, per_shard: usize, total: usize) -> (usize, usize) {
        // ORDERING: the cursor is a work-distribution hint shared between
        // sweepers; a duplicate or skipped bucket only changes which sweep
        // visits it.
        let pos = self.cursor.fetch_add(1, Ordering::Relaxed) as usize % total;
        (pos / per_shard, pos % per_shard)
    }

    /// Checks the index invariant at quiescence: every shard's index holds
    /// exactly the keys of its hash map.  Panics on violation (test
    /// support; non-transactional).
    pub fn assert_index_consistent(&self) {
        for (i, (index, shard)) in self.indexes.iter().zip(&self.shards).enumerate() {
            let index_keys = index.quiescent_snapshot();
            let shard_keys: Vec<u64> = shard
                .quiescent_snapshot()
                .into_iter()
                .map(|(k, _)| k)
                .collect();
            assert_eq!(
                index_keys, shard_keys,
                "shard {i}: ordered index diverged from the hash map"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectm::variants::{OrecFullG, ValShort};
    use std::collections::BTreeMap;

    #[test]
    fn routes_and_roundtrips_across_shards() {
        let stm = ValShort::new();
        let store = ShardedKv::new(&stm, 4, 16, ApiMode::Short);
        let mut t = store.register();
        let mut oracle = BTreeMap::new();
        for k in 0..500u64 {
            // Lengths sweep the inline and out-of-line regimes.
            let bytes: Vec<u8> = (0..(k % 23) as u8).map(|i| i ^ k as u8).collect();
            assert_eq!(store.put(k, &bytes, &mut t).unwrap(), None);
            oracle.insert(k, Value::from(bytes));
        }
        for k in (0..500u64).step_by(3) {
            assert_eq!(store.del(k, &mut t), oracle.remove(&k));
        }
        for k in 0..500u64 {
            assert_eq!(store.get(k, &mut t), oracle.get(&k).cloned());
        }
        assert_eq!(
            store.quiescent_snapshot(),
            oracle.into_iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn rmw_is_atomic_and_total_on_absence() {
        let stm = OrecFullG::new();
        let store = ShardedKv::new(&stm, 4, 16, ApiMode::Full);
        let mut t = store.register();
        store.put(10, &100u64.to_le_bytes(), &mut t).unwrap();
        store.put(11, &200u64.to_le_bytes(), &mut t).unwrap();
        // Absent key: nothing is written, even to the present keys.
        assert!(!store.rmw_add(&[10, 11, 999], 1, &mut t).unwrap());
        assert_eq!(store.get(10, &mut t).unwrap().as_u64(), 100);
        assert_eq!(store.get(11, &mut t).unwrap().as_u64(), 200);
        // All present: everything is written.
        assert!(store.rmw_add(&[10, 11], 1, &mut t).unwrap());
        assert_eq!(
            store.multi_get_atomic(&[10, 11], &mut t).unwrap(),
            Some(vec![Value::from_u64(101), Value::from_u64(201)])
        );
        assert_eq!(store.multi_get_atomic(&[10, 999], &mut t).unwrap(), None);
    }

    #[test]
    fn rmw_handles_duplicate_keys_and_resizing_values() {
        let stm = ValShort::new();
        let store = ShardedKv::new(&stm, 2, 16, ApiMode::Short);
        let mut t = store.register();
        store.put(5, &10u64.to_le_bytes(), &mut t).unwrap();
        // Both slots read the same cell; the second write wins.
        assert!(store
            .rmw(
                &[5, 5],
                |vals| {
                    vals[0] = Value::from_u64(vals[0].as_u64() + 1);
                    vals[1] = Value::from_u64(vals[1].as_u64() + 2);
                },
                &mut t
            )
            .unwrap());
        assert_eq!(store.get(5, &mut t).unwrap().as_u64(), 12);
        // An rmw may change a value's length (here: to an out-of-line
        // payload and back).
        assert!(store
            .rmw(&[5], |vals| vals[0] = Value::new(&[7u8; 100]), &mut t)
            .unwrap());
        assert_eq!(store.get(5, &mut t), Some(Value::new(&[7u8; 100])));
        assert!(store
            .rmw(&[5], |vals| vals[0] = Value::new(b"x"), &mut t)
            .unwrap());
        assert_eq!(store.get(5, &mut t), Some(Value::new(b"x")));
    }

    #[test]
    fn scan_merges_shard_runs_in_key_order() {
        let stm = ValShort::new();
        let store = ShardedKv::new(&stm, 4, 16, ApiMode::Short);
        let mut t = store.register();
        // Keys land on different shards (the router mixes bits), so runs
        // must interleave in the merge.
        for k in 0..64u64 {
            store.put(k, &(k * 2).to_le_bytes(), &mut t).unwrap();
        }
        let run = store.scan(10, 7, &mut t);
        let got: Vec<(u64, u64)> = run.iter().map(|(k, v)| (*k, v.as_u64())).collect();
        let expect: Vec<(u64, u64)> = (10..17).map(|k| (k, k * 2)).collect();
        assert_eq!(got, expect);
        assert_eq!(store.scan(60, 100, &mut t).len(), 4, "tail clamps");
        assert!(store.scan(64, 5, &mut t).is_empty());
        assert!(store.scan(0, 0, &mut t).is_empty());
        assert_eq!(store.range(20, 25, &mut t).len(), 5);
        assert!(store.range(25, 20, &mut t).is_empty());
    }

    #[test]
    fn del_and_reinsert_keep_the_index_in_lockstep() {
        let stm = ValShort::new();
        let store = ShardedKv::new(&stm, 2, 16, ApiMode::Short);
        let mut t = store.register();
        for k in 0..32u64 {
            store.put(k, &k.to_le_bytes(), &mut t).unwrap();
        }
        for k in (0..32u64).step_by(2) {
            assert_eq!(store.del(k, &mut t), Some(Value::from_u64(k)));
        }
        assert_eq!(store.del(2, &mut t), None, "double delete");
        let run = store.scan(0, usize::MAX, &mut t);
        assert_eq!(run.len(), 16);
        assert!(run.iter().all(|(k, _)| k % 2 == 1), "deleted keys scanned");
        // Re-insert through the put slow path and observe them again.
        for k in (0..32u64).step_by(2) {
            assert_eq!(
                store.put(k, &(k + 100).to_le_bytes(), &mut t).unwrap(),
                None
            );
        }
        assert_eq!(store.scan(0, usize::MAX, &mut t).len(), 32);
        store.assert_index_consistent();
    }

    #[test]
    fn scan_observes_rmw_writes_atomically() {
        let stm = ValShort::new();
        let store = ShardedKv::new(&stm, 4, 16, ApiMode::Short);
        let mut t = store.register();
        store.put(1, &100u64.to_le_bytes(), &mut t).unwrap();
        store.put(2, &200u64.to_le_bytes(), &mut t).unwrap();
        assert!(store
            .rmw(
                &[1, 2],
                |v| {
                    v[0] = Value::from_u64(v[0].as_u64() - 40);
                    v[1] = Value::from_u64(v[1].as_u64() + 40);
                },
                &mut t
            )
            .unwrap());
        let got: Vec<(u64, u64)> = store
            .scan(0, 8, &mut t)
            .iter()
            .map(|(k, v)| (*k, v.as_u64()))
            .collect();
        assert_eq!(got, vec![(1, 60), (2, 240)]);
    }

    #[test]
    fn rmw_rejects_oversized_key_sets_and_values() {
        let stm = ValShort::new();
        let store = ShardedKv::new(&stm, 2, 16, ApiMode::Short);
        let mut t = store.register();
        let keys = [0u64; MAX_RMW_KEYS + 1];
        assert_eq!(
            store.rmw_add(&keys, 1, &mut t),
            Err(KvError::TooManyKeys {
                len: MAX_RMW_KEYS + 1
            })
        );
        assert_eq!(
            store.multi_get_atomic(&keys, &mut t),
            Err(KvError::TooManyKeys {
                len: MAX_RMW_KEYS + 1
            })
        );
        // An rmw whose closure inflates a value beyond the cap writes
        // nothing.
        store.put(3, b"ok", &mut t).unwrap();
        assert_eq!(
            store.rmw(
                &[3],
                |vals| vals[0] = Value::from(vec![0u8; MAX_VALUE_LEN + 1]),
                &mut t
            ),
            Err(KvError::ValueTooLarge {
                len: MAX_VALUE_LEN + 1
            })
        );
        assert_eq!(store.get(3, &mut t), Some(Value::new(b"ok")));
        // Oversized puts are rejected at the store surface too.
        assert_eq!(
            store.put(3, &vec![0u8; MAX_VALUE_LEN + 1], &mut t),
            Err(KvError::ValueTooLarge {
                len: MAX_VALUE_LEN + 1
            })
        );
    }

    use crate::ttl::{CacheConfig, Clock, EvictionPolicy};
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    /// A small cache-mode store on a hand-driven clock (advance time by
    /// storing into the returned counter).
    /// Moves the shared manual clock to `ms`.
    fn set_now(now: &AtomicU64, ms: u64) {
        // ORDERING: single-writer test clock; nothing synchronizes
        // through it.
        now.store(ms, Ordering::Relaxed);
    }

    fn cache_store(
        max_bytes: Option<u64>,
        default_ttl_ms: u64,
        policy: EvictionPolicy,
    ) -> (ShardedKv<ValShort>, Arc<AtomicU64>) {
        let stm = ValShort::new();
        let now = Arc::new(AtomicU64::new(0));
        let config = CacheConfig {
            max_bytes,
            default_ttl_ms,
            policy,
            clock: Clock::manual(&now),
        };
        (
            ShardedKv::with_config(&stm, 2, 64, ApiMode::Short, config),
            now,
        )
    }

    #[test]
    fn expiry_is_lazy_on_get_and_counted() {
        let (store, now) = cache_store(None, 0, EvictionPolicy::Freq);
        let mut t = store.register();
        store.put_with_ttl(7, b"soon", Some(100), &mut t).unwrap();
        store.put_with_ttl(8, b"immortal", Some(0), &mut t).unwrap();
        assert_eq!(store.get(7, &mut t), Some(Value::new(b"soon")));

        set_now(&now, 99);
        assert_eq!(
            store.get(7, &mut t),
            Some(Value::new(b"soon")),
            "just before the deadline"
        );
        // The deadline itself is expired: a TTL of N ms means the entry
        // lives while `now < put_time + N`.
        set_now(&now, 100);
        assert_eq!(store.get(7, &mut t), None, "at the deadline");
        assert_eq!(store.get(7, &mut t), None, "corpse stays gone");
        assert_eq!(store.get(8, &mut t), Some(Value::new(b"immortal")));
        assert_eq!(store.cache_stats().expired, 1);
        // The corpse's bytes were released by the lazy removal.
        assert_eq!(
            store.live_bytes(),
            ITEM_OVERHEAD_BYTES + b"immortal".len() as u64
        );
        store.assert_index_consistent();
    }

    #[test]
    fn expired_entries_hide_from_scans() {
        let (store, now) = cache_store(None, 0, EvictionPolicy::Freq);
        let mut t = store.register();
        for k in 0..16u64 {
            let ttl = if k % 2 == 0 { Some(50) } else { Some(0) };
            store
                .put_with_ttl(k, &k.to_le_bytes(), ttl, &mut t)
                .unwrap();
        }
        assert_eq!(store.scan(0, usize::MAX, &mut t).len(), 16);
        set_now(&now, 51);
        let run = store.scan(0, usize::MAX, &mut t);
        assert_eq!(run.len(), 8);
        assert!(run.iter().all(|(k, _)| k % 2 == 1), "expired keys scanned");
    }

    #[test]
    fn default_ttl_applies_to_plain_puts() {
        let (store, now) = cache_store(None, 50, EvictionPolicy::Freq);
        let mut t = store.register();
        store.put(1, b"defaulted", &mut t).unwrap();
        store.put_with_ttl(2, b"longer", Some(500), &mut t).unwrap();
        store.put_with_ttl(3, b"forever", Some(0), &mut t).unwrap();
        set_now(&now, 51);
        assert_eq!(store.get(1, &mut t), None, "default TTL ignored");
        assert_eq!(store.get(2, &mut t), Some(Value::new(b"longer")));
        assert_eq!(store.get(3, &mut t), Some(Value::new(b"forever")));
        // Cache mode is on (default TTL), so reads are tallied.
        let stats = store.cache_stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
    }

    #[test]
    fn overwrite_refreshes_the_deadline() {
        let (store, now) = cache_store(None, 0, EvictionPolicy::Freq);
        let mut t = store.register();
        store.put_with_ttl(9, b"v1", Some(100), &mut t).unwrap();
        set_now(&now, 80);
        store.put_with_ttl(9, b"v2", Some(100), &mut t).unwrap();
        set_now(&now, 160);
        assert_eq!(
            store.get(9, &mut t),
            Some(Value::new(b"v2")),
            "the overwrite restarted the clock"
        );
        set_now(&now, 181);
        assert_eq!(store.get(9, &mut t), None);
    }

    #[test]
    fn rmw_preserves_the_deadline() {
        let (store, now) = cache_store(None, 0, EvictionPolicy::Freq);
        let mut t = store.register();
        store
            .put_with_ttl(4, &10u64.to_le_bytes(), Some(100), &mut t)
            .unwrap();
        assert!(store.rmw_add(&[4], 5, &mut t).unwrap());
        assert_eq!(store.get(4, &mut t).unwrap().as_u64(), 15);
        // An in-place update is not a refresh: the original deadline holds.
        set_now(&now, 101);
        assert_eq!(store.get(4, &mut t), None);
        // And an rmw never resurrects a corpse.
        assert!(!store.rmw_add(&[4], 5, &mut t).unwrap());
    }

    #[test]
    fn sweep_reclaims_expired_entries_in_bulk() {
        let (store, now) = cache_store(None, 0, EvictionPolicy::Freq);
        let mut t = store.register();
        for k in 0..64u64 {
            store
                .put_with_ttl(k, &k.to_le_bytes(), Some(30), &mut t)
                .unwrap();
        }
        let full = store.bucket_count();
        // Nothing is due yet: a full pass scans but removes nothing.
        let outcome = store.sweep_step(full, &mut t);
        assert_eq!((outcome.expired, outcome.evicted), (0, 0));
        assert!(store.live_bytes() > 0);

        set_now(&now, 31);
        let outcome = store.sweep_step(full, &mut t);
        assert_eq!(outcome.expired, 64);
        assert_eq!(store.live_bytes(), 0);
        assert_eq!(store.cache_stats().expired, 64);
        assert!(store.scan(0, usize::MAX, &mut t).is_empty());
        store.assert_index_consistent();
    }

    #[test]
    fn byte_budget_accounting_tracks_put_overwrite_del() {
        let (store, _now) = cache_store(Some(1 << 20), 0, EvictionPolicy::Freq);
        let mut t = store.register();
        let item = |len: u64| ITEM_OVERHEAD_BYTES + len;
        store.put(1, &[0u8; 64], &mut t).unwrap();
        assert_eq!(store.live_bytes(), item(64));
        // Overwrite re-accounts to the new length, in either direction.
        store.put(1, &[0u8; 8], &mut t).unwrap();
        assert_eq!(store.live_bytes(), item(8));
        store.put(1, &[0u8; 200], &mut t).unwrap();
        assert_eq!(store.live_bytes(), item(200));
        store.put(2, &[0u8; 16], &mut t).unwrap();
        assert_eq!(store.live_bytes(), item(200) + item(16));
        store.del(1, &mut t);
        assert_eq!(store.live_bytes(), item(16));
        store.del(2, &mut t);
        assert_eq!(store.live_bytes(), 0);
    }

    #[test]
    fn eviction_drains_to_the_budget() {
        let budget = 40 * (ITEM_OVERHEAD_BYTES + 8);
        let (store, _now) = cache_store(Some(budget), 0, EvictionPolicy::Freq);
        let mut t = store.register();
        for k in 0..200u64 {
            store.put(k, &k.to_le_bytes(), &mut t).unwrap();
        }
        assert!(
            store.live_bytes() > budget,
            "writes overshoot between sweeps"
        );
        store.sweep_step(store.bucket_count(), &mut t);
        let stats = store.cache_stats();
        assert!(
            stats.live_bytes <= budget,
            "sweep left {} live bytes over the {budget} budget",
            stats.live_bytes
        );
        assert!(stats.evicted > 0);
        assert_eq!(stats.expired, 0, "nothing had a TTL");
        // The survivors are intact and consistent with the ordered index.
        for (k, v) in store.scan(0, usize::MAX, &mut t) {
            assert_eq!(v.as_u64(), k);
        }
        store.assert_index_consistent();
    }

    #[test]
    fn fifo_eviction_ignores_frequency() {
        let budget = 10 * (ITEM_OVERHEAD_BYTES + 8);
        let (store, _now) = cache_store(Some(budget), 0, EvictionPolicy::Fifo);
        let mut t = store.register();
        for k in 0..100u64 {
            store.put(k, &k.to_le_bytes(), &mut t).unwrap();
        }
        // Touch everything so every home bucket is frequency-marked; FIFO
        // must evict regardless.
        for k in 0..100u64 {
            store.get(k, &mut t);
        }
        store.sweep_step(store.bucket_count(), &mut t);
        let stats = store.cache_stats();
        assert!(stats.live_bytes <= budget);
        assert!(stats.evicted > 0);
    }

    #[test]
    fn counters_stay_dark_outside_cache_mode() {
        let stm = ValShort::new();
        let store = ShardedKv::new(&stm, 2, 64, ApiMode::Short);
        let mut t = store.register();
        store.put(1, b"x", &mut t).unwrap();
        store.get(1, &mut t);
        store.get(2, &mut t);
        let stats = store.cache_stats();
        assert_eq!((stats.hits, stats.misses), (0, 0));
        // Accounting still runs (it is cheap and keeps `with_config`
        // migrations honest), but nothing expires or evicts.
        assert_eq!(store.live_bytes(), ITEM_OVERHEAD_BYTES + 1);
        let outcome = store.sweep_step(store.bucket_count(), &mut t);
        assert_eq!((outcome.expired, outcome.evicted), (0, 0));
    }
}
