//! The sharded store: a router in front of per-shard transactional maps,
//! each paired with an ordered skip-list index.
//!
//! Every shard's [`StmHashMap`] and its index are built over the **same**
//! STM instance.  That one decision is what makes the store more than an
//! array of independent maps: single-key operations stay short transactions
//! confined to the owning shard (no cross-shard coordination on the hot
//! path), while [`ShardedKv::rmw`], [`ShardedKv::multi_get_atomic`],
//! [`ShardedKv::scan`] and [`ShardedKv::range`] open one full transaction
//! whose read and write sets span shards — and the STM serializes it against
//! every concurrent short transaction, because they share the clock, the
//! ownership metadata and the epoch collector.
//!
//! The **index invariant**: a key is linked and live in a shard's skip-list
//! index if and only if it is present in that shard's hash map.  Membership
//! changes (`put` of an absent key, `del`) run as one full transaction that
//! updates both structures, so the invariant holds at every serialization
//! point; value overwrites (`put` of a present key, `rmw`) never touch the
//! index and keep their short/hot shapes.  Scans walk the indexes and read
//! every value through the hash maps inside a single full transaction — an
//! atomically consistent snapshot even against concurrent cross-shard
//! `rmw`.  DESIGN.md § "The ordered index and range scans" has the full
//! argument.
//!
//! Values are byte payloads behind value words (inline or epoch-reclaimed
//! [`crate::ValueCell`]s); every operation that displaces a word retires it
//! through the epoch collector after its transaction commits, per the
//! [`crate::RetiredValue`] contract.

use spectm::{Stm, StmThread};
use spectm_ds::{ApiMode, StmSkipList, TowerSlot};

use crate::map::{MapStats, NodeSlot, StmHashMap};
use crate::router::ShardRouter;
use crate::value::{RetiredValue, Value, ValueSlot, MAX_VALUE_LEN};
use crate::KvError;

/// Maximum number of keys one [`ShardedKv::rmw`] /
/// [`ShardedKv::multi_get_atomic`] may touch (bounds the per-transaction
/// slot buffers; full transactions themselves have no such limit).  The
/// batched operations of [`crate::batch`] have no key limit — they pipeline
/// per-shard instead of opening one transaction over everything.
pub const MAX_RMW_KEYS: usize = 8;

/// A sharded, concurrent `u64 -> bytes` store over one STM instance.
///
/// See the crate docs for an example.
pub struct ShardedKv<S: Stm + Clone> {
    stm: S,
    router: ShardRouter,
    shards: Vec<StmHashMap<S>>,
    /// Per-shard ordered key index, kept transactionally consistent with
    /// the hash shard of the same position (see the module docs).
    indexes: Vec<StmSkipList<S>>,
}

impl<S: Stm + Clone> ShardedKv<S> {
    /// Creates a store with `shards` shards (rounded up to a power of two),
    /// each sized for about `capacity_per_shard` keys (see
    /// [`StmHashMap::new`] — a hint targeting the ~0.75 bucket load factor,
    /// not a limit), all driven in `mode`.
    pub fn new(stm: &S, shards: usize, capacity_per_shard: usize, mode: ApiMode) -> Self {
        let router = ShardRouter::new(shards);
        let shards: Vec<StmHashMap<S>> = (0..router.shard_count())
            .map(|_| StmHashMap::new(stm, capacity_per_shard, mode))
            .collect();
        let indexes = (0..router.shard_count())
            .map(|_| StmSkipList::new(stm, mode))
            .collect();
        Self {
            stm: stm.clone(),
            router,
            shards,
            indexes,
        }
    }

    /// Registers the calling thread with the underlying STM instance.
    pub fn register(&self) -> S::Thread {
        self.stm.register()
    }

    /// The underlying STM instance.
    pub fn stm(&self) -> &S {
        &self.stm
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The router assigning keys to shards.
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    #[inline]
    fn shard(&self, key: u64) -> &StmHashMap<S> {
        &self.shards[self.router.route(key)]
    }

    /// The hash map of shard `shard` (the batched pipeline resolves shards
    /// once per batch and then addresses them directly).
    #[inline]
    pub(crate) fn shard_map(&self, shard: usize) -> &StmHashMap<S> {
        &self.shards[shard]
    }

    /// The ordered index of shard `shard`.
    #[inline]
    pub(crate) fn shard_index(&self, shard: usize) -> &StmSkipList<S> {
        &self.indexes[shard]
    }

    /// Returns the value stored under `key` (a short transaction on the
    /// owning shard).
    ///
    /// # Examples
    ///
    /// ```
    /// use spectm::{Stm, variants::ValShort};
    /// use spectm_ds::ApiMode;
    /// use spectm_kv::{ShardedKv, Value};
    ///
    /// let stm = ValShort::new();
    /// let store = ShardedKv::new(&stm, 4, 64, ApiMode::Short);
    /// let mut thread = store.register();
    /// assert_eq!(store.get(7, &mut thread), None);
    /// store.put(7, b"seventy", &mut thread).unwrap();
    /// assert_eq!(store.get(7, &mut thread), Some(Value::new(b"seventy")));
    /// ```
    pub fn get(&self, key: u64, thread: &mut S::Thread) -> Option<Value> {
        self.shard(key).get(key, thread)
    }

    /// Stores `value` under `key`, returning the previous value if present,
    /// or [`KvError::ValueTooLarge`] for payloads beyond [`MAX_VALUE_LEN`].
    ///
    /// Overwriting an existing key is a short transaction on the owning
    /// shard (the hot path); inserting an absent key runs one full
    /// transaction that links the key into the shard's hash map **and** its
    /// ordered index together, preserving the index invariant.
    ///
    /// # Examples
    ///
    /// ```
    /// use spectm::{Stm, variants::ValShort};
    /// use spectm_ds::ApiMode;
    /// use spectm_kv::{ShardedKv, Value};
    ///
    /// let stm = ValShort::new();
    /// let store = ShardedKv::new(&stm, 4, 64, ApiMode::Short);
    /// let mut thread = store.register();
    /// assert_eq!(store.put(1, b"ten", &mut thread).unwrap(), None); // insert
    /// assert_eq!(
    ///     store.put(1, b"eleven", &mut thread).unwrap(),            // overwrite
    ///     Some(Value::new(b"ten"))
    /// );
    /// ```
    pub fn put(
        &self,
        key: u64,
        value: &[u8],
        thread: &mut S::Thread,
    ) -> Result<Option<Value>, KvError> {
        if value.len() > MAX_VALUE_LEN {
            return Err(KvError::ValueTooLarge { len: value.len() });
        }
        Ok(self.put_routed(self.router.route(key), key, value, thread))
    }

    /// [`ShardedKv::put`] with the shard already resolved and the length
    /// already checked — the body shared by the single-key path and the
    /// batched pipeline (`crate::batch`), which routes once per batch.
    pub(crate) fn put_routed(
        &self,
        shard: usize,
        key: u64,
        value: &[u8],
        thread: &mut S::Thread,
    ) -> Option<Value> {
        self.put_routed_impl(shard, key, value, thread, false)
    }

    /// [`ShardedKv::put_routed`] for callers that already hold an epoch pin
    /// for the whole call (the batched pipeline): the overwrite fast path
    /// skips per-attempt pin entry/exit, and the insert slow path's
    /// transaction nests its pins as counter bumps.
    pub(crate) fn put_routed_pinned(
        &self,
        shard: usize,
        key: u64,
        value: &[u8],
        thread: &mut S::Thread,
    ) -> Option<Value> {
        self.put_routed_impl(shard, key, value, thread, true)
    }

    fn put_routed_impl(
        &self,
        shard: usize,
        key: u64,
        value: &[u8],
        thread: &mut S::Thread,
        pinned: bool,
    ) -> Option<Value> {
        debug_assert!(value.len() <= MAX_VALUE_LEN);
        debug_assert_eq!(shard, self.router.route(key));
        let mut value_slot = ValueSlot::new();
        // Fast path: overwrite an existing key — membership (and thus the
        // ordered index) is unchanged.
        let updated = if pinned {
            self.shards[shard].update_with_slot_pinned(key, value, &mut value_slot, thread)
        } else {
            self.shards[shard].update_with_slot(key, value, &mut value_slot, thread)
        };
        if let Some(old) = updated {
            return Some(old);
        }
        // Slow path: the key looked absent — insert it into the hash map
        // and the index in one transaction.  A concurrent insert may win
        // the race, in which case `put_in` degrades to an in-place update
        // and the index is left alone.
        let mut node_slot = NodeSlot::new();
        let mut tower_slot = TowerSlot::new();
        let mut displaced: Option<RetiredValue> = None;
        let inserted = thread
            .atomic(|tx| {
                displaced = None;
                displaced =
                    self.shards[shard].put_in(key, value, &mut value_slot, &mut node_slot, tx)?;
                if displaced.is_none() {
                    let linked = self.indexes[shard].insert_in(key, 0, &mut tower_slot, tx)?;
                    debug_assert!(linked, "key {key} was in the index but not the shard");
                }
                Ok(displaced.is_none())
            })
            .expect("put is never cancelled");
        // Insert or degraded overwrite, the committed attempt stored the
        // value word.
        value_slot.mark_published();
        if inserted {
            node_slot.mark_published();
            tower_slot.mark_published();
            None
        } else {
            let displaced = displaced.take().expect("overwrite displaced a word");
            let old = displaced.value();
            displaced.retire(thread.epoch());
            Some(old)
        }
    }

    /// Removes `key`, returning the value it held.  One full transaction
    /// unlinks the key from the owning shard's hash map **and** its ordered
    /// index together, preserving the index invariant; the node and its
    /// value cell are then retired through the epoch collector.
    pub fn del(&self, key: u64, thread: &mut S::Thread) -> Option<Value> {
        self.del_routed(self.router.route(key), key, thread)
    }

    /// [`ShardedKv::del`] with the shard already resolved (see
    /// [`ShardedKv::put_routed`]).
    pub(crate) fn del_routed(
        &self,
        shard: usize,
        key: u64,
        thread: &mut S::Thread,
    ) -> Option<Value> {
        debug_assert_eq!(shard, self.router.route(key));
        let mut removed = None;
        let mut retired_tower = None;
        let found = thread
            .atomic(|tx| {
                removed = None;
                retired_tower = None;
                let Some((value, node)) = self.shards[shard].del_in(key, tx)? else {
                    return Ok(false);
                };
                removed = Some((value, node));
                retired_tower = self.indexes[shard].remove_in(key, tx)?;
                debug_assert!(
                    retired_tower.is_some(),
                    "key {key} was in the shard but not the index"
                );
                Ok(true)
            })
            .expect("del is never cancelled");
        if !found {
            return None;
        }
        let (value, node) = removed.take().expect("committed delete captured a node");
        let out = value.value();
        value.retire(thread.epoch());
        node.retire(thread);
        if let Some(tower) = retired_tower {
            tower.retire(thread);
        }
        Some(out)
    }

    /// Atomically reads every key in `keys` inside **one full transaction**
    /// spanning the owning shards — all values belong to a single
    /// serialization point.  Returns `Ok(None)` if any key is absent, or
    /// [`KvError::TooManyKeys`] beyond [`MAX_RMW_KEYS`] keys.
    ///
    /// For large read sets where per-key (rather than cross-key) atomicity
    /// suffices, use the batched [`ShardedKv::multi_get`], which has no key
    /// limit.
    pub fn multi_get_atomic(
        &self,
        keys: &[u64],
        thread: &mut S::Thread,
    ) -> Result<Option<Vec<Value>>, KvError> {
        if keys.len() > MAX_RMW_KEYS {
            return Err(KvError::TooManyKeys { len: keys.len() });
        }
        Ok(thread
            .atomic(|tx| {
                let mut vals = Vec::with_capacity(keys.len());
                for &key in keys {
                    match self.shard(key).read_in(key, tx)? {
                        Some(v) => vals.push(v),
                        None => return Ok(None),
                    }
                }
                Ok(Some(vals))
            })
            .expect("multi_get_atomic is never cancelled"))
    }

    /// Atomically reads every key in `keys`, lets `update` rewrite the
    /// values in place, and writes them back — one full transaction spanning
    /// the owning shards, serializable with all concurrent operations.
    ///
    /// Returns `Ok(false)` (writing nothing) if any key is absent,
    /// [`KvError::TooManyKeys`] beyond [`MAX_RMW_KEYS`] keys, and
    /// [`KvError::ValueTooLarge`] (writing nothing) if `update` produces a
    /// value beyond [`MAX_VALUE_LEN`].  `update` may be invoked multiple
    /// times (once per conflict retry) and must be pure with respect to
    /// everything but its argument.
    pub fn rmw<F>(
        &self,
        keys: &[u64],
        mut update: F,
        thread: &mut S::Thread,
    ) -> Result<bool, KvError>
    where
        F: FnMut(&mut [Value]),
    {
        if keys.len() > MAX_RMW_KEYS {
            return Err(KvError::TooManyKeys { len: keys.len() });
        }
        let mut slots: Vec<ValueSlot> = (0..keys.len()).map(|_| ValueSlot::new()).collect();
        let mut displaced: Vec<RetiredValue> = Vec::with_capacity(keys.len());
        let mut oversize: Option<usize> = None;
        let outcome = thread.atomic(|tx| {
            displaced.clear();
            let mut vals = Vec::with_capacity(keys.len());
            for &key in keys {
                match self.shard(key).read_in(key, tx)? {
                    Some(v) => vals.push(v),
                    None => return Ok(false),
                }
            }
            update(&mut vals);
            if let Some(v) = vals.iter().find(|v| v.len() > MAX_VALUE_LEN) {
                oversize = Some(v.len());
                return tx.cancel();
            }
            for ((slot, &key), val) in slots.iter_mut().zip(keys).zip(&vals) {
                // The key was read above inside this same transaction, so
                // the write cannot miss (opacity keeps the chain stable for
                // the duration of the attempt).
                let old = self.shard(key).write_in(key, val, slot, tx)?;
                debug_assert!(old.is_some(), "key {key} vanished within the transaction");
                displaced.extend(old);
            }
            Ok(true)
        });
        match outcome {
            None => Err(KvError::ValueTooLarge {
                len: oversize.expect("cancel implies an oversized value"),
            }),
            Some(false) => Ok(false),
            Some(true) => {
                for slot in &mut slots {
                    slot.mark_published();
                }
                for old in displaced.drain(..) {
                    old.retire(thread.epoch());
                }
                Ok(true)
            }
        }
    }

    /// Adds `delta` to every key in `keys`, atomically across shards,
    /// interpreting each value as a [`Value::as_u64`] little-endian counter
    /// (and writing back the 8-byte encoding).  Returns `Ok(false)` (writing
    /// nothing) if any key is absent.
    pub fn rmw_add(
        &self,
        keys: &[u64],
        delta: u64,
        thread: &mut S::Thread,
    ) -> Result<bool, KvError> {
        self.rmw(
            keys,
            |vals| {
                for v in vals {
                    *v = Value::from_u64(v.as_u64().wrapping_add(delta));
                }
            },
            thread,
        )
    }

    /// Returns up to `limit` `(key, value)` pairs with `key >= start`, in
    /// ascending key order — the YCSB-E scan shape.
    ///
    /// One full transaction fans out over every shard's ordered index,
    /// reads each candidate value through the owning hash shard, and
    /// merge-sorts the per-shard runs.  The result is an **atomically
    /// consistent snapshot**: it is serializable with every concurrent
    /// operation, including multi-key [`ShardedKv::rmw`] — a scan can never
    /// observe a torn cross-shard update (the lock-free baseline's scan,
    /// by contrast, offers no such guarantee).  Value payloads are copied
    /// out inside the transaction, so the bytes are exactly the committed
    /// bytes at the scan's serialization point.
    ///
    /// # Examples
    ///
    /// ```
    /// use spectm::{Stm, variants::ValShort};
    /// use spectm_ds::ApiMode;
    /// use spectm_kv::{ShardedKv, Value};
    ///
    /// let stm = ValShort::new();
    /// let store = ShardedKv::new(&stm, 4, 64, ApiMode::Short);
    /// let mut thread = store.register();
    /// for key in 0..10u64 {
    ///     store.put(key, &(key * 100).to_le_bytes(), &mut thread).unwrap();
    /// }
    /// let run = store.scan(6, 3, &mut thread);
    /// assert_eq!(
    ///     run.iter().map(|(k, v)| (*k, v.as_u64())).collect::<Vec<_>>(),
    ///     vec![(6, 600), (7, 700), (8, 800)],
    /// );
    /// ```
    pub fn scan(&self, start: u64, limit: usize, thread: &mut S::Thread) -> Vec<(u64, Value)> {
        if limit == 0 {
            return Vec::new();
        }
        thread
            .atomic(|tx| {
                let mut runs = Vec::with_capacity(self.shards.len());
                for (index, shard) in self.indexes.iter().zip(&self.shards) {
                    // Each shard may contribute up to `limit` of the merged
                    // result, so every run must be that deep.
                    let keys = index.collect_tail_keys_in(start, limit, tx)?;
                    runs.push(Self::read_run(shard, keys, tx)?);
                }
                Ok(Self::merge_runs(runs, limit))
            })
            .expect("scan is never cancelled")
    }

    /// Returns every `(key, value)` pair with `start <= key < end`, in
    /// ascending key order, as one atomically consistent snapshot (see
    /// [`ShardedKv::scan`] for the guarantees).
    pub fn range(&self, start: u64, end: u64, thread: &mut S::Thread) -> Vec<(u64, Value)> {
        if start >= end {
            return Vec::new();
        }
        thread
            .atomic(|tx| {
                let mut runs = Vec::with_capacity(self.shards.len());
                for (index, shard) in self.indexes.iter().zip(&self.shards) {
                    let keys = index.collect_keys_in(start, end, usize::MAX, tx)?;
                    runs.push(Self::read_run(shard, keys, tx)?);
                }
                Ok(Self::merge_runs(runs, usize::MAX))
            })
            .expect("range is never cancelled")
    }

    /// Reads the value for every key of one per-shard run inside the scan's
    /// transaction.  The index invariant guarantees each key is present in
    /// the hash shard at the transaction's serialization point.
    fn read_run(
        shard: &StmHashMap<S>,
        keys: Vec<u64>,
        tx: &mut spectm::FullTx<'_, S::Thread>,
    ) -> spectm::TxResult<Vec<(u64, Value)>> {
        let mut run = Vec::with_capacity(keys.len());
        for key in keys {
            let value = shard.read_in(key, tx)?;
            debug_assert!(value.is_some(), "index key {key} missing from its shard");
            if let Some(value) = value {
                run.push((key, value));
            }
        }
        Ok(run)
    }

    /// Merges sorted per-shard runs into one ascending result of at most
    /// `limit` pairs.  Shards partition the key space, so keys are unique
    /// across runs and a plain k-way smallest-head merge suffices.
    fn merge_runs(mut runs: Vec<Vec<(u64, Value)>>, limit: usize) -> Vec<(u64, Value)> {
        let total: usize = runs.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total.min(limit));
        let mut cursors = vec![0usize; runs.len()];
        while out.len() < limit {
            let mut best: Option<usize> = None;
            for (i, run) in runs.iter().enumerate() {
                if cursors[i] < run.len() {
                    let candidate = run[cursors[i]].0;
                    let beats = match best {
                        None => true,
                        Some(b) => candidate < runs[b][cursors[b]].0,
                    };
                    if beats {
                        best = Some(i);
                    }
                }
            }
            let Some(i) = best else { break };
            let (key, value) = std::mem::replace(&mut runs[i][cursors[i]], (0, Value::new(&[])));
            out.push((key, value));
            cursors[i] += 1;
        }
        out
    }

    /// Collects every `(key, value)` pair across all shards
    /// (non-transactional; only meaningful when no concurrent operations
    /// run).
    pub fn quiescent_snapshot(&self) -> Vec<(u64, Value)> {
        let mut out: Vec<(u64, Value)> = self
            .shards
            .iter()
            .flat_map(|s| s.quiescent_snapshot())
            .collect();
        out.sort_unstable();
        out
    }

    /// Merges the per-shard occupancy and probe-length statistics into one
    /// [`MapStats`] (non-transactional; only meaningful when no concurrent
    /// operations run).
    pub fn stats(&self) -> MapStats {
        let mut stats = MapStats::default();
        for shard in &self.shards {
            stats.merge(&shard.stats());
        }
        stats
    }

    /// Checks the index invariant at quiescence: every shard's index holds
    /// exactly the keys of its hash map.  Panics on violation (test
    /// support; non-transactional).
    pub fn assert_index_consistent(&self) {
        for (i, (index, shard)) in self.indexes.iter().zip(&self.shards).enumerate() {
            let index_keys = index.quiescent_snapshot();
            let shard_keys: Vec<u64> = shard
                .quiescent_snapshot()
                .into_iter()
                .map(|(k, _)| k)
                .collect();
            assert_eq!(
                index_keys, shard_keys,
                "shard {i}: ordered index diverged from the hash map"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectm::variants::{OrecFullG, ValShort};
    use std::collections::BTreeMap;

    #[test]
    fn routes_and_roundtrips_across_shards() {
        let stm = ValShort::new();
        let store = ShardedKv::new(&stm, 4, 16, ApiMode::Short);
        let mut t = store.register();
        let mut oracle = BTreeMap::new();
        for k in 0..500u64 {
            // Lengths sweep the inline and out-of-line regimes.
            let bytes: Vec<u8> = (0..(k % 23) as u8).map(|i| i ^ k as u8).collect();
            assert_eq!(store.put(k, &bytes, &mut t).unwrap(), None);
            oracle.insert(k, Value::from(bytes));
        }
        for k in (0..500u64).step_by(3) {
            assert_eq!(store.del(k, &mut t), oracle.remove(&k));
        }
        for k in 0..500u64 {
            assert_eq!(store.get(k, &mut t), oracle.get(&k).cloned());
        }
        assert_eq!(
            store.quiescent_snapshot(),
            oracle.into_iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn rmw_is_atomic_and_total_on_absence() {
        let stm = OrecFullG::new();
        let store = ShardedKv::new(&stm, 4, 16, ApiMode::Full);
        let mut t = store.register();
        store.put(10, &100u64.to_le_bytes(), &mut t).unwrap();
        store.put(11, &200u64.to_le_bytes(), &mut t).unwrap();
        // Absent key: nothing is written, even to the present keys.
        assert!(!store.rmw_add(&[10, 11, 999], 1, &mut t).unwrap());
        assert_eq!(store.get(10, &mut t).unwrap().as_u64(), 100);
        assert_eq!(store.get(11, &mut t).unwrap().as_u64(), 200);
        // All present: everything is written.
        assert!(store.rmw_add(&[10, 11], 1, &mut t).unwrap());
        assert_eq!(
            store.multi_get_atomic(&[10, 11], &mut t).unwrap(),
            Some(vec![Value::from_u64(101), Value::from_u64(201)])
        );
        assert_eq!(store.multi_get_atomic(&[10, 999], &mut t).unwrap(), None);
    }

    #[test]
    fn rmw_handles_duplicate_keys_and_resizing_values() {
        let stm = ValShort::new();
        let store = ShardedKv::new(&stm, 2, 16, ApiMode::Short);
        let mut t = store.register();
        store.put(5, &10u64.to_le_bytes(), &mut t).unwrap();
        // Both slots read the same cell; the second write wins.
        assert!(store
            .rmw(
                &[5, 5],
                |vals| {
                    vals[0] = Value::from_u64(vals[0].as_u64() + 1);
                    vals[1] = Value::from_u64(vals[1].as_u64() + 2);
                },
                &mut t
            )
            .unwrap());
        assert_eq!(store.get(5, &mut t).unwrap().as_u64(), 12);
        // An rmw may change a value's length (here: to an out-of-line
        // payload and back).
        assert!(store
            .rmw(&[5], |vals| vals[0] = Value::new(&[7u8; 100]), &mut t)
            .unwrap());
        assert_eq!(store.get(5, &mut t), Some(Value::new(&[7u8; 100])));
        assert!(store
            .rmw(&[5], |vals| vals[0] = Value::new(b"x"), &mut t)
            .unwrap());
        assert_eq!(store.get(5, &mut t), Some(Value::new(b"x")));
    }

    #[test]
    fn scan_merges_shard_runs_in_key_order() {
        let stm = ValShort::new();
        let store = ShardedKv::new(&stm, 4, 16, ApiMode::Short);
        let mut t = store.register();
        // Keys land on different shards (the router mixes bits), so runs
        // must interleave in the merge.
        for k in 0..64u64 {
            store.put(k, &(k * 2).to_le_bytes(), &mut t).unwrap();
        }
        let run = store.scan(10, 7, &mut t);
        let got: Vec<(u64, u64)> = run.iter().map(|(k, v)| (*k, v.as_u64())).collect();
        let expect: Vec<(u64, u64)> = (10..17).map(|k| (k, k * 2)).collect();
        assert_eq!(got, expect);
        assert_eq!(store.scan(60, 100, &mut t).len(), 4, "tail clamps");
        assert!(store.scan(64, 5, &mut t).is_empty());
        assert!(store.scan(0, 0, &mut t).is_empty());
        assert_eq!(store.range(20, 25, &mut t).len(), 5);
        assert!(store.range(25, 20, &mut t).is_empty());
    }

    #[test]
    fn del_and_reinsert_keep_the_index_in_lockstep() {
        let stm = ValShort::new();
        let store = ShardedKv::new(&stm, 2, 16, ApiMode::Short);
        let mut t = store.register();
        for k in 0..32u64 {
            store.put(k, &k.to_le_bytes(), &mut t).unwrap();
        }
        for k in (0..32u64).step_by(2) {
            assert_eq!(store.del(k, &mut t), Some(Value::from_u64(k)));
        }
        assert_eq!(store.del(2, &mut t), None, "double delete");
        let run = store.scan(0, usize::MAX, &mut t);
        assert_eq!(run.len(), 16);
        assert!(run.iter().all(|(k, _)| k % 2 == 1), "deleted keys scanned");
        // Re-insert through the put slow path and observe them again.
        for k in (0..32u64).step_by(2) {
            assert_eq!(
                store.put(k, &(k + 100).to_le_bytes(), &mut t).unwrap(),
                None
            );
        }
        assert_eq!(store.scan(0, usize::MAX, &mut t).len(), 32);
        store.assert_index_consistent();
    }

    #[test]
    fn scan_observes_rmw_writes_atomically() {
        let stm = ValShort::new();
        let store = ShardedKv::new(&stm, 4, 16, ApiMode::Short);
        let mut t = store.register();
        store.put(1, &100u64.to_le_bytes(), &mut t).unwrap();
        store.put(2, &200u64.to_le_bytes(), &mut t).unwrap();
        assert!(store
            .rmw(
                &[1, 2],
                |v| {
                    v[0] = Value::from_u64(v[0].as_u64() - 40);
                    v[1] = Value::from_u64(v[1].as_u64() + 40);
                },
                &mut t
            )
            .unwrap());
        let got: Vec<(u64, u64)> = store
            .scan(0, 8, &mut t)
            .iter()
            .map(|(k, v)| (*k, v.as_u64()))
            .collect();
        assert_eq!(got, vec![(1, 60), (2, 240)]);
    }

    #[test]
    fn rmw_rejects_oversized_key_sets_and_values() {
        let stm = ValShort::new();
        let store = ShardedKv::new(&stm, 2, 16, ApiMode::Short);
        let mut t = store.register();
        let keys = [0u64; MAX_RMW_KEYS + 1];
        assert_eq!(
            store.rmw_add(&keys, 1, &mut t),
            Err(KvError::TooManyKeys {
                len: MAX_RMW_KEYS + 1
            })
        );
        assert_eq!(
            store.multi_get_atomic(&keys, &mut t),
            Err(KvError::TooManyKeys {
                len: MAX_RMW_KEYS + 1
            })
        );
        // An rmw whose closure inflates a value beyond the cap writes
        // nothing.
        store.put(3, b"ok", &mut t).unwrap();
        assert_eq!(
            store.rmw(
                &[3],
                |vals| vals[0] = Value::from(vec![0u8; MAX_VALUE_LEN + 1]),
                &mut t
            ),
            Err(KvError::ValueTooLarge {
                len: MAX_VALUE_LEN + 1
            })
        );
        assert_eq!(store.get(3, &mut t), Some(Value::new(b"ok")));
        // Oversized puts are rejected at the store surface too.
        assert_eq!(
            store.put(3, &vec![0u8; MAX_VALUE_LEN + 1], &mut t),
            Err(KvError::ValueTooLarge {
                len: MAX_VALUE_LEN + 1
            })
        );
    }
}
