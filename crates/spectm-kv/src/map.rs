//! The per-shard transactional hash map.
//!
//! [`StmHashMap`] stores `u64 -> bytes` pairs in **cache-line bulk-chaining
//! buckets** (the Pelikan/Segcache hashtable layout adapted to STM words).
//! The table is a flat array of *home buckets*, each 8 contiguous
//! transactional words: [`BUCKET_SLOTS`] (7) *item words* plus one *stat
//! word*.  An item word packs a node pointer with a 5-bit **hash tag**
//! (bits 1..=5, free because nodes are 64-byte aligned), so a probe
//! compares tags before dereferencing and mismatched slots cost no cache
//! miss.  The stat word links to a heap-allocated *overflow bucket* once a
//! bucket's 8th key arrives (512-byte aligned, freeing bits 1..=8 of the
//! link as the per-bucket **frequency byte** the eviction policy consults —
//! saturating bump on hit, periodic halving by the reclaimer; bit 0 stays
//! clear for the `val` layout's lock bit in both word kinds).  A zero item
//! word is an empty slot; a stat word with no pointer bits ends the chain.
//! Each `Node` holds the immutable key and two transactional cells: the
//! **value word** (inline payload or [`crate::ValueCell`] pointer; see
//! [`crate::value`]) and the **deadline word** (the key's expiry time in
//! milliseconds shifted past the lock bit; zero = never expires — see
//! `encode_deadline`).  The map stores deadlines without interpreting
//! them; expiry policy (lazy expiry on read, background sweeps, byte-budget
//! eviction) lives in [`crate::ShardedKv`].
//!
//! Every slot is still a single STM word, so the short-transaction
//! protocols, orec mapping, and the value-word ownership contract carry
//! over unchanged from the chained layout; only the *shape* of a probe
//! changed — from a pointer chase per key to a linear scan of one (rarely
//! two) cache lines.
//!
//! Operations exist in two shapes, selected by [`ApiMode`]:
//!
//! * **Short** (the SpecTM usage) — the slot scan uses single-location
//!   reads with tag filtering; `get` validates (slot, value, deadline) with
//!   a three-location read-only transaction; `put` on an existing key is a
//!   three-location read-write transaction; `del` clears the slot and
//!   captures the value and deadline in a three-location read-write
//!   transaction; a fresh
//!   insert is a **combined RO/RW transaction** over all 8 words of the
//!   home bucket — 7 item words and the stat word validated read-only
//!   (proving the key absent from the whole single-bucket chain at the
//!   linearization point), the claimed slot upgraded to read-write.  When
//!   the chain has already spilled into an overflow bucket, exclusion
//!   would need more than [`spectm::MAX_SHORT`] locations, so the insert
//!   falls back to a full transaction — the paper's own escape hatch for
//!   transactions that outgrow the short API.
//! * **Full** (the BaseTM usage) — each operation is one traditional
//!   transaction over the bucket walk.  [`ApiMode::Fine`] is treated as
//!   `Full` here; the fine-grained ablation only exists for the paper's
//!   figure 6 sets.
//!
//! [`StmHashMap::read_in`] / [`StmHashMap::write_in`] run the same bucket
//! walks *inside a caller-provided full transaction*, which is what lets
//! [`crate::ShardedKv::rmw`] compose an atomic multi-key update across
//! shards.  Deleted nodes are retired through the STM's epoch collector;
//! overflow buckets are **write-once** (linked, never unlinked, freed only
//! in the map's own `Drop`), so traversals never race bucket reclamation.
//!
//! **Value-word ownership.**  A value word is owned by the map while it is
//! stored in a live node, and by exactly one thread the moment a committed
//! transaction displaces it — the overwriter that replaced it, or the
//! deleter that cleared its slot.  That owner (and nobody else) reads the
//! old payload and defers the cell's free through the epoch collector, so
//! concurrent readers copying bytes out under an epoch pin are always safe.
//! Nodes therefore never free value words themselves, except in
//! [`StmHashMap`]'s own `Drop`, where access is exclusive.
//!
//! **Linearizability of misses.**  A slot scan that finds no matching tag
//! uses only per-location linearizable reads.  A key that is continuously
//! present occupies one fixed slot (no operation moves a key between slots
//! without an intervening delete, i.e. an instant of absence), so a scan
//! that read every slot of the chain without finding the key witnessed a
//! moment at which the key was absent — the miss linearizes there.

use spectm::{FullTx, Stm, StmThread, TxResult, Word};
use spectm_ds::ApiMode;

use crate::value::{decode_value, free_value, retire_value};
use crate::{KvError, RetiredValue, Value, ValueSlot, MAX_VALUE_LEN};

/// Item words per bucket (the 8th word of the cache line is the stat word).
pub const BUCKET_SLOTS: usize = 7;

/// Bits 1..=5 of an item word: the hash tag stored beside the node pointer
/// (bit 0 stays clear for the `val` layout's lock bit).
const TAG_MASK: Word = 0x3E;

/// Mask recovering the node pointer from an item word.
const ITEM_PTR_MASK: Word = !(TAG_MASK | 1);

/// Bits 1..=8 of a stat word: the per-bucket frequency-counter byte the
/// eviction policy reads (saturating bump on hit, halved by the reclaimer's
/// periodic decay; preserved by chain updates).
const FREQ_MASK: Word = 0x1FE;

/// Position of the frequency byte within a stat word (bit 0 stays clear
/// for the `val` layout's lock bit).
const FREQ_SHIFT: u32 = 1;

/// Saturation ceiling of the 8-bit frequency counter.
const FREQ_MAX: Word = 0xFF;

/// Mask recovering the overflow-bucket pointer from a stat word.
const CHAIN_PTR_MASK: Word = !(FREQ_MASK | 1);

/// Shift applied to a deadline (milliseconds on the store's clock) to form
/// a **deadline word**: bit 0 stays clear for the `val` layout's lock bit,
/// and the all-zero word means "never expires".
pub(crate) const DEADLINE_SHIFT: u32 = 1;

/// Keys budgeted per bucket when sizing from a capacity hint: 7 slots at
/// the ~0.75 target load factor.
const CAPACITY_PER_BUCKET: usize = 5;

// Compile-time mirror of the `bit-layout` stmlint rule: the tag and
// frequency fields leave the lock bit clear and are disjoint from the
// pointer bits they share a word with.  Alignment sufficiency (which
// depends on the instantiated `S::Cell`) is checked per-instantiation by
// `StmHashMap::LAYOUT_OK` below.
const _: () = {
    assert!(TAG_MASK & 1 == 0, "tag bits overlap the lock bit");
    assert!(FREQ_MASK & 1 == 0, "frequency bits overlap the lock bit");
    assert!(TAG_MASK & ITEM_PTR_MASK == 0, "tag overlaps node pointer");
    assert!(
        FREQ_MASK & CHAIN_PTR_MASK == 0,
        "freq overlaps chain pointer"
    );
    assert!(
        ITEM_PTR_MASK & 1 == 0,
        "item pointer mask exposes the lock bit"
    );
    assert!(
        CHAIN_PTR_MASK & 1 == 0,
        "chain pointer mask exposes the lock bit"
    );
    assert!(
        FREQ_MASK == FREQ_MAX << FREQ_SHIFT,
        "frequency byte must fill the frequency mask exactly"
    );
    assert!(
        DEADLINE_SHIFT >= 1,
        "deadline words must keep the lock bit clear"
    );
};

/// Encodes an absolute expiry time (milliseconds on the store's clock) as a
/// deadline word.  Zero means "never expires"; very large deadlines clamp
/// rather than shifting into the lock bit.
#[inline]
pub(crate) fn encode_deadline(deadline_ms: u64) -> Word {
    (deadline_ms.min((Word::MAX >> DEADLINE_SHIFT) as u64) as Word) << DEADLINE_SHIFT
}

/// Whether a deadline word has passed at `now_ms` (the zero word never
/// does).
#[inline]
pub(crate) fn deadline_expired(deadline: Word, now_ms: u64) -> bool {
    deadline != 0 && ((deadline >> DEADLINE_SHIFT) as u64) <= now_ms
}

/// A chain node: the immutable key plus two transactional words — the value
/// word and the deadline word (zero for immortal items; see
/// [`encode_deadline`]).  64-byte alignment keeps bits 0..=5 of its address
/// clear, making room for the tag bits packed into the item word.
#[repr(align(64))]
struct Node<S: Stm> {
    key: u64,
    value: S::Cell,
    deadline: S::Cell,
}

/// One 64-byte bucket: 7 item words and a stat word, contiguous so a probe
/// touches a single cache line (for word-sized cells; layouts with fatter
/// cells keep the same shape over more lines).
#[repr(align(64))]
struct Bucket<S: Stm> {
    item: [S::Cell; BUCKET_SLOTS],
    stat: S::Cell,
}

/// A heap-allocated overflow bucket.  The 512-byte alignment is what frees
/// the low 9 bits of the chain pointer for the lock bit and the reserved
/// frequency byte.
#[repr(align(512))]
struct OverflowBucket<S: Stm> {
    bucket: Bucket<S>,
}

fn new_bucket<S: Stm>(stm: &S) -> Bucket<S> {
    Bucket {
        item: std::array::from_fn(|_| stm.new_cell(0)),
        stat: stm.new_cell(0),
    }
}

/// A candidate found by a slot scan: the cell it was read from, the exact
/// word that cell held, and the node behind the pointer.  The word ties the
/// node to its slot — every mutation protocol re-reads the cell and bails
/// if it no longer holds `word`.
struct Candidate<'a, S: Stm> {
    cell: &'a S::Cell,
    word: Word,
    node: &'a Node<S>,
}

/// Outcome of one attempt at the short update-in-place protocol.
enum ShortUpdate {
    /// The value word was overwritten; holds the displaced value word (now
    /// owned by this thread) and the deadline word it was stored under.
    Updated(Word, Word),
    /// The slot no longer holds the candidate (the key was deleted, and
    /// possibly reinserted elsewhere); search again.
    Gone,
    /// Validation or commit failed; search again and retry.
    Retry,
}

/// Reusable allocation slot for [`StmHashMap::put_in`].
///
/// A full transaction's body may run several times (once per conflict
/// retry); the slot keeps the speculatively allocated node — and, when the
/// home bucket is full, the speculative overflow bucket — alive across
/// retries so each logical insert allocates at most once.  After the
/// enclosing [`spectm::StmThread::atomic`] **commits an attempt in which
/// `put_in` returned `None`** (a fresh insert), the caller must call
/// [`NodeSlot::mark_published`]; otherwise dropping the slot frees the
/// never-published allocations.
pub struct NodeSlot<S: Stm> {
    ptr: *mut Node<S>,
    chain: *mut OverflowBucket<S>,
    /// Whether the most recent attempt linked `chain` into the map.  The
    /// committed attempt is always the last one to run, so this flag is
    /// accurate at `mark_published` time.
    chain_used: bool,
}

impl<S: Stm> NodeSlot<S> {
    /// Creates an empty slot.
    pub fn new() -> Self {
        Self {
            ptr: std::ptr::null_mut(),
            chain: std::ptr::null_mut(),
            chain_used: false,
        }
    }

    /// Declares the slot's allocations published: a transaction in which
    /// [`StmHashMap::put_in`] returned `None` has committed, so the node
    /// (and the overflow bucket, if that attempt linked one) is now owned
    /// by the map.
    pub fn mark_published(&mut self) {
        self.ptr = std::ptr::null_mut();
        if self.chain_used {
            self.chain = std::ptr::null_mut();
        }
    }
}

impl<S: Stm> Default for NodeSlot<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Stm> Drop for NodeSlot<S> {
    fn drop(&mut self) {
        if !self.ptr.is_null() {
            // SAFETY: per the contract above, a non-null pointer at drop time
            // means the node was never published.  Its value word is managed
            // by the companion `ValueSlot` (nodes never own value words), so
            // only the node box is freed here.
            drop(unsafe { Box::from_raw(self.ptr) });
        }
        if !self.chain.is_null() {
            // SAFETY: as above — never linked into any chain.
            drop(unsafe { Box::from_raw(self.chain) });
        }
    }
}

/// A node unlinked by [`StmHashMap::del_in`], awaiting epoch retirement.
///
/// After the enclosing transaction **commits**, call [`RetiredNode::retire`]
/// to hand the node to the epoch collector.  If the transaction aborted or
/// was retried, simply drop the value (the node is still linked; dropping
/// does nothing).
#[must_use = "call retire() after the transaction commits"]
pub struct RetiredNode<S: Stm> {
    ptr: *mut Node<S>,
}

impl<S: Stm> RetiredNode<S> {
    /// Defers destruction of the unlinked node through the thread's epoch
    /// collector.  Only call after the removing transaction committed.
    pub fn retire(self, thread: &mut S::Thread) {
        let pin = thread.epoch().pin();
        // SAFETY: the committed transaction cleared the node's slot, so it
        // is unreachable for new operations; pinned readers are protected
        // by the epoch.  The node's value word is retired separately by the
        // companion `RetiredValue`.
        unsafe { pin.defer_drop(self.ptr) };
    }
}

/// Occupancy and probe-length statistics for one [`StmHashMap`], collected
/// quiescently by [`StmHashMap::stats`] (merge shards with
/// [`MapStats::merge`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MapStats {
    /// Number of keys present.
    pub keys: usize,
    /// Number of home buckets (the flat array).
    pub home_buckets: usize,
    /// Number of linked overflow buckets.
    pub overflow_buckets: usize,
    /// Occupied item slots in home buckets (excludes overflow slots).
    pub occupied_home_slots: usize,
    /// `probe_histogram[d]` counts the keys whose lookup touches `d + 1`
    /// buckets (home bucket = depth 1).
    pub probe_histogram: Vec<usize>,
}

impl MapStats {
    /// Keys per home-bucket slot: `keys / (home_buckets * BUCKET_SLOTS)`.
    pub fn load_factor(&self) -> f64 {
        if self.home_buckets == 0 {
            return 0.0;
        }
        self.keys as f64 / (self.home_buckets * BUCKET_SLOTS) as f64
    }

    /// Fraction of keys whose lookup touches at most `buckets` buckets
    /// (`1.0` for an empty map).
    pub fn fraction_within(&self, buckets: usize) -> f64 {
        if self.keys == 0 {
            return 1.0;
        }
        let within: usize = self.probe_histogram.iter().take(buckets).sum();
        within as f64 / self.keys as f64
    }

    /// Longest probe, in buckets (0 for an empty map).
    pub fn max_probe(&self) -> usize {
        self.probe_histogram.len()
    }

    /// Accumulates `other` into `self` (used to merge per-shard stats).
    pub fn merge(&mut self, other: &MapStats) {
        self.keys += other.keys;
        self.home_buckets += other.home_buckets;
        self.overflow_buckets += other.overflow_buckets;
        self.occupied_home_slots += other.occupied_home_slots;
        if self.probe_histogram.len() < other.probe_histogram.len() {
            self.probe_histogram.resize(other.probe_histogram.len(), 0);
        }
        for (d, n) in other.probe_histogram.iter().enumerate() {
            self.probe_histogram[d] += n;
        }
    }
}

impl std::fmt::Display for MapStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "keys={} load={:.3} home_buckets={} overflow_buckets={} probes<=1 {:.1}% probes<=2 {:.1}%",
            self.keys,
            self.load_factor(),
            self.home_buckets,
            self.overflow_buckets,
            100.0 * self.fraction_within(1),
            100.0 * self.fraction_within(2),
        )
    }
}

/// A transactional hash map from `u64` keys to byte values (at most
/// [`MAX_VALUE_LEN`] bytes each).
///
/// # Examples
///
/// ```
/// use spectm::{Stm, variants::ValShort};
/// use spectm_ds::ApiMode;
/// use spectm_kv::{StmHashMap, Value};
///
/// let stm = ValShort::new();
/// let map = StmHashMap::new(&stm, 64, ApiMode::Short);
/// let mut thread = stm.register();
/// assert_eq!(map.put(17, b"alpha", &mut thread).unwrap(), None);
/// assert_eq!(map.get(17, &mut thread), Some(Value::new(b"alpha")));
/// assert_eq!(
///     map.put(17, b"a longer, out-of-line value", &mut thread).unwrap(),
///     Some(Value::new(b"alpha"))
/// );
/// assert_eq!(
///     map.del(17, &mut thread),
///     Some(Value::new(b"a longer, out-of-line value"))
/// );
/// assert_eq!(map.get(17, &mut thread), None);
/// ```
pub struct StmHashMap<S: Stm> {
    stm: S,
    buckets: Vec<Bucket<S>>,
    mask: u64,
    mode: ApiMode,
}

// SAFETY: raw node pointers inside cells follow the same discipline as the
// spectm-ds structures: published by commit, retired via epochs after the
// slot is cleared, dereferenced only under an epoch pin.  Overflow buckets
// are write-once and freed only in `Drop`.  Value cells follow the
// ownership rule in the module docs.
unsafe impl<S: Stm> Send for StmHashMap<S> {}
// SAFETY: as above.
unsafe impl<S: Stm> Sync for StmHashMap<S> {}

#[inline]
fn hash_key(key: u64) -> u64 {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// The 5-bit hash tag, drawn from the top bits of the hash so it stays
/// independent of the bucket-index bits (17..), already shifted into tag
/// position (bits 1..=5).
#[inline]
fn tag_of(h: u64) -> Word {
    (((h >> 59) as Word) << 1) & TAG_MASK
}

#[inline]
pub(crate) fn check_len(value: &[u8]) -> Result<(), KvError> {
    if value.len() > MAX_VALUE_LEN {
        Err(KvError::ValueTooLarge { len: value.len() })
    } else {
        Ok(())
    }
}

impl<S: Stm> StmHashMap<S> {
    /// Per-instantiation layout checks, forced from [`Self::new`]: the node
    /// and overflow-bucket alignments must clear at least the address bits
    /// the tag and frequency fields are packed into, and for word-sized
    /// cells a home bucket must be exactly one cache line.
    const LAYOUT_OK: () = {
        assert!(std::mem::align_of::<Node<S>>() as Word > TAG_MASK);
        assert!(std::mem::align_of::<OverflowBucket<S>>() as Word > FREQ_MASK);
        assert!(std::mem::align_of::<Bucket<S>>() >= 64);
        if std::mem::size_of::<S::Cell>() == std::mem::size_of::<Word>() {
            assert!(std::mem::size_of::<Bucket<S>>() == 64);
        }
    };

    /// Creates a map sized for about `capacity` keys (a hint, not a limit:
    /// the bucket array is fixed at `capacity / 5` buckets, rounded up to a
    /// power of two, targeting the ~0.75 load factor at which overflow
    /// chains stay rare; past the hint the map keeps growing through
    /// overflow buckets), driven through the given [`ApiMode`].
    pub fn new(stm: &S, capacity: usize, mode: ApiMode) -> Self
    where
        S: Clone,
    {
        let () = Self::LAYOUT_OK;
        let len = capacity
            .div_ceil(CAPACITY_PER_BUCKET)
            .next_power_of_two()
            .max(1);
        Self {
            stm: stm.clone(),
            buckets: (0..len).map(|_| new_bucket(stm)).collect(),
            mask: len as u64 - 1,
            mode,
        }
    }

    /// The API mode this instance drives.
    pub fn mode(&self) -> ApiMode {
        self.mode
    }

    /// Number of home buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    #[inline]
    fn home_bucket(&self, h: u64) -> &Bucket<S> {
        &self.buckets[((h >> 17) & self.mask) as usize]
    }

    /// Hints the CPU to pull `key`'s home bucket into cache — the batched
    /// pipeline issues this a few operations ahead of the dispatch so the
    /// probe's slot scan overlaps earlier operations (`crate::batch`).
    /// With the flat bucket layout the one prefetched line covers the
    /// entire probe for ~95% of keys at the target load factor.  Purely
    /// advisory; a no-op on architectures without a prefetch primitive.
    #[inline]
    pub fn prefetch_bucket(&self, key: u64) {
        let bucket: *const Bucket<S> = self.home_bucket(hash_key(key));
        #[cfg(target_arch = "x86_64")]
        // SAFETY: prefetch is a hint and never faults, for any address.
        unsafe {
            core::arch::x86_64::_mm_prefetch(bucket.cast::<i8>(), core::arch::x86_64::_MM_HINT_T0)
        };
        #[cfg(not(target_arch = "x86_64"))]
        let _ = bucket;
    }

    #[inline]
    fn node(w: Word) -> *mut Node<S> {
        (w & ITEM_PTR_MASK) as *mut Node<S>
    }

    #[inline]
    fn chain(w: Word) -> *mut OverflowBucket<S> {
        (w & CHAIN_PTR_MASK) as *mut OverflowBucket<S>
    }

    fn alloc_node(&self, key: u64, word: Word, deadline: Word) -> *mut Node<S> {
        Box::into_raw(Box::new(Node {
            key,
            value: self.stm.new_cell(word),
            deadline: self.stm.new_cell(deadline),
        }))
    }

    fn alloc_overflow(&self) -> *mut OverflowBucket<S> {
        Box::into_raw(Box::new(OverflowBucket {
            bucket: new_bucket(&self.stm),
        }))
    }

    /// Returns the value stored under `key`.
    pub fn get(&self, key: u64, thread: &mut S::Thread) -> Option<Value> {
        self.get_entry(key, thread).map(|(value, _)| value)
    }

    /// [`StmHashMap::get`] plus the entry's deadline word — the store's
    /// expiry-aware read (the map itself stores deadlines without
    /// interpreting them; expiry policy lives in [`crate::ShardedKv`]).
    pub(crate) fn get_entry(&self, key: u64, thread: &mut S::Thread) -> Option<(Value, Word)> {
        match self.mode {
            ApiMode::Short => self.get_short(key, thread),
            ApiMode::Full | ApiMode::Fine => self.get_entry_full(key, thread),
        }
    }

    /// Stores `value` under `key`, returning the previous value if present.
    pub fn put(
        &self,
        key: u64,
        value: &[u8],
        thread: &mut S::Thread,
    ) -> Result<Option<Value>, KvError> {
        check_len(value)?;
        let mut slot = ValueSlot::new();
        Ok(self
            .put_entry(key, value, 0, &mut slot, thread)
            .map(|(value, _)| value))
    }

    /// Insert-or-overwrite storing an explicit deadline word, returning the
    /// displaced value and the deadline word it was stored under.  The
    /// length must already be checked.
    pub(crate) fn put_entry(
        &self,
        key: u64,
        value: &[u8],
        deadline: Word,
        slot: &mut ValueSlot,
        thread: &mut S::Thread,
    ) -> Option<(Value, Word)> {
        match self.mode {
            ApiMode::Short => self.put_short(key, value, deadline, slot, thread),
            ApiMode::Full | ApiMode::Fine => self.put_full(key, value, deadline, slot, thread),
        }
    }

    /// Overwrites the value under an **existing** `key`, returning the
    /// previous value; returns `Ok(None)` (inserting nothing) if the key is
    /// absent.  The membership-preserving half of [`StmHashMap::put`]: in
    /// Short mode it is the same two-location read-write transaction, never
    /// the insert path.
    pub fn update(
        &self,
        key: u64,
        value: &[u8],
        thread: &mut S::Thread,
    ) -> Result<Option<Value>, KvError> {
        check_len(value)?;
        let mut slot = ValueSlot::new();
        Ok(self
            .update_entry_with_slot(key, value, None, &mut slot, thread)
            .map(|(value, _)| value))
    }

    /// [`StmHashMap::update`] with a caller-provided [`ValueSlot`], so a
    /// following [`StmHashMap::put_in`] of the same payload reuses the
    /// encoding (the store's put fast path).  `deadline` of `None`
    /// preserves the entry's current deadline word; `Some(word)` installs a
    /// new one.  Returns the displaced value and the deadline word it was
    /// stored under.  The length must already be checked.
    pub(crate) fn update_entry_with_slot(
        &self,
        key: u64,
        value: &[u8],
        deadline: Option<Word>,
        slot: &mut ValueSlot,
        thread: &mut S::Thread,
    ) -> Option<(Value, Word)> {
        match self.mode {
            ApiMode::Short => self.update_short(key, value, deadline, slot, thread),
            ApiMode::Full | ApiMode::Fine => {
                self.update_entry_full(key, value, deadline, slot, thread)
            }
        }
    }

    /// [`StmHashMap::update_entry_with_slot`] for callers that already hold
    /// an epoch pin for the whole call (the batched pipeline): per-attempt
    /// pin entry/exit is skipped; only a committed overwrite takes a nested
    /// (counter-bump) pin to retire the displaced word.
    pub(crate) fn update_entry_with_slot_pinned(
        &self,
        key: u64,
        value: &[u8],
        deadline: Option<Word>,
        slot: &mut ValueSlot,
        thread: &mut S::Thread,
    ) -> Option<(Value, Word)> {
        debug_assert!(thread.epoch().is_pinned(), "update_pinned without a pin");
        match self.mode {
            ApiMode::Short => {
                let word = slot.encode_once(value);
                let mut attempts = 0u32;
                loop {
                    if attempts > 0 {
                        thread.backoff().wait();
                    }
                    attempts += 1;
                    if let Ok(displaced) = self.try_update_attempt(key, word, deadline, thread) {
                        return displaced.map(|(old, old_deadline)| {
                            slot.mark_published();
                            // SAFETY: the committed overwrite displaced
                            // `old`, making this thread its exclusive owner.
                            let previous = unsafe { decode_value(old) };
                            let pin = thread.epoch().pin();
                            // SAFETY: as above; pinned readers are protected.
                            unsafe { retire_value(old, &pin) };
                            (previous, old_deadline)
                        });
                    }
                }
            }
            ApiMode::Full | ApiMode::Fine => {
                self.update_entry_full(key, value, deadline, slot, thread)
            }
        }
    }

    /// Removes `key`, returning the value it held.
    pub fn del(&self, key: u64, thread: &mut S::Thread) -> Option<Value> {
        self.del_entry(key, thread).map(|(value, _)| value)
    }

    /// [`StmHashMap::del`] plus the removed entry's deadline word.
    pub(crate) fn del_entry(&self, key: u64, thread: &mut S::Thread) -> Option<(Value, Word)> {
        match self.mode {
            ApiMode::Short => self.del_short(key, thread),
            ApiMode::Full | ApiMode::Fine => self.del_entry_full(key, thread),
        }
    }

    /// Collects every `(key, value)` pair currently present
    /// (non-transactional; only meaningful when no concurrent operations
    /// run).
    pub fn quiescent_snapshot(&self) -> Vec<(u64, Value)> {
        let mut out = Vec::new();
        for home in &self.buckets {
            let mut bucket = home;
            loop {
                for cell in &bucket.item {
                    let w = S::peek(cell);
                    if w != 0 {
                        // SAFETY: quiescence is required by the contract;
                        // nodes cannot be retired concurrently.
                        let node = unsafe { &*Self::node(w) };
                        // SAFETY: quiescence — the cell cannot be freed
                        // concurrently.
                        out.push((node.key, unsafe { decode_value(S::peek(&node.value)) }));
                    }
                }
                let p = Self::chain(S::peek(&bucket.stat));
                if p.is_null() {
                    break;
                }
                // SAFETY: overflow buckets live until the map is dropped.
                bucket = unsafe { &(*p).bucket };
            }
        }
        out.sort_unstable();
        out
    }

    /// Collects occupancy and probe-length statistics (non-transactional;
    /// only meaningful when no concurrent operations run).
    pub fn stats(&self) -> MapStats {
        let mut stats = MapStats {
            home_buckets: self.buckets.len(),
            ..MapStats::default()
        };
        for home in &self.buckets {
            let mut bucket = home;
            let mut depth = 0usize;
            loop {
                let occupied = bucket.item.iter().filter(|c| S::peek(c) != 0).count();
                if depth == 0 {
                    stats.occupied_home_slots += occupied;
                }
                stats.keys += occupied;
                if occupied > 0 {
                    if stats.probe_histogram.len() <= depth {
                        stats.probe_histogram.resize(depth + 1, 0);
                    }
                    stats.probe_histogram[depth] += occupied;
                }
                let p = Self::chain(S::peek(&bucket.stat));
                if p.is_null() {
                    break;
                }
                stats.overflow_buckets += 1;
                depth += 1;
                // SAFETY: overflow buckets live until the map is dropped.
                bucket = unsafe { &(*p).bucket };
            }
        }
        stats
    }

    // ------------------------------------------------------------------
    // Short-transaction implementation
    // ------------------------------------------------------------------

    /// Scans one bucket's item words with single-location reads, returning
    /// the first tag-and-key match.  The caller must hold an epoch pin.
    fn scan_bucket_short<'a>(
        &'a self,
        bucket: &'a Bucket<S>,
        key: u64,
        tag: Word,
        thread: &mut S::Thread,
    ) -> Option<Candidate<'a, S>> {
        for cell in &bucket.item {
            let w = thread.single_read(cell);
            if w != 0 && w & TAG_MASK == tag {
                // SAFETY: `w` was read from a reachable slot under the
                // caller's epoch pin; retired nodes cannot be freed while
                // pinned.
                let node = unsafe { &*Self::node(w) };
                if node.key == key {
                    return Some(Candidate {
                        cell,
                        word: w,
                        node,
                    });
                }
            }
        }
        None
    }

    /// Continues a short scan down an overflow chain.  The caller must hold
    /// an epoch pin.
    fn scan_overflow_short<'a>(
        &'a self,
        mut p: *const OverflowBucket<S>,
        key: u64,
        tag: Word,
        thread: &mut S::Thread,
    ) -> Option<Candidate<'a, S>> {
        while !p.is_null() {
            // SAFETY: overflow buckets live until the map is dropped.
            let bucket = unsafe { &(*p).bucket };
            if let Some(c) = self.scan_bucket_short(bucket, key, tag, thread) {
                return Some(c);
            }
            p = Self::chain(thread.single_read(&bucket.stat));
        }
        None
    }

    /// Scans the whole chain for `key` with single-location reads.  The
    /// caller must hold an epoch pin.
    fn find_short<'a>(&'a self, key: u64, thread: &mut S::Thread) -> Option<Candidate<'a, S>> {
        let h = hash_key(key);
        let tag = tag_of(h);
        let home = self.home_bucket(h);
        if let Some(c) = self.scan_bucket_short(home, key, tag, thread) {
            return Some(c);
        }
        let stat = thread.single_read(&home.stat);
        self.scan_overflow_short(Self::chain(stat), key, tag, thread)
    }

    fn get_short(&self, key: u64, thread: &mut S::Thread) -> Option<(Value, Word)> {
        let mut attempts = 0u32;
        loop {
            if attempts > 0 {
                thread.backoff().wait();
            }
            attempts += 1;
            let _pin = thread.epoch().pin();
            if let Ok(result) = self.try_get_short(key, thread) {
                return result;
            }
        }
    }

    /// One attempt of the short get protocol; `Err` means validation
    /// failed and the caller should retry.  The caller must hold an epoch
    /// pin for the duration of the attempt.
    #[inline]
    fn try_get_short(&self, key: u64, thread: &mut S::Thread) -> Result<Option<(Value, Word)>, ()> {
        let Some(c) = self.find_short(key, thread) else {
            return Ok(None);
        };
        // Membership, value and deadline must be observed together: a
        // three-location read-only short transaction over (slot, value,
        // deadline).
        let w = thread.ro_read(0, c.cell);
        if w != c.word {
            return Err(());
        }
        let value = thread.ro_read(1, &c.node.value);
        let deadline = thread.ro_read(2, &c.node.deadline);
        if !thread.ro_is_valid(3) {
            return Err(());
        }
        // SAFETY: the caller's pin predates any retirement of the cell
        // behind the validated word, so it cannot have been freed yet.
        Ok(Some((unsafe { decode_value(value) }, deadline)))
    }

    /// [`StmHashMap::get_entry`] for callers that already hold an epoch pin
    /// for the whole call (the batched pipeline, which enters the epoch once
    /// per batch): per-attempt pin entry/exit is skipped entirely.  In
    /// Full mode this simply forwards — `atomic` nests its pins cheaply.
    pub(crate) fn get_entry_pinned(
        &self,
        key: u64,
        thread: &mut S::Thread,
    ) -> Option<(Value, Word)> {
        debug_assert!(thread.epoch().is_pinned(), "get_pinned without a pin");
        match self.mode {
            ApiMode::Short => {
                let mut attempts = 0u32;
                loop {
                    if attempts > 0 {
                        thread.backoff().wait();
                    }
                    attempts += 1;
                    if let Ok(result) = self.try_get_short(key, thread) {
                        return result;
                    }
                }
            }
            ApiMode::Full | ApiMode::Fine => self.get_entry_full(key, thread),
        }
    }

    /// One attempt at the update-in-place protocol: a three-location short
    /// read-write transaction over (slot, value, deadline).  Re-reading the
    /// slot both checks membership and guards against a concurrent delete
    /// committing between the scan and the write.  A `deadline` of `None`
    /// preserves the entry's deadline by writing back the word just read.
    /// The caller must hold an epoch pin.
    fn try_update_short(
        &self,
        c: &Candidate<'_, S>,
        word: Word,
        deadline: Option<Word>,
        thread: &mut S::Thread,
    ) -> ShortUpdate {
        let w = thread.rw_read(0, c.cell);
        if !thread.rw_is_valid(1) {
            return ShortUpdate::Retry;
        }
        if w != c.word {
            // The candidate was deleted (and the slot possibly reused).
            thread.rw_abort(1);
            return ShortUpdate::Gone;
        }
        let old = thread.rw_read(1, &c.node.value);
        let old_deadline = thread.rw_read(2, &c.node.deadline);
        if !thread.rw_is_valid(3) {
            return ShortUpdate::Retry;
        }
        let new_deadline = deadline.unwrap_or(old_deadline);
        if thread.rw_commit(3, &[c.word, word, new_deadline]) {
            ShortUpdate::Updated(old, old_deadline)
        } else {
            ShortUpdate::Retry
        }
    }

    fn put_short(
        &self,
        key: u64,
        value: &[u8],
        deadline: Word,
        slot: &mut ValueSlot,
        thread: &mut S::Thread,
    ) -> Option<(Value, Word)> {
        let word = slot.encode_once(value);
        let h = hash_key(key);
        let tag = tag_of(h);
        // Speculative allocations, reused across attempts and freed by the
        // slot's drop if this operation ends up not publishing them.
        let mut scratch = NodeSlot::<S>::new();
        let mut attempts = 0u32;
        loop {
            if attempts > 0 {
                thread.backoff().wait();
            }
            attempts += 1;
            let pin = thread.epoch().pin();
            let home = self.home_bucket(h);
            // One pass doubling as the read-only half of the insert
            // transaction: all 7 item words and the stat word of the home
            // bucket enter the RO set, so a committed insert has validated
            // the key's absence from the entire single-bucket chain at its
            // linearization point.
            let mut candidate: Option<Candidate<'_, S>> = None;
            let mut empty: Option<usize> = None;
            for (i, cell) in home.item.iter().enumerate() {
                let w = thread.ro_read(i, cell);
                if w == 0 {
                    if empty.is_none() {
                        empty = Some(i);
                    }
                } else if w & TAG_MASK == tag && candidate.is_none() {
                    // SAFETY: read from a reachable slot under the pin.
                    let node = unsafe { &*Self::node(w) };
                    if node.key == key {
                        candidate = Some(Candidate {
                            cell,
                            word: w,
                            node,
                        });
                    }
                }
            }
            let stat = thread.ro_read(BUCKET_SLOTS, &home.stat);
            let chain = Self::chain(stat);
            if candidate.is_none() && !chain.is_null() {
                candidate = self.scan_overflow_short(chain, key, tag, thread);
            }
            if let Some(c) = candidate {
                match self.try_update_short(&c, word, Some(deadline), thread) {
                    ShortUpdate::Updated(old, old_deadline) => {
                        slot.mark_published();
                        // SAFETY: the committed overwrite displaced `old`,
                        // making this thread its exclusive owner.
                        let previous = unsafe { decode_value(old) };
                        // SAFETY: as above; pinned readers are protected.
                        unsafe { retire_value(old, &pin) };
                        return Some((previous, old_deadline));
                    }
                    ShortUpdate::Gone | ShortUpdate::Retry => {
                        drop(pin);
                        continue;
                    }
                }
            }
            if !chain.is_null() {
                // The chain already spans 2+ buckets: proving the key
                // absent would need more than MAX_SHORT validated
                // locations, so insert through a full transaction — the
                // paper's fallback for transactions that outgrow the
                // short API.
                drop(pin);
                drop(scratch);
                return self.put_full(key, value, deadline, slot, thread);
            }
            if scratch.ptr.is_null() {
                scratch.ptr = self.alloc_node(key, word, deadline);
            }
            let tagged = scratch.ptr as Word | tag;
            let committed = if let Some(e) = empty {
                // Claim the free slot: upgrade it into the RW set and
                // commit, validating the other 7 words read-only.
                thread.upgrade_ro_to_rw(e, 0) && thread.ro_rw_commit(BUCKET_SLOTS + 1, 1, &[tagged])
            } else {
                // Bucket full with no chain yet: publish the node inside a
                // fresh overflow bucket by linking it through the stat
                // word (preserving the reserved frequency byte).
                if scratch.chain.is_null() {
                    scratch.chain = self.alloc_overflow();
                }
                // SAFETY: the overflow bucket is still private to this
                // thread until the commit below publishes it.
                let cb = unsafe { &(*scratch.chain).bucket };
                S::poke(&cb.item[0], tagged);
                scratch.chain_used = true;
                let chain_word = scratch.chain as Word | (stat & FREQ_MASK);
                thread.upgrade_ro_to_rw(BUCKET_SLOTS, 0)
                    && thread.ro_rw_commit(BUCKET_SLOTS + 1, 1, &[chain_word])
            };
            if committed {
                slot.mark_published();
                scratch.mark_published();
                return None;
            }
            scratch.chain_used = false;
            drop(pin);
        }
    }

    /// One attempt of the update-only protocol (scan + the
    /// [`StmHashMap::try_update_short`] dispatch): `Ok(None)` means the key
    /// is absent, `Ok(Some((old, old_deadline)))` a committed overwrite
    /// that displaced `old` — now owned by this thread, which must decode
    /// and retire it — and `Err(())` a validation or commit failure to
    /// retry.  The caller must hold an epoch pin for the whole attempt.
    fn try_update_attempt(
        &self,
        key: u64,
        word: Word,
        deadline: Option<Word>,
        thread: &mut S::Thread,
    ) -> Result<Option<(Word, Word)>, ()> {
        let Some(c) = self.find_short(key, thread) else {
            return Ok(None);
        };
        match self.try_update_short(&c, word, deadline, thread) {
            ShortUpdate::Updated(old, old_deadline) => Ok(Some((old, old_deadline))),
            // The slot changed under us: the key may be gone or freshly
            // reinserted elsewhere — re-search either way.
            ShortUpdate::Gone | ShortUpdate::Retry => Err(()),
        }
    }

    /// Short-mode update-only path: the found-candidate branch of
    /// `put_short` (the same [`StmHashMap::try_update_short`] protocol)
    /// without the insert fallback.
    fn update_short(
        &self,
        key: u64,
        value: &[u8],
        deadline: Option<Word>,
        slot: &mut ValueSlot,
        thread: &mut S::Thread,
    ) -> Option<(Value, Word)> {
        let word = slot.encode_once(value);
        let mut attempts = 0u32;
        loop {
            if attempts > 0 {
                thread.backoff().wait();
            }
            attempts += 1;
            let pin = thread.epoch().pin();
            if let Ok(displaced) = self.try_update_attempt(key, word, deadline, thread) {
                return displaced.map(|(old, old_deadline)| {
                    slot.mark_published();
                    // SAFETY: the committed overwrite displaced `old`,
                    // making this thread its exclusive owner.
                    let previous = unsafe { decode_value(old) };
                    // SAFETY: as above; pinned readers are protected.
                    unsafe { retire_value(old, &pin) };
                    (previous, old_deadline)
                });
            }
        }
    }

    fn del_short(&self, key: u64, thread: &mut S::Thread) -> Option<(Value, Word)> {
        let mut attempts = 0u32;
        loop {
            if attempts > 0 {
                thread.backoff().wait();
            }
            attempts += 1;
            let pin = thread.epoch().pin();
            let c = self.find_short(key, thread)?;
            // A three-location short transaction: clear the slot and
            // capture the value and deadline, atomically.  Works at any
            // chain depth — no predecessor pointer exists in the bucket
            // layout.
            let w = thread.rw_read(0, c.cell);
            if !thread.rw_is_valid(1) {
                drop(pin);
                continue;
            }
            if w != c.word {
                // Deleted (and possibly reused) concurrently; re-search.
                thread.rw_abort(1);
                drop(pin);
                continue;
            }
            let value = thread.rw_read(1, &c.node.value);
            let deadline = thread.rw_read(2, &c.node.deadline);
            if !thread.rw_is_valid(3) {
                drop(pin);
                continue;
            }
            if thread.rw_commit(3, &[0, value, deadline]) {
                // SAFETY: the committed delete cleared the slot, so the
                // node is unreachable for new scans; pinned readers are
                // protected.
                unsafe { pin.defer_drop(Self::node(c.word)) };
                // SAFETY: the committed delete made this thread the value
                // word's exclusive owner (the slot no longer leads to it).
                let previous = unsafe { decode_value(value) };
                // SAFETY: as above.
                unsafe { retire_value(value, &pin) };
                return Some((previous, deadline));
            }
            drop(pin);
        }
    }

    // ------------------------------------------------------------------
    // Frequency byte and sweep support (the store's eviction machinery)
    // ------------------------------------------------------------------

    /// Current value of home bucket `idx`'s frequency byte (one
    /// single-location read).
    pub(crate) fn bucket_freq(&self, idx: usize, thread: &mut S::Thread) -> u8 {
        let stat = thread.single_read(&self.buckets[idx].stat);
        ((stat & FREQ_MASK) >> FREQ_SHIFT) as u8
    }

    /// Best-effort saturating bump of `key`'s home-bucket frequency byte:
    /// one single-location short read-write transaction, no retry — a lost
    /// bump under contention is fine (the counter is a popularity
    /// heuristic, not a count).
    pub(crate) fn bump_freq(&self, key: u64, thread: &mut S::Thread) {
        let home = self.home_bucket(hash_key(key));
        let stat = thread.rw_read(0, &home.stat);
        if !thread.rw_is_valid(1) {
            return;
        }
        if (stat & FREQ_MASK) >> FREQ_SHIFT >= FREQ_MAX {
            thread.rw_abort(1);
            return;
        }
        let _ = thread.rw_commit(1, &[stat + (1 << FREQ_SHIFT)]);
    }

    /// Best-effort halving of home bucket `idx`'s frequency byte — the
    /// reclaimer's periodic decay.  One attempt, no retry.
    pub(crate) fn halve_freq(&self, idx: usize, thread: &mut S::Thread) {
        let cell = &self.buckets[idx].stat;
        let stat = thread.rw_read(0, cell);
        if !thread.rw_is_valid(1) {
            return;
        }
        let freq = (stat & FREQ_MASK) >> FREQ_SHIFT;
        if freq == 0 {
            thread.rw_abort(1);
            return;
        }
        let halved = (stat & !FREQ_MASK) | ((freq >> 1) << FREQ_SHIFT);
        let _ = thread.rw_commit(1, &[halved]);
    }

    /// Collects `(key, deadline word)` for every item currently chained
    /// under home bucket `idx` via single-location reads — the reclaimer's
    /// best-effort sweep snapshot.  Each candidate must be re-checked
    /// inside the transaction that removes it (the snapshot can be stale by
    /// the time the removal runs).
    pub(crate) fn collect_bucket_entries(
        &self,
        idx: usize,
        thread: &mut S::Thread,
        out: &mut Vec<(u64, Word)>,
    ) {
        out.clear();
        let _pin = thread.epoch().pin();
        let mut bucket: &Bucket<S> = &self.buckets[idx];
        loop {
            for cell in &bucket.item {
                let w = thread.single_read(cell);
                if w != 0 {
                    // SAFETY: `w` was read from a reachable slot under the
                    // pin; retired nodes cannot be freed while pinned.
                    let node = unsafe { &*Self::node(w) };
                    out.push((node.key, thread.single_read(&node.deadline)));
                }
            }
            let p = Self::chain(thread.single_read(&bucket.stat));
            if p.is_null() {
                break;
            }
            // SAFETY: overflow buckets live until the map is dropped.
            bucket = unsafe { &(*p).bucket };
        }
    }

    // ------------------------------------------------------------------
    // Traditional-transaction implementation
    // ------------------------------------------------------------------

    fn get_entry_full(&self, key: u64, thread: &mut S::Thread) -> Option<(Value, Word)> {
        thread
            .atomic(|tx| self.read_entry_in(key, tx))
            .expect("get_full is never cancelled")
    }

    /// Body of a full-mode insert-or-update inside the caller's
    /// transaction.  `slot` carries the speculative node (and overflow
    /// bucket) across conflict retries; `word` is the pre-encoded value
    /// word and `deadline` the deadline word to install.  Returns the
    /// displaced value word and its deadline word on overwrite (owned by
    /// the caller once the transaction commits).
    fn put_body(
        &self,
        key: u64,
        word: Word,
        deadline: Word,
        slot: &mut NodeSlot<S>,
        tx: &mut FullTx<'_, S::Thread>,
    ) -> TxResult<Option<(Word, Word)>> {
        slot.chain_used = false;
        let h = hash_key(key);
        let tag = tag_of(h);
        let mut bucket: &Bucket<S> = self.home_bucket(h);
        let mut empty_cell: Option<&S::Cell> = None;
        loop {
            for cell in &bucket.item {
                let w = tx.read(cell)?;
                if w == 0 {
                    if empty_cell.is_none() {
                        empty_cell = Some(cell);
                    }
                } else if w & TAG_MASK == tag {
                    // SAFETY: the transaction holds an epoch pin for the
                    // whole attempt; opacity guarantees reachability.
                    let node = unsafe { &*Self::node(w) };
                    if node.key == key {
                        let old = tx.read(&node.value)?;
                        let old_deadline = tx.read(&node.deadline)?;
                        tx.write(&node.value, word)?;
                        tx.write(&node.deadline, deadline)?;
                        return Ok(Some((old, old_deadline)));
                    }
                }
            }
            let stat = tx.read(&bucket.stat)?;
            let p = Self::chain(stat);
            if p.is_null() {
                // End of chain and the key is absent: insert.  Every slot
                // and stat word of the chain is in the read set, so the
                // commit validates exclusion.
                if slot.ptr.is_null() {
                    slot.ptr = self.alloc_node(key, word, deadline);
                }
                // SAFETY: still private until the commit publishes it.
                let node = unsafe { &*slot.ptr };
                S::poke(&node.value, word);
                S::poke(&node.deadline, deadline);
                let tagged = slot.ptr as Word | tag;
                if let Some(cell) = empty_cell {
                    tx.write(cell, tagged)?;
                } else {
                    // Chain a fresh overflow bucket carrying the node.
                    if slot.chain.is_null() {
                        slot.chain = self.alloc_overflow();
                    }
                    // SAFETY: private until the commit publishes it.
                    let cb = unsafe { &(*slot.chain).bucket };
                    S::poke(&cb.item[0], tagged);
                    tx.write(&bucket.stat, slot.chain as Word | (stat & FREQ_MASK))?;
                    slot.chain_used = true;
                }
                return Ok(None);
            }
            // SAFETY: overflow buckets live until the map is dropped.
            bucket = unsafe { &(*p).bucket };
        }
    }

    fn put_full(
        &self,
        key: u64,
        value: &[u8],
        deadline: Word,
        slot: &mut ValueSlot,
        thread: &mut S::Thread,
    ) -> Option<(Value, Word)> {
        let word = slot.encode_once(value);
        let mut node_slot = NodeSlot::<S>::new();
        let previous = thread
            .atomic(|tx| self.put_body(key, word, deadline, &mut node_slot, tx))
            .expect("put_full is never cancelled");
        // Whether by insert or by overwrite, the committed attempt stored
        // the slot's word.
        slot.mark_published();
        match previous {
            Some((old, old_deadline)) => {
                // The speculative allocations were not published (the
                // committed outcome was an overwrite); `node_slot`'s drop
                // frees them.
                let pin = thread.epoch().pin();
                // SAFETY: the committed overwrite displaced `old`, making
                // this thread its exclusive owner; pinned readers are
                // protected.
                let out = unsafe { decode_value(old) };
                // SAFETY: as above.
                unsafe { retire_value(old, &pin) };
                Some((out, old_deadline))
            }
            None => {
                node_slot.mark_published();
                None
            }
        }
    }

    /// Full-mode update-only path: one transaction running the
    /// [`StmHashMap::write_entry_in`] walk.
    fn update_entry_full(
        &self,
        key: u64,
        value: &[u8],
        deadline: Option<Word>,
        slot: &mut ValueSlot,
        thread: &mut S::Thread,
    ) -> Option<(Value, Word)> {
        let mut displaced: Option<(RetiredValue, Word)> = None;
        let wrote = thread
            .atomic(|tx| {
                displaced = None;
                displaced = self.write_entry_in(key, value, deadline, slot, tx)?;
                Ok(displaced.is_some())
            })
            .expect("update is never cancelled");
        if !wrote {
            return None;
        }
        slot.mark_published();
        let (displaced, old_deadline) = displaced.take().expect("wrote implies a displaced word");
        let out = displaced.value();
        displaced.retire(thread.epoch());
        Some((out, old_deadline))
    }

    /// Inserts or updates `key` inside an already-running full transaction,
    /// regardless of this instance's [`ApiMode`].  Returns the displaced old
    /// value and the deadline word it was stored under (`None` means a
    /// fresh node was inserted).  `deadline` is the deadline word to store
    /// (`0` = never expires; see `encode_deadline`).
    ///
    /// `slot` carries the speculative allocations across conflict retries
    /// of the enclosing transaction (see [`NodeSlot`] for the publication
    /// contract) and `value_slot` the value word likewise (mark it
    /// published after **any** committed outcome — insert and overwrite
    /// both store the word).  A returned [`RetiredValue`] must be retired
    /// after the commit, per its contract.  `value` must be at most
    /// [`MAX_VALUE_LEN`] bytes (checked by the public entry points).
    pub fn put_in(
        &self,
        key: u64,
        value: &[u8],
        deadline: Word,
        value_slot: &mut ValueSlot,
        slot: &mut NodeSlot<S>,
        tx: &mut FullTx<'_, S::Thread>,
    ) -> TxResult<Option<(RetiredValue, Word)>> {
        debug_assert!(value.len() <= MAX_VALUE_LEN);
        if !slot.ptr.is_null() {
            // SAFETY: the slot's node is still private to this thread.
            debug_assert_eq!(unsafe { (*slot.ptr).key }, key, "one NodeSlot per key");
        }
        let word = value_slot.encode_once(value);
        Ok(self
            .put_body(key, word, deadline, slot, tx)?
            .map(|(old, old_deadline)| (RetiredValue::new(old), old_deadline)))
    }

    /// Body of a full-mode delete inside the caller's transaction.  With
    /// `only_expired = Some(now_ms)` the delete happens only if the entry's
    /// deadline has passed at `now_ms` (the reclaimer's re-check; `None`
    /// removes unconditionally).  Returns the captured value word, the
    /// deadline word, and the detached node pointer.
    fn del_body(
        &self,
        key: u64,
        only_expired: Option<u64>,
        tx: &mut FullTx<'_, S::Thread>,
    ) -> TxResult<Option<(Word, Word, *mut Node<S>)>> {
        let h = hash_key(key);
        let tag = tag_of(h);
        let mut bucket: &Bucket<S> = self.home_bucket(h);
        loop {
            for cell in &bucket.item {
                let w = tx.read(cell)?;
                if w != 0 && w & TAG_MASK == tag {
                    // SAFETY: see `put_body`.
                    let node = unsafe { &*Self::node(w) };
                    if node.key == key {
                        let deadline = tx.read(&node.deadline)?;
                        if let Some(now_ms) = only_expired {
                            if !deadline_expired(deadline, now_ms) {
                                return Ok(None);
                            }
                        }
                        let value = tx.read(&node.value)?;
                        tx.write(cell, 0)?;
                        return Ok(Some((value, deadline, Self::node(w))));
                    }
                }
            }
            let p = Self::chain(tx.read(&bucket.stat)?);
            if p.is_null() {
                return Ok(None);
            }
            // SAFETY: overflow buckets live until the map is dropped.
            bucket = unsafe { &(*p).bucket };
        }
    }

    fn del_entry_full(&self, key: u64, thread: &mut S::Thread) -> Option<(Value, Word)> {
        let removed = thread
            .atomic(|tx| self.del_body(key, None, tx))
            .expect("del_full is never cancelled");
        removed.map(|(value, deadline, detached)| {
            let pin = thread.epoch().pin();
            // SAFETY: the committed transaction cleared the node's slot; it
            // is unreachable for new transactions.
            unsafe { pin.defer_drop(detached) };
            // SAFETY: the committed delete made this thread the value
            // word's exclusive owner.
            let out = unsafe { decode_value(value) };
            // SAFETY: as above.
            unsafe { retire_value(value, &pin) };
            (out, deadline)
        })
    }

    /// Removes `key` inside an already-running full transaction, regardless
    /// of this instance's [`ApiMode`].  Returns the captured value, the
    /// detached node (both to be retired **after** the transaction commits;
    /// see [`RetiredValue`] and [`RetiredNode`]), and the entry's deadline
    /// word, or `None` if the key was absent.
    pub fn del_in(
        &self,
        key: u64,
        tx: &mut FullTx<'_, S::Thread>,
    ) -> TxResult<Option<(RetiredValue, RetiredNode<S>, Word)>> {
        Ok(self.del_body(key, None, tx)?.map(|(value, deadline, ptr)| {
            (RetiredValue::new(value), RetiredNode { ptr }, deadline)
        }))
    }

    /// [`StmHashMap::del_in`] gated on expiry: removes `key` only if its
    /// deadline has passed at `now_ms`, returning `None` when the key is
    /// absent **or still live** — the transactional re-check behind the
    /// store's lazy expiry and the background reclaimer (their sweep
    /// snapshots may be stale by the time the removal runs).
    pub(crate) fn del_expired_in(
        &self,
        key: u64,
        now_ms: u64,
        tx: &mut FullTx<'_, S::Thread>,
    ) -> TxResult<Option<(RetiredValue, RetiredNode<S>)>> {
        Ok(self
            .del_body(key, Some(now_ms), tx)?
            .map(|(value, _, ptr)| (RetiredValue::new(value), RetiredNode { ptr })))
    }

    // ------------------------------------------------------------------
    // Composition inside a caller-provided full transaction
    // ------------------------------------------------------------------

    /// Reads the value under `key` inside an already-running full
    /// transaction (the building block of cross-shard read-modify-write).
    pub fn read_in(&self, key: u64, tx: &mut FullTx<'_, S::Thread>) -> TxResult<Option<Value>> {
        Ok(self.read_entry_in(key, tx)?.map(|(value, _)| value))
    }

    /// [`StmHashMap::read_in`] plus the entry's deadline word — the store's
    /// expiry-aware composed read.
    pub(crate) fn read_entry_in(
        &self,
        key: u64,
        tx: &mut FullTx<'_, S::Thread>,
    ) -> TxResult<Option<(Value, Word)>> {
        let h = hash_key(key);
        let tag = tag_of(h);
        let mut bucket: &Bucket<S> = self.home_bucket(h);
        loop {
            for cell in &bucket.item {
                let w = tx.read(cell)?;
                if w != 0 && w & TAG_MASK == tag {
                    // SAFETY: `StmThread::atomic` pins the epoch for the
                    // whole attempt; opacity guarantees reachability.
                    let node = unsafe { &*Self::node(w) };
                    if node.key == key {
                        let word = tx.read(&node.value)?;
                        let deadline = tx.read(&node.deadline)?;
                        // SAFETY: the attempt's epoch pin predates any
                        // retirement of the cell behind a word this read
                        // validated.
                        return Ok(Some((unsafe { decode_value(word) }, deadline)));
                    }
                }
            }
            let p = Self::chain(tx.read(&bucket.stat)?);
            if p.is_null() {
                return Ok(None);
            }
            // SAFETY: overflow buckets live until the map is dropped.
            bucket = unsafe { &(*p).bucket };
        }
    }

    /// Overwrites the value under an **existing** `key` inside an
    /// already-running full transaction.  Returns `Ok(None)` (writing
    /// nothing) if the key is absent; insertion under a composed transaction
    /// goes through [`StmHashMap::put_in`].
    ///
    /// `slot` is re-encoded on every call (freeing the previous attempt's
    /// unpublished allocation), so retried bodies may pass different
    /// payloads.  After the enclosing transaction commits, mark the slot
    /// published and retire the returned [`RetiredValue`]; on abort, drop
    /// both.  `value` must be at most [`MAX_VALUE_LEN`] bytes (checked by
    /// the public entry points).
    pub fn write_in(
        &self,
        key: u64,
        value: &[u8],
        slot: &mut ValueSlot,
        tx: &mut FullTx<'_, S::Thread>,
    ) -> TxResult<Option<RetiredValue>> {
        Ok(self
            .write_entry_in(key, value, None, slot, tx)?
            .map(|(retired, _)| retired))
    }

    /// [`StmHashMap::write_in`] with deadline control: `None` preserves the
    /// entry's deadline word (a read-modify-write must not refresh a TTL),
    /// `Some(word)` installs a new one.  Also returns the deadline word the
    /// displaced value was stored under.
    pub(crate) fn write_entry_in(
        &self,
        key: u64,
        value: &[u8],
        deadline: Option<Word>,
        slot: &mut ValueSlot,
        tx: &mut FullTx<'_, S::Thread>,
    ) -> TxResult<Option<(RetiredValue, Word)>> {
        debug_assert!(value.len() <= MAX_VALUE_LEN);
        let h = hash_key(key);
        let tag = tag_of(h);
        let mut bucket: &Bucket<S> = self.home_bucket(h);
        loop {
            for cell in &bucket.item {
                let w = tx.read(cell)?;
                if w != 0 && w & TAG_MASK == tag {
                    // SAFETY: see `read_in`.
                    let node = unsafe { &*Self::node(w) };
                    if node.key == key {
                        let old = tx.read(&node.value)?;
                        let old_deadline = tx.read(&node.deadline)?;
                        tx.write(&node.value, slot.encode(value))?;
                        if let Some(d) = deadline {
                            tx.write(&node.deadline, d)?;
                        }
                        return Ok(Some((RetiredValue::new(old), old_deadline)));
                    }
                }
            }
            let p = Self::chain(tx.read(&bucket.stat)?);
            if p.is_null() {
                return Ok(None);
            }
            // SAFETY: overflow buckets live until the map is dropped.
            bucket = unsafe { &(*p).bucket };
        }
    }
}

impl<S: Stm> Drop for StmHashMap<S> {
    fn drop(&mut self) {
        // Exclusive access: free every remaining node (and its value cell)
        // and every overflow bucket directly.
        fn free_bucket_nodes<S: Stm>(bucket: &Bucket<S>) {
            for cell in &bucket.item {
                let w = S::peek(cell);
                if w != 0 {
                    // SAFETY: nodes were allocated with `Box::into_raw`;
                    // during drop nothing else references them.
                    let node = unsafe { Box::from_raw(StmHashMap::<S>::node(w)) };
                    // SAFETY: exclusive access; the word is still owned by
                    // the map, so nobody else will free it.
                    unsafe { free_value(S::peek(&node.value)) };
                }
            }
        }
        for home in &self.buckets {
            free_bucket_nodes(home);
            let mut p = Self::chain(S::peek(&home.stat));
            while !p.is_null() {
                // SAFETY: overflow buckets were allocated with
                // `Box::into_raw` and are only freed here.
                let boxed = unsafe { Box::from_raw(p) };
                free_bucket_nodes(&boxed.bucket);
                p = Self::chain(S::peek(&boxed.bucket.stat));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectm::variants::{OrecFullG, TvarShortG, ValShort};
    use std::collections::BTreeMap;

    /// Deterministic payload whose length scales with the draw, crossing
    /// the inline-bytes (≤7), inline-int (8) and out-of-line regimes.
    fn payload(k: u64, v: u64) -> Vec<u8> {
        let len = (v % 40) as usize;
        (0..len)
            .map(|i| (k as u8).wrapping_mul(31) ^ (v as u8).wrapping_add(i as u8))
            .collect()
    }

    fn oracle_test<S: Stm + Clone>(stm: S, mode: ApiMode, capacity: usize) {
        let map = StmHashMap::new(&stm, capacity, mode);
        let mut t = stm.register();
        let mut oracle: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        let mut state = 88172645463325252u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..2_000 {
            let k = rng() % 200;
            let v = rng() >> 2;
            let bytes = payload(k, v);
            match rng() % 3 {
                0 => assert_eq!(
                    map.put(k, &bytes, &mut t).unwrap(),
                    oracle.insert(k, bytes.clone()).map(Value::from)
                ),
                1 => assert_eq!(map.del(k, &mut t), oracle.remove(&k).map(Value::from)),
                _ => assert_eq!(map.get(k, &mut t), oracle.get(&k).map(|b| Value::new(b))),
            }
        }
        assert_eq!(
            map.quiescent_snapshot(),
            oracle
                .iter()
                .map(|(k, v)| (*k, Value::new(v)))
                .collect::<Vec<_>>()
        );
        let stats = map.stats();
        assert_eq!(stats.keys, oracle.len());
        assert_eq!(
            stats.probe_histogram.iter().sum::<usize>(),
            oracle.len(),
            "histogram must account for every key"
        );
    }

    #[test]
    fn oracle_all_modes_and_layouts() {
        oracle_test(ValShort::new(), ApiMode::Short, 160);
        oracle_test(ValShort::new(), ApiMode::Full, 160);
        oracle_test(TvarShortG::new(), ApiMode::Short, 160);
        oracle_test(OrecFullG::new(), ApiMode::Full, 160);
        oracle_test(OrecFullG::new(), ApiMode::Short, 160);
    }

    #[test]
    fn oracle_sweeps_load_factor_across_bucket_boundaries() {
        // 200-key working set over capacities from "everything overflows"
        // to "everything fits in home buckets": exercises slot reuse,
        // chain growth and the short-insert full-tx fallback.
        for capacity in [1, 8, 40, 200, 1_000] {
            oracle_test(ValShort::new(), ApiMode::Short, capacity);
            oracle_test(ValShort::new(), ApiMode::Full, capacity);
        }
        // The non-headline layouts at an overflow-heavy capacity.
        oracle_test(TvarShortG::new(), ApiMode::Short, 8);
        oracle_test(OrecFullG::new(), ApiMode::Full, 8);
    }

    #[test]
    fn bucket_boundary_overflow_and_slot_reuse() {
        // Capacity 1 => a single home bucket: every key chains there.
        let stm = ValShort::new();
        let map = StmHashMap::new(&stm, 1, ApiMode::Short);
        assert_eq!(map.bucket_count(), 1);
        let mut t = stm.register();
        // Exactly 7 items fit the home bucket with no overflow.
        for k in 0..7u64 {
            assert_eq!(map.put(k, &k.to_le_bytes(), &mut t).unwrap(), None);
        }
        let stats = map.stats();
        assert_eq!(
            (
                stats.keys,
                stats.overflow_buckets,
                stats.occupied_home_slots
            ),
            (7, 0, 7)
        );
        assert_eq!(stats.fraction_within(1), 1.0);
        // The 8th key forces an overflow bucket.
        assert_eq!(map.put(7, b"eighth", &mut t).unwrap(), None);
        let stats = map.stats();
        assert_eq!((stats.keys, stats.overflow_buckets), (8, 1));
        assert_eq!(stats.probe_histogram, vec![7, 1]);
        // Deleting a home-bucket key frees its slot; the next insert
        // reuses it instead of growing the chain.
        assert_eq!(map.del(3, &mut t), Some(Value::new(&3u64.to_le_bytes())));
        assert_eq!(map.stats().occupied_home_slots, 6);
        assert_eq!(map.put(100, b"reused", &mut t).unwrap(), None);
        let stats = map.stats();
        assert_eq!((stats.keys, stats.overflow_buckets), (8, 1));
        assert_eq!(stats.occupied_home_slots, 7, "freed slot must be reused");
        // Every key still reads back.
        for (k, expect) in [(0u64, true), (3, false), (7, true), (100, true)] {
            assert_eq!(map.get(k, &mut t).is_some(), expect, "key {k}");
        }
        assert_eq!(map.quiescent_snapshot().len(), 8);
    }

    #[test]
    fn deep_chains_roundtrip_in_both_modes() {
        // A single bucket forced through several overflow buckets.
        for mode in [ApiMode::Short, ApiMode::Full] {
            let stm = ValShort::new();
            let map = StmHashMap::new(&stm, 1, mode);
            let mut t = stm.register();
            for k in 0..40u64 {
                assert_eq!(map.put(k, &payload(k, k), &mut t).unwrap(), None);
            }
            let stats = map.stats();
            assert_eq!(stats.keys, 40);
            assert!(stats.overflow_buckets >= 5, "{mode:?}: {stats}");
            for k in 0..40u64 {
                assert_eq!(
                    map.get(k, &mut t),
                    Some(Value::from(payload(k, k))),
                    "{mode:?} key {k}"
                );
            }
            for k in (0..40u64).step_by(2) {
                assert_eq!(map.del(k, &mut t), Some(Value::from(payload(k, k))));
            }
            assert_eq!(map.stats().keys, 20);
            for k in 0..40u64 {
                assert_eq!(map.get(k, &mut t).is_some(), k % 2 == 1, "{mode:?} key {k}");
            }
        }
    }

    #[test]
    fn update_overwrites_only_existing_keys() {
        for mode in [ApiMode::Short, ApiMode::Full] {
            let stm = ValShort::new();
            let map = StmHashMap::new(&stm, 16, mode);
            let mut t = stm.register();
            assert_eq!(map.update(5, b"nope", &mut t).unwrap(), None, "{mode:?}");
            assert_eq!(map.get(5, &mut t), None, "update must not insert");
            map.put(5, b"first", &mut t).unwrap();
            assert_eq!(
                map.update(5, &[9u8; 100], &mut t).unwrap(),
                Some(Value::new(b"first")),
                "{mode:?}"
            );
            assert_eq!(map.get(5, &mut t), Some(Value::new(&[9u8; 100])));
        }
    }

    #[test]
    fn in_tx_helpers_compose_reads_and_writes() {
        let stm = ValShort::new();
        let map = StmHashMap::new(&stm, 32, ApiMode::Short);
        let mut t = stm.register();
        map.put(1, &100u64.to_le_bytes(), &mut t).unwrap();
        map.put(2, &200u64.to_le_bytes(), &mut t).unwrap();
        let mut slot_a = ValueSlot::new();
        let mut slot_b = ValueSlot::new();
        let mut displaced: Vec<RetiredValue> = Vec::new();
        let moved = t
            .atomic(|tx| {
                displaced.clear();
                let a = map.read_in(1, tx)?.expect("key 1 present").as_u64();
                let b = map.read_in(2, tx)?.expect("key 2 present").as_u64();
                let wrote_a = map.write_in(1, &(a - 50).to_le_bytes(), &mut slot_a, tx)?;
                let wrote_b = map.write_in(2, &(b + 50).to_le_bytes(), &mut slot_b, tx)?;
                displaced.extend(wrote_a);
                displaced.extend(wrote_b);
                Ok(a + b)
            })
            .unwrap();
        slot_a.mark_published();
        slot_b.mark_published();
        assert_eq!(displaced.len(), 2);
        for d in displaced.drain(..) {
            d.retire(t.epoch());
        }
        assert_eq!(moved, 300);
        assert_eq!(map.get(1, &mut t).unwrap().as_u64(), 50);
        assert_eq!(map.get(2, &mut t).unwrap().as_u64(), 250);
        // Absent keys read as None / refuse the write.
        let mut slot = ValueSlot::new();
        let (missing, wrote) = t
            .atomic(|tx| {
                Ok((
                    map.read_in(9, tx)?,
                    map.write_in(9, b"x", &mut slot, tx)?.is_some(),
                ))
            })
            .unwrap();
        assert_eq!(missing, None);
        assert!(!wrote);
    }

    #[test]
    fn oversized_values_are_rejected() {
        let stm = ValShort::new();
        let map = StmHashMap::new(&stm, 8, ApiMode::Short);
        let mut t = stm.register();
        let huge = vec![0u8; MAX_VALUE_LEN + 1];
        assert_eq!(
            map.put(1, &huge, &mut t),
            Err(KvError::ValueTooLarge {
                len: MAX_VALUE_LEN + 1
            })
        );
        assert_eq!(map.get(1, &mut t), None, "rejected put must write nothing");
        assert_eq!(
            map.update(1, &huge, &mut t),
            Err(KvError::ValueTooLarge {
                len: MAX_VALUE_LEN + 1
            })
        );
        // The boundary itself is accepted.
        let max = vec![7u8; MAX_VALUE_LEN];
        assert_eq!(map.put(1, &max, &mut t).unwrap(), None);
        assert_eq!(map.get(1, &mut t), Some(Value::new(&max)));
    }

    #[test]
    fn capacity_hint_targets_the_load_factor() {
        let stm = ValShort::new();
        for capacity in [1usize, 5, 64, 1_000] {
            let map = StmHashMap::new(&stm, capacity, ApiMode::Short);
            let buckets = map.bucket_count();
            assert!(buckets.is_power_of_two());
            // Enough slots that `capacity` keys fit below ~0.75 load.
            assert!(
                capacity <= buckets * CAPACITY_PER_BUCKET + (CAPACITY_PER_BUCKET - 1),
                "capacity {capacity} got only {buckets} buckets"
            );
        }
    }
}
