//! The per-shard transactional hash map.
//!
//! [`StmHashMap`] is the integer-set hash table of `spectm-ds` grown into a
//! `u64 -> bytes` map: a fixed array of bucket heads, each the start of a
//! sorted singly-linked chain, with one additional transactional cell per
//! node holding the **value word** (inline payload or [`crate::ValueCell`]
//! pointer; see [`crate::value`]).  Bit 1 of a chain link is the
//! logical-deletion mark; bit 0 of every stored word stays clear for the
//! value-based layout's lock bit.
//!
//! Operations exist in two shapes, selected by [`ApiMode`]:
//!
//! * **Short** (the SpecTM usage) — traversal uses single-location reads;
//!   `get` validates liveness + value with a two-location read-only
//!   transaction; `put` on an existing key is a two-location read-write
//!   transaction, a fresh insert is a single-location CAS; `del` is a
//!   three-location read-write transaction that unlinks the node, marks its
//!   forward pointer and captures the value it held, all atomically.
//! * **Full** (the BaseTM usage) — each operation is one traditional
//!   transaction over the whole chain walk.  [`ApiMode::Fine`] is treated as
//!   `Full` here; the fine-grained ablation only exists for the paper's
//!   figure 6 sets.
//!
//! [`StmHashMap::read_in`] / [`StmHashMap::write_in`] run the same chain
//! walks *inside a caller-provided full transaction*, which is what lets
//! [`crate::ShardedKv::rmw`] compose an atomic multi-key update across
//! shards.  Removed nodes are retired through the STM's epoch collector.
//!
//! **Value-word ownership.**  A value word is owned by the map while it is
//! stored in a live node, and by exactly one thread the moment a committed
//! transaction displaces it — the overwriter that replaced it, or the
//! deleter that unlinked its node.  That owner (and nobody else) reads the
//! old payload and defers the cell's free through the epoch collector, so
//! concurrent readers copying bytes out under an epoch pin are always safe.
//! Nodes therefore never free value words themselves, except in
//! [`StmHashMap`]'s own `Drop`, where access is exclusive.

use spectm::{is_marked, mark, unmark, FullTx, Stm, StmThread, TxResult, Word};
use spectm_ds::ApiMode;

use crate::value::{decode_value, free_value, retire_value};
use crate::{KvError, RetiredValue, Value, ValueSlot, MAX_VALUE_LEN};

/// A chain node.  The key is immutable after publication; `next` and
/// `value` are accessed transactionally.
struct Node<S: Stm> {
    key: u64,
    value: S::Cell,
    next: S::Cell,
}

/// Outcome of one attempt at the short update-in-place protocol.
enum ShortUpdate {
    /// The value word was overwritten; holds the displaced word, now owned
    /// by this thread.
    Updated(Word),
    /// The node is logically deleted (still linked); nothing was written.
    Deleted,
    /// Validation or commit failed; search again and retry.
    Retry,
}

/// Reusable allocation slot for [`StmHashMap::put_in`].
///
/// A full transaction's body may run several times (once per conflict
/// retry); the slot keeps the speculatively allocated node alive across
/// retries so each logical insert allocates at most once.  After the
/// enclosing [`spectm::StmThread::atomic`] **commits an attempt in which
/// `put_in` returned `None`** (a fresh insert), the caller must call
/// [`NodeSlot::mark_published`]; otherwise dropping the slot frees the
/// never-published node.
pub struct NodeSlot<S: Stm> {
    ptr: *mut Node<S>,
}

impl<S: Stm> NodeSlot<S> {
    /// Creates an empty slot.
    pub fn new() -> Self {
        Self {
            ptr: std::ptr::null_mut(),
        }
    }

    /// Declares the slot's node published: a transaction in which
    /// [`StmHashMap::put_in`] returned `None` has committed, so the node is
    /// now owned by the map.
    pub fn mark_published(&mut self) {
        self.ptr = std::ptr::null_mut();
    }
}

impl<S: Stm> Default for NodeSlot<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Stm> Drop for NodeSlot<S> {
    fn drop(&mut self) {
        if !self.ptr.is_null() {
            // SAFETY: per the contract above, a non-null pointer at drop time
            // means the node was never published.  Its value word is managed
            // by the companion `ValueSlot` (nodes never own value words), so
            // only the node box is freed here.
            drop(unsafe { Box::from_raw(self.ptr) });
        }
    }
}

/// A node unlinked by [`StmHashMap::del_in`], awaiting epoch retirement.
///
/// After the enclosing transaction **commits**, call [`RetiredNode::retire`]
/// to hand the node to the epoch collector.  If the transaction aborted or
/// was retried, simply drop the value (the node is still linked; dropping
/// does nothing).
#[must_use = "call retire() after the transaction commits"]
pub struct RetiredNode<S: Stm> {
    ptr: *mut Node<S>,
}

impl<S: Stm> RetiredNode<S> {
    /// Defers destruction of the unlinked node through the thread's epoch
    /// collector.  Only call after the removing transaction committed.
    pub fn retire(self, thread: &mut S::Thread) {
        let pin = thread.epoch().pin();
        // SAFETY: the committed transaction unlinked and marked the node, so
        // it is unreachable for new operations; pinned readers are protected
        // by the epoch.  The node's value word is retired separately by the
        // companion `RetiredValue`.
        unsafe { pin.defer_drop(self.ptr) };
    }
}

/// A transactional hash map from `u64` keys to byte values (at most
/// [`MAX_VALUE_LEN`] bytes each).
///
/// # Examples
///
/// ```
/// use spectm::{Stm, variants::ValShort};
/// use spectm_ds::ApiMode;
/// use spectm_kv::{StmHashMap, Value};
///
/// let stm = ValShort::new();
/// let map = StmHashMap::new(&stm, 64, ApiMode::Short);
/// let mut thread = stm.register();
/// assert_eq!(map.put(17, b"alpha", &mut thread).unwrap(), None);
/// assert_eq!(map.get(17, &mut thread), Some(Value::new(b"alpha")));
/// assert_eq!(
///     map.put(17, b"a longer, out-of-line value", &mut thread).unwrap(),
///     Some(Value::new(b"alpha"))
/// );
/// assert_eq!(
///     map.del(17, &mut thread),
///     Some(Value::new(b"a longer, out-of-line value"))
/// );
/// assert_eq!(map.get(17, &mut thread), None);
/// ```
pub struct StmHashMap<S: Stm> {
    stm: S,
    buckets: Vec<S::Cell>,
    mask: u64,
    mode: ApiMode,
}

// SAFETY: raw node pointers inside cells follow the same discipline as the
// spectm-ds structures: published by CAS/commit, retired via epochs after
// unlinking, dereferenced only under an epoch pin.  Value cells follow the
// ownership rule in the module docs.
unsafe impl<S: Stm> Send for StmHashMap<S> {}
// SAFETY: as above.
unsafe impl<S: Stm> Sync for StmHashMap<S> {}

#[inline]
fn hash_key(key: u64) -> u64 {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17
}

#[inline]
pub(crate) fn check_len(value: &[u8]) -> Result<(), KvError> {
    if value.len() > MAX_VALUE_LEN {
        Err(KvError::ValueTooLarge { len: value.len() })
    } else {
        Ok(())
    }
}

impl<S: Stm> StmHashMap<S> {
    /// Creates a map with `buckets` chains (rounded up to a power of two),
    /// driven through the given [`ApiMode`].
    pub fn new(stm: &S, buckets: usize, mode: ApiMode) -> Self
    where
        S: Clone,
    {
        let len = buckets.next_power_of_two().max(1);
        Self {
            stm: stm.clone(),
            buckets: (0..len).map(|_| stm.new_cell(0)).collect(),
            mask: len as u64 - 1,
            mode,
        }
    }

    /// The API mode this instance drives.
    pub fn mode(&self) -> ApiMode {
        self.mode
    }

    /// Number of bucket chains.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    #[inline]
    fn bucket(&self, key: u64) -> &S::Cell {
        &self.buckets[(hash_key(key) & self.mask) as usize]
    }

    /// Hints the CPU to pull `key`'s bucket head into cache — the batched
    /// pipeline issues this a few operations ahead of the dispatch so the
    /// chain walk's first dependent load overlaps earlier operations
    /// (`crate::batch`).  Purely advisory; a no-op on architectures
    /// without a prefetch primitive.
    #[inline]
    pub fn prefetch_bucket(&self, key: u64) {
        let cell: *const S::Cell = self.bucket(key);
        #[cfg(target_arch = "x86_64")]
        // SAFETY: prefetch is a hint and never faults, for any address.
        unsafe {
            core::arch::x86_64::_mm_prefetch(cell.cast::<i8>(), core::arch::x86_64::_MM_HINT_T0)
        };
        #[cfg(not(target_arch = "x86_64"))]
        let _ = cell;
    }

    #[inline]
    fn node(ptr: Word) -> *mut Node<S> {
        unmark(ptr) as *mut Node<S>
    }

    fn alloc_node(&self, key: u64, word: Word, next: Word) -> *mut Node<S> {
        Box::into_raw(Box::new(Node {
            key,
            value: self.stm.new_cell(word),
            next: self.stm.new_cell(next),
        }))
    }

    /// Returns the value stored under `key`.
    pub fn get(&self, key: u64, thread: &mut S::Thread) -> Option<Value> {
        match self.mode {
            ApiMode::Short => self.get_short(key, thread),
            ApiMode::Full | ApiMode::Fine => self.get_full(key, thread),
        }
    }

    /// Stores `value` under `key`, returning the previous value if present.
    pub fn put(
        &self,
        key: u64,
        value: &[u8],
        thread: &mut S::Thread,
    ) -> Result<Option<Value>, KvError> {
        check_len(value)?;
        let mut slot = ValueSlot::new();
        Ok(match self.mode {
            ApiMode::Short => self.put_short(key, value, &mut slot, thread),
            ApiMode::Full | ApiMode::Fine => self.put_full(key, value, &mut slot, thread),
        })
    }

    /// Overwrites the value under an **existing** `key`, returning the
    /// previous value; returns `Ok(None)` (inserting nothing) if the key is
    /// absent.  The membership-preserving half of [`StmHashMap::put`]: in
    /// Short mode it is the same two-location read-write transaction, never
    /// the insert CAS.
    pub fn update(
        &self,
        key: u64,
        value: &[u8],
        thread: &mut S::Thread,
    ) -> Result<Option<Value>, KvError> {
        check_len(value)?;
        let mut slot = ValueSlot::new();
        Ok(self.update_with_slot(key, value, &mut slot, thread))
    }

    /// [`StmHashMap::update`] with a caller-provided [`ValueSlot`], so a
    /// following [`StmHashMap::put_in`] of the same payload reuses the
    /// encoding (the store's put fast path).  The length must already be
    /// checked.
    pub(crate) fn update_with_slot(
        &self,
        key: u64,
        value: &[u8],
        slot: &mut ValueSlot,
        thread: &mut S::Thread,
    ) -> Option<Value> {
        match self.mode {
            ApiMode::Short => self.update_short(key, value, slot, thread),
            ApiMode::Full | ApiMode::Fine => self.update_full(key, value, slot, thread),
        }
    }

    /// [`StmHashMap::update_with_slot`] for callers that already hold an
    /// epoch pin for the whole call (the batched pipeline): per-attempt pin
    /// entry/exit is skipped; only a committed overwrite takes a nested
    /// (counter-bump) pin to retire the displaced word.
    pub(crate) fn update_with_slot_pinned(
        &self,
        key: u64,
        value: &[u8],
        slot: &mut ValueSlot,
        thread: &mut S::Thread,
    ) -> Option<Value> {
        debug_assert!(thread.epoch().is_pinned(), "update_pinned without a pin");
        match self.mode {
            ApiMode::Short => {
                let word = slot.encode_once(value);
                let mut attempts = 0u32;
                loop {
                    if attempts > 0 {
                        thread.backoff().wait();
                    }
                    attempts += 1;
                    if let Ok(displaced) = self.try_update_attempt(key, word, thread) {
                        return displaced.map(|old| {
                            slot.mark_published();
                            // SAFETY: the committed overwrite displaced
                            // `old`, making this thread its exclusive owner.
                            let previous = unsafe { decode_value(old) };
                            let pin = thread.epoch().pin();
                            // SAFETY: as above; pinned readers are protected.
                            unsafe { retire_value(old, &pin) };
                            previous
                        });
                    }
                }
            }
            ApiMode::Full | ApiMode::Fine => self.update_full(key, value, slot, thread),
        }
    }

    /// Removes `key`, returning the value it held.
    pub fn del(&self, key: u64, thread: &mut S::Thread) -> Option<Value> {
        match self.mode {
            ApiMode::Short => self.del_short(key, thread),
            ApiMode::Full | ApiMode::Fine => self.del_full(key, thread),
        }
    }

    /// Collects every `(key, value)` pair currently present
    /// (non-transactional; only meaningful when no concurrent operations
    /// run).
    pub fn quiescent_snapshot(&self) -> Vec<(u64, Value)> {
        let mut out = Vec::new();
        for head in &self.buckets {
            let mut curr = S::peek(head);
            while unmark(curr) != 0 {
                // SAFETY: quiescence is required by the contract; nodes
                // cannot be retired concurrently.
                let node = unsafe { &*Self::node(curr) };
                let next = S::peek(&node.next);
                if !is_marked(next) {
                    // SAFETY: quiescence — the cell cannot be freed
                    // concurrently.
                    out.push((node.key, unsafe { decode_value(S::peek(&node.value)) }));
                }
                curr = next;
            }
        }
        out.sort_unstable();
        out
    }

    // ------------------------------------------------------------------
    // Short-transaction implementation
    // ------------------------------------------------------------------

    /// Walks the chain with single-location reads, returning the cell
    /// holding the link to the first node with `node.key >= key` plus that
    /// node's address (unmarked).  The caller must hold an epoch pin.
    fn search_short<'a>(&'a self, key: u64, thread: &mut S::Thread) -> (&'a S::Cell, Word) {
        let mut prev: &S::Cell = self.bucket(key);
        let mut curr = unmark(thread.single_read(prev));
        loop {
            if curr == 0 {
                return (prev, 0);
            }
            // SAFETY: `curr` was read from a reachable link under the
            // caller's epoch pin; retired nodes cannot be freed while pinned.
            let node = unsafe { &*Self::node(curr) };
            if node.key >= key {
                return (prev, curr);
            }
            let next = thread.single_read(&node.next);
            // Traversal passes through logically deleted nodes; their
            // forward pointers still lead onward.
            prev = &node.next;
            curr = unmark(next);
        }
    }

    fn get_short(&self, key: u64, thread: &mut S::Thread) -> Option<Value> {
        let mut attempts = 0u32;
        loop {
            if attempts > 0 {
                thread.backoff().wait();
            }
            attempts += 1;
            let _pin = thread.epoch().pin();
            if let Ok(result) = self.try_get_short(key, thread) {
                return result;
            }
        }
    }

    /// One attempt of the short get protocol; `Err` means validation
    /// failed and the caller should retry.  The caller must hold an epoch
    /// pin for the duration of the attempt.
    #[inline]
    fn try_get_short(&self, key: u64, thread: &mut S::Thread) -> Result<Option<Value>, ()> {
        let (_prev, curr) = self.search_short(key, thread);
        if curr == 0 {
            return Ok(None);
        }
        // SAFETY: protected by the caller's epoch pin.
        let node = unsafe { &*Self::node(curr) };
        if node.key != key {
            return Ok(None);
        }
        // Liveness and value must be observed together: a two-location
        // read-only short transaction.
        let next = thread.ro_read(0, &node.next);
        let value = thread.ro_read(1, &node.value);
        if !thread.ro_is_valid(2) {
            return Err(());
        }
        if is_marked(next) {
            return Ok(None);
        }
        // SAFETY: the caller's pin predates any retirement of the cell
        // behind the validated word, so it cannot have been freed yet.
        Ok(Some(unsafe { decode_value(value) }))
    }

    /// [`StmHashMap::get`] for callers that already hold an epoch pin for
    /// the whole call (the batched pipeline, which enters the epoch once
    /// per batch): per-attempt pin entry/exit is skipped entirely.  In
    /// Full mode this simply forwards — `atomic` nests its pins cheaply.
    pub(crate) fn get_pinned(&self, key: u64, thread: &mut S::Thread) -> Option<Value> {
        debug_assert!(thread.epoch().is_pinned(), "get_pinned without a pin");
        match self.mode {
            ApiMode::Short => {
                let mut attempts = 0u32;
                loop {
                    if attempts > 0 {
                        thread.backoff().wait();
                    }
                    attempts += 1;
                    if let Ok(result) = self.try_get_short(key, thread) {
                        return result;
                    }
                }
            }
            ApiMode::Full | ApiMode::Fine => self.get_full(key, thread),
        }
    }

    /// One attempt at the update-in-place protocol: a two-location short
    /// read-write transaction over (next, value).  Reading `next` both
    /// checks liveness and guards against a concurrent remove committing
    /// between the check and the write.  The caller must hold an epoch pin.
    fn try_update_short(&self, node: &Node<S>, word: Word, thread: &mut S::Thread) -> ShortUpdate {
        let next = thread.rw_read(0, &node.next);
        if !thread.rw_is_valid(1) {
            return ShortUpdate::Retry;
        }
        if is_marked(next) {
            // Logically deleted but still linked.
            thread.rw_abort(1);
            return ShortUpdate::Deleted;
        }
        let old = thread.rw_read(1, &node.value);
        if !thread.rw_is_valid(2) {
            return ShortUpdate::Retry;
        }
        if thread.rw_commit(2, &[next, word]) {
            ShortUpdate::Updated(old)
        } else {
            ShortUpdate::Retry
        }
    }

    fn put_short(
        &self,
        key: u64,
        value: &[u8],
        slot: &mut ValueSlot,
        thread: &mut S::Thread,
    ) -> Option<Value> {
        let word = slot.encode_once(value);
        let mut new_node: *mut Node<S> = std::ptr::null_mut();
        let mut attempts = 0u32;
        loop {
            if attempts > 0 {
                thread.backoff().wait();
            }
            attempts += 1;
            let pin = thread.epoch().pin();
            let (prev, curr) = self.search_short(key, thread);
            if curr != 0 {
                // SAFETY: protected by the epoch pin.
                let node = unsafe { &*Self::node(curr) };
                if node.key == key {
                    match self.try_update_short(node, word, thread) {
                        ShortUpdate::Updated(old) => {
                            slot.mark_published();
                            if !new_node.is_null() {
                                // SAFETY: never published; the value word it
                                // references is now owned by the map.
                                drop(unsafe { Box::from_raw(new_node) });
                            }
                            // SAFETY: the committed overwrite displaced
                            // `old`, making this thread its exclusive owner.
                            let previous = unsafe { decode_value(old) };
                            // SAFETY: as above; pinned readers are protected.
                            unsafe { retire_value(old, &pin) };
                            return Some(previous);
                        }
                        // Deleted: wait for the remover to unlink, then
                        // insert fresh.  Either way, retry the search.
                        ShortUpdate::Deleted | ShortUpdate::Retry => {
                            drop(pin);
                            continue;
                        }
                    }
                }
            }
            if new_node.is_null() {
                new_node = self.alloc_node(key, word, curr);
            } else {
                // SAFETY: still private to this thread.
                let node = unsafe { &*new_node };
                S::poke(&node.next, curr);
            }
            // Publish with a single-location CAS.
            if thread.single_cas(prev, curr, new_node as Word) == curr {
                slot.mark_published();
                return None;
            }
        }
    }

    /// One attempt of the update-only protocol (search + the
    /// [`StmHashMap::try_update_short`] dispatch): `Ok(None)` means the key
    /// is absent or logically deleted, `Ok(Some(old))` a committed
    /// overwrite that displaced `old` — now owned by this thread, which
    /// must decode and retire it — and `Err(())` a validation or commit
    /// failure to retry.  The caller must hold an epoch pin for the whole
    /// attempt.
    fn try_update_attempt(
        &self,
        key: u64,
        word: Word,
        thread: &mut S::Thread,
    ) -> Result<Option<Word>, ()> {
        let (_prev, curr) = self.search_short(key, thread);
        if curr == 0 {
            return Ok(None);
        }
        // SAFETY: protected by the caller's epoch pin.
        let node = unsafe { &*Self::node(curr) };
        if node.key != key {
            return Ok(None);
        }
        match self.try_update_short(node, word, thread) {
            ShortUpdate::Updated(old) => Ok(Some(old)),
            // Logically deleted: the key is absent for this operation.
            ShortUpdate::Deleted => Ok(None),
            ShortUpdate::Retry => Err(()),
        }
    }

    /// Short-mode update-only path: the found-node branch of `put_short`
    /// (the same [`StmHashMap::try_update_short`] protocol) without the
    /// insert fallback.
    fn update_short(
        &self,
        key: u64,
        value: &[u8],
        slot: &mut ValueSlot,
        thread: &mut S::Thread,
    ) -> Option<Value> {
        let word = slot.encode_once(value);
        let mut attempts = 0u32;
        loop {
            if attempts > 0 {
                thread.backoff().wait();
            }
            attempts += 1;
            let pin = thread.epoch().pin();
            if let Ok(displaced) = self.try_update_attempt(key, word, thread) {
                return displaced.map(|old| {
                    slot.mark_published();
                    // SAFETY: the committed overwrite displaced `old`,
                    // making this thread its exclusive owner.
                    let previous = unsafe { decode_value(old) };
                    // SAFETY: as above; pinned readers are protected.
                    unsafe { retire_value(old, &pin) };
                    previous
                });
            }
        }
    }

    fn del_short(&self, key: u64, thread: &mut S::Thread) -> Option<Value> {
        let mut attempts = 0u32;
        loop {
            if attempts > 0 {
                thread.backoff().wait();
            }
            attempts += 1;
            let pin = thread.epoch().pin();
            let (prev, curr) = self.search_short(key, thread);
            if curr == 0 {
                return None;
            }
            // SAFETY: protected by the epoch pin.
            let node = unsafe { &*Self::node(curr) };
            if node.key != key {
                return None;
            }
            // A three-location short transaction: unlink the node, mark its
            // forward pointer and capture its value, atomically.
            let prev_val = thread.rw_read(0, prev);
            if !thread.rw_is_valid(1) {
                drop(pin);
                continue;
            }
            if prev_val != curr {
                thread.rw_abort(1);
                drop(pin);
                continue;
            }
            let next_val = thread.rw_read(1, &node.next);
            if !thread.rw_is_valid(2) {
                drop(pin);
                continue;
            }
            if is_marked(next_val) {
                // Already logically deleted by someone else.
                thread.rw_abort(2);
                return None;
            }
            let value = thread.rw_read(2, &node.value);
            if !thread.rw_is_valid(3) {
                drop(pin);
                continue;
            }
            if thread.rw_commit(3, &[unmark(next_val), mark(next_val), value]) {
                // SAFETY: the node is now unlinked and marked; new
                // traversals cannot reach it, pinned readers are protected.
                unsafe { pin.defer_drop(Self::node(curr)) };
                // SAFETY: the committed delete made this thread the value
                // word's exclusive owner (no overwrite can touch a marked
                // node).
                let previous = unsafe { decode_value(value) };
                // SAFETY: as above.
                unsafe { retire_value(value, &pin) };
                return Some(previous);
            }
            drop(pin);
        }
    }

    // ------------------------------------------------------------------
    // Traditional-transaction implementation
    // ------------------------------------------------------------------

    fn get_full(&self, key: u64, thread: &mut S::Thread) -> Option<Value> {
        thread
            .atomic(|tx| self.read_in(key, tx))
            .expect("get_full is never cancelled")
    }

    /// Body of a full-mode insert-or-update inside the caller's transaction.
    /// `new_node` is the lazily filled allocation slot, reused across
    /// conflict retries; `word` is the pre-encoded value word.  Returns the
    /// displaced word on overwrite (owned by the caller once the
    /// transaction commits).
    fn put_body(
        &self,
        key: u64,
        word: Word,
        new_node: &mut *mut Node<S>,
        tx: &mut FullTx<'_, S::Thread>,
    ) -> TxResult<Option<Word>> {
        let mut prev_cell: &S::Cell = self.bucket(key);
        let mut curr = unmark(tx.read(prev_cell)?);
        loop {
            if curr != 0 {
                // SAFETY: the transaction holds an epoch pin for the
                // whole attempt; opacity guarantees reachability.
                let node = unsafe { &*Self::node(curr) };
                if node.key == key {
                    if is_marked(tx.read(&node.next)?) {
                        // Deleted but not yet unlinked: restart.
                        return tx.restart();
                    }
                    let old = tx.read(&node.value)?;
                    tx.write(&node.value, word)?;
                    return Ok(Some(old));
                }
                if node.key < key {
                    prev_cell = &node.next;
                    curr = unmark(tx.read(prev_cell)?);
                    continue;
                }
            }
            // Allocate lazily, once, and reuse across retries.
            if new_node.is_null() {
                *new_node = self.alloc_node(key, word, curr);
            }
            // SAFETY: still private until the commit publishes it.
            let node = unsafe { &**new_node };
            S::poke(&node.next, curr);
            S::poke(&node.value, word);
            tx.write(prev_cell, *new_node as Word)?;
            return Ok(None);
        }
    }

    fn put_full(
        &self,
        key: u64,
        value: &[u8],
        slot: &mut ValueSlot,
        thread: &mut S::Thread,
    ) -> Option<Value> {
        let word = slot.encode_once(value);
        let mut new_node: *mut Node<S> = std::ptr::null_mut();
        let previous = thread
            .atomic(|tx| self.put_body(key, word, &mut new_node, tx))
            .expect("put_full is never cancelled");
        // Whether by insert or by overwrite, the committed attempt stored
        // the slot's word.
        slot.mark_published();
        previous.map(|old| {
            if !new_node.is_null() {
                // SAFETY: never published (the committed outcome was an
                // update); its value word now lives in the existing node.
                drop(unsafe { Box::from_raw(new_node) });
            }
            let pin = thread.epoch().pin();
            // SAFETY: the committed overwrite displaced `old`, making this
            // thread its exclusive owner; pinned readers are protected.
            let out = unsafe { decode_value(old) };
            // SAFETY: as above.
            unsafe { retire_value(old, &pin) };
            out
        })
    }

    /// Full-mode update-only path: one transaction running the
    /// [`StmHashMap::write_in`] walk.
    fn update_full(
        &self,
        key: u64,
        value: &[u8],
        slot: &mut ValueSlot,
        thread: &mut S::Thread,
    ) -> Option<Value> {
        let mut displaced: Option<RetiredValue> = None;
        let wrote = thread
            .atomic(|tx| {
                displaced = None;
                displaced = self.write_in(key, value, slot, tx)?;
                Ok(displaced.is_some())
            })
            .expect("update is never cancelled");
        if !wrote {
            return None;
        }
        slot.mark_published();
        let displaced = displaced.take().expect("wrote implies a displaced word");
        let out = displaced.value();
        displaced.retire(thread.epoch());
        Some(out)
    }

    /// Inserts or updates `key` inside an already-running full transaction,
    /// regardless of this instance's [`ApiMode`].  Returns the displaced old
    /// value (`None` means a fresh node was inserted).
    ///
    /// `slot` carries the speculative node allocation across conflict
    /// retries of the enclosing transaction (see [`NodeSlot`] for the
    /// publication contract) and `value_slot` the value word likewise (mark
    /// it published after **any** committed outcome — insert and overwrite
    /// both store the word).  A returned [`RetiredValue`] must be retired
    /// after the commit, per its contract.  `value` must be at most
    /// [`MAX_VALUE_LEN`] bytes (checked by the public entry points).
    pub fn put_in(
        &self,
        key: u64,
        value: &[u8],
        value_slot: &mut ValueSlot,
        slot: &mut NodeSlot<S>,
        tx: &mut FullTx<'_, S::Thread>,
    ) -> TxResult<Option<RetiredValue>> {
        debug_assert!(value.len() <= MAX_VALUE_LEN);
        if !slot.ptr.is_null() {
            // SAFETY: the slot's node is still private to this thread.
            debug_assert_eq!(unsafe { (*slot.ptr).key }, key, "one NodeSlot per key");
        }
        let word = value_slot.encode_once(value);
        Ok(self
            .put_body(key, word, &mut slot.ptr, tx)?
            .map(RetiredValue::new))
    }

    /// Body of a full-mode delete inside the caller's transaction.  Returns
    /// the captured value word and the unlinked node pointer.
    fn del_body(
        &self,
        key: u64,
        tx: &mut FullTx<'_, S::Thread>,
    ) -> TxResult<Option<(Word, *mut Node<S>)>> {
        let mut prev_cell: &S::Cell = self.bucket(key);
        let mut curr = unmark(tx.read(prev_cell)?);
        loop {
            if curr == 0 {
                return Ok(None);
            }
            // SAFETY: see `put_body`.
            let node = unsafe { &*Self::node(curr) };
            if node.key > key {
                return Ok(None);
            }
            if node.key == key {
                let next = tx.read(&node.next)?;
                if is_marked(next) {
                    return Ok(None);
                }
                let value = tx.read(&node.value)?;
                tx.write(prev_cell, unmark(next))?;
                tx.write(&node.next, mark(next))?;
                return Ok(Some((value, Self::node(curr))));
            }
            prev_cell = &node.next;
            curr = unmark(tx.read(prev_cell)?);
        }
    }

    fn del_full(&self, key: u64, thread: &mut S::Thread) -> Option<Value> {
        let removed = thread
            .atomic(|tx| self.del_body(key, tx))
            .expect("del_full is never cancelled");
        removed.map(|(value, unlinked)| {
            let pin = thread.epoch().pin();
            // SAFETY: the committed transaction unlinked and marked the
            // node; it is unreachable for new transactions.
            unsafe { pin.defer_drop(unlinked) };
            // SAFETY: the committed delete made this thread the value
            // word's exclusive owner.
            let out = unsafe { decode_value(value) };
            // SAFETY: as above.
            unsafe { retire_value(value, &pin) };
            out
        })
    }

    /// Removes `key` inside an already-running full transaction, regardless
    /// of this instance's [`ApiMode`].  Returns the captured value and the
    /// unlinked node (both to be retired **after** the transaction commits;
    /// see [`RetiredValue`] and [`RetiredNode`]), or `None` if the key was
    /// absent.
    pub fn del_in(
        &self,
        key: u64,
        tx: &mut FullTx<'_, S::Thread>,
    ) -> TxResult<Option<(RetiredValue, RetiredNode<S>)>> {
        Ok(self
            .del_body(key, tx)?
            .map(|(value, ptr)| (RetiredValue::new(value), RetiredNode { ptr })))
    }

    // ------------------------------------------------------------------
    // Composition inside a caller-provided full transaction
    // ------------------------------------------------------------------

    /// Reads the value under `key` inside an already-running full
    /// transaction (the building block of cross-shard read-modify-write).
    pub fn read_in(&self, key: u64, tx: &mut FullTx<'_, S::Thread>) -> TxResult<Option<Value>> {
        let mut curr = unmark(tx.read(self.bucket(key))?);
        loop {
            if curr == 0 {
                return Ok(None);
            }
            // SAFETY: `StmThread::atomic` pins the epoch for the whole
            // attempt; opacity guarantees `curr` was reachable.
            let node = unsafe { &*Self::node(curr) };
            if node.key == key {
                if is_marked(tx.read(&node.next)?) {
                    return Ok(None);
                }
                let word = tx.read(&node.value)?;
                // SAFETY: the attempt's epoch pin predates any retirement
                // of the cell behind a word this read validated.
                return Ok(Some(unsafe { decode_value(word) }));
            }
            if node.key > key {
                return Ok(None);
            }
            curr = unmark(tx.read(&node.next)?);
        }
    }

    /// Overwrites the value under an **existing** `key` inside an
    /// already-running full transaction.  Returns `Ok(None)` (writing
    /// nothing) if the key is absent; insertion under a composed transaction
    /// goes through [`StmHashMap::put_in`].
    ///
    /// `slot` is re-encoded on every call (freeing the previous attempt's
    /// unpublished allocation), so retried bodies may pass different
    /// payloads.  After the enclosing transaction commits, mark the slot
    /// published and retire the returned [`RetiredValue`]; on abort, drop
    /// both.  `value` must be at most [`MAX_VALUE_LEN`] bytes (checked by
    /// the public entry points).
    pub fn write_in(
        &self,
        key: u64,
        value: &[u8],
        slot: &mut ValueSlot,
        tx: &mut FullTx<'_, S::Thread>,
    ) -> TxResult<Option<RetiredValue>> {
        debug_assert!(value.len() <= MAX_VALUE_LEN);
        let mut curr = unmark(tx.read(self.bucket(key))?);
        loop {
            if curr == 0 {
                return Ok(None);
            }
            // SAFETY: see `read_in`.
            let node = unsafe { &*Self::node(curr) };
            if node.key == key {
                if is_marked(tx.read(&node.next)?) {
                    return Ok(None);
                }
                let old = tx.read(&node.value)?;
                tx.write(&node.value, slot.encode(value))?;
                return Ok(Some(RetiredValue::new(old)));
            }
            if node.key > key {
                return Ok(None);
            }
            curr = unmark(tx.read(&node.next)?);
        }
    }
}

impl<S: Stm> Drop for StmHashMap<S> {
    fn drop(&mut self) {
        // Exclusive access: free every remaining node, and its value cell,
        // directly.
        for head in &self.buckets {
            let mut curr = S::peek(head);
            while unmark(curr) != 0 {
                // SAFETY: nodes were allocated with `Box::into_raw`; during
                // drop nothing else references them.
                let node = unsafe { Box::from_raw(Self::node(curr)) };
                // SAFETY: exclusive access; the word is still owned by the
                // map, so nobody else will free it.
                unsafe { free_value(S::peek(&node.value)) };
                curr = S::peek(&node.next);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectm::variants::{OrecFullG, TvarShortG, ValShort};
    use std::collections::BTreeMap;

    /// Deterministic payload whose length scales with the draw, crossing
    /// the inline-bytes (≤7), inline-int (8) and out-of-line regimes.
    fn payload(k: u64, v: u64) -> Vec<u8> {
        let len = (v % 40) as usize;
        (0..len)
            .map(|i| (k as u8).wrapping_mul(31) ^ (v as u8).wrapping_add(i as u8))
            .collect()
    }

    fn oracle_test<S: Stm + Clone>(stm: S, mode: ApiMode) {
        let map = StmHashMap::new(&stm, 32, mode);
        let mut t = stm.register();
        let mut oracle: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        let mut state = 88172645463325252u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..2_000 {
            let k = rng() % 200;
            let v = rng() >> 2;
            let bytes = payload(k, v);
            match rng() % 3 {
                0 => assert_eq!(
                    map.put(k, &bytes, &mut t).unwrap(),
                    oracle.insert(k, bytes.clone()).map(Value::from)
                ),
                1 => assert_eq!(map.del(k, &mut t), oracle.remove(&k).map(Value::from)),
                _ => assert_eq!(map.get(k, &mut t), oracle.get(&k).map(|b| Value::new(b))),
            }
        }
        assert_eq!(
            map.quiescent_snapshot(),
            oracle
                .into_iter()
                .map(|(k, v)| (k, Value::from(v)))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn oracle_all_modes_and_layouts() {
        oracle_test(ValShort::new(), ApiMode::Short);
        oracle_test(ValShort::new(), ApiMode::Full);
        oracle_test(TvarShortG::new(), ApiMode::Short);
        oracle_test(OrecFullG::new(), ApiMode::Full);
        oracle_test(OrecFullG::new(), ApiMode::Short);
    }

    #[test]
    fn update_overwrites_only_existing_keys() {
        for mode in [ApiMode::Short, ApiMode::Full] {
            let stm = ValShort::new();
            let map = StmHashMap::new(&stm, 16, mode);
            let mut t = stm.register();
            assert_eq!(map.update(5, b"nope", &mut t).unwrap(), None, "{mode:?}");
            assert_eq!(map.get(5, &mut t), None, "update must not insert");
            map.put(5, b"first", &mut t).unwrap();
            assert_eq!(
                map.update(5, &[9u8; 100], &mut t).unwrap(),
                Some(Value::new(b"first")),
                "{mode:?}"
            );
            assert_eq!(map.get(5, &mut t), Some(Value::new(&[9u8; 100])));
        }
    }

    #[test]
    fn in_tx_helpers_compose_reads_and_writes() {
        let stm = ValShort::new();
        let map = StmHashMap::new(&stm, 32, ApiMode::Short);
        let mut t = stm.register();
        map.put(1, &100u64.to_le_bytes(), &mut t).unwrap();
        map.put(2, &200u64.to_le_bytes(), &mut t).unwrap();
        let mut slot_a = ValueSlot::new();
        let mut slot_b = ValueSlot::new();
        let mut displaced: Vec<RetiredValue> = Vec::new();
        let moved = t
            .atomic(|tx| {
                displaced.clear();
                let a = map.read_in(1, tx)?.expect("key 1 present").as_u64();
                let b = map.read_in(2, tx)?.expect("key 2 present").as_u64();
                let wrote_a = map.write_in(1, &(a - 50).to_le_bytes(), &mut slot_a, tx)?;
                let wrote_b = map.write_in(2, &(b + 50).to_le_bytes(), &mut slot_b, tx)?;
                displaced.extend(wrote_a);
                displaced.extend(wrote_b);
                Ok(a + b)
            })
            .unwrap();
        slot_a.mark_published();
        slot_b.mark_published();
        assert_eq!(displaced.len(), 2);
        for d in displaced.drain(..) {
            d.retire(t.epoch());
        }
        assert_eq!(moved, 300);
        assert_eq!(map.get(1, &mut t).unwrap().as_u64(), 50);
        assert_eq!(map.get(2, &mut t).unwrap().as_u64(), 250);
        // Absent keys read as None / refuse the write.
        let mut slot = ValueSlot::new();
        let (missing, wrote) = t
            .atomic(|tx| {
                Ok((
                    map.read_in(9, tx)?,
                    map.write_in(9, b"x", &mut slot, tx)?.is_some(),
                ))
            })
            .unwrap();
        assert_eq!(missing, None);
        assert!(!wrote);
    }

    #[test]
    fn oversized_values_are_rejected() {
        let stm = ValShort::new();
        let map = StmHashMap::new(&stm, 8, ApiMode::Short);
        let mut t = stm.register();
        let huge = vec![0u8; MAX_VALUE_LEN + 1];
        assert_eq!(
            map.put(1, &huge, &mut t),
            Err(KvError::ValueTooLarge {
                len: MAX_VALUE_LEN + 1
            })
        );
        assert_eq!(map.get(1, &mut t), None, "rejected put must write nothing");
        assert_eq!(
            map.update(1, &huge, &mut t),
            Err(KvError::ValueTooLarge {
                len: MAX_VALUE_LEN + 1
            })
        );
        // The boundary itself is accepted.
        let max = vec![7u8; MAX_VALUE_LEN];
        assert_eq!(map.put(1, &max, &mut t).unwrap(), None);
        assert_eq!(map.get(1, &mut t), Some(Value::new(&max)));
    }
}
