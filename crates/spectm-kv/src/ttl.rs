//! TTL and eviction support types: the store's clock, the cache
//! configuration, and the background reclaimer thread.
//!
//! The mechanism lives in [`crate::map`] (every item carries a deadline
//! word beside its value word; every home bucket carries a frequency byte
//! in its stat word) and the policy lives in [`crate::ShardedKv`] (lazy
//! expiry on read, [`crate::ShardedKv::sweep_step`] incremental sweeps,
//! byte-budget eviction).  This module holds the pieces around them:
//!
//! * [`Clock`] — the millisecond time source deadlines are computed
//!   against.  Production uses a monotonic clock anchored at store
//!   creation; tests inject a manually advanced counter so expiry is
//!   deterministic.
//! * [`CacheConfig`] — byte budget, default TTL, eviction policy, clock.
//! * [`Reclaimer`] — a background thread that registers with the store's
//!   STM and drives [`crate::ShardedKv::sweep_step`] on an interval, the
//!   way Pelikan's segment reclaimer walks TTL buckets in the background.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use spectm::Stm;

use crate::store::ShardedKv;

/// The millisecond time source TTL deadlines are computed against.
///
/// Cloning a clock shares its origin: two clones always agree on
/// [`Clock::now_ms`], which is what lets the store, its reclaimer, and a
/// test harness reason about the same deadlines.
#[derive(Clone)]
pub struct Clock(ClockInner);

#[derive(Clone)]
enum ClockInner {
    /// Milliseconds elapsed since the clock was created (monotonic, never
    /// jumps backwards).
    Monotonic(Instant),
    /// Milliseconds read from a shared counter advanced by hand — the
    /// deterministic test clock.
    Manual(Arc<AtomicU64>),
}

impl Clock {
    /// A monotonic clock starting at zero now.
    pub fn monotonic() -> Self {
        Clock(ClockInner::Monotonic(Instant::now()))
    }

    /// A manually driven clock reading the shared counter (store the
    /// milliseconds to advance time).  Deterministic-test support.
    pub fn manual(ms: &Arc<AtomicU64>) -> Self {
        Clock(ClockInner::Manual(Arc::clone(ms)))
    }

    /// Milliseconds on this clock.
    #[inline]
    pub fn now_ms(&self) -> u64 {
        match &self.0 {
            ClockInner::Monotonic(origin) => origin.elapsed().as_millis() as u64,
            // ORDERING: the manual clock is a test convenience; a slightly
            // stale read only delays an expiry by one observation.
            ClockInner::Manual(ms) => ms.load(Ordering::Relaxed),
        }
    }
}

impl Default for Clock {
    fn default() -> Self {
        Self::monotonic()
    }
}

impl std::fmt::Debug for Clock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            ClockInner::Monotonic(_) => write!(f, "Clock::Monotonic"),
            ClockInner::Manual(ms) => {
                // ORDERING: debug formatting; any recent value will do.
                write!(f, "Clock::Manual({}ms)", ms.load(Ordering::Relaxed))
            }
        }
    }
}

/// How the sweep picks victims once the byte budget is exceeded.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// CLOCK-style second chance over the per-bucket frequency byte: a
    /// bucket with a non-zero frequency is spared (and its counter halved)
    /// and the cursor moves on; only cold buckets — untouched since their
    /// counter last decayed to zero — are emptied.  Under skewed traffic
    /// this keeps the hot working set resident.
    #[default]
    Freq,
    /// Evict whatever bucket the sweep cursor reaches next, ignoring the
    /// frequency byte — the baseline the frequency policy is measured
    /// against.
    Fifo,
}

/// Cache behaviour of a [`ShardedKv`]: byte budget, default TTL, eviction
/// policy, and the clock deadlines are computed against.
///
/// The default configuration disables everything: no budget, no default
/// TTL, a monotonic clock — the store behaves exactly like the pre-TTL
/// store unless asked otherwise.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Soft ceiling on [`ShardedKv::live_bytes`]; `None` disables
    /// eviction.  Writes may overshoot between sweeps — the invariant is
    /// that accounting is at or under the budget **after** a sweep.
    pub max_bytes: Option<u64>,
    /// TTL applied to puts that do not carry their own; `0` means entries
    /// never expire by default.
    pub default_ttl_ms: u64,
    /// Victim selection once `max_bytes` is exceeded.
    pub policy: EvictionPolicy,
    /// Time source for deadlines.
    pub clock: Clock,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            max_bytes: None,
            default_ttl_ms: 0,
            policy: EvictionPolicy::Freq,
            clock: Clock::monotonic(),
        }
    }
}

/// Snapshot of a store's cache counters (see
/// [`ShardedKv::cache_stats`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Reads that returned a live value.
    pub hits: u64,
    /// Reads that found nothing (absent or expired).
    pub misses: u64,
    /// Entries removed because their deadline passed (lazily on read or by
    /// a sweep).
    pub expired: u64,
    /// Live entries removed by byte-budget eviction.
    pub evicted: u64,
    /// Current live-byte accounting (payload bytes plus the fixed per-item
    /// overhead).
    pub live_bytes: u64,
}

impl CacheStats {
    /// `hits / (hits + misses)`, or 1.0 when no reads were recorded.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 1.0;
        }
        self.hits as f64 / total as f64
    }
}

/// What one [`ShardedKv::sweep_step`] call did (test and logging support).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SweepOutcome {
    /// Home buckets visited by the expiry pass.
    pub scanned: usize,
    /// Entries removed because their deadline had passed.
    pub expired: u64,
    /// Live entries removed by byte-budget eviction.
    pub evicted: u64,
}

/// A background thread driving [`ShardedKv::sweep_step`] on an interval.
///
/// The reclaimer registers its own STM thread over the shared store, so it
/// participates in epoch reclamation and conflict resolution exactly like a
/// worker; the store needs no special synchronization with it.  Dropping
/// the handle (or calling [`Reclaimer::stop`]) shuts the thread down.
pub struct Reclaimer {
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Reclaimer {
    /// Spawns the reclaimer: every `interval` it sweeps `buckets_per_sweep`
    /// home buckets (expiry pass; then eviction while the store is over
    /// budget).
    pub fn spawn<S>(store: Arc<ShardedKv<S>>, interval: Duration, buckets_per_sweep: usize) -> Self
    where
        S: Stm + Clone + Send + Sync + 'static,
    {
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let handle = std::thread::Builder::new()
            .name("kv-reclaimer".into())
            .spawn(move || {
                let mut thread = store.register();
                // ORDERING: the flag is a plain shutdown latch; the join in
                // `stop` is the synchronization point.
                while !flag.load(Ordering::Relaxed) {
                    store.sweep_step(buckets_per_sweep, &mut thread);
                    std::thread::park_timeout(interval);
                }
            })
            .expect("spawn kv-reclaimer");
        Self {
            shutdown,
            handle: Some(handle),
        }
    }

    /// Stops and joins the reclaimer thread.
    pub fn stop(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if let Some(handle) = self.handle.take() {
            // ORDERING: see `spawn`.
            self.shutdown.store(true, Ordering::Relaxed);
            handle.thread().unpark();
            let _ = handle.join();
        }
    }
}

impl Drop for Reclaimer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}
