//! The shard router: key -> shard assignment.
//!
//! The router owns nothing but a mask; it exists as its own type so the
//! assignment function has a single definition shared by the store, the
//! tests and any future placement-aware client (e.g. one that batches
//! operations per shard before dispatching them).

/// Routes keys to one of a power-of-two number of shards.
///
/// The mixing function is a multiply by an odd constant followed by taking
/// the *top* bits — deliberately different from the Fibonacci hash the
/// bucket chains use (multiply + low-ish bits), so a key's shard index and
/// its bucket index within the shard are decorrelated and a pathological key
/// set cannot alias both at once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    mask: u64,
}

impl ShardRouter {
    /// Creates a router over `shards` shards (rounded up to a power of two,
    /// minimum one).
    pub fn new(shards: usize) -> Self {
        let n = shards.next_power_of_two().max(1);
        Self { mask: n as u64 - 1 }
    }

    /// Number of shards routed to.
    pub fn shard_count(&self) -> usize {
        (self.mask + 1) as usize
    }

    /// The shard owning `key`; always less than [`ShardRouter::shard_count`].
    #[inline]
    pub fn route(&self, key: u64) -> usize {
        ((key.wrapping_mul(0xA24B_AED4_963E_E407) >> 32) & self.mask) as usize
    }

    /// Reference grouping shape, kept only as a test oracle for
    /// [`ShardRouter::group_runs`]: partitions the positions of `keys`
    /// into per-shard groups, where group `s` holds the indexes `i` (in
    /// ascending order) whose `keys[i]` routes to shard `s`.  Every input
    /// position appears in exactly one group — duplicates included, since
    /// positions rather than keys are grouped — so the concatenation of
    /// the groups is a permutation of `0..keys.len()`.  Production
    /// grouping (the batched dispatch path) uses `group_runs` exclusively.
    #[cfg(test)]
    fn group_indices(&self, keys: impl IntoIterator<Item = u64>) -> Vec<Vec<usize>> {
        let mut groups: Vec<Vec<usize>> = (0..self.shard_count()).map(|_| Vec::new()).collect();
        for (i, key) in keys.into_iter().enumerate() {
            groups[self.route(key)].push(i);
        }
        groups
    }

    /// Partitions the positions of `keys` into per-shard runs: a counting
    /// sort producing `(order, ends)` where shard `s`'s group is
    /// `order[start..ends[s]]` with `start = if s == 0 { 0 } else
    /// { ends[s - 1] }` — the positions `i` (ascending) whose `keys[i]`
    /// route to shard `s`; every position appears exactly once, duplicates
    /// included, so `order` is a permutation of `0..len`.  Two buffer
    /// allocations total instead of one `Vec` per shard (the batched hot
    /// path — `ShardedKv::execute_batch` — runs this once per batch).
    /// `keys` is consumed twice, so it must be cheaply cloneable.
    pub fn group_runs(&self, keys: impl Iterator<Item = u64> + Clone) -> (Vec<usize>, Vec<usize>) {
        let mut order = Vec::new();
        let mut bounds = Vec::new();
        self.group_runs_into(keys, &mut order, &mut bounds);
        (order, bounds)
    }

    /// [`ShardRouter::group_runs`] into caller-provided buffers (cleared
    /// first), so a batch loop reusing its buffers performs **zero**
    /// allocations per grouping — allocation is the dominant cost of
    /// grouping small batches.
    pub fn group_runs_into(
        &self,
        keys: impl Iterator<Item = u64> + Clone,
        order: &mut Vec<usize>,
        bounds: &mut Vec<usize>,
    ) {
        // Pass 1: count positions per shard.
        bounds.clear();
        bounds.resize(self.shard_count(), 0);
        let mut n = 0usize;
        for key in keys.clone() {
            bounds[self.route(key)] += 1;
            n += 1;
        }
        // Exclusive prefix sum: `bounds[s]` is now the start of run `s`.
        let mut start = 0usize;
        for b in bounds.iter_mut() {
            let count = *b;
            *b = start;
            start += count;
        }
        // Pass 2: place each position at its run's cursor.  Each placement
        // advances the cursor, so when the loop finishes `bounds[s]` has
        // become the exclusive *end* of run `s`.
        order.clear();
        order.resize(n, 0);
        for (i, key) in keys.enumerate() {
            let s = self.route(key);
            order[bounds[s]] = i;
            bounds[s] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rounds_up_to_power_of_two() {
        assert_eq!(ShardRouter::new(0).shard_count(), 1);
        assert_eq!(ShardRouter::new(1).shard_count(), 1);
        assert_eq!(ShardRouter::new(3).shard_count(), 4);
        assert_eq!(ShardRouter::new(8).shard_count(), 8);
        assert_eq!(ShardRouter::new(9).shard_count(), 16);
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let r = ShardRouter::new(1);
        for key in [0u64, 1, 17, u64::MAX] {
            assert_eq!(r.route(key), 0);
        }
    }

    /// Gray-method zipfian rank sampler (the YCSB draw), self-contained so
    /// the router crate needs no harness dependency.
    struct Zipf {
        n: u64,
        theta: f64,
        alpha: f64,
        zetan: f64,
        eta: f64,
    }

    impl Zipf {
        fn new(n: u64, theta: f64) -> Self {
            let zetan: f64 = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum();
            let zeta2 = 1.0 + 0.5f64.powf(theta);
            Self {
                n,
                theta,
                alpha: 1.0 / (1.0 - theta),
                zetan,
                eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
            }
        }

        fn sample(&self, u: f64) -> u64 {
            let uz = u * self.zetan;
            if uz < 1.0 {
                return 0;
            }
            if uz < 1.0 + 0.5f64.powf(self.theta) {
                return 1;
            }
            let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
            rank.min(self.n - 1)
        }
    }

    /// Guards the multiplicative-hash constant in [`ShardRouter::route`]:
    /// one million sequential keys (the YCSB loader's key space) and one
    /// million scrambled-zipfian draws (its runtime skew) must both spread
    /// across 16 shards within a sane bound of the uniform fair share.
    #[test]
    fn million_key_loads_stay_near_uniform() {
        const SHARDS: usize = 16;
        const DRAWS: u64 = 1_000_000;
        let router = ShardRouter::new(SHARDS);
        let fair = (DRAWS as usize) / SHARDS;

        // Sequential keys: the loader inserts 0..n densely, so any aliasing
        // between the hash constant and small strides would starve shards.
        let mut counts = [0usize; SHARDS];
        for key in 0..DRAWS {
            counts[router.route(key)] += 1;
        }
        for (shard, &c) in counts.iter().enumerate() {
            assert!(
                c > fair / 2 && c < fair * 2,
                "sequential: shard {shard} got {c} of {DRAWS} (fair {fair})"
            );
        }

        // Scrambled zipfian (theta 0.99, the YCSB default): the hottest
        // single key carries ~6.5% of all draws by itself, so the shard it
        // lands on legitimately exceeds the 6.25% fair share — but no shard
        // may collect a pile-up of hot keys beyond a small multiple of it.
        let zipf = Zipf::new(DRAWS, 0.99);
        let mut counts = [0usize; SHARDS];
        let mut state = 0x9E37_79B9_97F4_A7C1u64;
        for _ in 0..DRAWS {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            let key = zipf.sample(u).wrapping_mul(0x9E37_79B9_7F4A_7C15) % DRAWS;
            counts[router.route(key)] += 1;
        }
        for (shard, &c) in counts.iter().enumerate() {
            assert!(
                c < fair * 4,
                "zipfian: shard {shard} got {c} of {DRAWS} (fair {fair})"
            );
        }
        assert!(
            counts.iter().all(|&c| c > 0),
            "zipfian draws left a shard idle"
        );
    }

    proptest! {
        #[test]
        fn route_is_always_in_range(key in 0u64..u64::MAX, shards in 1usize..64) {
            let r = ShardRouter::new(shards);
            prop_assert!(r.route(key) < r.shard_count());
        }

        #[test]
        fn route_is_deterministic(key in 0u64..u64::MAX, shards in 1usize..64) {
            let r = ShardRouter::new(shards);
            prop_assert_eq!(r.route(key), r.route(key));
        }

        #[test]
        fn dense_key_ranges_cover_every_shard(base in 0u64..1_000_000) {
            // A production store must not leave shards idle under the dense,
            // mostly-sequential key spaces the YCSB-style loader produces.
            let r = ShardRouter::new(8);
            let mut hit = [false; 8];
            for key in base..base + 4_096 {
                hit[r.route(key)] = true;
            }
            prop_assert!(hit.iter().all(|&h| h), "unused shard for base {}", base);
        }

        /// The test-only `group_indices` reference must itself be a valid
        /// partition of the input *positions* — no drops, no duplicates —
        /// for every power-of-two shard count, even when the key list
        /// repeats keys; it is the oracle `group_runs` is held to below.
        #[test]
        fn grouping_is_a_permutation_of_the_batch(
            keys in proptest::collection::vec(0u64..64, 0..200),
            shards_log2 in 0u32..7,
        ) {
            let r = ShardRouter::new(1usize << shards_log2);
            let groups = r.group_indices(keys.iter().copied());
            prop_assert_eq!(groups.len(), r.shard_count());
            // Each group holds ascending positions that route to it.
            for (shard, group) in groups.iter().enumerate() {
                prop_assert!(group.windows(2).all(|w| w[0] < w[1]));
                for &i in group {
                    prop_assert_eq!(r.route(keys[i]), shard);
                }
            }
            // Concatenated, the groups are a permutation of 0..len.
            let mut flat: Vec<usize> = groups.into_iter().flatten().collect();
            flat.sort_unstable();
            prop_assert_eq!(flat, (0..keys.len()).collect::<Vec<_>>());
        }

        /// The batched dispatch contract: `group_runs` — the only
        /// production grouping path — must agree with the reference
        /// `group_indices` shape exactly: same runs, same order.
        #[test]
        fn flat_runs_agree_with_grouped_indices(
            keys in proptest::collection::vec(0u64..64, 0..200),
            shards_log2 in 0u32..7,
        ) {
            let r = ShardRouter::new(1usize << shards_log2);
            let groups = r.group_indices(keys.iter().copied());
            let (order, ends) = r.group_runs(keys.iter().copied());
            prop_assert_eq!(ends.len(), r.shard_count());
            prop_assert_eq!(order.len(), keys.len());
            let mut start = 0usize;
            for (s, &end) in ends.iter().enumerate() {
                prop_assert_eq!(&order[start..end], groups[s].as_slice());
                start = end;
            }
            prop_assert_eq!(start, keys.len());
        }

        #[test]
        fn load_is_roughly_balanced(seed in 1u64..u64::MAX) {
            // Xorshift-scattered keys should land near-uniformly: no shard
            // more than 2x the fair share over 8k draws.
            let r = ShardRouter::new(16);
            let mut counts = [0u32; 16];
            let mut s = seed | 1;
            for _ in 0..8_192 {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                counts[r.route(s)] += 1;
            }
            let fair = 8_192 / 16;
            for (i, &c) in counts.iter().enumerate() {
                prop_assert!(c < 2 * fair, "shard {} got {} of {}", i, c, 8_192);
            }
        }
    }
}
