//! The shard router: key -> shard assignment.
//!
//! The router owns nothing but a mask; it exists as its own type so the
//! assignment function has a single definition shared by the store, the
//! tests and any future placement-aware client (e.g. one that batches
//! operations per shard before dispatching them).

/// Routes keys to one of a power-of-two number of shards.
///
/// The mixing function is a multiply by an odd constant followed by taking
/// the *top* bits — deliberately different from the Fibonacci hash the
/// bucket chains use (multiply + low-ish bits), so a key's shard index and
/// its bucket index within the shard are decorrelated and a pathological key
/// set cannot alias both at once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    mask: u64,
}

impl ShardRouter {
    /// Creates a router over `shards` shards (rounded up to a power of two,
    /// minimum one).
    pub fn new(shards: usize) -> Self {
        let n = shards.next_power_of_two().max(1);
        Self { mask: n as u64 - 1 }
    }

    /// Number of shards routed to.
    pub fn shard_count(&self) -> usize {
        (self.mask + 1) as usize
    }

    /// The shard owning `key`; always less than [`ShardRouter::shard_count`].
    #[inline]
    pub fn route(&self, key: u64) -> usize {
        ((key.wrapping_mul(0xA24B_AED4_963E_E407) >> 32) & self.mask) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rounds_up_to_power_of_two() {
        assert_eq!(ShardRouter::new(0).shard_count(), 1);
        assert_eq!(ShardRouter::new(1).shard_count(), 1);
        assert_eq!(ShardRouter::new(3).shard_count(), 4);
        assert_eq!(ShardRouter::new(8).shard_count(), 8);
        assert_eq!(ShardRouter::new(9).shard_count(), 16);
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let r = ShardRouter::new(1);
        for key in [0u64, 1, 17, u64::MAX] {
            assert_eq!(r.route(key), 0);
        }
    }

    proptest! {
        #[test]
        fn route_is_always_in_range(key in 0u64..u64::MAX, shards in 1usize..64) {
            let r = ShardRouter::new(shards);
            prop_assert!(r.route(key) < r.shard_count());
        }

        #[test]
        fn route_is_deterministic(key in 0u64..u64::MAX, shards in 1usize..64) {
            let r = ShardRouter::new(shards);
            prop_assert_eq!(r.route(key), r.route(key));
        }

        #[test]
        fn dense_key_ranges_cover_every_shard(base in 0u64..1_000_000) {
            // A production store must not leave shards idle under the dense,
            // mostly-sequential key spaces the YCSB-style loader produces.
            let r = ShardRouter::new(8);
            let mut hit = [false; 8];
            for key in base..base + 4_096 {
                hit[r.route(key)] = true;
            }
            prop_assert!(hit.iter().all(|&h| h), "unused shard for base {}", base);
        }

        #[test]
        fn load_is_roughly_balanced(seed in 1u64..u64::MAX) {
            // Xorshift-scattered keys should land near-uniformly: no shard
            // more than 2x the fair share over 8k draws.
            let r = ShardRouter::new(16);
            let mut counts = [0u32; 16];
            let mut s = seed | 1;
            for _ in 0..8_192 {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                counts[r.route(s)] += 1;
            }
            let fair = 8_192 / 16;
            for (i, &c) in counts.iter().enumerate() {
                prop_assert!(c < 2 * fair, "shard {} got {} of {}", i, c, 8_192);
            }
        }
    }
}
