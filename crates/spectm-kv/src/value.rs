//! The variable-size value representation: inline words and epoch-reclaimed
//! out-of-line cells.
//!
//! The SpecTM transactions the store is built on touch only machine words,
//! so a byte value is stored as a single **value word** (the encoding lives
//! in [`spectm::word`]): payloads up to [`spectm::MAX_INLINE_BYTES`] bytes —
//! and word-sized little-endian integers below 2^[`spectm::INLINE_INT_BITS`]
//! — are packed into the word itself, everything else goes into a
//! [`ValueCell`], an immutable length-prefixed heap allocation whose pointer
//! is the word.  This is the indirection scheme production caches use
//! (Pelikan's seg storage keeps items out of line behind compact hash-table
//! references) grafted onto the paper's word-granularity STM.
//!
//! Because readers copy bytes out of a cell under nothing but an epoch pin,
//! a cell must never be freed eagerly: the overwriting or deleting
//! transaction *owns* the word it displaced and hands it to the epoch
//! collector, exactly like a retired chain node.  Two small types make that
//! contract explicit, mirroring the [`crate::NodeSlot`] /
//! [`crate::RetiredNode`] pair:
//!
//! * [`ValueSlot`] keeps a speculative allocation alive across the conflict
//!   retries of an enclosing transaction (allocate at most once per logical
//!   write; free automatically if the value was never published);
//! * [`RetiredValue`] carries a displaced value word out of a committed
//!   transaction so the caller can read the old bytes and defer the free
//!   through `txepoch`.
//!
//! [`Value`] is the owned buffer reads return; payloads up to 16 bytes are
//! stored inline so the hot read path of word-sized values never allocates.

use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};
use std::sync::atomic::{AtomicUsize, Ordering};

use spectm::{decode_inline, encode_inline, is_inline_value, Word};
use txepoch::{Guard, LocalHandle};

/// Largest value the store accepts, in bytes (memcached's classic default
/// item-size ceiling).  [`crate::KvError::ValueTooLarge`] reports attempts
/// to exceed it.
pub const MAX_VALUE_LEN: usize = 1 << 20;

/// Process-wide count of live out-of-line cells (see
/// [`ValueCell::live_count`]).
static LIVE_CELLS: AtomicUsize = AtomicUsize::new(0);

/// An immutable, length-prefixed heap allocation holding one out-of-line
/// value: a `len` header followed by `len` payload bytes in the same
/// allocation.  Cells are created by writes, shared immutably with readers,
/// and freed through the epoch collector by whichever transaction displaces
/// their word.
#[repr(C)]
pub struct ValueCell {
    len: usize,
    // `len` payload bytes follow the header in the same allocation.
}

// A cell pointer is stored directly in a transactional value word, so its
// alignment must clear the lock bit and both inline tags (bits 0..3).
const _: () = {
    assert!(
        std::mem::align_of::<ValueCell>() as spectm::Word
            > (spectm::INLINE_BYTES_BIT | spectm::INLINE_INT_BIT | 1),
        "ValueCell pointers would collide with the value-word tag bits"
    );
};

impl ValueCell {
    fn layout(len: usize) -> Layout {
        Layout::from_size_align(
            std::mem::size_of::<usize>() + len,
            std::mem::align_of::<usize>(),
        )
        .expect("value length was range-checked")
    }

    /// Allocates a cell holding a copy of `bytes`, returning its pointer
    /// (word-aligned, so bits 0..3 are clear and the pointer is a legal
    /// value word).
    pub(crate) fn alloc(bytes: &[u8]) -> *mut ValueCell {
        let layout = Self::layout(bytes.len());
        // SAFETY: the layout has non-zero size (the header alone is a word).
        let ptr = unsafe { alloc(layout) } as *mut ValueCell;
        if ptr.is_null() {
            handle_alloc_error(layout);
        }
        // SAFETY: `ptr` is a fresh allocation of `layout`, private to this
        // thread; the payload region is `bytes.len()` bytes past the header.
        unsafe {
            (*ptr).len = bytes.len();
            std::ptr::copy_nonoverlapping(
                bytes.as_ptr(),
                (ptr as *mut u8).add(std::mem::size_of::<usize>()),
                bytes.len(),
            );
        }
        // ORDERING: diagnostic drop-counter; the reclamation tests read it
        // only at quiescent points (stores dropped, collectors drained).
        LIVE_CELLS.fetch_add(1, Ordering::Relaxed);
        ptr
    }

    /// Frees a cell allocated by [`ValueCell::alloc`].
    ///
    /// # Safety
    ///
    /// `ptr` must come from [`ValueCell::alloc`], must not be used again,
    /// and must be unreachable for every thread (exclusively owned, or past
    /// its epoch grace period).
    pub(crate) unsafe fn free(ptr: *mut ValueCell) {
        // SAFETY: per the contract, `ptr` is a live cell we own exclusively;
        // the header still holds the allocation's length.
        let layout = Self::layout(unsafe { (*ptr).len });
        // ORDERING: diagnostic drop-counter (see `alloc`).
        LIVE_CELLS.fetch_sub(1, Ordering::Relaxed);
        // SAFETY: same allocation, same layout.
        unsafe { dealloc(ptr as *mut u8, layout) };
    }

    /// The payload bytes of a live cell.
    ///
    /// # Safety
    ///
    /// `ptr` must be a live cell, and must stay live for `'a` (hold an epoch
    /// pin predating its retirement, or own it exclusively).
    pub(crate) unsafe fn bytes<'a>(ptr: *const ValueCell) -> &'a [u8] {
        // SAFETY: per the contract the cell is live; the payload follows the
        // header and is immutable after publication.
        unsafe {
            std::slice::from_raw_parts(
                (ptr as *const u8).add(std::mem::size_of::<usize>()),
                (*ptr).len,
            )
        }
    }

    /// Number of out-of-line cells currently alive in the process — the
    /// drop-counter the reclamation regression tests assert on: churn must
    /// return this to its baseline once stores are dropped and epochs have
    /// drained.
    pub fn live_count() -> usize {
        // ORDERING: SeqCst so the count observed at a test's quiescent
        // point includes every preceding alloc/free on any thread.
        LIVE_CELLS.load(Ordering::SeqCst)
    }
}

/// Encodes `bytes` as a value word: inline when it fits, otherwise a fresh
/// [`ValueCell`].  The caller owns the word until it is published (see
/// [`ValueSlot`]).
#[inline]
pub fn encode_value(bytes: &[u8]) -> Word {
    debug_assert!(bytes.len() <= MAX_VALUE_LEN);
    encode_inline(bytes).unwrap_or_else(|| ValueCell::alloc(bytes) as Word)
}

/// Copies the payload of a value word into an owned [`Value`].
///
/// # Safety
///
/// If the word is out of line its cell must be live for the duration of the
/// call: hold an epoch pin acquired before the cell could have been retired,
/// or own the word exclusively (e.g. after displacing it in a committed
/// transaction).
#[inline]
pub unsafe fn decode_value(word: Word) -> Value {
    if is_inline_value(word) {
        let (src, len) = decode_inline(word);
        // Fixed-size copy of the whole word buffer: the bytes past `len`
        // are zero by construction of the inline encodings, and `Value`
        // only ever exposes the first `len` bytes.  A dynamic-length copy
        // here would cost a memcpy call on the hottest read path.
        let mut buf = [0u8; VALUE_INLINE_CAP];
        buf[..std::mem::size_of::<Word>()].copy_from_slice(&src);
        Value(Repr::Inline {
            len: len as u8,
            buf,
        })
    } else {
        // SAFETY: forwarded contract.
        Value::new(unsafe { ValueCell::bytes(word as *const ValueCell) })
    }
}

/// Type-erased cell destructor for the epoch collector.
///
/// # Safety
///
/// `ptr` must be a [`ValueCell`] pointer satisfying [`ValueCell::free`]'s
/// contract.
unsafe fn free_cell_erased(ptr: *mut u8) {
    // SAFETY: forwarded contract.
    unsafe { ValueCell::free(ptr as *mut ValueCell) };
}

/// Immediately frees the cell behind `word` (no-op for inline words).
///
/// # Safety
///
/// The word must be exclusively owned and unreachable: a speculative value
/// that was never published, or one whose readers are provably gone (e.g.
/// during a store's `Drop`).
#[inline]
pub unsafe fn free_value(word: Word) {
    if !is_inline_value(word) {
        // SAFETY: forwarded contract.
        unsafe { ValueCell::free(word as *mut ValueCell) };
    }
}

/// Defers the free of the cell behind `word` through the epoch collector
/// (no-op for inline words).
///
/// # Safety
///
/// The caller must own `word` (its committed transaction displaced it from
/// the only reachable location), so that threads pinning after this call can
/// no longer reach it.
#[inline]
pub unsafe fn retire_value(word: Word, guard: &Guard) {
    if !is_inline_value(word) {
        // SAFETY: forwarded contract; `free_cell_erased` matches the
        // allocation.
        unsafe { guard.defer_unchecked(word as *mut u8, free_cell_erased) };
    }
}

// ---------------------------------------------------------------------------
// Value: the owned buffer reads return
// ---------------------------------------------------------------------------

/// Payloads at most this long are stored inline in a [`Value`] (no heap
/// allocation on the read path).
const VALUE_INLINE_CAP: usize = 16;

#[derive(Clone)]
enum Repr {
    Inline {
        len: u8,
        buf: [u8; VALUE_INLINE_CAP],
    },
    Heap(Box<[u8]>),
}

/// An owned byte value returned by reads.
///
/// Behaves like a `Box<[u8]>` (deref to `[u8]`, comparisons by content) but
/// keeps payloads up to 16 bytes inline, so reading word-sized values never
/// allocates.
///
/// # Examples
///
/// ```
/// use spectm_kv::Value;
///
/// let v = Value::new(b"hello");
/// assert_eq!(&*v, b"hello");
/// assert_eq!(Value::from_u64(7).as_u64(), 7);
/// ```
#[derive(Clone)]
pub struct Value(Repr);

impl Value {
    /// Copies `bytes` into an owned value.
    #[inline]
    pub fn new(bytes: &[u8]) -> Self {
        if bytes.len() <= VALUE_INLINE_CAP {
            let mut buf = [0u8; VALUE_INLINE_CAP];
            buf[..bytes.len()].copy_from_slice(bytes);
            Value(Repr::Inline {
                len: bytes.len() as u8,
                buf,
            })
        } else {
            Value(Repr::Heap(bytes.into()))
        }
    }

    /// An eight-byte little-endian value holding `v` — the conventional
    /// encoding for counters (see [`crate::ShardedKv::rmw_add`]).
    #[inline]
    pub fn from_u64(v: u64) -> Self {
        Self::new(&v.to_le_bytes())
    }

    /// Interprets the first eight bytes (zero-padded if shorter) as a
    /// little-endian integer — the inverse of [`Value::from_u64`].
    #[inline]
    pub fn as_u64(&self) -> u64 {
        let bytes = self.as_slice();
        let mut buf = [0u8; 8];
        let n = bytes.len().min(8);
        buf[..n].copy_from_slice(&bytes[..n]);
        u64::from_le_bytes(buf)
    }

    /// The payload bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Repr::Inline { len, buf } => &buf[..*len as usize],
            Repr::Heap(b) => b,
        }
    }

    /// Payload length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.0 {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Heap(b) => b.len(),
        }
    }

    /// Whether the payload is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::ops::Deref for Value {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Value {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<&[u8]> for Value {
    fn from(bytes: &[u8]) -> Self {
        Value::new(bytes)
    }
}

impl From<Vec<u8>> for Value {
    fn from(bytes: Vec<u8>) -> Self {
        Value::new(&bytes)
    }
}

impl PartialEq for Value {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::fmt::Debug for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Value({} bytes: {:02x?})", self.len(), self.as_slice())
    }
}

// ---------------------------------------------------------------------------
// ValueSlot / RetiredValue: the transactional allocation contracts
// ---------------------------------------------------------------------------

/// Reusable value-word slot for transactional writes.
///
/// A transaction's body may run several times (once per conflict retry); the
/// slot keeps a speculative out-of-line allocation alive across retries so
/// each logical write allocates at most once.  After the enclosing
/// transaction **commits** an attempt that stored the slot's word, call
/// [`ValueSlot::mark_published`]; otherwise dropping the slot frees the
/// never-published cell.  The [`crate::NodeSlot`] contract, for values.
pub struct ValueSlot {
    word: Word,
}

impl ValueSlot {
    /// Creates an empty slot.
    pub fn new() -> Self {
        Self { word: 0 }
    }

    /// Encodes `bytes` on the first call and returns the cached word on
    /// every later one — for retry loops that re-write the *same* payload.
    #[inline]
    pub(crate) fn encode_once(&mut self, bytes: &[u8]) -> Word {
        if self.word == 0 {
            self.word = encode_value(bytes);
        }
        self.word
    }

    /// Encodes `bytes` for a retry loop whose payload may differ between
    /// attempts (e.g. read-modify-write).  An unpublished cell from a
    /// previous attempt is reused when it already holds exactly `bytes`
    /// (constant-payload retries thus still allocate only once, keeping the
    /// one-allocation-per-logical-write contract) and freed otherwise.
    #[inline]
    pub(crate) fn encode(&mut self, bytes: &[u8]) -> Word {
        if self.word != 0 && !spectm::is_inline_value(self.word) {
            // SAFETY: the slot's word is unpublished by the slot invariant
            // (a published word is cleared by `mark_published`), so this
            // thread owns the cell exclusively.
            if unsafe { ValueCell::bytes(self.word as *const ValueCell) } == bytes {
                return self.word;
            }
            // SAFETY: as above; the stale payload is never used again.
            unsafe { free_value(self.word) };
        }
        // An inline previous word holds no resource; just overwrite it.
        self.word = encode_value(bytes);
        self.word
    }

    /// Declares the slot's word published: a transaction that stored it has
    /// committed, so the map now owns the allocation.
    #[inline]
    pub fn mark_published(&mut self) {
        self.word = 0;
    }
}

impl Default for ValueSlot {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for ValueSlot {
    fn drop(&mut self) {
        if self.word != 0 {
            // SAFETY: per the contract above, a non-empty slot at drop time
            // means the word was never published.
            unsafe { free_value(self.word) };
        }
    }
}

/// A value word displaced by a committed transaction (an overwrite's old
/// value, or a delete's captured value), awaiting epoch retirement.
///
/// After the enclosing transaction **commits**, the caller owns the word
/// exclusively: read the old payload with [`RetiredValue::value`], then hand
/// the cell to the epoch collector with [`RetiredValue::retire`].  If the
/// transaction aborted or was retried, simply drop the carrier (the word was
/// never displaced; dropping does nothing).  The [`crate::RetiredNode`]
/// contract, for values.
#[must_use = "call retire() after the transaction commits"]
pub struct RetiredValue {
    word: Word,
}

impl RetiredValue {
    pub(crate) fn new(word: Word) -> Self {
        Self { word }
    }

    /// Copies out the bytes the displaced word held.  Only call after the
    /// displacing transaction committed (the same ownership contract as
    /// [`RetiredValue::retire`]).
    pub fn value(&self) -> Value {
        // SAFETY: per the contract, the committed transaction made this
        // thread the exclusive owner of the word; the cell is still live
        // because only `retire` releases it.
        unsafe { decode_value(self.word) }
    }

    /// Defers the free of the displaced cell through the epoch collector
    /// (no-op for inline words).  Only call after the displacing transaction
    /// committed.
    pub fn retire(self, handle: &LocalHandle) {
        let guard = handle.pin();
        // SAFETY: per the contract, the committed transaction displaced the
        // word from its only reachable location; pinned readers are
        // protected by the epoch.
        unsafe { retire_value(self.word, &guard) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectm::MAX_INLINE_BYTES;

    #[test]
    fn value_roundtrips_across_reprs() {
        for len in [0usize, 1, 7, 8, 15, 16, 17, 100, 4096] {
            let bytes: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
            let v = Value::new(&bytes);
            assert_eq!(&*v, &bytes[..]);
            assert_eq!(v.len(), len);
            assert_eq!(v.is_empty(), len == 0);
            assert_eq!(v.clone(), v);
        }
    }

    #[test]
    fn value_u64_roundtrip() {
        for x in [0u64, 1, u64::MAX, 0x0123_4567_89AB_CDEF] {
            let v = Value::from_u64(x);
            assert_eq!(v.len(), 8);
            assert_eq!(v.as_u64(), x);
        }
        // Shorter payloads zero-pad.
        assert_eq!(Value::new(&[0x0A]).as_u64(), 0x0A);
    }

    #[test]
    fn encode_decode_inline_and_cell() {
        let small = encode_value(b"abc");
        assert!(is_inline_value(small));
        // SAFETY: inline words need no cell.
        assert_eq!(&*unsafe { decode_value(small) }, b"abc");

        let big = vec![0xCDu8; 100];
        let word = encode_value(&big);
        assert!(!is_inline_value(word));
        // SAFETY: the cell is exclusively owned by this test.
        assert_eq!(&*unsafe { decode_value(word) }, &big[..]);
        // SAFETY: as above, and never used again.
        unsafe { free_value(word) };
    }

    #[test]
    fn slot_caches_and_republishes() {
        // Cell-count behaviour (frees, leaks) is asserted in the
        // `value_reclamation` integration suite, where the process-wide
        // drop-counter is not shared with concurrently running tests.
        let payload = vec![7u8; 64];
        let other = vec![8u8; 80];
        let mut slot = ValueSlot::new();
        let w1 = slot.encode_once(&payload);
        assert_eq!(slot.encode_once(&other), w1, "encode_once caches");
        let w2 = slot.encode(&other);
        assert_eq!(
            // SAFETY: the slot's word is unpublished and exclusively owned.
            &*unsafe { decode_value(w2) },
            &other[..],
            "encode re-encodes the new payload"
        );
        assert_eq!(
            slot.encode(&other),
            w2,
            "a constant payload reuses the unpublished cell across retries"
        );
    }

    #[test]
    fn retired_value_reads_and_defers() {
        let collector = txepoch::Collector::new();
        let handle = collector.register();
        let payload = vec![9u8; MAX_INLINE_BYTES + 50];
        let word = encode_value(&payload);
        let retired = RetiredValue::new(word);
        assert_eq!(&*retired.value(), &payload[..]);
        retired.retire(&handle);
    }
}
