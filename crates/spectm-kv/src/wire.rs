//! The wire codec: [`BatchRequest`] / [`BatchResponse`] as length-prefixed
//! binary frames.
//!
//! [`BatchOp`] was designed as the wire shape — one connection read becomes
//! one request-ordered batch, grouped per shard and executed under a single
//! epoch entry by [`crate::ShardedKv::execute_batch_into`].  This module
//! gives that shape a byte encoding so a server front-end
//! (`crates/spectm-serve`) and a load-generator client (`kv-loadgen` in the
//! harness) can speak it over a socket.  The codec is deliberately *pure*:
//! encoding and decoding work on byte slices and reusable buffers, never on
//! sockets, so the whole protocol is property-testable without I/O
//! (`tests/wire_roundtrip.rs`) and the server and client cannot drift apart.
//!
//! # Frame format
//!
//! Every frame — request or response — is a 4-byte little-endian length
//! prefix followed by that many body bytes:
//!
//! ```text
//! +----------------+----------------------+
//! | len: u32 LE    | body: len bytes      |   len <= MAX_FRAME_LEN
//! +----------------+----------------------+
//! ```
//!
//! A **request body** is an operation count followed by the operations in
//! request order (the same order their results come back in):
//!
//! ```text
//! +--------------+----- per operation, count times ---------------------+
//! | count: u32   | opcode: u8 | key: u64 LE | [op-specific fields]      |
//! +--------------+------------------------------------------------------+
//!   opcode: 0 = GET, 1 = PUT (vlen: u32 LE | v bytes), 2 = DEL,
//!           3 = PUT_TTL (ttl_ms: u64 LE | vlen: u32 LE | v bytes)
//!   count <= MAX_WIRE_OPS, vlen <= MAX_VALUE_LEN
//! ```
//!
//! A **response body** is one result per request position — the stored
//! value for a get, the displaced previous value for a put or delete:
//!
//! ```text
//! +--------------+----- per result, count times ------------------------+
//! | count: u32   | tag: u8 (0 = absent, 1 = present) | [vlen | v bytes] |
//! +--------------+------------------------------------------------------+
//! ```
//!
//! Both directions share [`MAX_FRAME_LEN`], which is derived so that every
//! *legal* frame fits: [`MAX_WIRE_OPS`] operations of the worst per-op
//! header plus a [`MAX_VALUE_LEN`] payload each.  A length prefix beyond it
//! is malformed by definition, and [`FrameReader`] rejects it before
//! buffering a single body byte.
//!
//! # Errors
//!
//! Every way a peer can deviate from the format maps to a typed
//! [`WireError`]; decoding never panics and never partially applies
//! anything (decode fully validates a frame before the store sees it).
//! What a server *does* with a `WireError` — tear the connection down — is
//! policy and lives in `spectm-serve`; DESIGN.md § "Wire protocol and the
//! cache server" states the contract.

use std::io::Read;

use crate::batch::{BatchOp, BatchRequest, BatchResponse};
use crate::value::{Value, MAX_VALUE_LEN};

/// Maximum operations one request frame may carry (and, symmetrically,
/// results one response frame may carry).  Chosen so the worst-case legal
/// frame ([`MAX_FRAME_LEN`]) stays bounded even with every value at
/// [`MAX_VALUE_LEN`].
pub const MAX_WIRE_OPS: usize = 128;

/// Worst-case per-operation wire cost: opcode + key + TTL + value-length
/// header (a get, delete, or plain put costs less; this bounds a
/// put-with-TTL).
const MAX_OP_WIRE_LEN: usize = 1 + 8 + 8 + 4 + MAX_VALUE_LEN;

/// Largest legal frame body, in bytes: the operation count plus
/// [`MAX_WIRE_OPS`] worst-case operations.  Every legal request *and*
/// response fits (a response result's header is smaller than a put's), so
/// any length prefix beyond this is malformed and is rejected before any
/// body byte is buffered.
pub const MAX_FRAME_LEN: usize = 4 + MAX_WIRE_OPS * MAX_OP_WIRE_LEN;

/// Size of the frame length prefix.
const PREFIX_LEN: usize = 4;

/// Request opcodes.
const OP_GET: u8 = 0;
const OP_PUT: u8 = 1;
const OP_DEL: u8 = 2;
/// Put carrying an explicit TTL in milliseconds (`0` = never expires,
/// overriding any server-side default).
pub(crate) const OP_PUT_TTL: u8 = 3;

/// Response result tags.
const TAG_ABSENT: u8 = 0;
const TAG_PRESENT: u8 = 1;

/// Everything that can be wrong with bytes a peer sent.  Decoding reports
/// these instead of panicking; a server tears the connection down on any of
/// them (nothing from the offending frame reaches the store).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The stream or body ended in the middle of a structure (a frame cut
    /// short by a close, or a body shorter than its own headers claim).
    Truncated,
    /// A frame length prefix exceeded [`MAX_FRAME_LEN`].
    FrameTooLarge {
        /// The length the prefix claimed.
        len: u64,
    },
    /// A frame declared more than [`MAX_WIRE_OPS`] operations or results.
    TooManyOps {
        /// The count the frame claimed.
        count: u64,
    },
    /// A request operation carried an unknown opcode.
    BadOpcode {
        /// The offending opcode byte.
        opcode: u8,
    },
    /// A response result carried an unknown presence tag.
    BadResultTag {
        /// The offending tag byte.
        tag: u8,
    },
    /// A value length exceeded [`MAX_VALUE_LEN`].
    ValueTooLarge {
        /// The length the frame claimed.
        len: u64,
    },
    /// A body continued past its last declared structure.
    TrailingBytes {
        /// Number of unconsumed bytes.
        extra: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated mid-structure"),
            WireError::FrameTooLarge { len } => {
                write!(f, "frame of {len} bytes exceeds {MAX_FRAME_LEN}")
            }
            WireError::TooManyOps { count } => {
                write!(f, "{count} operations exceed {MAX_WIRE_OPS} per frame")
            }
            WireError::BadOpcode { opcode } => write!(f, "unknown opcode {opcode}"),
            WireError::BadResultTag { tag } => write!(f, "unknown result tag {tag}"),
            WireError::ValueTooLarge { len } => {
                write!(f, "value of {len} bytes exceeds {MAX_VALUE_LEN}")
            }
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the last structure")
            }
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Starts a frame at the current end of `out`, returning the offset of its
/// length prefix for [`finish_frame`].  Appending (rather than clearing)
/// lets a multiplexing server queue several response frames into one
/// per-connection write buffer.
fn begin_frame(out: &mut Vec<u8>, count: usize) -> Result<usize, WireError> {
    if count > MAX_WIRE_OPS {
        return Err(WireError::TooManyOps {
            count: count as u64,
        });
    }
    let start = out.len();
    out.extend_from_slice(&[0u8; PREFIX_LEN]); // patched by finish_frame
    out.extend_from_slice(&(count as u32).to_le_bytes());
    Ok(start)
}

fn finish_frame(out: &mut [u8], start: usize) {
    let body_len = (out.len() - start - PREFIX_LEN) as u32;
    out[start..start + PREFIX_LEN].copy_from_slice(&body_len.to_le_bytes());
}

fn check_value_len(len: usize) -> Result<(), WireError> {
    if len > MAX_VALUE_LEN {
        return Err(WireError::ValueTooLarge { len: len as u64 });
    }
    Ok(())
}

/// Encodes `ops` as one complete request frame (prefix + body) into `out`
/// (cleared first).  The buffer is reusable: a steady-state request loop
/// encodes with no allocations once it has grown to its working size.
///
/// Fails — without writing a usable frame — if the batch exceeds
/// [`MAX_WIRE_OPS`] operations or any put exceeds [`MAX_VALUE_LEN`], so an
/// encoder can never produce a frame its own decoder rejects.
pub fn encode_request(ops: &[BatchOp], out: &mut Vec<u8>) -> Result<(), WireError> {
    out.clear();
    let start = begin_frame(out, ops.len())?;
    for op in ops {
        match op {
            BatchOp::Get(key) => {
                out.push(OP_GET);
                out.extend_from_slice(&key.to_le_bytes());
            }
            BatchOp::Put(key, value) => {
                check_value_len(value.len()).inspect_err(|_| out.truncate(start))?;
                out.push(OP_PUT);
                out.extend_from_slice(&key.to_le_bytes());
                out.extend_from_slice(&(value.len() as u32).to_le_bytes());
                out.extend_from_slice(value);
            }
            BatchOp::Del(key) => {
                out.push(OP_DEL);
                out.extend_from_slice(&key.to_le_bytes());
            }
            BatchOp::PutTtl(key, value, ttl_ms) => {
                check_value_len(value.len()).inspect_err(|_| out.truncate(start))?;
                out.push(OP_PUT_TTL);
                out.extend_from_slice(&key.to_le_bytes());
                out.extend_from_slice(&ttl_ms.to_le_bytes());
                out.extend_from_slice(&(value.len() as u32).to_le_bytes());
                out.extend_from_slice(value);
            }
        }
    }
    finish_frame(out, start);
    Ok(())
}

/// Encodes `results` as one complete response frame (prefix + body) into
/// `out` (cleared first), under the same caps as [`encode_request`].
pub fn encode_response(results: &[Option<Value>], out: &mut Vec<u8>) -> Result<(), WireError> {
    out.clear();
    encode_response_append(results, out)
}

/// [`encode_response`] without the clear: appends one complete response
/// frame after whatever `out` already holds.  This is how a multiplexing
/// server queues responses for several coalesced frames into one
/// per-connection write buffer.  On error nothing is appended.
pub fn encode_response_append(
    results: &[Option<Value>],
    out: &mut Vec<u8>,
) -> Result<(), WireError> {
    let start = begin_frame(out, results.len())?;
    for result in results {
        match result {
            None => out.push(TAG_ABSENT),
            Some(value) => {
                check_value_len(value.len()).inspect_err(|_| out.truncate(start))?;
                out.push(TAG_PRESENT);
                out.extend_from_slice(&(value.len() as u32).to_le_bytes());
                out.extend_from_slice(value);
            }
        }
    }
    finish_frame(out, start);
    Ok(())
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Bounds-checked little-endian reader over a frame body.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn bytes(&mut self, len: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(len).ok_or(WireError::Truncated)?;
        let slice = self.buf.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn count(&mut self) -> Result<usize, WireError> {
        let count = self.u32()? as usize;
        if count > MAX_WIRE_OPS {
            return Err(WireError::TooManyOps {
                count: count as u64,
            });
        }
        Ok(count)
    }

    fn value_len(&mut self) -> Result<usize, WireError> {
        let len = self.u32()? as usize;
        check_value_len(len)?;
        Ok(len)
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return Err(WireError::TrailingBytes {
                extra: self.buf.len() - self.pos,
            });
        }
        Ok(())
    }
}

/// Decodes one request body (the bytes after the length prefix) into `req`
/// (cleared first; its grouping scratch survives, so a server's
/// decode-execute loop reuses one request across frames).
///
/// Validation is all-or-nothing: on any [`WireError`] the request may hold
/// a partial operation list, but the error tells the caller to tear down
/// without executing it, so nothing partially applied can ever leak.
pub fn decode_request(body: &[u8], req: &mut BatchRequest) -> Result<(), WireError> {
    req.clear();
    decode_request_append(body, req).map(|_| ())
}

/// [`decode_request`] without the clear: appends one frame's operations
/// after whatever `req` already holds and returns how many were appended.
/// This is the decode half of cross-connection coalescing (see
/// [`crate::batch::MultiBatch`]): a server appends each ready frame into
/// one shared request and records the frame boundary.
///
/// On a [`WireError`] the request may hold a *partial* appended frame; the
/// caller must roll the length back to the pre-call mark (what
/// [`crate::batch::MultiBatch::rollback_frame`] does) so nothing from the
/// offending frame can execute.
pub fn decode_request_append(body: &[u8], req: &mut BatchRequest) -> Result<usize, WireError> {
    let mut cur = Cursor::new(body);
    let count = cur.count()?;
    for _ in 0..count {
        let opcode = cur.u8()?;
        let key = cur.u64()?;
        match opcode {
            OP_GET => req.get(key),
            OP_PUT => {
                let len = cur.value_len()?;
                req.put(key, cur.bytes(len)?)
            }
            OP_DEL => req.del(key),
            OP_PUT_TTL => {
                let ttl_ms = cur.u64()?;
                let len = cur.value_len()?;
                req.put_ttl(key, cur.bytes(len)?, ttl_ms)
            }
            opcode => return Err(WireError::BadOpcode { opcode }),
        };
    }
    cur.finish()?;
    Ok(count)
}

/// Decodes one response body into `out` (cleared first).
pub fn decode_response(body: &[u8], out: &mut BatchResponse) -> Result<(), WireError> {
    out.clear();
    let mut cur = Cursor::new(body);
    let count = cur.count()?;
    for _ in 0..count {
        match cur.u8()? {
            TAG_ABSENT => out.push(None),
            TAG_PRESENT => {
                let len = cur.value_len()?;
                out.push(Some(Value::new(cur.bytes(len)?)));
            }
            tag => return Err(WireError::BadResultTag { tag }),
        }
    }
    cur.finish()
}

// ---------------------------------------------------------------------------
// FrameReader: incremental frame assembly over a byte stream
// ---------------------------------------------------------------------------

/// How many bytes one [`FrameReader::fill_from`] call asks the stream for.
const READ_CHUNK: usize = 64 * 1024;

/// Reassembles length-prefixed frames from an arbitrary byte stream.
///
/// TCP makes no promises about read boundaries: one `read` may return half
/// a length prefix, or three frames and the start of a fourth.  The reader
/// accumulates bytes in one reusable buffer and hands out complete frame
/// bodies as they become available — the *only* component that ever looks
/// at a length prefix, so the oversized-prefix check lives in exactly one
/// place.  Both the server's connection loop and the client use it.
///
/// Steady state allocates nothing: the buffer is compacted (consumed bytes
/// drained) before each refill and reuses its capacity.
///
/// # Examples
///
/// ```
/// use spectm_kv::wire::{encode_request, FrameReader};
/// use spectm_kv::{BatchOp, BatchRequest};
///
/// let mut frame = Vec::new();
/// encode_request(&[BatchOp::Get(7)], &mut frame).unwrap();
/// // Feed the frame one byte at a time: no frame until the last byte.
/// let mut reader = FrameReader::new();
/// let mut stream = std::io::Cursor::new(frame.clone());
/// let mut got = None;
/// while got.is_none() {
///     assert!(reader.fill_from(&mut stream).unwrap() > 0);
///     got = reader.try_frame().unwrap();
/// }
/// let (start, end) = got.unwrap();
/// assert_eq!(&reader.buffered()[start..end], &frame[4..]);
/// ```
#[derive(Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    /// Bytes of `buf` before this offset belong to already-consumed frames.
    pos: usize,
}

impl FrameReader {
    /// Creates an empty reader.
    pub fn new() -> Self {
        Self::default()
    }

    /// The internal buffer; index it with the range [`FrameReader::try_frame`]
    /// returned.  Ranges are invalidated by the next
    /// [`FrameReader::fill_from`] call (which may compact the buffer).
    pub fn buffered(&self) -> &[u8] {
        &self.buf
    }

    /// Whether the reader holds a partial frame — if the stream ends now,
    /// that frame was truncated.
    pub fn mid_frame(&self) -> bool {
        self.buf.len() > self.pos
    }

    /// If a complete frame is buffered, consumes it and returns the range
    /// of its *body* within [`FrameReader::buffered`]; returns `Ok(None)`
    /// when more bytes are needed.  A length prefix beyond
    /// [`MAX_FRAME_LEN`] fails immediately — before any of the claimed body
    /// has to arrive.
    pub fn try_frame(&mut self) -> Result<Option<(usize, usize)>, WireError> {
        let available = self.buf.len() - self.pos;
        if available < PREFIX_LEN {
            return Ok(None);
        }
        let prefix: [u8; PREFIX_LEN] = self.buf[self.pos..self.pos + PREFIX_LEN]
            .try_into()
            .unwrap();
        let len = u32::from_le_bytes(prefix) as usize;
        if len > MAX_FRAME_LEN {
            return Err(WireError::FrameTooLarge { len: len as u64 });
        }
        if available < PREFIX_LEN + len {
            return Ok(None);
        }
        let start = self.pos + PREFIX_LEN;
        self.pos = start + len;
        Ok(Some((start, start + len)))
    }

    /// Reads more bytes from `r` into the buffer, returning how many
    /// arrived (`0` means the peer closed the stream).  Consumed frames are
    /// compacted away first, so long-lived connections never grow the
    /// buffer beyond one frame plus a read chunk.
    pub fn fill_from<R: Read>(&mut self, r: &mut R) -> std::io::Result<usize> {
        if self.pos > 0 {
            self.buf.copy_within(self.pos.., 0);
            self.buf.truncate(self.buf.len() - self.pos);
            self.pos = 0;
        }
        let len = self.buf.len();
        self.buf.resize(len + READ_CHUNK, 0);
        match r.read(&mut self.buf[len..]) {
            Ok(n) => {
                self.buf.truncate(len + n);
                Ok(n)
            }
            Err(e) => {
                self.buf.truncate(len);
                Err(e)
            }
        }
    }

    /// [`FrameReader::fill_from`] for nonblocking streams: folds the three
    /// outcomes a readiness sweep must distinguish — bytes arrived, nothing
    /// available right now (`WouldBlock`, which a blocking caller never
    /// sees but an event loop treats as "move on to the next connection"),
    /// and end-of-stream — into a [`Fill`], retrying `Interrupted`
    /// internally.  Any other I/O error is a transport failure and stays an
    /// `Err`.
    pub fn fill_nonblocking<R: Read>(&mut self, r: &mut R) -> std::io::Result<Fill> {
        loop {
            match self.fill_from(r) {
                Ok(0) => return Ok(Fill::Eof),
                Ok(n) => return Ok(Fill::Bytes(n)),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    return Ok(Fill::WouldBlock)
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Drops everything buffered (for connection reuse in tests).
    pub fn reset(&mut self) {
        self.buf.clear();
        self.pos = 0;
    }
}

/// Outcome of one [`FrameReader::fill_nonblocking`] call on a nonblocking
/// stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fill {
    /// That many bytes (always `> 0`) arrived and were buffered.
    Bytes(usize),
    /// No bytes are available right now; the stream is still open.  An
    /// event loop moves on to its next connection and retries this one on
    /// a later sweep.
    WouldBlock,
    /// The peer closed the stream.  Whether that is clean depends on
    /// [`FrameReader::mid_frame`].
    Eof,
}

/// A frame-level failure on a live stream: either the peer broke the
/// protocol or the transport failed.
#[derive(Debug)]
pub enum FrameError {
    /// The peer sent malformed bytes (including closing mid-frame).
    Wire(WireError),
    /// The transport itself failed.
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Wire(e) => write!(f, "protocol error: {e}"),
            FrameError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<WireError> for FrameError {
    fn from(e: WireError) -> Self {
        FrameError::Wire(e)
    }
}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Blocking convenience loop over [`FrameReader`]: reads from `r` until a
/// complete frame is available and returns its body range, or `Ok(None)` on
/// a clean close *at a frame boundary*.  A close mid-frame is
/// [`WireError::Truncated`].  (The server uses its own loop so it can
/// interleave shutdown checks with read timeouts; the client and the tests
/// use this one.)
pub fn read_frame<R: Read>(
    reader: &mut FrameReader,
    r: &mut R,
) -> Result<Option<(usize, usize)>, FrameError> {
    loop {
        if let Some(range) = reader.try_frame()? {
            return Ok(Some(range));
        }
        if reader.fill_from(r)? == 0 {
            if reader.mid_frame() {
                return Err(WireError::Truncated.into());
            }
            return Ok(None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(ops: &[BatchOp]) -> Vec<BatchOp> {
        let mut frame = Vec::new();
        encode_request(ops, &mut frame).unwrap();
        assert_eq!(
            u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize,
            frame.len() - 4,
            "prefix covers the body"
        );
        let mut req = BatchRequest::new();
        decode_request(&frame[4..], &mut req).unwrap();
        req.ops().to_vec()
    }

    #[test]
    fn requests_roundtrip_across_op_kinds_and_value_sizes() {
        let ops = vec![
            BatchOp::Get(0),
            BatchOp::Get(u64::MAX),
            BatchOp::put(7, b""),
            BatchOp::put(8, b"inline"),
            BatchOp::put(9, &[0xABu8; 100]),
            BatchOp::put(10, &vec![0x5Au8; 4096]),
            BatchOp::Del(11),
            BatchOp::put_ttl(12, b"fresh", 30_000),
            BatchOp::put_ttl(13, b"immortal", 0),
            BatchOp::put_ttl(14, &vec![0xC3u8; 512], u64::MAX),
        ];
        assert_eq!(roundtrip_request(&ops), ops);
        assert_eq!(roundtrip_request(&[]), vec![]);
    }

    #[test]
    fn responses_roundtrip() {
        let results = vec![
            None,
            Some(Value::new(b"")),
            Some(Value::new(b"short")),
            Some(Value::new(&vec![9u8; 2000])),
        ];
        let mut frame = Vec::new();
        encode_response(&results, &mut frame).unwrap();
        let mut out = BatchResponse::new();
        decode_response(&frame[4..], &mut out).unwrap();
        assert_eq!(out, results);
    }

    #[test]
    fn encoder_caps_match_the_decoder() {
        let mut out = Vec::new();
        let too_many: Vec<BatchOp> = (0..=MAX_WIRE_OPS as u64).map(BatchOp::Get).collect();
        assert_eq!(
            encode_request(&too_many, &mut out),
            Err(WireError::TooManyOps {
                count: MAX_WIRE_OPS as u64 + 1
            })
        );
        let at_cap: Vec<BatchOp> = (0..MAX_WIRE_OPS as u64).map(BatchOp::Get).collect();
        assert_eq!(roundtrip_request(&at_cap), at_cap);

        let huge = BatchOp::Put(1, Value::new(&vec![0u8; MAX_VALUE_LEN + 1]));
        assert_eq!(
            encode_request(std::slice::from_ref(&huge), &mut out),
            Err(WireError::ValueTooLarge {
                len: MAX_VALUE_LEN as u64 + 1
            })
        );
        let at_max = vec![BatchOp::put(1, &vec![3u8; MAX_VALUE_LEN])];
        assert_eq!(roundtrip_request(&at_max), at_max);

        // The TTL-carrying put enforces the same boundary: the encoder
        // rejects one byte past MAX_VALUE_LEN before the `as u32` cast and
        // leaves no partial frame behind, while exactly MAX_VALUE_LEN
        // roundtrips.
        let huge_ttl = BatchOp::PutTtl(2, Value::new(&vec![0u8; MAX_VALUE_LEN + 1]), 5_000);
        out.clear();
        assert_eq!(
            encode_request(std::slice::from_ref(&huge_ttl), &mut out),
            Err(WireError::ValueTooLarge {
                len: MAX_VALUE_LEN as u64 + 1
            })
        );
        assert!(out.is_empty(), "failed encode must not leave partial bytes");
        let at_max_ttl = vec![BatchOp::put_ttl(2, &vec![4u8; MAX_VALUE_LEN], 5_000)];
        assert_eq!(roundtrip_request(&at_max_ttl), at_max_ttl);
    }

    #[test]
    fn frame_reader_reassembles_byte_dribbles_and_coalesced_frames() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        encode_request(&[BatchOp::Get(1), BatchOp::put(2, b"two")], &mut a).unwrap();
        encode_request(&[BatchOp::Del(3)], &mut b).unwrap();
        let joined: Vec<u8> = a.iter().chain(&b).copied().collect();

        // One-byte reads: frames appear only once fully buffered.
        let mut reader = FrameReader::new();
        let mut seen = Vec::new();
        for &byte in &joined {
            let mut one = std::io::Cursor::new([byte]);
            assert_eq!(reader.fill_from(&mut one).unwrap(), 1);
            while let Some((s, e)) = reader.try_frame().unwrap() {
                seen.push(reader.buffered()[s..e].to_vec());
            }
        }
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0], a[4..].to_vec());
        assert_eq!(seen[1], b[4..].to_vec());

        // One read delivering both frames: both decodable before a refill.
        let mut reader = FrameReader::new();
        let mut all = std::io::Cursor::new(joined);
        assert!(reader.fill_from(&mut all).unwrap() > 0);
        assert!(reader.try_frame().unwrap().is_some());
        assert!(reader.try_frame().unwrap().is_some());
        assert!(reader.try_frame().unwrap().is_none());
        assert!(!reader.mid_frame());
    }

    #[test]
    fn read_frame_reports_clean_and_dirty_closes() {
        let mut frame = Vec::new();
        encode_request(&[BatchOp::Get(5)], &mut frame).unwrap();

        // Clean close at a frame boundary: one frame, then None.
        let mut reader = FrameReader::new();
        let mut stream = std::io::Cursor::new(frame.clone());
        assert!(read_frame(&mut reader, &mut stream).unwrap().is_some());
        assert!(read_frame(&mut reader, &mut stream).unwrap().is_none());

        // Close mid-frame: Truncated.
        let mut reader = FrameReader::new();
        let mut stream = std::io::Cursor::new(frame[..frame.len() - 1].to_vec());
        match read_frame(&mut reader, &mut stream) {
            Err(FrameError::Wire(WireError::Truncated)) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn oversized_prefix_fails_before_the_body_arrives() {
        let mut reader = FrameReader::new();
        let prefix = ((MAX_FRAME_LEN + 1) as u32).to_le_bytes();
        let mut stream = std::io::Cursor::new(prefix.to_vec());
        assert_eq!(reader.fill_from(&mut stream).unwrap(), 4);
        assert_eq!(
            reader.try_frame(),
            Err(WireError::FrameTooLarge {
                len: MAX_FRAME_LEN as u64 + 1
            })
        );
    }

    #[test]
    fn fill_nonblocking_distinguishes_data_wouldblock_and_eof() {
        /// Yields one chunk per read, then `WouldBlock`s forever (open) or
        /// EOFs (closed) — the shapes a nonblocking socket produces.
        struct Script {
            chunks: Vec<Vec<u8>>,
            closed: bool,
        }
        impl Read for Script {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                match self.chunks.pop() {
                    Some(chunk) => {
                        buf[..chunk.len()].copy_from_slice(&chunk);
                        Ok(chunk.len())
                    }
                    None if self.closed => Ok(0),
                    None => Err(std::io::ErrorKind::WouldBlock.into()),
                }
            }
        }

        let mut frame = Vec::new();
        encode_request(&[BatchOp::Get(9)], &mut frame).unwrap();
        let (head, tail) = frame.split_at(5);

        // Data dribbles in across WouldBlocks; the frame appears only once
        // every byte has arrived, and an idle open stream reports
        // WouldBlock, never Eof.
        let mut reader = FrameReader::new();
        let mut stream = Script {
            chunks: vec![head.to_vec()], // popped last-to-first
            closed: false,
        };
        assert_eq!(
            reader.fill_nonblocking(&mut stream).unwrap(),
            Fill::Bytes(head.len())
        );
        assert_eq!(reader.try_frame().unwrap(), None);
        assert_eq!(
            reader.fill_nonblocking(&mut stream).unwrap(),
            Fill::WouldBlock
        );
        assert!(reader.mid_frame(), "partial frame survives a WouldBlock");
        stream.chunks.push(tail.to_vec());
        assert_eq!(
            reader.fill_nonblocking(&mut stream).unwrap(),
            Fill::Bytes(tail.len())
        );
        assert!(reader.try_frame().unwrap().is_some());

        // A closed stream is Eof, cleanly distinguishable from WouldBlock.
        stream.closed = true;
        assert_eq!(reader.fill_nonblocking(&mut stream).unwrap(), Fill::Eof);
        assert!(!reader.mid_frame());
    }

    #[test]
    fn decode_request_append_accumulates_across_frames() {
        let first = vec![BatchOp::Get(1), BatchOp::put(2, b"two")];
        let second = vec![BatchOp::Del(3)];
        let mut frame = Vec::new();
        let mut req = BatchRequest::new();
        encode_request(&first, &mut frame).unwrap();
        assert_eq!(decode_request_append(&frame[4..], &mut req).unwrap(), 2);
        encode_request(&second, &mut frame).unwrap();
        assert_eq!(decode_request_append(&frame[4..], &mut req).unwrap(), 1);
        let all: Vec<BatchOp> = first.into_iter().chain(second).collect();
        assert_eq!(req.ops(), &all[..]);
        // The clearing entry point still clears.
        encode_request(&[BatchOp::Get(9)], &mut frame).unwrap();
        decode_request(&frame[4..], &mut req).unwrap();
        assert_eq!(req.ops(), &[BatchOp::Get(9)]);
    }

    #[test]
    fn encode_response_append_queues_decodable_back_to_back_frames() {
        let first = vec![None, Some(Value::new(b"hit"))];
        let second = vec![Some(Value::new(&vec![7u8; 300]))];
        let mut out = Vec::new();
        encode_response_append(&first, &mut out).unwrap();
        let split = out.len();
        encode_response_append(&second, &mut out).unwrap();

        // An oversized append leaves the queue untouched.
        let huge = vec![Some(Value::from(vec![0u8; MAX_VALUE_LEN + 1]))];
        let before = out.clone();
        assert!(encode_response_append(&huge, &mut out).is_err());
        assert_eq!(out, before, "failed append must not leave partial bytes");

        let mut resp = BatchResponse::new();
        decode_response(&out[4..split], &mut resp).unwrap();
        assert_eq!(resp, first);
        decode_response(&out[split + 4..], &mut resp).unwrap();
        assert_eq!(resp, second);
    }

    #[test]
    fn wire_errors_render() {
        for e in [
            WireError::Truncated,
            WireError::FrameTooLarge { len: 1 },
            WireError::TooManyOps { count: 2 },
            WireError::BadOpcode { opcode: 9 },
            WireError::BadResultTag { tag: 9 },
            WireError::ValueTooLarge { len: 3 },
            WireError::TrailingBytes { extra: 4 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
