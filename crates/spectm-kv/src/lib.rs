//! A sharded, concurrent key-value store built on the SpecTM API.
//!
//! The paper evaluates specialized short transactions through integer-set
//! microbenchmarks; this crate grows them into a service-level subsystem: a
//! `u64 -> bytes` store whose hot paths are exactly the short-transaction
//! shapes the paper optimizes, layered behind the sharding a production
//! deployment would use.
//!
//! Three layers:
//!
//! * [`StmHashMap`] — a transactional hash map over **cache-line
//!   bulk-chaining buckets**: flat 64-byte home buckets of 7 tagged item
//!   words plus a stat word linking rare overflow buckets (the
//!   Pelikan/Segcache hashtable layout, every slot one STM word).
//!   Single-key reads are short read-only transactions over one or two
//!   cache lines, updates and deletes are two-location short read-write
//!   transactions, inserts are combined RO/RW short transactions over the
//!   home bucket (falling back to a full transaction on overflowing
//!   chains), and every operation also exists as a traditional full
//!   transaction (the BaseTM shape).  [`StmHashMap::stats`] reports the
//!   probe-length histogram and bucket occupancy;
//! * [`ShardRouter`] — a power-of-two router assigning each key to a shard;
//! * [`ShardedKv`] — the store itself.  All shards (and their per-shard
//!   [`spectm_ds::StmSkipList`] ordered indexes) share **one** STM
//!   instance, so while `get` and value-overwriting `put` touch only the
//!   owning shard, a multi-key [`ShardedKv::rmw`] composes reads and writes
//!   *across* shards inside a single full transaction, and
//!   [`ShardedKv::scan`] / [`ShardedKv::range`] return atomically
//!   consistent ordered snapshots spanning every shard — the
//!   interoperability the paper's design guarantees (Section 2).
//!
//! On top of the single-key paths sits the **batched pipeline** (the
//! [`batch`] module): [`BatchRequest`] / [`BatchResponse`] carry
//! request-ordered operations that [`ShardedKv::execute_batch`] groups by
//! shard, runs under one epoch entry per batch, and drains through
//! prefetch-pipelined short transactions — amortizing the fixed
//! per-operation toll a request-serving front-end would otherwise pay per
//! key.  The module docs state the exact atomicity contract.
//!
//! Values are arbitrary byte payloads up to [`MAX_VALUE_LEN`], yet every
//! transaction still touches only machine words: each value is one *value
//! word* — packed inline for small payloads, a pointer to an immutable
//! epoch-reclaimed [`ValueCell`] otherwise (see the [`value`] module and
//! DESIGN.md § "Variable-size values").  Keys are arbitrary `u64`s.  The
//! workload drivers live in the `harness` crate (`kv` binary, including the
//! scan-heavy YCSB-E mix and the `--value-size` distributions), the
//! CAS-based baseline in `lockfree::LockFreeKvMap`; EXPERIMENTS.md indexes
//! the workloads.
//!
//! With a [`CacheConfig`] (see [`ShardedKv::with_config`]) the store runs
//! as a **memory-capped cache**: every item carries a deadline word beside
//! its value word (per-key TTL, lazily expired on read and reclaimed
//! incrementally by a [`Reclaimer`] thread via [`ShardedKv::sweep_step`]),
//! and a `max_bytes` budget drives CLOCK eviction over the per-bucket
//! frequency byte ([`EvictionPolicy`]).  An expired key is never
//! observable through any read surface; [`ShardedKv::live_bytes`] tracks
//! the physical account and [`ShardedKv::cache_stats`] the
//! hit/miss/expiry/eviction counters.  DESIGN.md § "TTL and eviction" has
//! the full design.
//!
//! # Examples
//!
//! Point operations and cross-shard read-modify-write:
//!
//! ```
//! use spectm::{Stm, variants::ValShort};
//! use spectm_ds::ApiMode;
//! use spectm_kv::{ShardedKv, Value};
//!
//! let stm = ValShort::new();
//! let store = ShardedKv::new(&stm, 4, 64, ApiMode::Short);
//! let mut thread = store.register();
//! assert_eq!(store.put(1, b"ten", &mut thread).unwrap(), None);
//! assert_eq!(store.put(2, &20u64.to_le_bytes(), &mut thread).unwrap(), None);
//! assert_eq!(store.get(1, &mut thread).as_deref(), Some(&b"ten"[..]));
//! // Cross-shard atomic transfer: one full transaction over both shards.
//! store.put(1, &10u64.to_le_bytes(), &mut thread).unwrap();
//! assert!(store
//!     .rmw(
//!         &[1, 2],
//!         |vals| {
//!             vals[0] = Value::from_u64(vals[0].as_u64() - 5);
//!             vals[1] = Value::from_u64(vals[1].as_u64() + 5);
//!         },
//!         &mut thread
//!     )
//!     .unwrap());
//! assert_eq!(store.get(1, &mut thread).unwrap().as_u64(), 5);
//! assert_eq!(store.get(2, &mut thread).unwrap().as_u64(), 25);
//! ```
//!
//! Ordered range scans over all shards, atomically consistent with every
//! concurrent operation:
//!
//! ```
//! use spectm::{Stm, variants::ValShort};
//! use spectm_ds::ApiMode;
//! use spectm_kv::ShardedKv;
//!
//! let stm = ValShort::new();
//! let store = ShardedKv::new(&stm, 4, 64, ApiMode::Short);
//! let mut thread = store.register();
//! for key in 0..100u64 {
//!     store.put(key, &(key + 1_000).to_le_bytes(), &mut thread).unwrap();
//! }
//! // YCSB-E shape: up to `limit` pairs starting at `start`, in key order.
//! let run = store.scan(40, 5, &mut thread);
//! assert_eq!(run.len(), 5);
//! assert_eq!(run[0].0, 40);
//! assert_eq!(run[0].1.as_u64(), 1_040);
//! assert!(run.windows(2).all(|w| w[0].0 < w[1].0));
//! // Half-open key ranges work too.
//! assert_eq!(store.range(97, 200, &mut thread).len(), 3);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod batch;
pub mod map;
pub mod router;
pub mod store;
pub mod ttl;
pub mod value;
pub mod wire;

pub use batch::{BatchOp, BatchRequest, BatchResponse, MultiBatch};
pub use map::{MapStats, NodeSlot, RetiredNode, StmHashMap, BUCKET_SLOTS};
pub use router::ShardRouter;
pub use store::{ShardedKv, ITEM_OVERHEAD_BYTES, MAX_RMW_KEYS};
pub use ttl::{CacheConfig, CacheStats, Clock, EvictionPolicy, Reclaimer, SweepOutcome};
pub use value::{RetiredValue, Value, ValueCell, ValueSlot, MAX_VALUE_LEN};

/// Errors the store's fallible operations report instead of panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvError {
    /// A value exceeded [`MAX_VALUE_LEN`] bytes.
    ValueTooLarge {
        /// Length of the rejected value.
        len: usize,
    },
    /// A multi-key operation named more than [`MAX_RMW_KEYS`] keys.
    TooManyKeys {
        /// Number of keys in the rejected operation.
        len: usize,
    },
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::ValueTooLarge { len } => {
                write!(f, "value of {len} bytes exceeds {MAX_VALUE_LEN} bytes")
            }
            KvError::TooManyKeys { len } => {
                write!(f, "{len} keys exceed the {MAX_RMW_KEYS}-key limit")
            }
        }
    }
}

impl std::error::Error for KvError {}
