//! A sharded, concurrent key-value store built on the SpecTM API.
//!
//! The paper evaluates specialized short transactions through integer-set
//! microbenchmarks; this crate grows them into a service-level subsystem: a
//! `u64 -> u64` store whose hot paths are exactly the short-transaction
//! shapes the paper optimizes, layered behind the sharding a production
//! deployment would use.
//!
//! Three layers:
//!
//! * [`StmHashMap`] — a chained transactional hash map (the integer-set
//!   table of `spectm-ds` with a value word per node).  Single-key reads are
//!   short read-only transactions, updates are single-location CASes or
//!   two/three-location short read-write transactions, and every operation
//!   also exists as a traditional full transaction (the BaseTM shape);
//! * [`ShardRouter`] — a power-of-two router assigning each key to a shard;
//! * [`ShardedKv`] — the store itself.  All shards (and their per-shard
//!   [`spectm_ds::StmSkipList`] ordered indexes) share **one** STM
//!   instance, so while `get` and value-overwriting `put` touch only the
//!   owning shard, a multi-key [`ShardedKv::rmw`] composes reads and writes
//!   *across* shards inside a single full transaction, and
//!   [`ShardedKv::scan`] / [`ShardedKv::range`] return atomically
//!   consistent ordered snapshots spanning every shard — the
//!   interoperability the paper's design guarantees (Section 2).
//!
//! Values are stored with [`spectm::encode_int`], so they must fit in 63
//! bits; keys are arbitrary `u64`s.  The workload drivers live in the
//! `harness` crate (`kv` binary, including the scan-heavy YCSB-E mix), the
//! CAS-based baseline in `lockfree::LockFreeKvMap`; DESIGN.md documents the
//! architecture and EXPERIMENTS.md the workloads.
//!
//! # Examples
//!
//! Point operations and cross-shard read-modify-write:
//!
//! ```
//! use spectm::{Stm, variants::ValShort};
//! use spectm_ds::ApiMode;
//! use spectm_kv::ShardedKv;
//!
//! let stm = ValShort::new();
//! let store = ShardedKv::new(&stm, 4, 64, ApiMode::Short);
//! let mut thread = store.register();
//! assert_eq!(store.put(1, 10, &mut thread), None);
//! assert_eq!(store.put(2, 20, &mut thread), None);
//! // Cross-shard atomic transfer: one full transaction over both shards.
//! assert!(store.rmw(&[1, 2], |vals| { vals[0] -= 5; vals[1] += 5; }, &mut thread));
//! assert_eq!(store.get(1, &mut thread), Some(5));
//! assert_eq!(store.get(2, &mut thread), Some(25));
//! ```
//!
//! Ordered range scans over all shards, atomically consistent with every
//! concurrent operation:
//!
//! ```
//! use spectm::{Stm, variants::ValShort};
//! use spectm_ds::ApiMode;
//! use spectm_kv::ShardedKv;
//!
//! let stm = ValShort::new();
//! let store = ShardedKv::new(&stm, 4, 64, ApiMode::Short);
//! let mut thread = store.register();
//! for key in 0..100u64 {
//!     store.put(key, key + 1_000, &mut thread);
//! }
//! // YCSB-E shape: up to `limit` pairs starting at `start`, in key order.
//! let run = store.scan(40, 5, &mut thread);
//! assert_eq!(run.len(), 5);
//! assert_eq!(run[0], (40, 1_040));
//! assert!(run.windows(2).all(|w| w[0].0 < w[1].0));
//! // Half-open key ranges work too.
//! assert_eq!(store.range(97, 200, &mut thread).len(), 3);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod map;
pub mod router;
pub mod store;

pub use map::{NodeSlot, RetiredNode, StmHashMap};
pub use router::ShardRouter;
pub use store::{ShardedKv, MAX_RMW_KEYS};

/// Largest value storable in the map (one bit of the word is reserved for
/// the value-based layout's lock bit).
pub const MAX_VALUE: u64 = (1 << 63) - 1;
