//! Batched operations: amortize routing and epoch entry over many keys.
//!
//! The single-key hot paths of [`ShardedKv`] pay a fixed toll per
//! operation — route the key, announce an epoch (a `SeqCst` store on the
//! outermost pin), set up a transaction — that the paper's specialization
//! drives toward the hardware floor but can never remove entirely.  A
//! batch removes it by division: [`ShardedKv::execute_batch`] takes a
//! request-ordered list of [`BatchOp`]s, groups it by shard with one
//! counting sort ([`crate::ShardRouter::group_runs_into`], reusing the
//! [`BatchRequest`]'s scratch so steady-state grouping never allocates),
//! **enters the epoch once for the whole batch** (the per-operation paths
//! underneath run their short transactions against the already-pinned
//! epoch — gets and overwrites skip pin entry/exit entirely, everything
//! else nests as a counter bump), drains each shard's group through a
//! prefetch-pipelined dispatch loop (the bucket probe of operation *i*
//! overlaps the bucket-line fetch of operation *i + 4*), and writes each
//! result
//! back to the request position it came from.  A one-operation batch
//! bypasses all of it and costs what the single-key API costs.
//!
//! # Semantics: what is and is not atomic
//!
//! A batch is **not** one transaction.  The guarantees, documented here and
//! enforced by `tests/batch_semantics.rs`, are:
//!
//! * **Request-order results.**  `results[i]` is the result of `ops[i]`:
//!   the stored value for a get, the displaced previous value for a put or
//!   delete.
//! * **Per-key program order (batch read-your-writes).**  Operations on
//!   the same key execute in request order — a get that follows a put of
//!   the same key in one batch observes that put.  (All operations on one
//!   key land in one shard group, and groups preserve request order.)
//! * **Per-operation atomicity.**  Every operation is individually
//!   serializable, exactly as if issued through the single-key API.
//! * **Per-shard group atomicity under read/write mixing.**  If a shard's
//!   group both reads (get) and writes (put/del) *the same key*, the whole
//!   group runs as **one full transaction** on that shard, so the
//!   read-your-writes chain commits atomically and concurrent scans see
//!   either all of the group's writes or none of them.
//! * **No atomicity across shards.**  A concurrent observer (including an
//!   atomic [`ShardedKv::scan`]) may see one shard's group applied and
//!   another's not.  Callers that need a cross-shard atomic multi-key
//!   update keep using [`ShardedKv::rmw`] /
//!   [`ShardedKv::multi_get_atomic`].
//! * **All-or-nothing validation.**  An oversized put value fails the
//!   whole batch with [`KvError::ValueTooLarge`] *before* any operation
//!   executes.
//!
//! * **Expired entries are absent.**  A get of a key whose TTL deadline
//!   has passed reports `None`, and a put over such a corpse reports
//!   `None` (it behaved as an insert); batch reads leave the physical
//!   removal to lazy single-key reads and the background sweep.
//!
//! DESIGN.md § "Batched operations" discusses why these are the right
//! semantics for a request-pipeline front-end.

use spectm::{Stm, StmThread, Word};
use spectm_ds::TowerSlot;

use crate::map::{deadline_expired, NodeSlot, RetiredNode};
use crate::store::ShardedKv;
use crate::value::{RetiredValue, Value, ValueSlot};
use crate::KvError;

/// One operation of a batch, in the request's order.
///
/// Put payloads are carried as [`Value`]s (16-byte small-buffer inline), so
/// building a batch of word-sized writes does not allocate.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchOp {
    /// Read the key's value.
    Get(u64),
    /// Store the value under the key (with the store's default TTL).
    Put(u64, Value),
    /// Store the value under the key with an explicit TTL in milliseconds
    /// (`0` = immortal, the memcached convention) — the
    /// `wire::OP_PUT_TTL` shape.
    PutTtl(u64, Value, u64),
    /// Remove the key.
    Del(u64),
}

impl BatchOp {
    /// Convenience constructor copying `bytes` into a put operation.
    pub fn put(key: u64, bytes: &[u8]) -> Self {
        BatchOp::Put(key, Value::new(bytes))
    }

    /// Convenience constructor copying `bytes` into a put with an explicit
    /// TTL.
    pub fn put_ttl(key: u64, bytes: &[u8], ttl_ms: u64) -> Self {
        BatchOp::PutTtl(key, Value::new(bytes), ttl_ms)
    }

    /// The key this operation touches.
    #[inline]
    pub fn key(&self) -> u64 {
        match *self {
            BatchOp::Get(key) | BatchOp::Del(key) => key,
            BatchOp::Put(key, _) | BatchOp::PutTtl(key, _, _) => key,
        }
    }

    /// Whether this operation writes (put or del).
    #[inline]
    pub fn is_write(&self) -> bool {
        !matches!(self, BatchOp::Get(_))
    }

    /// The payload and TTL of a put of either shape (`None` TTL = the
    /// store's default).
    #[inline]
    fn as_put(&self) -> Option<(u64, &Value, Option<u64>)> {
        match self {
            BatchOp::Put(key, value) => Some((*key, value, None)),
            BatchOp::PutTtl(key, value, ttl_ms) => Some((*key, value, Some(*ttl_ms))),
            BatchOp::Get(_) | BatchOp::Del(_) => None,
        }
    }
}

/// A reusable batch of operations: the request half of the batched API.
///
/// Owns the operation list **and** the grouping scratch buffers, so a
/// request loop that clears and refills one `BatchRequest` per batch (the
/// intended steady state — what the harness's `WorkerState` does) executes
/// with zero allocations: grouping small batches is otherwise dominated by
/// allocator traffic, not by routing.
///
/// # Examples
///
/// ```
/// use spectm::{Stm, variants::ValShort};
/// use spectm_ds::ApiMode;
/// use spectm_kv::{BatchRequest, BatchResponse, ShardedKv, Value};
///
/// let stm = ValShort::new();
/// let store = ShardedKv::new(&stm, 4, 64, ApiMode::Short);
/// let mut thread = store.register();
/// let mut req = BatchRequest::new();
/// let mut resp = BatchResponse::new();
/// req.put(7, b"seven").get(7).del(7);
/// store.execute_batch_into(&mut req, &mut resp, &mut thread).unwrap();
/// assert_eq!(
///     resp,
///     vec![None, Some(Value::new(b"seven")), Some(Value::new(b"seven"))],
/// );
/// req.clear(); // reuse the buffers for the next batch
/// ```
#[derive(Default)]
pub struct BatchRequest {
    ops: Vec<BatchOp>,
    /// Grouping scratch (see [`crate::ShardRouter::group_runs_into`]),
    /// kept across batches so steady-state grouping never allocates.
    order: Vec<usize>,
    bounds: Vec<usize>,
}

impl BatchRequest {
    /// Creates an empty request.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a read of `key`; returns `self` for chaining.
    pub fn get(&mut self, key: u64) -> &mut Self {
        self.ops.push(BatchOp::Get(key));
        self
    }

    /// Appends a write of `bytes` under `key`; returns `self` for chaining.
    pub fn put(&mut self, key: u64, bytes: &[u8]) -> &mut Self {
        self.ops.push(BatchOp::put(key, bytes));
        self
    }

    /// Appends a write of `bytes` under `key` with an explicit TTL; returns
    /// `self` for chaining.
    pub fn put_ttl(&mut self, key: u64, bytes: &[u8], ttl_ms: u64) -> &mut Self {
        self.ops.push(BatchOp::put_ttl(key, bytes, ttl_ms));
        self
    }

    /// Appends a removal of `key`; returns `self` for chaining.
    pub fn del(&mut self, key: u64) -> &mut Self {
        self.ops.push(BatchOp::Del(key));
        self
    }

    /// Appends an already-built operation; returns `self` for chaining.
    pub fn push(&mut self, op: BatchOp) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// The operations queued so far, in request order.
    pub fn ops(&self) -> &[BatchOp] {
        &self.ops
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the request is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Removes every operation, keeping the buffers for reuse.
    pub fn clear(&mut self) {
        self.ops.clear();
    }
}

impl FromIterator<BatchOp> for BatchRequest {
    fn from_iter<I: IntoIterator<Item = BatchOp>>(iter: I) -> Self {
        Self {
            ops: iter.into_iter().collect(),
            ..Self::default()
        }
    }
}

/// The response half of the batched API: one result per request position —
/// the stored value for a get, the displaced previous value for a put or
/// delete.  A plain vector, reused across batches by clearing.
pub type BatchResponse = Vec<Option<Value>>;

/// A coalesced multi-source batch: operations gathered from **several
/// independent request streams** — in practice the ready frames of many
/// client connections in one server sweep — executed as *one* shard-grouped
/// dispatch under a single epoch entry, with results scattered back per
/// source frame in request order.
///
/// This is the cross-connection generalization of [`BatchRequest`]: where a
/// per-connection server pays one epoch entry and one grouping pass per
/// frame, a multiplexing server appends every decodable frame into one
/// `MultiBatch` ([`wire::decode_request_append`](crate::wire::decode_request_append)
/// straight into [`MultiBatch::request_mut`], then [`MultiBatch::commit_frame`])
/// and dispatches once.
///
/// # Semantics: coalescing is performance-transparent
///
/// Each source frame keeps exactly the batch contract of the
/// [module docs](crate::batch), judged over *its own* operations:
///
/// * **Per-frame request-order results.**  A frame's result slice (from
///   [`MultiBatch::frames`]) has `slice[i]` answering the frame's `ops[i]`.
/// * **Per-source program order.**  Frames are appended in the order their
///   source produced them and each frame's operations keep their request
///   order, so all of one source's operations on one key execute in that
///   source's order (same-key operations land in one shard group, which
///   preserves combined append order — a refinement of per-source order).
/// * **Cross-source interleaving is some serialization.**  Operations from
///   different sources in one dispatch serialize in append order on shared
///   keys.  Concurrent connections never had an ordering contract between
///   them, so any serialization is indistinguishable from frames having
///   arrived in that order — which is why coalescing is transparent.
/// * **Atomicity can only grow.**  The per-shard read/write-mixing fallback
///   (see [module docs](crate::batch)) now considers the *combined* group,
///   so a frame may execute under a wider transaction than it would alone.
///   Observers can only see *more* atomicity, never less.
///
/// # Examples
///
/// ```
/// use spectm::{Stm, variants::ValShort};
/// use spectm_ds::ApiMode;
/// use spectm_kv::{MultiBatch, ShardedKv, Value};
///
/// let stm = ValShort::new();
/// let store = ShardedKv::new(&stm, 4, 64, ApiMode::Short);
/// let mut thread = store.register();
/// let mut multi = MultiBatch::new();
/// // Two sources' frames, coalesced into one dispatch.
/// multi.request_mut().put(1, b"one").get(1);
/// multi.commit_frame(0);
/// multi.request_mut().get(1).put(2, b"two");
/// multi.commit_frame(1);
/// store.execute_multi(&mut multi, &mut thread).unwrap();
/// let frames: Vec<_> = multi.frames().collect();
/// assert_eq!(frames[0].0, 0);
/// assert_eq!(frames[0].1, &[None, Some(Value::new(b"one"))]);
/// assert_eq!(frames[1].0, 1);
/// assert_eq!(frames[1].1, &[Some(Value::new(b"one")), None]);
/// multi.clear(); // reuse every buffer for the next sweep
/// ```
#[derive(Default)]
pub struct MultiBatch {
    /// The combined operation list plus grouping scratch, appended to
    /// frame by frame.
    req: BatchRequest,
    /// `(source, op_count)` per committed frame, in append order.
    frames: Vec<(usize, usize)>,
    /// Operations covered by committed frames; anything beyond this in
    /// `req` is a partially appended frame awaiting commit or rollback.
    committed: usize,
    /// One result per committed operation, filled by
    /// [`ShardedKv::execute_multi`].
    results: BatchResponse,
}

impl MultiBatch {
    /// Creates an empty coalescer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops every frame and result, keeping all buffers for reuse — a
    /// steady-state sweep loop allocates nothing.
    pub fn clear(&mut self) {
        self.req.clear();
        self.frames.clear();
        self.committed = 0;
        self.results.clear();
    }

    /// Whether no frame has been committed.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Committed frames so far.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Operations across all committed frames.
    pub fn op_count(&self) -> usize {
        self.committed
    }

    /// The request under construction: append one frame's operations here
    /// (builder methods or
    /// [`wire::decode_request_append`](crate::wire::decode_request_append)),
    /// then call [`MultiBatch::commit_frame`] — or
    /// [`MultiBatch::rollback_frame`] if decoding failed partway.
    pub fn request_mut(&mut self) -> &mut BatchRequest {
        &mut self.req
    }

    /// Seals the operations appended since the last commit as one frame
    /// belonging to `source` (a caller-chosen id — e.g. the connection's
    /// slot — handed back by [`MultiBatch::frames`]).  Zero-operation
    /// frames are legal and produce an empty result slice.
    pub fn commit_frame(&mut self, source: usize) {
        let len = self.req.len() - self.committed;
        self.frames.push((source, len));
        self.committed = self.req.len();
    }

    /// Discards any operations appended since the last commit — the
    /// rollback half of the
    /// [`wire::decode_request_append`](crate::wire::decode_request_append)
    /// contract, so nothing from a malformed frame can execute.
    pub fn rollback_frame(&mut self) {
        self.req.ops.truncate(self.committed);
    }

    /// The committed frames' sources, in append order (usable before
    /// execution — unlike [`MultiBatch::frames`], which slices results).
    pub fn sources(&self) -> impl Iterator<Item = usize> + '_ {
        self.frames.iter().map(|&(source, _)| source)
    }

    /// Scatters the results of an executed dispatch back per frame: yields
    /// `(source, results)` in append order, each slice in its frame's
    /// request order.  Call only after a successful
    /// [`ShardedKv::execute_multi`].
    pub fn frames(&self) -> impl Iterator<Item = (usize, &[Option<Value>])> + '_ {
        debug_assert_eq!(self.results.len(), self.committed, "execute first");
        let mut start = 0usize;
        self.frames.iter().map(move |&(source, len)| {
            let slice = &self.results[start..start + len];
            start += len;
            (source, slice)
        })
    }
}

/// How many operations ahead the pipelined dispatch loop prefetches home
/// buckets.  The probe of operation *i* overlaps the memory latency of
/// operation *i + PREFETCH_AHEAD*'s home bucket — and because a bucket is
/// one flat 64-byte line holding all 7 slots plus the overflow link, that
/// single prefetch covers the whole common-case probe, not just a list
/// head.  A small constant keeps the prefetched lines resident.
const PREFETCH_AHEAD: usize = 4;

/// The all-or-nothing size validation every batch entry point runs before
/// executing anything: a batch with a put payload beyond
/// [`crate::MAX_VALUE_LEN`] is rejected whole, as a no-op.  Shared by both
/// stores
/// (`ShardedKv` here and `lockfree::LockFreeKvMap`), so the rule cannot
/// drift between them.
pub fn validate_ops(ops: &[BatchOp]) -> Result<(), KvError> {
    for op in ops {
        if let Some((_, value, _)) = op.as_put() {
            crate::map::check_len(value)?;
        }
    }
    Ok(())
}

/// Post-commit bookkeeping for one write of an atomically executed shard
/// group: which request slot it answers and what it must publish or retire
/// once the group's transaction has committed.
enum GroupEffect<S: Stm> {
    /// A put that inserted a fresh key: publish its slots.
    PutInsert { op: usize, put: usize },
    /// A put that displaced an existing value word (stored under
    /// `old_deadline` — if that had passed, the result is reported as an
    /// insert).
    PutUpdate {
        op: usize,
        put: usize,
        displaced: RetiredValue,
        old_deadline: Word,
    },
    /// A delete that unlinked a node, its value and its index tower (the
    /// entry's deadline decides whether the removed value is reported).
    Del {
        op: usize,
        value: RetiredValue,
        node: RetiredNode<S>,
        tower: spectm_ds::RetiredTower<S>,
        deadline: Word,
    },
}

impl<S: Stm + Clone> ShardedKv<S> {
    /// Executes `ops` as one batch (see the [module docs](crate::batch) for
    /// the exact semantics) and returns the per-operation results in
    /// request order: the stored value for a get, the displaced previous
    /// value for a put or delete.
    ///
    /// If any put value exceeds [`crate::MAX_VALUE_LEN`], the whole batch is
    /// rejected **before anything executes**.
    ///
    /// # Examples
    ///
    /// ```
    /// use spectm::{Stm, variants::ValShort};
    /// use spectm_ds::ApiMode;
    /// use spectm_kv::{BatchOp, ShardedKv, Value};
    ///
    /// let stm = ValShort::new();
    /// let store = ShardedKv::new(&stm, 4, 64, ApiMode::Short);
    /// let mut thread = store.register();
    /// let results = store
    ///     .execute_batch(
    ///         &[
    ///             BatchOp::put(1, b"one"),
    ///             BatchOp::Get(1), // reads its own batch's put
    ///             BatchOp::put(1, b"uno"),
    ///             BatchOp::Del(1),
    ///             BatchOp::Get(1),
    ///         ],
    ///         &mut thread,
    ///     )
    ///     .unwrap();
    /// assert_eq!(
    ///     results,
    ///     vec![
    ///         None,
    ///         Some(Value::new(b"one")),
    ///         Some(Value::new(b"one")),
    ///         Some(Value::new(b"uno")),
    ///         None,
    ///     ],
    /// );
    /// ```
    pub fn execute_batch(
        &self,
        ops: &[BatchOp],
        thread: &mut S::Thread,
    ) -> Result<Vec<Option<Value>>, KvError> {
        let mut out = Vec::new();
        let mut order = Vec::new();
        let mut bounds = Vec::new();
        self.execute_grouped(ops, &mut order, &mut bounds, &mut out, thread)?;
        Ok(out)
    }

    /// [`ShardedKv::execute_batch`] over a reusable [`BatchRequest`],
    /// writing the results into a caller-provided [`BatchResponse`]
    /// (cleared first).  With both buffers reused across batches — the
    /// request keeps its grouping scratch alive — a steady-state request
    /// loop performs **no allocations at all** (word-sized put payloads
    /// stay inline in their [`BatchOp`]).
    pub fn execute_batch_into(
        &self,
        req: &mut BatchRequest,
        out: &mut BatchResponse,
        thread: &mut S::Thread,
    ) -> Result<(), KvError> {
        let BatchRequest { ops, order, bounds } = req;
        self.execute_grouped(ops, order, bounds, out, thread)
    }

    /// Executes every committed frame of a [`MultiBatch`] as **one**
    /// shard-grouped dispatch under a single epoch entry, filling the
    /// result buffer that [`MultiBatch::frames`] scatters back per source.
    /// See the [`MultiBatch`] docs for why coalescing frames from
    /// independent sources is performance-transparent.
    ///
    /// On error nothing executes and the results stay empty (same
    /// all-or-nothing validation as [`ShardedKv::execute_batch_into`],
    /// judged over the combined operation list).
    pub fn execute_multi(
        &self,
        multi: &mut MultiBatch,
        thread: &mut S::Thread,
    ) -> Result<(), KvError> {
        debug_assert_eq!(multi.req.len(), multi.committed, "uncommitted frame");
        let BatchRequest { ops, order, bounds } = &mut multi.req;
        self.execute_grouped(ops, order, bounds, &mut multi.results, thread)
    }

    /// The batch engine behind both entry points.
    fn execute_grouped(
        &self,
        ops: &[BatchOp],
        order: &mut Vec<usize>,
        bounds: &mut Vec<usize>,
        out: &mut Vec<Option<Value>>,
        thread: &mut S::Thread,
    ) -> Result<(), KvError> {
        validate_ops(ops)?;
        out.clear();
        // A one-operation batch has nothing to amortize: dispatch straight
        // to the single-key path, with no grouping and no extra pin, so
        // degenerate batches cost what the plain API costs.
        if let [op] = ops {
            let shard = self.router().route(op.key());
            out.push(match op {
                BatchOp::Get(key) => self.get_routed(shard, *key, thread),
                BatchOp::Put(key, value) => self.put_routed(shard, *key, value, None, thread),
                BatchOp::PutTtl(key, value, ttl_ms) => {
                    self.put_routed(shard, *key, value, Some(*ttl_ms), thread)
                }
                BatchOp::Del(key) => self.del_routed(shard, *key, thread),
            });
            return Ok(());
        }
        out.resize(ops.len(), None);
        self.router()
            .group_runs_into(ops.iter().map(BatchOp::key), order, bounds);
        // One epoch entry for the whole batch: the pins taken by the
        // per-operation paths below all nest inside this one, reducing
        // their announce to a counter bump.
        let _batch_pin = thread.epoch().pin();
        let mut start = 0usize;
        for (shard, &end) in bounds.iter().enumerate() {
            let group = &order[start..end];
            start = end;
            if group.is_empty() {
                continue;
            }
            if Self::mixes_read_write_on_same_key(ops, group) {
                self.run_group_atomic(shard, ops, group, out, thread);
            } else {
                // Pipelined dispatch: overlap operation `j`'s bucket probe
                // with the home-bucket fetch of the operation
                // `PREFETCH_AHEAD` positions later — one line covers the
                // whole 7-slot bucket.  `order` is contiguous across
                // groups, so the lookahead crosses group borders and stays
                // warm for every shard.
                for (j, &i) in group.iter().enumerate() {
                    if let Some(&ahead) = order.get(start - group.len() + j + PREFETCH_AHEAD) {
                        let key = ops[ahead].key();
                        self.shard_map(self.router().route(key))
                            .prefetch_bucket(key);
                    }
                    out[i] = self.run_op(shard, &ops[i], thread);
                }
            }
        }
        Ok(())
    }

    /// Dispatches one operation on a resolved shard through the
    /// pinned-epoch short-transaction paths — the caller (the batch
    /// dispatch loop) holds the batch's epoch pin, so gets and overwrites
    /// skip per-attempt pin entry/exit entirely.
    #[inline]
    fn run_op(&self, shard: usize, op: &BatchOp, thread: &mut S::Thread) -> Option<Value> {
        match op {
            BatchOp::Get(key) => self.get_routed_pinned(shard, *key, thread),
            BatchOp::Put(key, value) => self.put_routed_pinned(shard, *key, value, None, thread),
            BatchOp::PutTtl(key, value, ttl_ms) => {
                self.put_routed_pinned(shard, *key, value, Some(*ttl_ms), thread)
            }
            BatchOp::Del(key) => self.del_routed(shard, *key, thread),
        }
    }

    /// Reads every key of `keys`, pipelined per shard under one epoch
    /// entry.  Each read is individually atomic; unlike
    /// [`ShardedKv::multi_get_atomic`] the values may belong to different
    /// serialization points — and there is no key-count limit.
    pub fn multi_get(&self, keys: &[u64], thread: &mut S::Thread) -> Vec<Option<Value>> {
        let mut out = vec![None; keys.len()];
        let (order, ends) = self.router().group_runs(keys.iter().copied());
        let _batch_pin = thread.epoch().pin();
        let mut start = 0usize;
        for (shard, &end) in ends.iter().enumerate() {
            for &i in &order[start..end] {
                out[i] = self.get_routed_pinned(shard, keys[i], thread);
            }
            start = end;
        }
        out
    }

    /// Stores every `(key, value)` pair, pipelined per shard under one
    /// epoch entry, returning the displaced previous values in request
    /// order.  Each put is individually atomic; same-key pairs apply in
    /// request order.  An oversized value rejects the whole batch before
    /// anything executes.
    pub fn multi_put(
        &self,
        pairs: &[(u64, &[u8])],
        thread: &mut S::Thread,
    ) -> Result<Vec<Option<Value>>, KvError> {
        for (_, value) in pairs {
            crate::map::check_len(value)?;
        }
        let mut out = vec![None; pairs.len()];
        let (order, ends) = self.router().group_runs(pairs.iter().map(|(k, _)| *k));
        let _batch_pin = thread.epoch().pin();
        let mut start = 0usize;
        for (shard, &end) in ends.iter().enumerate() {
            for &i in &order[start..end] {
                let (key, value) = pairs[i];
                out[i] = self.put_routed_pinned(shard, key, value, None, thread);
            }
            start = end;
        }
        Ok(out)
    }

    /// Removes every key of `keys`, pipelined per shard under one epoch
    /// entry, returning the removed values in request order.  Each delete
    /// is individually atomic.
    pub fn multi_del(&self, keys: &[u64], thread: &mut S::Thread) -> Vec<Option<Value>> {
        let mut out = vec![None; keys.len()];
        let (order, ends) = self.router().group_runs(keys.iter().copied());
        let _batch_pin = thread.epoch().pin();
        let mut start = 0usize;
        for (shard, &end) in ends.iter().enumerate() {
            for &i in &order[start..end] {
                out[i] = self.del_routed(shard, keys[i], thread);
            }
            start = end;
        }
        out
    }

    /// Whether a shard group both reads and writes the same key — the
    /// condition under which pipelining individual operations would let a
    /// concurrent writer slip between a get and the put it feeds, and the
    /// group falls back to one full transaction.
    ///
    /// Shard groups are small (a batch spreads over every shard), so the
    /// allocation-free nested scan beats sorting.
    fn mixes_read_write_on_same_key(ops: &[BatchOp], group: &[usize]) -> bool {
        for &w in group {
            if !ops[w].is_write() {
                continue;
            }
            let wkey = ops[w].key();
            for &r in group {
                if !ops[r].is_write() && ops[r].key() == wkey {
                    return true;
                }
            }
        }
        false
    }

    /// Runs one shard's group as a single full transaction, in request
    /// order, with the same slot-reuse and epoch-retirement contracts as
    /// the single-key paths (`NodeSlot` / `ValueSlot` / `TowerSlot` carry
    /// speculative allocations across conflict retries; displaced words,
    /// unlinked nodes and towers are retired only after the commit).
    fn run_group_atomic(
        &self,
        shard: usize,
        ops: &[BatchOp],
        group: &[usize],
        out: &mut [Option<Value>],
        thread: &mut S::Thread,
    ) {
        let map = self.shard_map(shard);
        let index = self.shard_index(shard);
        let now = self.now_ms();
        // One slot triple per put operation of the group, allocated lazily
        // by the map/index helpers and reused across conflict retries.
        let puts = group.iter().filter(|&&i| ops[i].as_put().is_some()).count();
        let mut value_slots: Vec<ValueSlot> = (0..puts).map(|_| ValueSlot::new()).collect();
        let mut node_slots: Vec<NodeSlot<S>> = (0..puts).map(|_| NodeSlot::new()).collect();
        let mut tower_slots: Vec<TowerSlot<S>> = (0..puts).map(|_| TowerSlot::new()).collect();
        let mut effects: Vec<GroupEffect<S>> = Vec::new();
        thread
            .atomic(|tx| {
                // A retried body starts from scratch; dropping the previous
                // attempt's effects is the documented abort behaviour of
                // the Retired* types.
                effects.clear();
                let mut put_no = 0;
                for &i in group {
                    if let Some((key, value, ttl_ms)) = ops[i].as_put() {
                        let put = put_no;
                        put_no += 1;
                        let deadline = self.deadline_for(ttl_ms);
                        let displaced = map.put_in(
                            key,
                            value,
                            deadline,
                            &mut value_slots[put],
                            &mut node_slots[put],
                            tx,
                        )?;
                        match displaced {
                            Some((displaced, old_deadline)) => {
                                effects.push(GroupEffect::PutUpdate {
                                    op: i,
                                    put,
                                    displaced,
                                    old_deadline,
                                });
                            }
                            None => {
                                let linked = index.insert_in(key, 0, &mut tower_slots[put], tx)?;
                                debug_assert!(
                                    linked,
                                    "key {key} was in the index but not the shard"
                                );
                                effects.push(GroupEffect::PutInsert { op: i, put });
                            }
                        }
                        continue;
                    }
                    match &ops[i] {
                        BatchOp::Get(key) => {
                            // An expired entry is absent; physical removal
                            // is left to lazy reads and the sweep.
                            out[i] = match map.read_entry_in(*key, tx)? {
                                Some((_, deadline)) if deadline_expired(deadline, now) => None,
                                Some((value, _)) => Some(value),
                                None => None,
                            };
                        }
                        BatchOp::Del(key) => {
                            if let Some((value, node, deadline)) = map.del_in(*key, tx)? {
                                let tower = index.remove_in(*key, tx)?;
                                let tower = tower
                                    .unwrap_or_else(|| panic!("key {key} missing from the index"));
                                effects.push(GroupEffect::Del {
                                    op: i,
                                    value,
                                    node,
                                    tower,
                                    deadline,
                                });
                            } else {
                                out[i] = None;
                            }
                        }
                        BatchOp::Put(..) | BatchOp::PutTtl(..) => unreachable!("handled above"),
                    }
                }
                Ok(())
            })
            .expect("batch groups are never cancelled");
        // The group committed: resolve the write results, publish the slots
        // of inserted nodes, settle the byte account and retire everything
        // the transaction displaced.
        for effect in effects {
            match effect {
                GroupEffect::PutInsert { op, put } => {
                    out[op] = None;
                    value_slots[put].mark_published();
                    node_slots[put].mark_published();
                    tower_slots[put].mark_published();
                    let (_, value, _) = ops[op].as_put().expect("insert effect from a put");
                    self.account_insert(value.len());
                }
                GroupEffect::PutUpdate {
                    op,
                    put,
                    displaced,
                    old_deadline,
                } => {
                    value_slots[put].mark_published();
                    let old = displaced.value();
                    displaced.retire(thread.epoch());
                    let (_, value, _) = ops[op].as_put().expect("update effect from a put");
                    out[op] = self.settle_overwrite(old, old_deadline, value.len());
                }
                GroupEffect::Del {
                    op,
                    value,
                    node,
                    tower,
                    deadline,
                } => {
                    let removed = value.value();
                    self.account_remove(removed.len());
                    out[op] = if deadline_expired(deadline, now) {
                        self.note_expired();
                        None
                    } else {
                        Some(removed)
                    };
                    value.retire(thread.epoch());
                    node.retire(thread);
                    tower.retire(thread);
                }
            }
        }
        // Hit/miss accounting and frequency bumps for the group's reads,
        // settled after the commit so conflict retries are not counted.
        for &i in group {
            if let BatchOp::Get(key) = ops[i] {
                if out[i].is_some() {
                    self.count_hit();
                    if self.config().max_bytes.is_some() {
                        map.bump_freq(key, thread);
                    }
                } else {
                    self.count_miss();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::MAX_VALUE_LEN;
    use spectm::variants::{OrecFullG, ValShort};
    use spectm_ds::ApiMode;
    use std::collections::BTreeMap;

    fn results_of(batch: &[BatchOp], oracle: &mut BTreeMap<u64, Value>) -> Vec<Option<Value>> {
        batch
            .iter()
            .map(|op| match op {
                BatchOp::Get(k) => oracle.get(k).cloned(),
                BatchOp::Put(k, v) | BatchOp::PutTtl(k, v, _) => oracle.insert(*k, v.clone()),
                BatchOp::Del(k) => oracle.remove(k),
            })
            .collect()
    }

    #[test]
    fn mixed_batches_match_a_sequential_oracle() {
        for mode in [ApiMode::Short, ApiMode::Full] {
            let stm = ValShort::new();
            let store = ShardedKv::new(&stm, 4, 32, mode);
            let mut t = store.register();
            let mut oracle = BTreeMap::new();
            let mut state = 0x5EED_0001u64;
            let mut rng = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for round in 0..60 {
                let len = (rng() % 24) as usize;
                let batch: Vec<BatchOp> = (0..len)
                    .map(|_| {
                        let key = rng() % 48;
                        match rng() % 4 {
                            0 => BatchOp::Get(key),
                            1 => BatchOp::Del(key),
                            // Lengths sweep inline and out-of-line values.
                            _ => BatchOp::put(key, &vec![rng() as u8; (rng() % 40) as usize]),
                        }
                    })
                    .collect();
                assert_eq!(
                    store.execute_batch(&batch, &mut t).unwrap(),
                    results_of(&batch, &mut oracle),
                    "{mode:?} diverged on batch {round}"
                );
            }
            assert_eq!(
                store.quiescent_snapshot(),
                oracle.into_iter().collect::<Vec<_>>()
            );
            store.assert_index_consistent();
        }
    }

    #[test]
    fn read_your_writes_within_one_batch() {
        let stm = OrecFullG::new();
        let store = ShardedKv::new(&stm, 2, 16, ApiMode::Full);
        let mut t = store.register();
        // put/get/del chains on one key land in one shard group and mix
        // reads with writes, forcing the atomic fallback.
        let results = store
            .execute_batch(
                &[
                    BatchOp::Get(9),
                    BatchOp::put(9, b"a"),
                    BatchOp::Get(9),
                    BatchOp::Del(9),
                    BatchOp::Get(9),
                    BatchOp::put(9, b"a second, longer, out-of-line value"),
                    BatchOp::Get(9),
                ],
                &mut t,
            )
            .unwrap();
        assert_eq!(
            results,
            vec![
                None,
                None,
                Some(Value::new(b"a")),
                Some(Value::new(b"a")),
                None,
                None,
                Some(Value::new(b"a second, longer, out-of-line value")),
            ]
        );
        store.assert_index_consistent();
    }

    #[test]
    fn oversized_puts_reject_the_whole_batch_untouched() {
        let stm = ValShort::new();
        let store = ShardedKv::new(&stm, 2, 16, ApiMode::Short);
        let mut t = store.register();
        store.put(1, b"keep", &mut t).unwrap();
        let huge = vec![0u8; MAX_VALUE_LEN + 1];
        let batch = [
            BatchOp::put(1, b"clobbered?"),
            BatchOp::Put(2, Value::from(huge.clone())),
        ];
        assert_eq!(
            store.execute_batch(&batch, &mut t),
            Err(KvError::ValueTooLarge {
                len: MAX_VALUE_LEN + 1
            })
        );
        assert_eq!(store.get(1, &mut t), Some(Value::new(b"keep")));
        assert_eq!(store.get(2, &mut t), None);
        assert_eq!(
            store.multi_put(&[(1, b"x"), (2, &huge)], &mut t),
            Err(KvError::ValueTooLarge {
                len: MAX_VALUE_LEN + 1
            })
        );
        assert_eq!(store.get(1, &mut t), Some(Value::new(b"keep")));
    }

    #[test]
    fn multi_ops_roundtrip_in_request_order() {
        let stm = ValShort::new();
        let store = ShardedKv::new(&stm, 4, 32, ApiMode::Short);
        let mut t = store.register();
        let pairs: Vec<(u64, Vec<u8>)> =
            (0..40u64).map(|k| (k, k.to_le_bytes().to_vec())).collect();
        let borrowed: Vec<(u64, &[u8])> = pairs.iter().map(|(k, v)| (*k, v.as_slice())).collect();
        assert_eq!(
            store.multi_put(&borrowed, &mut t).unwrap(),
            vec![None; 40],
            "fresh inserts displace nothing"
        );
        let keys: Vec<u64> = (0..44).collect();
        let got = store.multi_get(&keys, &mut t);
        for (k, v) in keys.iter().zip(&got) {
            if *k < 40 {
                assert_eq!(v.as_ref().unwrap().as_u64(), *k);
            } else {
                assert!(v.is_none());
            }
        }
        // Duplicate keys apply in request order.
        let dup = store
            .multi_put(&[(7, b"first"), (7, b"second")], &mut t)
            .unwrap();
        assert_eq!(dup[0].as_ref().unwrap().as_u64(), 7);
        assert_eq!(dup[1], Some(Value::new(b"first")));
        let removed = store.multi_del(&[7, 7, 41], &mut t);
        assert_eq!(removed, vec![Some(Value::new(b"second")), None, None]);
        store.assert_index_consistent();
    }

    #[test]
    fn empty_and_single_op_batches_work() {
        let stm = ValShort::new();
        let store = ShardedKv::new(&stm, 1, 16, ApiMode::Short);
        let mut t = store.register();
        assert!(store.execute_batch(&[], &mut t).unwrap().is_empty());
        assert_eq!(
            store
                .execute_batch(&[BatchOp::put(3, b"x")], &mut t)
                .unwrap(),
            vec![None]
        );
        assert_eq!(
            store.execute_batch(&[BatchOp::Get(3)], &mut t).unwrap(),
            vec![Some(Value::new(b"x"))]
        );
    }

    #[test]
    fn op_accessors_expose_key_and_kind() {
        assert_eq!(BatchOp::Get(5).key(), 5);
        assert_eq!(BatchOp::put(6, b"v").key(), 6);
        assert_eq!(BatchOp::Del(7).key(), 7);
        assert!(!BatchOp::Get(5).is_write());
        assert!(BatchOp::put(6, b"v").is_write());
        assert!(BatchOp::Del(7).is_write());
    }

    #[test]
    fn multi_batch_scatters_each_source_like_serial_execution() {
        let stm = ValShort::new();
        let store = ShardedKv::new(&stm, 4, 64, ApiMode::Short);
        let mut t = store.register();
        let mut oracle = BTreeMap::new();
        let mut multi = MultiBatch::new();
        let mut state = 0xC0A1_E5CEu64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        // Several sweeps of coalesced frames from 3 sources with disjoint
        // key ranges: each source's scattered slice must equal a serial
        // replay of that source's own operations (disjoint ranges make the
        // per-source oracle exact regardless of cross-source interleaving).
        for _ in 0..20 {
            multi.clear();
            let mut expect: Vec<(usize, Vec<Option<Value>>)> = Vec::new();
            for source in 0..3usize {
                let base = source as u64 * 100;
                let frames = 1 + rng() % 3;
                for _ in 0..frames {
                    let ops: Vec<BatchOp> = (0..rng() % 6)
                        .map(|_| {
                            let key = base + rng() % 16;
                            match rng() % 4 {
                                0 => BatchOp::Get(key),
                                1 => BatchOp::Del(key),
                                _ => BatchOp::put(key, &vec![rng() as u8; (rng() % 30) as usize]),
                            }
                        })
                        .collect();
                    expect.push((source, results_of(&ops, &mut oracle)));
                    for op in ops {
                        multi.request_mut().push(op);
                    }
                    multi.commit_frame(source);
                }
            }
            assert_eq!(multi.frame_count(), expect.len());
            assert_eq!(
                multi.op_count(),
                expect.iter().map(|(_, r)| r.len()).sum::<usize>()
            );
            store.execute_multi(&mut multi, &mut t).unwrap();
            let got: Vec<(usize, Vec<Option<Value>>)> = multi
                .frames()
                .map(|(source, results)| (source, results.to_vec()))
                .collect();
            assert_eq!(got, expect);
        }
        store.assert_index_consistent();
    }

    #[test]
    fn multi_batch_rollback_drops_only_the_partial_frame() {
        let stm = ValShort::new();
        let store = ShardedKv::new(&stm, 2, 16, ApiMode::Short);
        let mut t = store.register();
        let mut multi = MultiBatch::new();
        multi.request_mut().put(1, b"kept");
        multi.commit_frame(7);
        // A frame that fails to decode partway: its appended ops must
        // vanish without disturbing the committed frame before it.
        multi.request_mut().put(1, b"poison").del(1);
        multi.rollback_frame();
        assert_eq!(multi.frame_count(), 1);
        assert_eq!(multi.op_count(), 1);
        assert_eq!(multi.sources().collect::<Vec<_>>(), vec![7]);
        store.execute_multi(&mut multi, &mut t).unwrap();
        let frames: Vec<_> = multi.frames().collect();
        assert_eq!(frames, vec![(7, &[None][..])]);
        assert_eq!(store.get(1, &mut t), Some(Value::new(b"kept")));
    }

    #[test]
    fn multi_batch_zero_op_frames_yield_empty_slices() {
        let stm = ValShort::new();
        let store = ShardedKv::new(&stm, 2, 16, ApiMode::Short);
        let mut t = store.register();
        let mut multi = MultiBatch::new();
        assert!(multi.is_empty());
        multi.commit_frame(0); // an empty frame is a legal (if silly) request
        multi.request_mut().put(5, b"v").get(5);
        multi.commit_frame(1);
        multi.commit_frame(2);
        assert!(!multi.is_empty());
        store.execute_multi(&mut multi, &mut t).unwrap();
        let frames: Vec<_> = multi.frames().collect();
        assert_eq!(
            frames,
            vec![
                (0, &[][..]),
                (1, &[None, Some(Value::new(b"v"))][..]),
                (2, &[][..]),
            ]
        );
        // clear() resets for the next sweep without shrinking buffers.
        multi.clear();
        assert!(multi.is_empty());
        assert_eq!(multi.op_count(), 0);
    }

    #[test]
    fn multi_batch_oversized_put_rejects_the_whole_dispatch() {
        let stm = ValShort::new();
        let store = ShardedKv::new(&stm, 2, 16, ApiMode::Short);
        let mut t = store.register();
        store.put(3, b"keep", &mut t).unwrap();
        let mut multi = MultiBatch::new();
        multi.request_mut().put(3, b"clobbered?");
        multi.commit_frame(0);
        multi
            .request_mut()
            .push(BatchOp::Put(4, Value::from(vec![0u8; MAX_VALUE_LEN + 1])));
        multi.commit_frame(1);
        assert!(store.execute_multi(&mut multi, &mut t).is_err());
        assert_eq!(store.get(3, &mut t), Some(Value::new(b"keep")));
    }
}
