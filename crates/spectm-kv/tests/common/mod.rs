//! Deterministic concurrency-test scaffolding shared by this crate's
//! integration suites (`invariants.rs`, `value_reclamation.rs`,
//! `batch_semantics.rs`).
//!
//! Every multi-threaded invariant test used to hand-roll the same
//! spawn-and-pray loop: clone an `Arc`, spawn threads that start whenever
//! the OS gets around to it, seed ad-hoc RNGs, join.  This module replaces
//! that with three guarantees the suites rely on:
//!
//! * **Barrier-started workers** — [`run_workers`] releases every worker
//!   through one barrier, so the contention window actually overlaps
//!   instead of degenerating into serial execution when spawn latency
//!   exceeds the workload (worker bodies borrow from the caller through a
//!   thread scope — no `Arc` choreography).
//! * **Seeded per-thread RNGs** — each worker receives an [`Xorshift`]
//!   derived from a test-chosen base seed and its thread id through one
//!   canonical mixing function ([`thread_rng`]), so a replay (e.g. a
//!   sequential oracle applying the same streams) reconstructs exactly the
//!   operations the workers performed.
//! * **Bounded-iteration replay** — workloads are written as a fixed
//!   number of operations per worker, never "run until a clock says stop";
//!   a failure therefore reproduces from nothing but the seed.  (The
//!   throughput drivers in `harness` measure wall-clock windows; invariant
//!   tests must not.)
//!
//! Worker panics (failed assertions) propagate to the test with the
//! worker's id attached.

// Each integration-test binary compiles its own copy of this module and
// uses a subset of it.
#![allow(dead_code)]

use std::sync::Barrier;

/// Cheap deterministic xorshift generator — the single RNG every suite
/// draws from, so oracles can replay worker streams exactly.
pub struct Xorshift(u64);

impl Xorshift {
    /// Creates a generator from a nonzero-forced seed.
    pub fn new(seed: u64) -> Self {
        Self(seed | 1)
    }

    /// Next raw 64-bit draw.
    pub fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// The canonical per-thread stream: mixes `tid` into `base_seed` so worker
/// streams are decorrelated but reproducible.  Oracles replaying a
/// worker's operations must derive their generator through this same
/// function.
pub fn thread_rng(base_seed: u64, tid: u64) -> Xorshift {
    Xorshift::new(base_seed ^ (tid + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Runs `threads` barrier-started workers and joins them all.
///
/// `worker(tid, rng)` runs on its own thread with `tid` in `0..threads`
/// and the canonical [`thread_rng`]`(base_seed, tid)` stream; no worker
/// starts its workload until every worker is ready.  The closure borrows
/// from the enclosing scope (stores, counters, key sets) without `Arc`s.
/// If a worker panics, the panic propagates with the worker's id.
pub fn run_workers<F>(threads: u64, base_seed: u64, worker: F)
where
    F: Fn(u64, &mut Xorshift) + Sync,
{
    let barrier = Barrier::new(threads as usize);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                let barrier = &barrier;
                let worker = &worker;
                scope.spawn(move || {
                    let mut rng = thread_rng(base_seed, tid);
                    barrier.wait();
                    worker(tid, &mut rng);
                })
            })
            .collect();
        for (tid, handle) in handles.into_iter().enumerate() {
            if let Err(panic) = handle.join() {
                let msg = panic
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| panic.downcast_ref::<&str>().copied())
                    .unwrap_or("worker panicked");
                panic!("worker {tid}: {msg}");
            }
        }
    });
}
