//! Property tests for the wire codec (`spectm_kv::wire`): arbitrary
//! requests and responses survive encode→decode unchanged, and the decoded
//! form re-encodes **byte-identically** — so the codec has exactly one
//! representation per batch and the server and client cannot drift apart.
//!
//! Generated batches sweep the op mixes (get/put/del, duplicate keys
//! included), value sizes across the inline-SSO and out-of-line regimes,
//! and op counts from the empty frame through `MAX_RMW_KEYS`-sized
//! multi-key shapes up to the `MAX_WIRE_OPS` frame cap.

use proptest::prelude::*;
use spectm_kv::wire::{
    decode_request, decode_response, encode_request, encode_response, MAX_WIRE_OPS,
};
use spectm_kv::{BatchOp, BatchRequest, BatchResponse, Value, MAX_RMW_KEYS};

/// Deterministic payload of `len` bytes for `(key, draw)`.  Lengths are
/// drawn across 0, inline (≤ 16 bytes) and out-of-line sizes.
fn payload(key: u64, draw: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (key as u8).wrapping_mul(151) ^ (draw as u8) ^ (i as u8).wrapping_mul(41))
        .collect()
}

/// Maps one generated `(kind, key, draw, len)` quad to an operation.
fn op_from(kind: u8, key: u64, draw: u64, len: usize) -> BatchOp {
    match kind % 4 {
        0 => BatchOp::Get(key),
        1 => BatchOp::Del(key),
        _ => BatchOp::put(key, &payload(key, draw, len)),
    }
}

/// One frame's worth of generated operations: mixes, duplicate keys, value
/// sizes from empty through well past the 16-byte inline buffer, op counts
/// 0 (empty frame) through the `MAX_WIRE_OPS` cap — covering the
/// `0..=MAX_RMW_KEYS` multi-key shapes on the way.
fn ops_strategy() -> impl Strategy<Value = Vec<(u8, u64, u64, usize)>> {
    proptest::collection::vec(
        (0u8..4, 0u64..48, 0u64..1 << 60, 0usize..600),
        0..MAX_WIRE_OPS + 1,
    )
}

proptest! {
    /// encode→decode is the identity on requests, and re-encoding the
    /// decoded request reproduces the original frame byte for byte.
    #[test]
    fn requests_roundtrip_and_reencode_identically(raw in ops_strategy()) {
        let ops: Vec<BatchOp> = raw
            .iter()
            .map(|&(kind, key, draw, len)| op_from(kind, key, draw, len))
            .collect();
        let mut frame = Vec::new();
        encode_request(&ops, &mut frame).unwrap();
        prop_assert!(frame.len() >= 8, "prefix and count are always present");

        let mut decoded = BatchRequest::new();
        decode_request(&frame[4..], &mut decoded).unwrap();
        prop_assert_eq!(decoded.ops(), ops.as_slice());

        let mut reencoded = Vec::new();
        encode_request(decoded.ops(), &mut reencoded).unwrap();
        prop_assert_eq!(&reencoded, &frame, "one representation per batch");
    }

    /// The same two properties for responses, across absent results and
    /// empty/inline/out-of-line values.
    #[test]
    fn responses_roundtrip_and_reencode_identically(
        raw in proptest::collection::vec(
            (0u8..2, 0u64..48, 0u64..1 << 60, 0usize..600),
            0..MAX_WIRE_OPS + 1,
        )
    ) {
        let results: BatchResponse = raw
            .iter()
            .map(|&(tag, key, draw, len)| {
                (tag == 1).then(|| Value::new(&payload(key, draw, len)))
            })
            .collect();
        let mut frame = Vec::new();
        encode_response(&results, &mut frame).unwrap();

        let mut decoded = BatchResponse::new();
        decode_response(&frame[4..], &mut decoded).unwrap();
        prop_assert_eq!(&decoded, &results);

        let mut reencoded = Vec::new();
        encode_response(&decoded, &mut reencoded).unwrap();
        prop_assert_eq!(&reencoded, &frame, "one representation per response");
    }

    /// Decoding reuses the caller's request across frames (the server's
    /// steady-state loop): a dirty request from one frame never leaks into
    /// the decode of the next.
    #[test]
    fn decoding_into_a_reused_request_leaves_no_residue(
        first in ops_strategy(),
        second in ops_strategy(),
    ) {
        let to_ops = |raw: &[(u8, u64, u64, usize)]| -> Vec<BatchOp> {
            raw.iter().map(|&(k, key, d, l)| op_from(k, key, d, l)).collect()
        };
        let (a, b) = (to_ops(&first), to_ops(&second));
        let mut frame = Vec::new();
        let mut req = BatchRequest::new();
        encode_request(&a, &mut frame).unwrap();
        decode_request(&frame[4..], &mut req).unwrap();
        encode_request(&b, &mut frame).unwrap();
        decode_request(&frame[4..], &mut req).unwrap();
        prop_assert_eq!(req.ops(), b.as_slice());
    }
}

/// The multi-key shapes the store's own `rmw` path bounds: every op count
/// in `0..=MAX_RMW_KEYS` round-trips (the proptests cover these sizes too,
/// but this pins the boundary deterministically).
#[test]
fn every_rmw_sized_batch_roundtrips() {
    for n in 0..=MAX_RMW_KEYS {
        let ops: Vec<BatchOp> = (0..n as u64)
            .map(|i| op_from(i as u8, i, i * 7, 17 + i as usize))
            .collect();
        let mut frame = Vec::new();
        encode_request(&ops, &mut frame).unwrap();
        let mut decoded = BatchRequest::new();
        decode_request(&frame[4..], &mut decoded).unwrap();
        assert_eq!(decoded.ops(), ops.as_slice());
    }
}
