//! TTL observability: an expired entry must never be returned through
//! **any** read surface — `get`, `scan`, `execute_batch`, or the wire
//! codec path — no matter how the clock, the operations and the sweeps
//! interleave.
//!
//! Two layers:
//!
//! * A proptest drives a random schedule of TTL'd puts, deletes, clock
//!   advances and sweep steps on a manually driven clock against a
//!   `BTreeMap` oracle, checking every read surface after every step.
//! * A barrier-started multi-threaded run (the [`common`] scaffolding)
//!   races workers against the background [`Reclaimer`] while a dedicated
//!   thread advances the clock, asserting that a key known to be past its
//!   deadline is never observed and an immortal key never disappears.

mod common;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use common::run_workers;
use proptest::prelude::*;
use spectm::variants::ValShort;
use spectm::Stm;
use spectm_ds::ApiMode;
use spectm_kv::wire;
use spectm_kv::{BatchOp, BatchRequest, BatchResponse, CacheConfig, Clock, Reclaimer, ShardedKv};

const RANGE: u64 = 24;

/// Deterministic payload for `(key, draw)` sweeping the inline and
/// out-of-line value regimes.
fn payload(key: u64, draw: u64) -> Vec<u8> {
    let len = (draw % 49) as usize;
    (0..len)
        .map(|i| (key as u8).wrapping_mul(167) ^ (draw as u8) ^ (i as u8).wrapping_mul(59))
        .collect()
}

/// Reads the manual clock.
fn clock_now(clock: &AtomicU64) -> u64 {
    // ORDERING: the manual clock is a monotonic test counter; every
    // assertion bounds itself with its own read, so Relaxed suffices.
    clock.load(Ordering::Relaxed)
}

/// Advances the manual clock by `ms`.
fn clock_advance(clock: &AtomicU64, ms: u64) {
    // ORDERING: see `clock_now`.
    clock.fetch_add(ms, Ordering::Relaxed);
}

/// Oracle entry: bytes plus absolute deadline (`0` = immortal).
type Oracle = BTreeMap<u64, (Vec<u8>, u64)>;

/// Whether the oracle considers `key` observable at `now`.
fn observable(oracle: &Oracle, key: u64, now: u64) -> Option<&[u8]> {
    oracle.get(&key).and_then(|(bytes, deadline)| {
        (*deadline == 0 || *deadline > now).then_some(bytes.as_slice())
    })
}

/// Reads every key over the wire codec path — encode the request frame,
/// decode it server-side, execute, encode the response, decode it
/// client-side — and checks each result against the oracle.
fn check_wire_surface(
    store: &ShardedKv<ValShort>,
    t: &mut <ValShort as Stm>::Thread,
    oracle: &Oracle,
    now: u64,
) {
    let ops: Vec<BatchOp> = (0..RANGE).map(BatchOp::Get).collect();
    let mut frame = Vec::new();
    wire::encode_request(&ops, &mut frame).unwrap();
    let mut req = BatchRequest::new();
    wire::decode_request(&frame[4..], &mut req).unwrap();
    let mut resp = BatchResponse::new();
    store.execute_batch_into(&mut req, &mut resp, t).unwrap();
    let mut resp_frame = Vec::new();
    wire::encode_response(&resp, &mut resp_frame).unwrap();
    let mut decoded = BatchResponse::new();
    wire::decode_response(&resp_frame[4..], &mut decoded).unwrap();
    for (key, result) in (0..RANGE).zip(&decoded) {
        match observable(oracle, key, now) {
            Some(bytes) => assert_eq!(
                result.as_ref().map(|v| v.as_ref()),
                Some(bytes),
                "wire get of live key {key} at {now}ms"
            ),
            None => assert_eq!(*result, None, "wire get exposed dead key {key} at {now}ms"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Random schedules of TTL'd writes, clock advances, deletes and
    /// sweeps: after every step, `get`, `scan`, `execute_batch` and the
    /// wire path agree with the oracle and never expose an expired entry.
    #[test]
    fn expired_entries_are_unobservable_on_every_surface(
        steps in proptest::collection::vec((0u8..6, 0u64..RANGE, 0u64..1 << 60), 1..60),
    ) {
        let stm = ValShort::new();
        let now_ms = Arc::new(AtomicU64::new(0));
        let config = CacheConfig {
            clock: Clock::manual(&now_ms),
            ..CacheConfig::default()
        };
        let store = ShardedKv::with_config(&stm, 2, 16, ApiMode::Short, config);
        let mut t = store.register();
        let mut oracle: Oracle = BTreeMap::new();

        for (op, key, draw) in steps {
            let now = clock_now(&now_ms);
            match op {
                // A put with a short TTL, a long TTL, or none (immortal).
                0 => {
                    let ttl = draw % 8; // 0 = immortal, else 1..=7 ms
                    let bytes = payload(key, draw);
                    store.put_with_ttl(key, &bytes, Some(ttl), &mut t).unwrap();
                    let deadline = if ttl == 0 { 0 } else { now + ttl };
                    oracle.insert(key, (bytes, deadline));
                }
                // Time passes.
                1 => {
                    clock_advance(&now_ms, draw % 5);
                }
                // A delete (possibly of an expired corpse: reports None
                // either way, and the key stays gone).
                2 => {
                    let expect = observable(&oracle, key, now).map(<[u8]>::to_vec);
                    let got = store.del(key, &mut t).map(|v| v.as_ref().to_vec());
                    prop_assert_eq!(got, expect, "del of key {} at {}ms", key, now);
                    oracle.remove(&key);
                }
                // A sweep step changes nothing observable, ever.
                3 => {
                    store.sweep_step((draw % 64) as usize, &mut t);
                }
                // Point get.
                4 => {
                    let got = store.get(key, &mut t);
                    let expect = observable(&oracle, key, now);
                    prop_assert_eq!(
                        got.as_ref().map(|v| v.as_ref()),
                        expect,
                        "get of key {} at {}ms",
                        key,
                        now
                    );
                }
                // Batched gets through `execute_batch`.
                _ => {
                    let ops: Vec<BatchOp> = (0..RANGE).map(BatchOp::Get).collect();
                    let results = store.execute_batch(&ops, &mut t).unwrap();
                    for (k, result) in (0..RANGE).zip(&results) {
                        prop_assert_eq!(
                            result.as_ref().map(|v| v.as_ref()),
                            observable(&oracle, k, now),
                            "batched get of key {} at {}ms",
                            k,
                            now
                        );
                    }
                }
            }
            // The full-table surfaces hold after every step: the scan shows
            // exactly the observable oracle, and the wire path agrees.
            let now = clock_now(&now_ms);
            let scanned: Vec<(u64, Vec<u8>)> = store
                .scan(0, usize::MAX, &mut t)
                .into_iter()
                .map(|(k, v)| (k, v.as_ref().to_vec()))
                .collect();
            let visible: Vec<(u64, Vec<u8>)> = oracle
                .iter()
                .filter(|(k, _)| observable(&oracle, **k, now).is_some())
                .map(|(k, (bytes, _))| (*k, bytes.clone()))
                .collect();
            prop_assert_eq!(scanned, visible, "scan at {}ms", now);
            check_wire_surface(&store, &mut t, &oracle, now);
        }
        store.assert_index_consistent();
    }
}

/// Workers over disjoint key ranges race the background reclaimer and a
/// clock-advancer thread.  Every worker tracks a conservative deadline
/// upper bound per key, so "this key is past its deadline for sure" and
/// "this key is immortal" are both assertable despite the concurrency.
#[test]
fn racing_reclaimer_never_exposes_expired_entries() {
    const WORKERS: u64 = 3;
    const KEYS_PER_WORKER: u64 = 48;
    const OPS: usize = 2_500;

    let stm = ValShort::new();
    let now_ms = Arc::new(AtomicU64::new(0));
    let config = CacheConfig {
        clock: Clock::manual(&now_ms),
        ..CacheConfig::default()
    };
    let store = Arc::new(ShardedKv::with_config(&stm, 4, 64, ApiMode::Short, config));
    let reclaimer = Reclaimer::spawn(Arc::clone(&store), Duration::from_micros(200), 64);
    // Immortal entries must survive everything; the shared oracle records
    // them (workers write disjoint ranges, so entries never conflict).
    let immortal: Mutex<BTreeMap<u64, Vec<u8>>> = Mutex::new(BTreeMap::new());

    // Worker 0 is the clock: everyone else runs the workload.
    run_workers(WORKERS + 1, 0xDEAD_0011, |tid, rng| {
        if tid == 0 {
            for _ in 0..OPS {
                clock_advance(&now_ms, 1);
                std::thread::yield_now();
            }
            return;
        }
        let mut t = store.register();
        let base = (tid - 1) * KEYS_PER_WORKER;
        // key -> (bytes, deadline upper bound; 0 = immortal), absent = gone.
        let mut local: BTreeMap<u64, (Vec<u8>, u64)> = BTreeMap::new();
        for _ in 0..OPS {
            let draw = rng.next();
            let key = base + draw % KEYS_PER_WORKER;
            match draw % 8 {
                0 | 1 => {
                    let ttl = (draw >> 32) % 4; // 0 = immortal, else 1..=3 ms
                    let bytes = payload(key, draw);
                    store.put_with_ttl(key, &bytes, Some(ttl), &mut t).unwrap();
                    // The put computed its deadline from a clock reading no
                    // later than now: this bound is conservative.
                    let after = clock_now(&now_ms);
                    let hi = if ttl == 0 { 0 } else { after + ttl };
                    if ttl == 0 {
                        immortal.lock().unwrap().insert(key, bytes.clone());
                    } else {
                        immortal.lock().unwrap().remove(&key);
                    }
                    local.insert(key, (bytes, hi));
                }
                2 => {
                    store.del(key, &mut t);
                    local.remove(&key);
                    immortal.lock().unwrap().remove(&key);
                }
                _ => {
                    let before = clock_now(&now_ms);
                    let got = store.get(key, &mut t);
                    match local.get(&key) {
                        None => assert_eq!(got, None, "deleted key {key} observed"),
                        Some((bytes, 0)) => {
                            let got = got.unwrap_or_else(|| panic!("immortal key {key} vanished"));
                            assert_eq!(got.as_ref(), &bytes[..], "immortal key {key} bytes");
                        }
                        Some((bytes, hi)) => {
                            if *hi <= before {
                                // Past its deadline for sure: must be gone.
                                assert_eq!(
                                    got, None,
                                    "key {key} expired by {hi}ms still visible at {before}ms"
                                );
                                local.remove(&key);
                            } else if let Some(v) = got {
                                assert_eq!(v.as_ref(), &bytes[..], "live key {key} bytes");
                            }
                        }
                    }
                }
            }
        }
    });
    reclaimer.stop();

    // Quiescent endgame: advance past every possible deadline, run a full
    // sweep, and only the immortal entries may remain.
    clock_advance(&now_ms, 1_000);
    let mut t = store.register();
    store.sweep_step(store.bucket_count(), &mut t);
    let remaining: BTreeMap<u64, Vec<u8>> = store
        .scan(0, usize::MAX, &mut t)
        .into_iter()
        .map(|(k, v)| (k, v.as_ref().to_vec()))
        .collect();
    assert_eq!(remaining, *immortal.lock().unwrap());
    store.assert_index_consistent();
}
