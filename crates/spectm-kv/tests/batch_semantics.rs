//! Property and concurrency tests for the batched operation pipeline
//! (`ShardedKv::execute_batch` and the `multi_*` entry points).
//!
//! The batch module documents four guarantees; each has a test here:
//!
//! * **Request-order results + batch read-your-writes** — random batches
//!   (duplicate keys included, so get/put/del chains on one key are
//!   common) must return exactly what a sequential `BTreeMap` replay of
//!   the same operations returns, at every position.  Sequentially those
//!   two properties *are* the oracle equality.
//! * **Per-shard group atomicity under read/write mixing** — batches
//!   whose shard groups read and write the same keys run each group as
//!   one transaction, so concurrent *scanning observers* (atomic
//!   cross-shard snapshots) must never see a group half-applied: within
//!   one shard, every observed key carries the same write-round tag.
//! * **No atomicity across shards** — nothing in the observer asserts
//!   cross-shard tag agreement; the test documents the boundary by
//!   construction (one batch writes every shard, observers may see shards
//!   at different rounds, each internally whole).
//! * **All-or-nothing validation** — covered by unit tests in the batch
//!   module; here the proptests additionally guarantee a validated batch
//!   applies *every* operation (the oracle would diverge otherwise).
//!
//! Concurrency runs through the deterministic scaffolding of [`common`]
//! (barrier-started workers, canonical per-thread seeds, bounded
//! iterations).

mod common;

use std::collections::BTreeMap;

use common::run_workers;
use proptest::prelude::*;
use spectm::variants::{OrecFullG, ValShort};
use spectm::Stm;
use spectm_ds::ApiMode;
use spectm_kv::{BatchOp, ShardedKv, Value};

/// Deterministic payload for `(key, draw)` sweeping the inline-bytes,
/// inline-int and out-of-line regimes.
fn payload(key: u64, draw: u64) -> Vec<u8> {
    let len = (draw % 41) as usize;
    (0..len)
        .map(|i| (key as u8).wrapping_mul(113) ^ (draw as u8) ^ (i as u8).wrapping_mul(29))
        .collect()
}

/// Builds a [`BatchOp`] from one generated `(kind, key, draw)` triple.
fn op_from(kind: u8, key: u64, draw: u64) -> BatchOp {
    match kind % 4 {
        0 => BatchOp::Get(key),
        1 => BatchOp::Del(key),
        2 => BatchOp::put(key, &payload(key, draw)),
        // An explicit never-expires TTL must behave exactly like a plain
        // put through the whole batch pipeline.
        _ => BatchOp::put_ttl(key, &payload(key, draw), 0),
    }
}

/// Applies `ops` to a `BTreeMap` oracle, returning the per-op results the
/// store must reproduce (request order and read-your-writes both fall out
/// of replaying sequentially).
fn oracle_results(ops: &[BatchOp], oracle: &mut BTreeMap<u64, Value>) -> Vec<Option<Value>> {
    ops.iter()
        .map(|op| match op {
            BatchOp::Get(k) => oracle.get(k).cloned(),
            BatchOp::Put(k, v) | BatchOp::PutTtl(k, v, _) => oracle.insert(*k, v.clone()),
            BatchOp::Del(k) => oracle.remove(k),
        })
        .collect()
}

fn oracle_check<S: Stm + Clone>(
    stm: S,
    mode: ApiMode,
    shards: usize,
    batches: &[Vec<(u8, u64, u64)>],
) {
    let store = ShardedKv::new(&stm, shards, 16, mode);
    let mut t = store.register();
    let mut oracle = BTreeMap::new();
    for (no, batch) in batches.iter().enumerate() {
        let ops: Vec<BatchOp> = batch
            .iter()
            .map(|&(kind, key, draw)| op_from(kind, key, draw))
            .collect();
        let expect = oracle_results(&ops, &mut oracle);
        let got = store.execute_batch(&ops, &mut t).unwrap();
        assert_eq!(got, expect, "batch {no} diverged from the oracle");
    }
    assert_eq!(
        store.quiescent_snapshot(),
        oracle.into_iter().collect::<Vec<_>>(),
        "final state diverged"
    );
    store.assert_index_consistent();
}

proptest! {
    /// Random batches with heavily colliding keys against the sequential
    /// oracle: request-order results and read-your-writes at every
    /// position, across shard counts and both API modes.
    #[test]
    fn execute_batch_matches_a_sequential_oracle(
        batches in proptest::collection::vec(
            proptest::collection::vec((0u8..4, 0u64..24, 0u64..1 << 60), 0..20),
            1..8,
        ),
        shards_log2 in 0u32..4,
    ) {
        oracle_check(ValShort::new(), ApiMode::Short, 1 << shards_log2, &batches);
        oracle_check(OrecFullG::new(), ApiMode::Full, 1 << shards_log2, &batches);
    }

    /// The `multi_*` entry points are the single-kind special cases of the
    /// same contract: results in request order, duplicates applied in
    /// request order, matching a sequential replay.
    #[test]
    fn multi_ops_match_a_sequential_oracle(
        rounds in proptest::collection::vec(
            (
                proptest::collection::vec((0u64..24, 0u64..1 << 60), 0..16),
                proptest::collection::vec(0u64..24, 0..16),
                proptest::collection::vec(0u64..32, 0..16),
            ),
            1..6,
        ),
        shards_log2 in 0u32..4,
    ) {
        let stm = ValShort::new();
        let store = ShardedKv::new(&stm, 1 << shards_log2, 16, ApiMode::Short);
        let mut t = store.register();
        let mut oracle: BTreeMap<u64, Value> = BTreeMap::new();
        for (puts, dels, gets) in &rounds {
            let payloads: Vec<(u64, Vec<u8>)> = puts
                .iter()
                .map(|&(key, draw)| (key, payload(key, draw)))
                .collect();
            let pairs: Vec<(u64, &[u8])> =
                payloads.iter().map(|(k, v)| (*k, v.as_slice())).collect();
            let expect: Vec<Option<Value>> = payloads
                .iter()
                .map(|(k, v)| oracle.insert(*k, Value::new(v)))
                .collect();
            prop_assert_eq!(store.multi_put(&pairs, &mut t).unwrap(), expect);

            let expect: Vec<Option<Value>> = dels.iter().map(|k| oracle.remove(k)).collect();
            prop_assert_eq!(store.multi_del(dels, &mut t), expect);

            let expect: Vec<Option<Value>> = gets.iter().map(|k| oracle.get(k).cloned()).collect();
            prop_assert_eq!(store.multi_get(gets, &mut t), expect);
        }
        prop_assert_eq!(
            store.quiescent_snapshot(),
            oracle.into_iter().collect::<Vec<_>>()
        );
        store.assert_index_consistent();
    }
}

/// Tagged payload of a group-atomicity round: an 8-byte little-endian tag
/// followed by filler derived from `(key, tag)`, long enough to live out
/// of line so torn values would also corrupt cell reclamation.
fn tagged_payload(key: u64, tag: u64) -> Vec<u8> {
    let mut bytes = tag.to_le_bytes().to_vec();
    bytes.extend((0..16 + (key % 9) as u8).map(|i| (key as u8) ^ (tag as u8).wrapping_add(i)));
    bytes
}

/// Splits `count` keys per shard out of the dense key space, so a test can
/// build batches that hit every shard with a known group.
fn keys_per_shard<S: Stm + Clone>(store: &ShardedKv<S>, count: usize) -> Vec<Vec<u64>> {
    let router = store.router();
    let mut groups: Vec<Vec<u64>> = vec![Vec::new(); store.shard_count()];
    let mut key = 0u64;
    while groups.iter().any(|g| g.len() < count) {
        let g = &mut groups[router.route(key)];
        if g.len() < count {
            g.push(key);
        }
        key += 1;
    }
    groups
}

/// Writers batch a `Get` + tagged `Put` for **every** key of **every**
/// shard — same-key read/write mixing forces each shard's group into the
/// atomic fallback — while observers `scan` the whole store (atomic
/// cross-shard snapshots).  Within one shard every observed value must
/// carry the same tag (group atomicity), and every value must be
/// well-formed for its key and tag (no torn individual writes).  Nothing
/// is asserted *across* shards: the batch as a whole is documented not to
/// be atomic, and observers legitimately see shards at different rounds.
///
/// `per_shard_keys` and `capacity_per_shard` set the bucket-table
/// occupancy; the `_high_load` variants undersize the tables to one home
/// bucket per shard with more keys than its seven slots, so the atomic
/// fallback and the scans run over overflow chains.
fn scans_never_see_torn_groups<S: Stm + Clone>(
    stm: S,
    mode: ApiMode,
    per_shard_keys: usize,
    capacity_per_shard: usize,
) {
    const WRITERS: u64 = 2;
    const OBSERVERS: u64 = 2;
    const ROUNDS: u64 = 250;
    let store = ShardedKv::new(&stm, 4, capacity_per_shard, mode);
    let shard_keys = keys_per_shard(&store, per_shard_keys);
    {
        let mut t = store.register();
        for keys in &shard_keys {
            for &k in keys {
                store.put(k, &tagged_payload(k, 0), &mut t).unwrap();
            }
        }
    }
    let total_keys: usize = shard_keys.iter().map(Vec::len).sum();
    run_workers(WRITERS + OBSERVERS, 0x7049, |tid, rng| {
        let mut t = store.register();
        if tid < WRITERS {
            // The reusable request/response pair is the intended steady
            // state of the batched API; reuse it across rounds here.
            let mut req = spectm_kv::BatchRequest::new();
            let mut results = spectm_kv::BatchResponse::new();
            for round in 1..=ROUNDS {
                // One batch spanning every shard: per shard, a read of
                // each key then a tagged overwrite of each key.
                let tag = tid * ROUNDS + round;
                req.clear();
                for keys in &shard_keys {
                    for &k in keys {
                        req.get(k);
                    }
                    for &k in keys {
                        req.put(k, &tagged_payload(k, tag));
                    }
                }
                store
                    .execute_batch_into(&mut req, &mut results, &mut t)
                    .unwrap();
                // Every individual result must be whole: a valid tagged
                // payload for its key (reads and displaced writes alike).
                for (op, result) in req.ops().iter().zip(&results) {
                    let value = result.as_ref().expect("loaded keys never vanish");
                    let seen = value.as_u64();
                    assert_eq!(
                        value.as_slice(),
                        tagged_payload(op.key(), seen).as_slice(),
                        "torn value for key {}",
                        op.key()
                    );
                }
                // Jitter the interleaving so rounds do not lockstep.
                if rng.next() % 8 == 0 {
                    std::thread::yield_now();
                }
            }
        } else {
            for scan_no in 0..400 {
                let run = store.scan(0, usize::MAX, &mut t);
                assert_eq!(run.len(), total_keys, "scan missed keys");
                let mut tags: Vec<Option<u64>> = vec![None; store.shard_count()];
                for (key, value) in &run {
                    let tag = value.as_u64();
                    assert_eq!(
                        value.as_slice(),
                        tagged_payload(*key, tag).as_slice(),
                        "scan {scan_no} saw a torn value for key {key}"
                    );
                    let shard = store.router().route(*key);
                    match tags[shard] {
                        None => tags[shard] = Some(tag),
                        Some(t) => assert_eq!(
                            t, tag,
                            "scan {scan_no} saw shard {shard} half-written \
                             (keys at tags {t} and {tag})"
                        ),
                    }
                }
            }
        }
    });
    store.assert_index_consistent();
}

#[test]
fn scans_never_see_torn_groups_val_short() {
    scans_never_see_torn_groups(ValShort::new(), ApiMode::Short, 4, 32);
}

#[test]
fn scans_never_see_torn_groups_orec_full() {
    scans_never_see_torn_groups(OrecFullG::new(), ApiMode::Full, 4, 32);
}

#[test]
fn scans_never_see_torn_groups_val_short_high_load() {
    scans_never_see_torn_groups(ValShort::new(), ApiMode::Short, 10, 1);
}

#[test]
fn scans_never_see_torn_groups_orec_full_high_load() {
    scans_never_see_torn_groups(OrecFullG::new(), ApiMode::Full, 10, 1);
}

/// Batches raced from many threads against disjoint key ranges must land
/// exactly like the per-thread sequential replay — the batched analogue of
/// the `disjoint_replay` invariant test, pinning down that concurrent
/// batches neither drop nor duplicate operations.
#[test]
fn concurrent_disjoint_batches_replay_exactly() {
    const THREADS: u64 = 4;
    const RANGE: u64 = 96;
    const BATCHES: usize = 150;
    const SEED: u64 = 0xBA7C;
    let stm = ValShort::new();
    let store = ShardedKv::new(&stm, 4, 32, ApiMode::Short);
    run_workers(THREADS, SEED, |tid, rng| {
        let mut t = store.register();
        let base = tid * RANGE;
        let mut req = spectm_kv::BatchRequest::new();
        let mut results = spectm_kv::BatchResponse::new();
        for _ in 0..BATCHES {
            let len = (rng.next() % 24) as usize;
            req.clear();
            for _ in 0..len {
                let kind = (rng.next() % 4) as u8;
                let key = base + rng.next() % RANGE;
                req.push(op_from(kind, key, rng.next()));
            }
            store
                .execute_batch_into(&mut req, &mut results, &mut t)
                .unwrap();
        }
    });
    // Replay each thread's stream sequentially; disjoint ranges make the
    // merged outcome order-independent.
    let mut oracle: BTreeMap<u64, Value> = BTreeMap::new();
    for tid in 0..THREADS {
        let mut rng = common::thread_rng(SEED, tid);
        let base = tid * RANGE;
        for _ in 0..BATCHES {
            let len = (rng.next() % 24) as usize;
            let ops: Vec<BatchOp> = (0..len)
                .map(|_| {
                    let kind = (rng.next() % 4) as u8;
                    let key = base + rng.next() % RANGE;
                    op_from(kind, key, rng.next())
                })
                .collect();
            oracle_results(&ops, &mut oracle);
        }
    }
    assert_eq!(
        store.quiescent_snapshot(),
        oracle.into_iter().collect::<Vec<_>>()
    );
    store.assert_index_consistent();
}
