//! Multi-threaded invariant tests for the sharded KV store.
//!
//! Complementary checks per STM variant, now over **byte values** (the
//! payload generator sweeps the inline-bytes, inline-int and out-of-line
//! cell regimes, so every representation is exercised under contention):
//!
//! * **Deterministic replay** — threads run a mixed get/put/del workload
//!   over disjoint key ranges; afterwards the store must equal a sequential
//!   replay of every thread's operation stream into a `BTreeMap`, payload
//!   bytes included (disjoint ranges make the merged outcome
//!   order-independent).
//! * **Cross-shard serializability** — all value mass is conserved under
//!   concurrent multi-key transfers (values as 8-byte little-endian
//!   counters), and concurrent observers reading the whole key set through
//!   one full transaction must *never* see a partial transfer.  This is the
//!   property the lock-free baseline cannot provide and the whole reason
//!   the shards share an STM instance.
//! * **Atomic scans** — concurrent `scan`s over the whole key set must see
//!   the conserved total at every instant (a scan that could observe a torn
//!   cross-shard `rmw` would see a partial transfer), stay sorted, and —
//!   via the index invariant — never miss or duplicate a key.  The
//!   lock-free baseline's `scan` explicitly lacks this guarantee (its index
//!   and table are updated by independent CASes); see `lockfree::kv`.
//! * **Sequential scan oracle** — a single-threaded random workload of
//!   put/del/get/scan/range over variable-size payloads must match a
//!   `BTreeMap` replay operation by operation, including the ordered
//!   results and the exact bytes.
//!
//! All concurrency runs through the deterministic scaffolding of
//! [`common`]: barrier-started scoped workers with canonically seeded
//! per-thread streams, so the replay oracles reconstruct exactly what the
//! workers did.

mod common;

use std::collections::BTreeMap;

use common::{run_workers, thread_rng, Xorshift};
use spectm::variants::{OrecFullG, TvarShortG, ValShort};
use spectm::Stm;
use spectm_ds::ApiMode;
use spectm_kv::{ShardedKv, Value};

/// Deterministic payload for `(key, draw)`: the length cycles through the
/// inline-bytes (0..=7), inline-int (8) and out-of-line (up to ~48 bytes)
/// regimes, and the content depends on both inputs so stale reads surface
/// as byte mismatches, not just length mismatches.
fn payload(key: u64, draw: u64) -> Vec<u8> {
    let len = (draw % 49) as usize;
    (0..len)
        .map(|i| (key as u8).wrapping_mul(167) ^ (draw as u8) ^ (i as u8).wrapping_mul(59))
        .collect()
}

fn disjoint_replay<S: Stm + Clone>(stm: S, mode: ApiMode) {
    const THREADS: u64 = 4;
    const RANGE: u64 = 256;
    const OPS: usize = 4_000;
    const SEED: u64 = 0xC0FFEE;
    let store = ShardedKv::new(&stm, 4, 64, mode);
    run_workers(THREADS, SEED, |tid, rng| {
        let mut t = store.register();
        let base = tid * RANGE;
        for _ in 0..OPS {
            let k = base + rng.next() % RANGE;
            let v = rng.next() >> 2;
            match rng.next() % 5 {
                0 | 1 => {
                    store.put(k, &payload(k, v), &mut t).unwrap();
                }
                2 => {
                    store.del(k, &mut t);
                }
                3 => {
                    store.get(k, &mut t);
                }
                _ => {
                    // Scans cross thread ranges, so mid-flight results
                    // are only sanity-checked (sorted, bounded); the
                    // final state check below is what pins them down.
                    let run = store.scan(k, 8, &mut t);
                    assert!(run.len() <= 8);
                    assert!(run.windows(2).all(|w| w[0].0 < w[1].0));
                }
            }
        }
    });

    // Sequential replay: same per-thread streams, same canonical seeds,
    // into an ordinary map.  Disjoint ranges mean thread interleaving
    // cannot change the final contents — the exact payload bytes included.
    let mut oracle = BTreeMap::new();
    for tid in 0..THREADS {
        let mut rng = thread_rng(SEED, tid);
        let base = tid * RANGE;
        for _ in 0..OPS {
            let k = base + rng.next() % RANGE;
            let v = rng.next() >> 2;
            match rng.next() % 5 {
                0 | 1 => {
                    oracle.insert(k, Value::from(payload(k, v)));
                }
                2 => {
                    oracle.remove(&k);
                }
                _ => {}
            }
        }
    }
    let expect: Vec<(u64, Value)> = oracle.into_iter().collect();
    assert_eq!(store.quiescent_snapshot(), expect);
    // The ordered index agrees with the shards, and a quiescent full scan
    // sees exactly the final contents.
    store.assert_index_consistent();
    let mut t = store.register();
    assert_eq!(store.scan(0, usize::MAX, &mut t), expect);
}

fn transfers_conserve_total<S: Stm + Clone>(stm: S, mode: ApiMode) {
    const KEYS: u64 = 16;
    const INITIAL: u64 = 1_000;
    const WRITERS: u64 = 4;
    const OBSERVERS: u64 = 2;
    const TRANSFERS: usize = 2_000;
    let store = ShardedKv::new(&stm, 4, 32, mode);
    {
        let mut t = store.register();
        for k in 0..KEYS {
            store.put(k, &INITIAL.to_le_bytes(), &mut t).unwrap();
        }
    }
    let all_keys: Vec<u64> = (0..KEYS).collect();
    run_workers(WRITERS + OBSERVERS, 0xFEED, |tid, rng| {
        let mut t = store.register();
        if tid < WRITERS {
            for _ in 0..TRANSFERS {
                let from = rng.next() % KEYS;
                let to = rng.next() % KEYS;
                if from == to {
                    continue;
                }
                let amount = rng.next() % 3;
                assert!(store
                    .rmw(
                        &[from, to],
                        |vals| {
                            let moved = amount.min(vals[0].as_u64());
                            vals[0] = Value::from_u64(vals[0].as_u64() - moved);
                            vals[1] = Value::from_u64(vals[1].as_u64() + moved);
                        },
                        &mut t,
                    )
                    .unwrap());
            }
        } else {
            for _ in 0..400 {
                // Two chained atomic reads (8 keys each) are NOT atomic
                // with respect to each other, so only per-call sums are
                // checked against partial transfers *within* each half.
                let lo: u64 = store
                    .multi_get_atomic(&all_keys[..8], &mut t)
                    .unwrap()
                    .expect("keys present")
                    .iter()
                    .map(Value::as_u64)
                    .sum();
                let hi: u64 = store
                    .multi_get_atomic(&all_keys[8..], &mut t)
                    .unwrap()
                    .expect("keys present")
                    .iter()
                    .map(Value::as_u64)
                    .sum();
                // Transfers move value between arbitrary keys, so each half
                // can drift — but never beyond the total system mass, and
                // never negative (u64 underflow would explode the sum).
                assert!(lo + hi <= 2 * KEYS * INITIAL, "observed {lo} + {hi}");
            }
        }
    });
    // The real serializability check: after quiescence the mass is exact.
    let snapshot = store.quiescent_snapshot();
    assert_eq!(snapshot.len(), KEYS as usize);
    let total: u64 = snapshot.iter().map(|(_, v)| v.as_u64()).sum();
    assert_eq!(total, KEYS * INITIAL, "transfer mass was not conserved");
}

/// Transfers restricted to within-eight-key groups so a *single* atomic
/// read covers every key a transfer can touch — observers must see the
/// invariant hold mid-flight, not just at quiescence.
fn observers_never_see_partial_transfers<S: Stm + Clone>(stm: S, mode: ApiMode) {
    const KEYS: u64 = 8;
    const INITIAL: u64 = 1_000;
    const WRITERS: u64 = 3;
    const OBSERVERS: u64 = 2;
    let store = ShardedKv::new(&stm, 4, 32, mode);
    {
        let mut t = store.register();
        for k in 0..KEYS {
            store.put(k, &INITIAL.to_le_bytes(), &mut t).unwrap();
        }
    }
    let all_keys: Vec<u64> = (0..KEYS).collect();
    run_workers(WRITERS + OBSERVERS, 0xBEEF, |tid, rng| {
        let mut t = store.register();
        if tid < WRITERS {
            for _ in 0..1_500 {
                let from = rng.next() % KEYS;
                let to = rng.next() % KEYS;
                if from == to {
                    continue;
                }
                assert!(store
                    .rmw(
                        &[from, to],
                        |vals| {
                            let moved = 1.min(vals[0].as_u64());
                            vals[0] = Value::from_u64(vals[0].as_u64() - moved);
                            vals[1] = Value::from_u64(vals[1].as_u64() + moved);
                        },
                        &mut t,
                    )
                    .unwrap());
            }
        } else {
            for _ in 0..500 {
                let total: u64 = store
                    .multi_get_atomic(&all_keys, &mut t)
                    .unwrap()
                    .expect("keys present")
                    .iter()
                    .map(Value::as_u64)
                    .sum();
                assert_eq!(total, KEYS * INITIAL, "observed a partial transfer");
            }
        }
    });
}

/// Writers move value mass between random keys through cross-shard `rmw`
/// while observers repeatedly `scan` the whole key set.  Every scan runs as
/// one full transaction, so it must see the conserved total at *every*
/// instant — a torn cross-shard `rmw` would surface as a partial transfer
/// (the lock-free baseline's scan offers no such guarantee; its index and
/// table are updated by independent CASes).
///
/// `keys` and `capacity_per_shard` set the bucket-table occupancy: the
/// comfortable variants run well under the ~0.75 design load, the
/// `_high_load` variants undersize the tables far past it (one home
/// bucket per shard, several keys deep in overflow chains), so torn
/// transfers are hunted where probes span multiple buckets and fresh
/// inserts take the full-transaction fallback.
fn scans_never_observe_torn_transfers<S: Stm + Clone>(
    stm: S,
    mode: ApiMode,
    keys: u64,
    capacity_per_shard: usize,
) {
    const INITIAL: u64 = 1_000;
    const WRITERS: u64 = 3;
    const OBSERVERS: u64 = 2;
    let store = ShardedKv::new(&stm, 4, capacity_per_shard, mode);
    {
        let mut t = store.register();
        for k in 0..keys {
            store.put(k, &INITIAL.to_le_bytes(), &mut t).unwrap();
        }
    }
    run_workers(WRITERS + OBSERVERS, 0x5CA4, |tid, rng| {
        let mut t = store.register();
        if tid < WRITERS {
            for _ in 0..1_500 {
                let from = rng.next() % keys;
                let to = rng.next() % keys;
                if from == to {
                    continue;
                }
                let amount = rng.next() % 3;
                // `from` and `to` usually live on different shards; the
                // transfer is one full transaction across both.
                assert!(store
                    .rmw(
                        &[from, to],
                        |vals| {
                            let moved = amount.min(vals[0].as_u64());
                            vals[0] = Value::from_u64(vals[0].as_u64() - moved);
                            vals[1] = Value::from_u64(vals[1].as_u64() + moved);
                        },
                        &mut t,
                    )
                    .unwrap());
            }
        } else {
            for i in 0..300 {
                let run = store.scan(0, keys as usize, &mut t);
                assert_eq!(run.len(), keys as usize, "scan missed keys");
                assert!(run.windows(2).all(|w| w[0].0 < w[1].0), "scan out of order");
                let total: u64 = run.iter().map(|(_, v)| v.as_u64()).sum();
                assert_eq!(
                    total,
                    keys * INITIAL,
                    "observer {tid} saw a torn transfer on scan {i}"
                );
            }
        }
    });
    store.assert_index_consistent();
    let total: u64 = store
        .quiescent_snapshot()
        .iter()
        .map(|(_, v)| v.as_u64())
        .sum();
    assert_eq!(total, keys * INITIAL);
}

/// Single-threaded random workload including scans and ranges over
/// variable-size payloads, replayed operation by operation against a
/// `BTreeMap` oracle.
fn sequential_scan_oracle<S: Stm + Clone>(stm: S, mode: ApiMode) {
    const SPACE: u64 = 300;
    let store = ShardedKv::new(&stm, 4, 32, mode);
    let mut t = store.register();
    let mut oracle: BTreeMap<u64, Value> = BTreeMap::new();
    let mut rng = Xorshift::new(0x0AC1_E5EE_D001_u64);
    for _ in 0..4_000 {
        let k = rng.next() % SPACE;
        let v = rng.next() >> 2;
        match rng.next() % 6 {
            0 | 1 => {
                let bytes = payload(k, v);
                assert_eq!(
                    store.put(k, &bytes, &mut t).unwrap(),
                    oracle.insert(k, Value::from(bytes)),
                    "put {k}"
                );
            }
            2 => assert_eq!(store.del(k, &mut t), oracle.remove(&k), "del {k}"),
            3 => assert_eq!(store.get(k, &mut t), oracle.get(&k).cloned(), "get {k}"),
            4 => {
                let limit = (rng.next() % 16) as usize;
                let expect: Vec<(u64, Value)> = oracle
                    .range(k..)
                    .take(limit)
                    .map(|(&k, v)| (k, v.clone()))
                    .collect();
                assert_eq!(store.scan(k, limit, &mut t), expect, "scan {k} x{limit}");
            }
            _ => {
                let hi = k + rng.next() % 64;
                let expect: Vec<(u64, Value)> =
                    oracle.range(k..hi).map(|(&k, v)| (k, v.clone())).collect();
                assert_eq!(store.range(k, hi, &mut t), expect, "range {k}..{hi}");
            }
        }
    }
    assert_eq!(
        store.quiescent_snapshot(),
        oracle.into_iter().collect::<Vec<_>>()
    );
    store.assert_index_consistent();
}

#[test]
fn scans_never_observe_torn_transfers_val_short() {
    scans_never_observe_torn_transfers(ValShort::new(), ApiMode::Short, 24, 32);
}

#[test]
fn scans_never_observe_torn_transfers_tvar_short() {
    scans_never_observe_torn_transfers(TvarShortG::new(), ApiMode::Short, 24, 32);
}

#[test]
fn scans_never_observe_torn_transfers_orec_full() {
    scans_never_observe_torn_transfers(OrecFullG::new(), ApiMode::Full, 24, 32);
}

// High-load-factor ports: 96 keys over one home bucket per shard (28 slots
// total, ~3.4x occupancy) drive every chain several overflow buckets deep,
// so the same torn-transfer hunt runs where probes cross bucket lines and
// inserts use the full-transaction fallback.

#[test]
fn scans_never_observe_torn_transfers_val_short_high_load() {
    scans_never_observe_torn_transfers(ValShort::new(), ApiMode::Short, 96, 1);
}

#[test]
fn scans_never_observe_torn_transfers_orec_full_high_load() {
    scans_never_observe_torn_transfers(OrecFullG::new(), ApiMode::Full, 96, 1);
}

#[test]
fn sequential_scan_oracle_val_short() {
    sequential_scan_oracle(ValShort::new(), ApiMode::Short);
}

#[test]
fn sequential_scan_oracle_tvar_short() {
    sequential_scan_oracle(TvarShortG::new(), ApiMode::Short);
}

#[test]
fn sequential_scan_oracle_orec_full() {
    sequential_scan_oracle(OrecFullG::new(), ApiMode::Full);
}

#[test]
fn disjoint_replay_val_short() {
    disjoint_replay(ValShort::new(), ApiMode::Short);
}

#[test]
fn disjoint_replay_tvar_short() {
    disjoint_replay(TvarShortG::new(), ApiMode::Short);
}

#[test]
fn disjoint_replay_orec_full() {
    disjoint_replay(OrecFullG::new(), ApiMode::Full);
}

#[test]
fn transfers_conserve_total_val_short() {
    transfers_conserve_total(ValShort::new(), ApiMode::Short);
}

#[test]
fn transfers_conserve_total_orec_full() {
    transfers_conserve_total(OrecFullG::new(), ApiMode::Full);
}

#[test]
fn observers_never_see_partial_transfers_val_short() {
    observers_never_see_partial_transfers(ValShort::new(), ApiMode::Short);
}

#[test]
fn observers_never_see_partial_transfers_tvar_short() {
    observers_never_see_partial_transfers(TvarShortG::new(), ApiMode::Short);
}

#[test]
fn observers_never_see_partial_transfers_orec_full() {
    observers_never_see_partial_transfers(OrecFullG::new(), ApiMode::Full);
}
