//! Multi-threaded invariant tests for the sharded KV store.
//!
//! Two complementary checks per STM variant:
//!
//! * **Deterministic replay** — threads run a mixed get/put/del workload
//!   over disjoint key ranges; afterwards the store must equal a sequential
//!   replay of every thread's operation stream into a `BTreeMap` (disjoint
//!   ranges make the merged outcome order-independent).
//! * **Cross-shard serializability** — all value mass is conserved under
//!   concurrent multi-key transfers, and concurrent observers reading the
//!   whole key set through one full transaction must *never* see a partial
//!   transfer.  This is the property the lock-free baseline cannot provide
//!   and the whole reason the shards share an STM instance.

use std::collections::BTreeMap;
use std::sync::Arc;

use spectm::variants::{OrecFullG, TvarShortG, ValShort};
use spectm::Stm;
use spectm_ds::ApiMode;
use spectm_kv::ShardedKv;

/// Cheap per-thread xorshift generator.
struct Xorshift(u64);

impl Xorshift {
    fn new(seed: u64) -> Self {
        Self(seed | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

fn disjoint_replay<S: Stm + Clone>(stm: S, mode: ApiMode) {
    const THREADS: u64 = 4;
    const RANGE: u64 = 256;
    const OPS: usize = 4_000;
    let store = Arc::new(ShardedKv::new(&stm, 4, 64, mode));
    let mut joins = Vec::new();
    for tid in 0..THREADS {
        let store = Arc::clone(&store);
        joins.push(std::thread::spawn(move || {
            let mut t = store.register();
            let mut rng = Xorshift::new(0xC0FFEE ^ (tid.wrapping_mul(0x9E37_79B9)));
            let base = tid * RANGE;
            for _ in 0..OPS {
                let k = base + rng.next() % RANGE;
                let v = rng.next() >> 2;
                match rng.next() % 4 {
                    0 | 1 => {
                        store.put(k, v, &mut t);
                    }
                    2 => {
                        store.del(k, &mut t);
                    }
                    _ => {
                        store.get(k, &mut t);
                    }
                }
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }

    // Sequential replay: same per-thread streams, same seeds, into an
    // ordinary map.  Disjoint ranges mean thread interleaving cannot change
    // the final contents.
    let mut oracle = BTreeMap::new();
    for tid in 0..THREADS {
        let mut rng = Xorshift::new(0xC0FFEE ^ (tid.wrapping_mul(0x9E37_79B9)));
        let base = tid * RANGE;
        for _ in 0..OPS {
            let k = base + rng.next() % RANGE;
            let v = rng.next() >> 2;
            match rng.next() % 4 {
                0 | 1 => {
                    oracle.insert(k, v);
                }
                2 => {
                    oracle.remove(&k);
                }
                _ => {}
            }
        }
    }
    assert_eq!(
        store.quiescent_snapshot(),
        oracle.into_iter().collect::<Vec<_>>()
    );
}

fn transfers_conserve_total<S: Stm + Clone>(stm: S, mode: ApiMode) {
    const KEYS: u64 = 16;
    const INITIAL: u64 = 1_000;
    const WRITERS: u64 = 4;
    const OBSERVERS: u64 = 2;
    const TRANSFERS: usize = 2_000;
    let store = Arc::new(ShardedKv::new(&stm, 4, 32, mode));
    {
        let mut t = store.register();
        for k in 0..KEYS {
            store.put(k, INITIAL, &mut t);
        }
    }
    let all_keys: Vec<u64> = (0..KEYS).collect();
    let mut joins = Vec::new();
    for tid in 0..WRITERS {
        let store = Arc::clone(&store);
        joins.push(std::thread::spawn(move || {
            let mut t = store.register();
            let mut rng = Xorshift::new(0xFEED ^ (tid + 1));
            for _ in 0..TRANSFERS {
                let from = rng.next() % KEYS;
                let to = rng.next() % KEYS;
                if from == to {
                    continue;
                }
                let amount = rng.next() % 3;
                assert!(store.rmw(
                    &[from, to],
                    |vals| {
                        let moved = amount.min(vals[0]);
                        vals[0] -= moved;
                        vals[1] += moved;
                    },
                    &mut t,
                ));
            }
        }));
    }
    for tid in 0..OBSERVERS {
        let store = Arc::clone(&store);
        let all_keys = all_keys.clone();
        joins.push(std::thread::spawn(move || {
            let mut t = store.register();
            for _ in 0..400 {
                // Two chained multi_gets (8 keys each) are NOT atomic with
                // respect to each other, so only per-call sums are checked
                // against partial transfers *within* each half.
                let lo: u64 = store
                    .multi_get(&all_keys[..8], &mut t)
                    .expect("keys present")
                    .iter()
                    .sum();
                let hi: u64 = store
                    .multi_get(&all_keys[8..], &mut t)
                    .expect("keys present")
                    .iter()
                    .sum();
                // Transfers move value between arbitrary keys, so each half
                // can drift — but never beyond the total system mass, and
                // never negative (u64 underflow would explode the sum).
                assert!(lo + hi <= 2 * KEYS * INITIAL, "observed {lo} + {hi}");
                let _ = tid;
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    // The real serializability check: after quiescence the mass is exact.
    let snapshot = store.quiescent_snapshot();
    assert_eq!(snapshot.len(), KEYS as usize);
    let total: u64 = snapshot.iter().map(|&(_, v)| v).sum();
    assert_eq!(total, KEYS * INITIAL, "transfer mass was not conserved");
}

/// Transfers restricted to within-eight-key groups so a *single* `multi_get`
/// covers every key a transfer can touch — observers must see the invariant
/// hold mid-flight, not just at quiescence.
fn observers_never_see_partial_transfers<S: Stm + Clone>(stm: S, mode: ApiMode) {
    const KEYS: u64 = 8;
    const INITIAL: u64 = 1_000;
    let store = Arc::new(ShardedKv::new(&stm, 4, 32, mode));
    {
        let mut t = store.register();
        for k in 0..KEYS {
            store.put(k, INITIAL, &mut t);
        }
    }
    let all_keys: Vec<u64> = (0..KEYS).collect();
    let mut joins = Vec::new();
    for tid in 0..3u64 {
        let store = Arc::clone(&store);
        joins.push(std::thread::spawn(move || {
            let mut t = store.register();
            let mut rng = Xorshift::new(0xBEEF ^ (tid + 1));
            for _ in 0..1_500 {
                let from = rng.next() % KEYS;
                let to = rng.next() % KEYS;
                if from == to {
                    continue;
                }
                assert!(store.rmw(
                    &[from, to],
                    |vals| {
                        let moved = 1.min(vals[0]);
                        vals[0] -= moved;
                        vals[1] += moved;
                    },
                    &mut t,
                ));
            }
        }));
    }
    for _ in 0..2 {
        let store = Arc::clone(&store);
        let all_keys = all_keys.clone();
        joins.push(std::thread::spawn(move || {
            let mut t = store.register();
            for _ in 0..500 {
                let total: u64 = store
                    .multi_get(&all_keys, &mut t)
                    .expect("keys present")
                    .iter()
                    .sum();
                assert_eq!(total, KEYS * INITIAL, "observed a partial transfer");
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
}

#[test]
fn disjoint_replay_val_short() {
    disjoint_replay(ValShort::new(), ApiMode::Short);
}

#[test]
fn disjoint_replay_tvar_short() {
    disjoint_replay(TvarShortG::new(), ApiMode::Short);
}

#[test]
fn disjoint_replay_orec_full() {
    disjoint_replay(OrecFullG::new(), ApiMode::Full);
}

#[test]
fn transfers_conserve_total_val_short() {
    transfers_conserve_total(ValShort::new(), ApiMode::Short);
}

#[test]
fn transfers_conserve_total_orec_full() {
    transfers_conserve_total(OrecFullG::new(), ApiMode::Full);
}

#[test]
fn observers_never_see_partial_transfers_val_short() {
    observers_never_see_partial_transfers(ValShort::new(), ApiMode::Short);
}

#[test]
fn observers_never_see_partial_transfers_tvar_short() {
    observers_never_see_partial_transfers(TvarShortG::new(), ApiMode::Short);
}

#[test]
fn observers_never_see_partial_transfers_orec_full() {
    observers_never_see_partial_transfers(OrecFullG::new(), ApiMode::Full);
}
