//! Reclamation regression tests for out-of-line value cells.
//!
//! [`ValueCell::live_count`] is a process-wide drop-counter, so every test
//! in this binary takes `COUNTER_LOCK` to serialize itself against the
//! others — no other test binary asserts on the counter.
//!
//! The churn test is the guard the epoch plumbing needs: overwrites and
//! deletes *defer* cell frees through `txepoch`, so a bug that retires
//! nothing (or retires into a bag that never drains) would not corrupt
//! memory — it would leak quietly.  Here it fails loudly: cells in flight
//! must stay bounded while threads churn, and the counter must return
//! exactly to its baseline once the store and its STM (which owns the epoch
//! collector) are dropped.

mod common;

use std::sync::{Mutex, MutexGuard};

use common::run_workers;
use spectm::variants::{OrecFullG, ValShort};
use spectm::Stm;
use spectm_ds::ApiMode;
use spectm_kv::{ShardedKv, Value, ValueCell};

static COUNTER_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    // A poisoned lock only means another counter test failed; the counter
    // itself is still coherent.
    COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Payload long enough to always live out of line.
fn big_payload(key: u64, round: u64) -> Vec<u8> {
    (0..64)
        .map(|i| (key as u8) ^ (round as u8).wrapping_mul(31) ^ i)
        .collect()
}

fn churn<S: Stm + Clone>(stm: S, mode: ApiMode) {
    const THREADS: u64 = 4;
    const RANGE: u64 = 128;
    const ROUNDS: u64 = 400;
    // Upper bound on cells awaiting an epoch advance.  In-flight inventory
    // is throughput times grace-period latency: release-mode runs of this
    // churn oscillate between roughly 30k and 75k deferred cells (a few MB)
    // with no monotone growth, so a tight constant would only measure the
    // scheduler.  What the bound must catch is a *leak*: a retire path that
    // never frees accumulates every displaced word — ~600k by the end of
    // the run (THREADS * RANGE * ROUNDS * 3) — and crosses this limit less
    // than halfway through.  The exact-baseline assert below is the precise
    // zero-leak check.
    const DEFERRED_SLACK: usize = 262_144;

    let baseline = ValueCell::live_count();
    let store = ShardedKv::new(&stm, 4, 64, mode);
    // Barrier-started workers (the shared scaffolding in `common`): the
    // churn phases genuinely overlap, which is what stresses the epoch
    // bags.  The workload is deterministic per thread, so the per-thread
    // RNG stream goes unused here.
    run_workers(THREADS, 0xCE11, |tid, _rng| {
        let mut t = store.register();
        let base = tid * RANGE;
        for round in 0..ROUNDS {
            for k in base..base + RANGE {
                // insert -> overwrite -> overwrite -> delete: every op
                // but the insert displaces (and must retire) a cell.
                store.put(k, &big_payload(k, round), &mut t).unwrap();
                store.put(k, &big_payload(k, round + 1), &mut t).unwrap();
                store.put(k, &big_payload(k, round + 2), &mut t).unwrap();
                assert_eq!(
                    store.del(k, &mut t),
                    Some(Value::from(big_payload(k, round + 2)))
                );
            }
            let in_flight = ValueCell::live_count().saturating_sub(baseline);
            assert!(
                in_flight < (THREADS * RANGE) as usize + DEFERRED_SLACK,
                "unbounded growth: {in_flight} live cells mid-churn (round {round})"
            );
        }
    });
    // Everything was deleted; only cells still parked in epoch bags remain.
    assert_eq!(store.quiescent_snapshot(), Vec::new());
    drop(store);
    // Dropping the STM instance drops its epoch collector, which drains
    // every remaining deferred free.
    drop(stm);
    assert_eq!(
        ValueCell::live_count(),
        baseline,
        "retired value cells were never reclaimed"
    );
}

#[test]
fn churn_reclaims_every_cell_val_short() {
    let _guard = lock();
    churn(ValShort::new(), ApiMode::Short);
}

#[test]
fn churn_reclaims_every_cell_orec_full() {
    let _guard = lock();
    churn(OrecFullG::new(), ApiMode::Full);
}

/// Overwrites alone (no deletes) must also reclaim: the store ends with one
/// live cell per key, and everything displaced drains with the collector.
#[test]
fn overwrite_churn_leaves_one_cell_per_key() {
    let _guard = lock();
    const KEYS: u64 = 64;
    const ROUNDS: u64 = 200;
    let baseline = ValueCell::live_count();
    let stm = ValShort::new();
    {
        let store = ShardedKv::new(&stm, 2, 32, ApiMode::Short);
        let mut t = store.register();
        for round in 0..ROUNDS {
            for k in 0..KEYS {
                store.put(k, &big_payload(k, round), &mut t).unwrap();
            }
        }
        for k in 0..KEYS {
            assert_eq!(
                store.get(k, &mut t),
                Some(Value::from(big_payload(k, ROUNDS - 1)))
            );
        }
    }
    drop(stm);
    assert_eq!(
        ValueCell::live_count(),
        baseline,
        "store drop must free the final cells, the collector the displaced ones"
    );
}

/// Mixed-size churn: values oscillate between inline and out-of-line, so
/// displaced words of *both* forms flow through the retire path (inline
/// retires must be no-ops, not leaks or double frees).
#[test]
fn inline_out_of_line_transitions_balance() {
    let _guard = lock();
    let baseline = ValueCell::live_count();
    let stm = ValShort::new();
    {
        let store = ShardedKv::new(&stm, 2, 32, ApiMode::Short);
        let mut t = store.register();
        for round in 0..500u64 {
            for k in 0..32u64 {
                if (round + k) % 2 == 0 {
                    store.put(k, b"tiny", &mut t).unwrap();
                } else {
                    store.put(k, &big_payload(k, round), &mut t).unwrap();
                }
            }
        }
    }
    drop(stm);
    assert_eq!(ValueCell::live_count(), baseline);
}
