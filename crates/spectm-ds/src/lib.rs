//! Data structures built over the SpecTM API.
//!
//! This crate contains the paper's case studies, written once and generic
//! over the [`spectm::Stm`] trait so that the *same* data-structure code runs
//! over every STM variant (orec table / TVar / value-based layouts, global or
//! local clocks):
//!
//! * [`TxDeque`] — the bounded double-ended queue used as the running example
//!   of Section 2, with both a traditional-transaction and a
//!   short-transaction implementation of every operation;
//! * [`StmHashTable`] — the integer-set hash table of the evaluation;
//! * [`StmSkipList`] — the skip list of Section 3, which uses specialized
//!   short transactions for towers of height 1–2 and ordinary transactions
//!   for taller towers; besides the paper's integer-set API it doubles as an
//!   ordered `u64 -> u64` map with transactional range scans (the ordered
//!   index of the `spectm-kv` store);
//! * [`dcss`](mod@dcss) — the double-compare-single-swap helper built from a combined
//!   read-only/read-write short transaction (Section 2.2).
//!
//! Each concurrent structure's operations take a `&mut S::Thread` handle; the
//! handle owns the transaction descriptor and the epoch-reclamation state for
//! the calling thread (register one per thread with [`spectm::Stm::register`]).

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod dcss;
pub mod deque;
pub mod hashtable;
pub mod skiplist;

pub use dcss::dcss;
pub use deque::TxDeque;
pub use hashtable::StmHashTable;
pub use skiplist::{RetiredTower, StmSkipList, TowerSlot, MAX_TOWER_VALUE};

/// Which SpecTM interface a data structure instance drives.
///
/// The paper's variant labels put this in the middle position:
/// `orec-full-g` is the orec layout driven through [`ApiMode::Full`],
/// `tvar-short-g` is the TVar layout driven through [`ApiMode::Short`], and
/// `orec-full-g (fine)` in Figure 6(a) is [`ApiMode::Fine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ApiMode {
    /// Every operation is a single traditional transaction (BaseTM usage).
    Full,
    /// Fast paths use the specialized short-transaction API; rare cases fall
    /// back to traditional transactions (the SpecTM design).
    #[default]
    Short,
    /// Operations are split into the same fine-grained steps as
    /// [`ApiMode::Short`], but each step is an ordinary (full) transaction.
    /// This isolates the benefit of the specialized implementation from the
    /// benefit of merely using smaller transactions.
    Fine,
}

impl ApiMode {
    /// The paper's label fragment for this mode.
    pub fn label(self) -> &'static str {
        match self {
            ApiMode::Full => "full",
            ApiMode::Short => "short",
            ApiMode::Fine => "full (fine)",
        }
    }
}
