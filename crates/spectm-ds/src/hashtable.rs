//! STM-based integer-set hash table.
//!
//! The table is a fixed array of bucket heads, each the start of a sorted
//! singly-linked chain of nodes.  Chain links are transactional cells holding
//! node addresses; bit 1 of a link is the logical-deletion mark (bit 0 is
//! left clear for the value-based layout's lock bit).
//!
//! Operations exist in two shapes, selected by [`ApiMode`]:
//!
//! * **Full** — each lookup/insert/remove is one traditional transaction that
//!   traverses the chain and performs its update (the BaseTM usage).
//! * **Short** — traversal uses single-location transactional reads, inserts
//!   use a single-location CAS, and removals use a two-location short
//!   read-write transaction that simultaneously unlinks the node and marks
//!   its forward pointer (the SpecTM usage).
//!
//! Removed nodes are retired through the STM's epoch collector, so readers
//! that raced past the unlink can still dereference them safely.

use spectm::{is_marked, mark, unmark, Stm, StmThread, Word};

use crate::ApiMode;

/// A chain node.  The key is immutable after publication; only the `next`
/// link is accessed transactionally.
struct Node<S: Stm> {
    key: u64,
    next: S::Cell,
}

/// An STM-based hash table storing a set of `u64` keys.
///
/// # Examples
///
/// ```
/// use spectm::{Stm, variants::ValShort};
/// use spectm_ds::{ApiMode, StmHashTable};
///
/// let stm = ValShort::new();
/// let table = StmHashTable::new(&stm, 64, ApiMode::Short);
/// let mut thread = stm.register();
/// assert!(table.insert(17, &mut thread));
/// assert!(table.contains(17, &mut thread));
/// assert!(table.remove(17, &mut thread));
/// assert!(!table.contains(17, &mut thread));
/// ```
pub struct StmHashTable<S: Stm> {
    stm: S,
    buckets: Vec<S::Cell>,
    mask: u64,
    mode: ApiMode,
}

// SAFETY: the raw node pointers stored inside cells are managed with the same
// discipline as the lock-free baselines: published by CAS/commit, retired via
// epochs after being unlinked, and only dereferenced under an epoch pin.
unsafe impl<S: Stm> Send for StmHashTable<S> {}
// SAFETY: as above.
unsafe impl<S: Stm> Sync for StmHashTable<S> {}

#[inline]
fn hash_key(key: u64) -> u64 {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17
}

impl<S: Stm> StmHashTable<S> {
    /// Creates a table with `buckets` chains (rounded up to a power of two),
    /// driven through the given [`ApiMode`].
    pub fn new(stm: &S, buckets: usize, mode: ApiMode) -> Self
    where
        S: Clone,
    {
        let len = buckets.next_power_of_two().max(1);
        Self {
            stm: stm.clone(),
            buckets: (0..len).map(|_| stm.new_cell(0)).collect(),
            mask: len as u64 - 1,
            mode,
        }
    }

    /// The API mode this instance drives.
    pub fn mode(&self) -> ApiMode {
        self.mode
    }

    /// Number of bucket chains.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    #[inline]
    fn bucket(&self, key: u64) -> &S::Cell {
        &self.buckets[(hash_key(key) & self.mask) as usize]
    }

    #[inline]
    fn node(ptr: Word) -> *mut Node<S> {
        unmark(ptr) as *mut Node<S>
    }

    fn alloc_node(&self, key: u64, next: Word) -> *mut Node<S> {
        Box::into_raw(Box::new(Node {
            key,
            next: self.stm.new_cell(next),
        }))
    }

    /// Inserts `key`; returns `false` if it was already present.
    pub fn insert(&self, key: u64, thread: &mut S::Thread) -> bool {
        match self.mode {
            ApiMode::Full => self.insert_full(key, thread),
            ApiMode::Short => self.insert_short(key, thread),
            ApiMode::Fine => self.insert_fine(key, thread),
        }
    }

    /// Removes `key`; returns `false` if it was not present.
    pub fn remove(&self, key: u64, thread: &mut S::Thread) -> bool {
        match self.mode {
            ApiMode::Full => self.remove_full(key, thread),
            ApiMode::Short => self.remove_short(key, thread),
            ApiMode::Fine => self.remove_fine(key, thread),
        }
    }

    /// Returns whether `key` is present.
    pub fn contains(&self, key: u64, thread: &mut S::Thread) -> bool {
        match self.mode {
            ApiMode::Full => self.contains_full(key, thread),
            ApiMode::Short | ApiMode::Fine => self.contains_short(key, thread),
        }
    }

    /// Collects every key currently present (non-transactional; only
    /// meaningful when no concurrent operations run).
    pub fn quiescent_snapshot(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for head in &self.buckets {
            let mut curr = S::peek(head);
            while unmark(curr) != 0 {
                // SAFETY: quiescence is required by the contract; nodes cannot
                // be retired concurrently.
                let node = unsafe { &*Self::node(curr) };
                let next = S::peek(&node.next);
                if !is_marked(next) {
                    out.push(node.key);
                }
                curr = next;
            }
        }
        out.sort_unstable();
        out
    }

    // ------------------------------------------------------------------
    // Short-transaction implementation
    // ------------------------------------------------------------------

    /// Walks the chain with single-location reads, returning the cell holding
    /// the link to the first node with `node.key >= key` plus that node's
    /// address (unmarked) as read from the link.
    ///
    /// The caller must hold an epoch pin.
    fn search_short<'a>(&'a self, key: u64, thread: &mut S::Thread) -> (&'a S::Cell, Word) {
        let mut prev: &S::Cell = self.bucket(key);
        let mut curr = unmark(thread.single_read(prev));
        loop {
            if curr == 0 {
                return (prev, 0);
            }
            // SAFETY: `curr` was read from a reachable link under the caller's
            // epoch pin; retired nodes cannot be freed while we are pinned.
            let node = unsafe { &*Self::node(curr) };
            if node.key >= key {
                return (prev, curr);
            }
            let next = thread.single_read(&node.next);
            // Traversal passes through logically deleted nodes; their forward
            // pointers still lead onward.
            prev = &node.next;
            curr = unmark(next);
        }
    }

    fn contains_short(&self, key: u64, thread: &mut S::Thread) -> bool {
        let _pin = thread.epoch().pin();
        let (_prev, curr) = self.search_short(key, thread);
        if curr == 0 {
            return false;
        }
        // SAFETY: protected by the epoch pin above.
        let node = unsafe { &*Self::node(curr) };
        node.key == key && !is_marked(thread.single_read(&node.next))
    }

    fn insert_short(&self, key: u64, thread: &mut S::Thread) -> bool {
        let mut new_node: *mut Node<S> = std::ptr::null_mut();
        let mut attempts = 0u32;
        loop {
            // Contention management between restarts (randomized linear
            // backoff, as for full transactions).
            if attempts > 0 {
                thread.backoff().wait();
            }
            attempts += 1;
            let pin = thread.epoch().pin();
            let (prev, curr) = self.search_short(key, thread);
            if curr != 0 {
                // SAFETY: protected by the epoch pin.
                let node = unsafe { &*Self::node(curr) };
                if node.key == key {
                    if is_marked(thread.single_read(&node.next)) {
                        // A logically deleted duplicate is still linked; retry
                        // until its remover unlinks it.
                        drop(pin);
                        continue;
                    }
                    if !new_node.is_null() {
                        // SAFETY: never published.
                        drop(unsafe { Box::from_raw(new_node) });
                    }
                    return false;
                }
            }
            if new_node.is_null() {
                new_node = self.alloc_node(key, curr);
            } else {
                // SAFETY: still private to this thread.
                let node = unsafe { &*new_node };
                S::poke(&node.next, curr);
            }
            // Publish with a single-location CAS (the paper's AddLevelOne
            // pattern).
            if thread.single_cas(prev, curr, new_node as Word) == curr {
                return true;
            }
        }
    }

    fn remove_short(&self, key: u64, thread: &mut S::Thread) -> bool {
        let mut attempts = 0u32;
        loop {
            if attempts > 0 {
                thread.backoff().wait();
            }
            attempts += 1;
            let pin = thread.epoch().pin();
            let (prev, curr) = self.search_short(key, thread);
            if curr == 0 {
                return false;
            }
            // SAFETY: protected by the epoch pin.
            let node = unsafe { &*Self::node(curr) };
            if node.key != key {
                return false;
            }
            // A two-location short transaction: atomically unlink the node
            // from its predecessor and mark its forward pointer.
            let prev_val = thread.rw_read(0, prev);
            if !thread.rw_is_valid(1) {
                drop(pin);
                continue;
            }
            if prev_val != curr {
                thread.rw_abort(1);
                drop(pin);
                continue;
            }
            let next_val = thread.rw_read(1, &node.next);
            if !thread.rw_is_valid(2) {
                drop(pin);
                continue;
            }
            if is_marked(next_val) {
                // Already logically deleted by someone else.
                thread.rw_abort(2);
                return false;
            }
            if thread.rw_commit(2, &[unmark(next_val), mark(next_val)]) {
                // SAFETY: the node is now unlinked and marked; new traversals
                // cannot reach it, and pinned readers are protected.
                unsafe { pin.defer_drop(Self::node(curr)) };
                return true;
            }
            drop(pin);
        }
    }

    // ------------------------------------------------------------------
    // Traditional-transaction implementation
    // ------------------------------------------------------------------

    fn contains_full(&self, key: u64, thread: &mut S::Thread) -> bool {
        thread
            .atomic(|tx| {
                let mut curr = unmark(tx.read(self.bucket(key))?);
                loop {
                    if curr == 0 {
                        return Ok(false);
                    }
                    // SAFETY: the transaction holds an epoch pin for the whole
                    // attempt; opacity guarantees `curr` was reachable.
                    let node = unsafe { &*Self::node(curr) };
                    if node.key == key {
                        return Ok(!is_marked(tx.read(&node.next)?));
                    }
                    if node.key > key {
                        return Ok(false);
                    }
                    curr = unmark(tx.read(&node.next)?);
                }
            })
            .expect("contains_full is never cancelled")
    }

    fn insert_full(&self, key: u64, thread: &mut S::Thread) -> bool {
        let mut new_node: *mut Node<S> = std::ptr::null_mut();
        let inserted = thread
            .atomic(|tx| {
                let mut prev_cell: &S::Cell = self.bucket(key);
                let mut curr = unmark(tx.read(prev_cell)?);
                loop {
                    if curr != 0 {
                        // SAFETY: see `contains_full`.
                        let node = unsafe { &*Self::node(curr) };
                        if node.key == key {
                            return Ok(if is_marked(tx.read(&node.next)?) {
                                // Deleted but not yet unlinked: restart.
                                return tx.restart();
                            } else {
                                false
                            });
                        }
                        if node.key < key {
                            prev_cell = &node.next;
                            curr = unmark(tx.read(prev_cell)?);
                            continue;
                        }
                    }
                    // Allocate lazily, once, and reuse across retries.
                    if new_node.is_null() {
                        new_node = self.alloc_node(key, curr);
                    }
                    // SAFETY: still private until the commit publishes it.
                    let node = unsafe { &*new_node };
                    // The node is unpublished, so a direct store is enough;
                    // the transactional write below publishes it atomically.
                    S::poke(&node.next, curr);
                    tx.write(prev_cell, new_node as Word)?;
                    return Ok(true);
                }
            })
            .expect("insert_full is never cancelled");
        if !inserted && !new_node.is_null() {
            // SAFETY: never published (the committed outcome was `false`).
            drop(unsafe { Box::from_raw(new_node) });
        }
        inserted
    }

    fn remove_full(&self, key: u64, thread: &mut S::Thread) -> bool {
        let mut unlinked: *mut Node<S> = std::ptr::null_mut();
        let removed = thread
            .atomic(|tx| {
                unlinked = std::ptr::null_mut();
                let mut prev_cell: &S::Cell = self.bucket(key);
                let mut curr = unmark(tx.read(prev_cell)?);
                loop {
                    if curr == 0 {
                        return Ok(false);
                    }
                    // SAFETY: see `contains_full`.
                    let node = unsafe { &*Self::node(curr) };
                    if node.key > key {
                        return Ok(false);
                    }
                    if node.key == key {
                        let next = tx.read(&node.next)?;
                        if is_marked(next) {
                            return Ok(false);
                        }
                        tx.write(prev_cell, unmark(next))?;
                        tx.write(&node.next, mark(next))?;
                        unlinked = Self::node(curr);
                        return Ok(true);
                    }
                    prev_cell = &node.next;
                    curr = unmark(tx.read(prev_cell)?);
                }
            })
            .expect("remove_full is never cancelled");
        if removed && !unlinked.is_null() {
            let pin = thread.epoch().pin();
            // SAFETY: the committed transaction unlinked and marked the node;
            // it is unreachable for new transactions.
            unsafe { pin.defer_drop(unlinked) };
        }
        removed
    }

    // ------------------------------------------------------------------
    // Fine-grained traditional transactions (the `full (fine)` ablation)
    // ------------------------------------------------------------------

    fn read_one_fine(&self, cell: &S::Cell, thread: &mut S::Thread) -> Word {
        thread
            .atomic(|tx| tx.read(cell))
            .expect("read_one_fine is never cancelled")
    }

    fn insert_fine(&self, key: u64, thread: &mut S::Thread) -> bool {
        let mut new_node: *mut Node<S> = std::ptr::null_mut();
        loop {
            let pin = thread.epoch().pin();
            let (prev, curr) = self.search_fine(key, thread);
            if curr != 0 {
                // SAFETY: protected by the epoch pin.
                let node = unsafe { &*Self::node(curr) };
                if node.key == key {
                    if is_marked(self.read_one_fine(&node.next, thread)) {
                        drop(pin);
                        continue;
                    }
                    if !new_node.is_null() {
                        // SAFETY: never published.
                        drop(unsafe { Box::from_raw(new_node) });
                    }
                    return false;
                }
            }
            if new_node.is_null() {
                new_node = self.alloc_node(key, curr);
            }
            // SAFETY: still private to this thread.
            let node = unsafe { &*new_node };
            let published = thread
                .atomic(|tx| {
                    if tx.read(prev)? != curr {
                        return Ok(false);
                    }
                    S::poke(&node.next, curr);
                    tx.write(prev, new_node as Word)?;
                    Ok(true)
                })
                .expect("insert_fine is never cancelled");
            if published {
                return true;
            }
        }
    }

    fn remove_fine(&self, key: u64, thread: &mut S::Thread) -> bool {
        loop {
            let pin = thread.epoch().pin();
            let (prev, curr) = self.search_fine(key, thread);
            if curr == 0 {
                return false;
            }
            // SAFETY: protected by the epoch pin.
            let node = unsafe { &*Self::node(curr) };
            if node.key != key {
                return false;
            }
            #[derive(PartialEq)]
            enum Outcome {
                Removed,
                AlreadyGone,
                Retry,
            }
            let outcome = thread
                .atomic(|tx| {
                    if tx.read(prev)? != curr {
                        return Ok(Outcome::Retry);
                    }
                    let next = tx.read(&node.next)?;
                    if is_marked(next) {
                        return Ok(Outcome::AlreadyGone);
                    }
                    tx.write(prev, unmark(next))?;
                    tx.write(&node.next, mark(next))?;
                    Ok(Outcome::Removed)
                })
                .expect("remove_fine is never cancelled");
            match outcome {
                Outcome::Removed => {
                    // SAFETY: unlinked by the committed transaction above.
                    unsafe { pin.defer_drop(Self::node(curr)) };
                    return true;
                }
                Outcome::AlreadyGone => return false,
                Outcome::Retry => {
                    drop(pin);
                    continue;
                }
            }
        }
    }

    /// Chain search where every link read is its own small transaction.
    fn search_fine<'a>(&'a self, key: u64, thread: &mut S::Thread) -> (&'a S::Cell, Word) {
        let mut prev: &S::Cell = self.bucket(key);
        let mut curr = unmark(self.read_one_fine(prev, thread));
        loop {
            if curr == 0 {
                return (prev, 0);
            }
            // SAFETY: protected by the caller's epoch pin.
            let node = unsafe { &*Self::node(curr) };
            if node.key >= key {
                return (prev, curr);
            }
            let next = self.read_one_fine(&node.next, thread);
            prev = &node.next;
            curr = unmark(next);
        }
    }
}

impl<S: Stm> Drop for StmHashTable<S> {
    fn drop(&mut self) {
        // Exclusive access: free every remaining node directly.
        for head in &self.buckets {
            let mut curr = S::peek(head);
            while unmark(curr) != 0 {
                // SAFETY: nodes were allocated with `Box::into_raw`; during
                // drop nothing else references them.
                let node = unsafe { Box::from_raw(Self::node(curr)) };
                curr = S::peek(&node.next);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectm::variants::{OrecFullG, OrecStm, TvarShortG, ValShort};
    use spectm::Config;
    use std::collections::BTreeSet;
    use std::sync::Arc;

    fn oracle_test<S: Stm + Clone>(stm: S, mode: ApiMode) {
        let table = StmHashTable::new(&stm, 32, mode);
        let mut t = stm.register();
        let mut oracle = BTreeSet::new();
        let mut state = 88172645463325252u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..2_000 {
            let k = rng() % 200;
            match rng() % 3 {
                0 => assert_eq!(table.insert(k, &mut t), oracle.insert(k)),
                1 => assert_eq!(table.remove(k, &mut t), oracle.remove(&k)),
                _ => assert_eq!(table.contains(k, &mut t), oracle.contains(&k)),
            }
        }
        assert_eq!(
            table.quiescent_snapshot(),
            oracle.into_iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn oracle_all_modes_and_layouts() {
        oracle_test(OrecFullG::new(), ApiMode::Full);
        oracle_test(OrecStm::with_config(Config::local()), ApiMode::Full);
        oracle_test(TvarShortG::new(), ApiMode::Short);
        oracle_test(TvarShortG::new(), ApiMode::Fine);
        oracle_test(ValShort::new(), ApiMode::Short);
        oracle_test(ValShort::new(), ApiMode::Full);
    }

    fn concurrent_disjoint<S: Stm + Clone>(stm: S, mode: ApiMode) {
        let stm = Arc::new(stm);
        let table = Arc::new(StmHashTable::new(&*stm, 256, mode));
        const THREADS: u64 = 4;
        const RANGE: u64 = 300;
        let mut joins = Vec::new();
        for tid in 0..THREADS {
            let stm = Arc::clone(&stm);
            let table = Arc::clone(&table);
            joins.push(std::thread::spawn(move || {
                let mut t = stm.register();
                let base = tid * RANGE;
                for k in 0..RANGE {
                    assert!(table.insert(base + k, &mut t));
                }
                for k in (0..RANGE).step_by(2) {
                    assert!(table.remove(base + k, &mut t));
                }
                for k in 0..RANGE {
                    assert_eq!(table.contains(base + k, &mut t), k % 2 == 1);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(
            table.quiescent_snapshot().len(),
            (THREADS * RANGE / 2) as usize
        );
    }

    #[test]
    fn concurrent_disjoint_ranges_short_val() {
        concurrent_disjoint(ValShort::new(), ApiMode::Short);
    }

    #[test]
    fn concurrent_disjoint_ranges_short_tvar() {
        concurrent_disjoint(TvarShortG::new(), ApiMode::Short);
    }

    #[test]
    fn concurrent_disjoint_ranges_full_orec() {
        concurrent_disjoint(OrecFullG::new(), ApiMode::Full);
    }

    fn contended_churn<S: Stm + Clone>(stm: S, mode: ApiMode) {
        use std::sync::atomic::{AtomicI64, Ordering};
        let stm = Arc::new(stm);
        let table = Arc::new(StmHashTable::new(&*stm, 16, mode));
        let balance: Arc<Vec<AtomicI64>> = Arc::new((0..64).map(|_| AtomicI64::new(0)).collect());
        let mut joins = Vec::new();
        for tid in 0..4u64 {
            let stm = Arc::clone(&stm);
            let table = Arc::clone(&table);
            let balance = Arc::clone(&balance);
            joins.push(std::thread::spawn(move || {
                let mut t = stm.register();
                let mut state = tid * 31 + 7;
                let mut rng = move || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                };
                for _ in 0..3_000 {
                    let k = rng() % 64;
                    if rng() % 2 == 0 {
                        if table.insert(k, &mut t) {
                            // ORDERING: test oracle counter, read after join.
                            balance[k as usize].fetch_add(1, Ordering::Relaxed);
                        }
                    } else if table.remove(k, &mut t) {
                        // ORDERING: test oracle counter, read after join.
                        balance[k as usize].fetch_sub(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let mut t = stm.register();
        for k in 0..64u64 {
            // ORDERING: read after all workers joined; join synchronizes.
            let bal = balance[k as usize].load(std::sync::atomic::Ordering::Relaxed);
            assert!(bal == 0 || bal == 1, "key {k} balance {bal}");
            assert_eq!(table.contains(k, &mut t), bal == 1, "key {k}");
        }
    }

    #[test]
    fn contended_churn_val_short() {
        contended_churn(ValShort::new(), ApiMode::Short);
    }

    #[test]
    fn contended_churn_tvar_short() {
        contended_churn(TvarShortG::new(), ApiMode::Short);
    }

    #[test]
    fn contended_churn_orec_full() {
        contended_churn(OrecFullG::new(), ApiMode::Full);
    }

    #[test]
    fn contended_churn_orec_local_full() {
        contended_churn(OrecStm::with_config(Config::local()), ApiMode::Full);
    }
}
