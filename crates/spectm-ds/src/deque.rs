//! The bounded double-ended queue of Section 2.
//!
//! The queue is built over an array of transactional cells holding the items
//! at indices `left..right` (modulo the capacity).  Elements must be non-zero
//! so that zero can mark empty slots.  Every operation exists in two forms:
//!
//! * `*_full` — a traditional transaction, exactly as the BaseTM `PopLeft`
//!   listing of Section 2.1;
//! * the default methods — specialized short transactions, exactly as the
//!   SpecTM `PopLeft` listing of Section 2.2 (two reads, validity check, and
//!   a two-location commit or an abort).
//!
//! Stored values use the [`spectm::encode_int`] encoding so that the same
//! code runs over the value-based layout (which reserves bit 0).

use spectm::{encode_int, Stm, StmThread, Word};

/// A bounded, transactional double-ended queue of small integers.
///
/// # Examples
///
/// ```
/// use spectm::{Stm, variants::TvarShortG};
/// use spectm_ds::TxDeque;
///
/// let stm = TvarShortG::new();
/// let deque = TxDeque::new(&stm, 8);
/// let mut thread = stm.register();
/// assert!(deque.push_right(1, &mut thread));
/// assert!(deque.push_right(2, &mut thread));
/// assert_eq!(deque.pop_left(&mut thread), Some(1));
/// assert_eq!(deque.pop_left(&mut thread), Some(2));
/// assert_eq!(deque.pop_left(&mut thread), None);
/// ```
pub struct TxDeque<S: Stm> {
    items: Vec<S::Cell>,
    left: S::Cell,
    right: S::Cell,
    capacity: usize,
}

/// Encodes a queue element: values are shifted so that zero can represent an
/// empty slot and bit 0 stays clear for the value-based layout.
#[inline]
fn enc(value: u64) -> Word {
    encode_int(value as usize + 1)
}

/// Decodes a queue element previously encoded with [`enc`].
#[inline]
fn dec(word: Word) -> u64 {
    (spectm::decode_int(word) - 1) as u64
}

impl<S: Stm> TxDeque<S> {
    /// Creates an empty deque with room for `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity < 2`.
    pub fn new(stm: &S, capacity: usize) -> Self {
        assert!(capacity >= 2, "deque capacity must be at least 2");
        Self {
            items: (0..capacity).map(|_| stm.new_cell(0)).collect(),
            left: stm.new_cell(encode_int(0)),
            right: stm.new_cell(encode_int(0)),
            capacity,
        }
    }

    /// Capacity in elements.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    #[inline]
    fn idx(&self, i: usize) -> usize {
        i % self.capacity
    }

    // ------------------------------------------------------------------
    // Short-transaction operations (Section 2.2)
    // ------------------------------------------------------------------

    /// Pops from the left end using a specialized short transaction.
    pub fn pop_left(&self, thread: &mut S::Thread) -> Option<u64> {
        loop {
            let li = spectm::decode_int(thread.rw_read(0, &self.left));
            if !thread.rw_is_valid(1) {
                continue;
            }
            let slot = &self.items[self.idx(li)];
            let item = thread.rw_read(1, slot);
            if !thread.rw_is_valid(2) {
                continue;
            }
            if item != 0 {
                if thread.rw_commit(2, &[encode_int(li + 1), 0]) {
                    return Some(dec(item));
                }
            } else {
                thread.rw_abort(2);
                return None;
            }
        }
    }

    /// Pushes onto the right end using a specialized short transaction.
    ///
    /// Returns `false` if the queue is full.
    pub fn push_right(&self, value: u64, thread: &mut S::Thread) -> bool {
        loop {
            let ri = spectm::decode_int(thread.rw_read(0, &self.right));
            if !thread.rw_is_valid(1) {
                continue;
            }
            let slot = &self.items[self.idx(ri)];
            let existing = thread.rw_read(1, slot);
            if !thread.rw_is_valid(2) {
                continue;
            }
            if existing == 0 {
                if thread.rw_commit(2, &[encode_int(ri + 1), enc(value)]) {
                    return true;
                }
            } else {
                thread.rw_abort(2);
                return false;
            }
        }
    }

    /// Pops from the right end using a specialized short transaction.
    pub fn pop_right(&self, thread: &mut S::Thread) -> Option<u64> {
        loop {
            let ri = spectm::decode_int(thread.rw_read(0, &self.right));
            if !thread.rw_is_valid(1) {
                continue;
            }
            let prev = ri.checked_sub(1);
            let Some(prev) = prev else {
                // Index 0 with nothing ever pushed: treat slot capacity-1.
                thread.rw_abort(1);
                return self.pop_right_full(thread);
            };
            let slot = &self.items[self.idx(prev)];
            let item = thread.rw_read(1, slot);
            if !thread.rw_is_valid(2) {
                continue;
            }
            if item != 0 {
                if thread.rw_commit(2, &[encode_int(prev), 0]) {
                    return Some(dec(item));
                }
            } else {
                thread.rw_abort(2);
                return None;
            }
        }
    }

    /// Pushes onto the left end using a specialized short transaction.
    ///
    /// Returns `false` if the queue is full.
    pub fn push_left(&self, value: u64, thread: &mut S::Thread) -> bool {
        loop {
            let li = spectm::decode_int(thread.rw_read(0, &self.left));
            if !thread.rw_is_valid(1) {
                continue;
            }
            let Some(prev) = li.checked_sub(1) else {
                thread.rw_abort(1);
                return self.push_left_full(value, thread);
            };
            let slot = &self.items[self.idx(prev)];
            let existing = thread.rw_read(1, slot);
            if !thread.rw_is_valid(2) {
                continue;
            }
            if existing == 0 {
                if thread.rw_commit(2, &[encode_int(prev), enc(value)]) {
                    return true;
                }
            } else {
                thread.rw_abort(2);
                return false;
            }
        }
    }

    // ------------------------------------------------------------------
    // Traditional-transaction operations (Section 2.1)
    // ------------------------------------------------------------------

    /// Pops from the left end using a traditional transaction.
    pub fn pop_left_full(&self, thread: &mut S::Thread) -> Option<u64> {
        thread
            .atomic(|tx| {
                let li = spectm::decode_int(tx.read(&self.left)?);
                let slot = &self.items[self.idx(li)];
                let item = tx.read(slot)?;
                if item != 0 {
                    tx.write(slot, 0)?;
                    tx.write(&self.left, encode_int(li + 1))?;
                    Ok(Some(dec(item)))
                } else {
                    Ok(None)
                }
            })
            .expect("pop_left_full is never cancelled")
    }

    /// Pushes onto the right end using a traditional transaction.
    pub fn push_right_full(&self, value: u64, thread: &mut S::Thread) -> bool {
        thread
            .atomic(|tx| {
                let ri = spectm::decode_int(tx.read(&self.right)?);
                let slot = &self.items[self.idx(ri)];
                if tx.read(slot)? == 0 {
                    tx.write(slot, enc(value))?;
                    tx.write(&self.right, encode_int(ri + 1))?;
                    Ok(true)
                } else {
                    Ok(false)
                }
            })
            .expect("push_right_full is never cancelled")
    }

    /// Pops from the right end using a traditional transaction.
    pub fn pop_right_full(&self, thread: &mut S::Thread) -> Option<u64> {
        thread
            .atomic(|tx| {
                let ri = spectm::decode_int(tx.read(&self.right)?);
                if ri == 0 {
                    let li = spectm::decode_int(tx.read(&self.left)?);
                    if li == 0 {
                        return Ok(None);
                    }
                }
                let Some(prev) = ri.checked_sub(1) else {
                    return Ok(None);
                };
                let slot = &self.items[self.idx(prev)];
                let item = tx.read(slot)?;
                if item != 0 {
                    tx.write(slot, 0)?;
                    tx.write(&self.right, encode_int(prev))?;
                    Ok(Some(dec(item)))
                } else {
                    Ok(None)
                }
            })
            .expect("pop_right_full is never cancelled")
    }

    /// Pushes onto the left end using a traditional transaction.
    pub fn push_left_full(&self, value: u64, thread: &mut S::Thread) -> bool {
        thread
            .atomic(|tx| {
                let li = spectm::decode_int(tx.read(&self.left)?);
                let Some(prev) = li.checked_sub(1) else {
                    return Ok(false);
                };
                let slot = &self.items[self.idx(prev)];
                if tx.read(slot)? == 0 {
                    tx.write(slot, enc(value))?;
                    tx.write(&self.left, encode_int(prev))?;
                    Ok(true)
                } else {
                    Ok(false)
                }
            })
            .expect("push_left_full is never cancelled")
    }

    /// Number of elements currently stored (non-transactional; only meaningful
    /// when no concurrent operations run).
    pub fn quiescent_len(&self) -> usize {
        self.items.iter().filter(|c| S::peek(c) != 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectm::variants::{OrecFullG, TvarShortG, ValShort};
    use std::sync::Arc;

    fn fifo_roundtrip<S: Stm>() {
        let stm = S::new();
        let q = TxDeque::new(&stm, 16);
        let mut t = stm.register();
        for v in 0..10 {
            assert!(q.push_right(v, &mut t));
        }
        for v in 0..10 {
            assert_eq!(q.pop_left(&mut t), Some(v));
        }
        assert_eq!(q.pop_left(&mut t), None);
    }

    #[test]
    fn fifo_roundtrip_all_variants() {
        fifo_roundtrip::<OrecFullG>();
        fifo_roundtrip::<TvarShortG>();
        fifo_roundtrip::<ValShort>();
    }

    #[test]
    fn full_and_short_apis_interoperate() {
        let stm = TvarShortG::new();
        let q = TxDeque::new(&stm, 8);
        let mut t = stm.register();
        assert!(q.push_right_full(7, &mut t));
        assert!(q.push_right(8, &mut t));
        assert_eq!(q.pop_left(&mut t), Some(7));
        assert_eq!(q.pop_left_full(&mut t), Some(8));
        assert_eq!(q.pop_left_full(&mut t), None);
    }

    #[test]
    fn elements_are_conserved_under_concurrency() {
        let stm = Arc::new(ValShort::new());
        let q = Arc::new(TxDeque::new(&*stm, 1 << 12));
        const PRODUCERS: usize = 2;
        const CONSUMERS: usize = 2;
        const PER_PRODUCER: u64 = 1_000;

        let mut joins = Vec::new();
        let consumed = Arc::new(std::sync::atomic::AtomicU64::new(0));
        for p in 0..PRODUCERS {
            let stm = Arc::clone(&stm);
            let q = Arc::clone(&q);
            joins.push(std::thread::spawn(move || {
                let mut t = stm.register();
                for v in 0..PER_PRODUCER {
                    while !q.push_right(p as u64 * PER_PRODUCER + v, &mut t) {
                        std::thread::yield_now();
                    }
                }
            }));
        }
        for _ in 0..CONSUMERS {
            let stm = Arc::clone(&stm);
            let q = Arc::clone(&q);
            let consumed = Arc::clone(&consumed);
            joins.push(std::thread::spawn(move || {
                let mut t = stm.register();
                let mut got = 0;
                let target = PRODUCERS as u64 * PER_PRODUCER / CONSUMERS as u64;
                while got < target {
                    if let Some(v) = q.pop_left(&mut t) {
                        // ORDERING: test oracle counter, read after join.
                        consumed.fetch_add(v + 1, std::sync::atomic::Ordering::Relaxed);
                        got += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let total: u64 =
            (0..(PRODUCERS as u64 * PER_PRODUCER)).sum::<u64>() + PRODUCERS as u64 * PER_PRODUCER;
        assert_eq!(
            // ORDERING: read after all consumers joined; join synchronizes.
            consumed.load(std::sync::atomic::Ordering::Relaxed),
            total,
            "every produced element must be consumed exactly once"
        );
        assert_eq!(q.quiescent_len(), 0);
    }
}
