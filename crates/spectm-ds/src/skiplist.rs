//! STM-based integer-set skip list (the case study of Section 3).
//!
//! Towers store a key and one transactional forward pointer per level; bit 1
//! of every forward pointer is the "deleted" mark (bit 0 stays clear for the
//! value-based layout's lock bit).  A removal marks the tower's own forward
//! pointers *and* unlinks it from every level in one atomic step, so a tower
//! is either fully linked or fully removed — this is precisely the
//! simplification over the CAS-based skip list that the paper advertises.
//!
//! The [`ApiMode`] selects how those atomic steps are expressed:
//!
//! * **Short** — towers of height 1 use a single-location CAS, towers of
//!   height 2 use a short read-write transaction, and taller towers (about
//!   25 % of inserts with p = ½) fall back to an ordinary transaction —
//!   exactly the split described in Section 3.
//! * **Full** — every insert/remove/search is one ordinary transaction.
//! * **Fine** — the same fine-grained steps as **Short**, but each step is an
//!   ordinary transaction (the `orec-full-g (fine)` line of Figure 6(a)).

use spectm::{decode_int, encode_int, is_marked, mark, unmark, Stm, StmThread, Word};

use crate::ApiMode;

/// Maximum tower height (the paper sets it to 32).
pub const MAX_LEVEL: usize = 32;

/// Tallest tower that the Short mode handles with specialized transactions;
/// taller towers use ordinary transactions (Section 3 uses levels 1–2).
pub const SHORT_LEVEL_CUTOFF: usize = 2;

/// A skip-list tower.  The key and height are immutable after publication.
struct Tower<S: Stm> {
    key: u64,
    level: usize,
    next: Vec<S::Cell>,
}

/// Traversal window: predecessor cell and successor pointer per level.
struct Window<'a, S: Stm> {
    preds: Vec<&'a S::Cell>,
    succs: Vec<Word>,
    /// Number of levels the search actually traversed; predecessors at
    /// `top..` are just head cells.  Because a tower linked at level `L >= 2`
    /// can only have been created by a transaction that raised the height
    /// hint to at least `L + 1`, every level at or above `top` is guaranteed
    /// empty.
    top: usize,
}

/// An STM-based skip list storing a set of `u64` keys.
///
/// # Examples
///
/// ```
/// use spectm::{Stm, variants::ValShort};
/// use spectm_ds::{ApiMode, StmSkipList};
///
/// let stm = ValShort::new();
/// let list = StmSkipList::new(&stm, ApiMode::Short);
/// let mut thread = stm.register();
/// assert!(list.insert(42, &mut thread));
/// assert!(list.contains(42, &mut thread));
/// assert!(list.remove(42, &mut thread));
/// ```
pub struct StmSkipList<S: Stm> {
    stm: S,
    head: Vec<S::Cell>,
    /// Encoded current height hint (the paper's `head.lvl`).
    level_hint: S::Cell,
    mode: ApiMode,
}

// SAFETY: raw tower pointers stored in cells are published by transactions,
// retired through epochs after being unlinked, and dereferenced only under an
// epoch pin (or inside a transaction, which pins for its duration).
unsafe impl<S: Stm> Send for StmSkipList<S> {}
// SAFETY: as above.
unsafe impl<S: Stm> Sync for StmSkipList<S> {}

impl<S: Stm> StmSkipList<S> {
    /// Creates an empty skip list driven through the given [`ApiMode`].
    pub fn new(stm: &S, mode: ApiMode) -> Self
    where
        S: Clone,
    {
        Self {
            stm: stm.clone(),
            head: (0..MAX_LEVEL).map(|_| stm.new_cell(0)).collect(),
            level_hint: stm.new_cell(encode_int(1)),
            mode,
        }
    }

    /// The API mode this instance drives.
    pub fn mode(&self) -> ApiMode {
        self.mode
    }

    #[inline]
    fn tower(ptr: Word) -> *mut Tower<S> {
        unmark(ptr) as *mut Tower<S>
    }

    fn alloc_tower(&self, key: u64, level: usize) -> *mut Tower<S> {
        Box::into_raw(Box::new(Tower {
            key,
            level,
            next: (0..level).map(|_| self.stm.new_cell(0)).collect(),
        }))
    }

    /// Draws a tower height with the paper's geometric distribution.
    fn random_level() -> usize {
        lockfree_level()
    }

    /// Inserts `key`; returns `false` if it was already present.
    pub fn insert(&self, key: u64, thread: &mut S::Thread) -> bool {
        match self.mode {
            ApiMode::Full => self.insert_txn(key, Self::random_level(), thread),
            ApiMode::Short | ApiMode::Fine => self.insert_split(key, thread),
        }
    }

    /// Removes `key`; returns `false` if it was not present.
    pub fn remove(&self, key: u64, thread: &mut S::Thread) -> bool {
        match self.mode {
            ApiMode::Full => self.remove_txn(key, thread),
            ApiMode::Short | ApiMode::Fine => self.remove_split(key, thread),
        }
    }

    /// Returns whether `key` is present.
    pub fn contains(&self, key: u64, thread: &mut S::Thread) -> bool {
        match self.mode {
            ApiMode::Full => self.contains_txn(key, thread),
            ApiMode::Short | ApiMode::Fine => self.contains_walk(key, thread),
        }
    }

    /// Collects every key currently present (non-transactional; only
    /// meaningful when no concurrent operations run).
    pub fn quiescent_snapshot(&self) -> Vec<u64> {
        let mut out = Vec::new();
        let mut curr = S::peek(&self.head[0]);
        while unmark(curr) != 0 {
            // SAFETY: quiescence is required by the contract.
            let tower = unsafe { &*Self::tower(curr) };
            let next = S::peek(&tower.next[0]);
            if !is_marked(next) {
                out.push(tower.key);
            }
            curr = unmark(next);
        }
        out
    }

    // ------------------------------------------------------------------
    // Walk-based traversal (Short / Fine modes)
    // ------------------------------------------------------------------

    /// Reads one forward pointer, either with a single-location transaction
    /// (Short) or with a one-read ordinary transaction (Fine).
    #[inline]
    fn read_link(&self, cell: &S::Cell, thread: &mut S::Thread) -> Word {
        match self.mode {
            ApiMode::Fine => thread
                .atomic(|tx| tx.read(cell))
                .expect("read_link is never cancelled"),
            _ => thread.single_read(cell),
        }
    }

    /// The paper's `Skiplist::Search`: walks from the level hint down to
    /// level 0, recording the predecessor cell and successor pointer at every
    /// level.  The caller must hold an epoch pin.
    fn search<'a>(&'a self, key: u64, thread: &mut S::Thread) -> Window<'a, S> {
        // Traverse at least the levels covered by the short fast paths so the
        // window's low-level predecessors are always real, even before any
        // tall tower has raised the height hint.
        let top = decode_int(self.read_link(&self.level_hint, thread))
            .clamp(SHORT_LEVEL_CUTOFF, MAX_LEVEL);
        let mut preds: Vec<&S::Cell> = Vec::with_capacity(MAX_LEVEL);
        let mut succs: Vec<Word> = vec![0; MAX_LEVEL];
        preds.resize(MAX_LEVEL, &self.head[0]);
        for lvl in (0..MAX_LEVEL).rev() {
            preds[lvl] = &self.head[lvl];
        }
        let mut pred_cell: &S::Cell = &self.head[top - 1];
        for lvl in (0..top).rev() {
            // Step down: the predecessor found at the level above is also a
            // valid starting point at this level.
            let mut curr = unmark(self.read_link(pred_cell, thread));
            loop {
                if curr == 0 {
                    break;
                }
                // SAFETY: `curr` was read from a reachable link under the
                // caller's epoch pin.
                let tower = unsafe { &*Self::tower(curr) };
                if tower.key >= key {
                    break;
                }
                let next = self.read_link(&tower.next[lvl], thread);
                pred_cell = &tower.next[lvl];
                curr = unmark(next);
            }
            preds[lvl] = pred_cell;
            succs[lvl] = curr;
            if lvl > 0 {
                // Move the walking pointer to the same tower's next-lower
                // level; for the head this is just the lower head cell.
                pred_cell = self.step_down(preds[lvl], lvl);
            }
        }
        Window { preds, succs, top }
    }

    /// Given the predecessor cell at `lvl`, returns the same tower's cell at
    /// `lvl - 1` (head cells step down to head cells).
    fn step_down<'a>(&'a self, pred: &'a S::Cell, lvl: usize) -> &'a S::Cell {
        let head_cell = &self.head[lvl] as *const S::Cell;
        if std::ptr::eq(pred, head_cell) {
            &self.head[lvl - 1]
        } else {
            // `pred` is `&tower.next[lvl]`; recover the tower to index its
            // lower level.  The cells of one tower live in one `Vec`, so the
            // cell at `lvl - 1` sits one element earlier.
            // SAFETY: `pred` points into a live tower's `next` vector (it was
            // obtained under the caller's epoch pin), and `lvl >= 1`.
            unsafe {
                let base = (pred as *const S::Cell).sub(lvl);
                &*base.add(lvl - 1)
            }
        }
    }

    fn contains_walk(&self, key: u64, thread: &mut S::Thread) -> bool {
        let _pin = thread.epoch().pin();
        let w = self.search(key, thread);
        let curr = w.succs[0];
        if curr == 0 {
            return false;
        }
        // SAFETY: protected by the epoch pin above.
        let tower = unsafe { &*Self::tower(curr) };
        tower.key == key && !is_marked(self.read_link(&tower.next[0], thread))
    }

    // ------------------------------------------------------------------
    // Insert
    // ------------------------------------------------------------------

    fn insert_split(&self, key: u64, thread: &mut S::Thread) -> bool {
        let level = Self::random_level();
        let mut new_tower: *mut Tower<S> = std::ptr::null_mut();
        let mut attempts = 0u32;
        loop {
            // Contention management between restarts breaks symmetric
            // conflict patterns (and matters when threads outnumber cores).
            if attempts > 0 {
                thread.backoff().wait();
            }
            attempts += 1;
            let pin = thread.epoch().pin();
            let w = self.search(key, thread);
            if w.succs[0] != 0 {
                // SAFETY: protected by the epoch pin.
                let tower = unsafe { &*Self::tower(w.succs[0]) };
                if tower.key == key {
                    if is_marked(self.read_link(&tower.next[0], thread)) {
                        // Deleted but still linked: wait for the remover.
                        drop(pin);
                        continue;
                    }
                    if !new_tower.is_null() {
                        // SAFETY: never published.
                        drop(unsafe { Box::from_raw(new_tower) });
                    }
                    return false;
                }
            }
            if new_tower.is_null() {
                new_tower = self.alloc_tower(key, level);
            }
            // SAFETY: still private to this thread.
            let tower = unsafe { &*new_tower };
            for lvl in 0..level {
                S::poke(&tower.next[lvl], w.succs[lvl]);
            }
            let published = if self.mode == ApiMode::Short {
                if level == 1 {
                    // The paper's AddLevelOne: one single-location CAS.
                    thread.single_cas(w.preds[0], w.succs[0], new_tower as Word) == w.succs[0]
                } else if level <= SHORT_LEVEL_CUTOFF {
                    self.insert_short_rw(&w, level, new_tower as Word, thread)
                } else {
                    self.insert_txn_linked(&w, level, new_tower as Word, key, thread)
                }
            } else {
                // Fine mode: every step is an ordinary transaction.
                self.insert_txn_linked(&w, level, new_tower as Word, key, thread)
            };
            if published {
                return true;
            }
            drop(pin);
        }
    }

    /// Links a tower of height ≤ [`SHORT_LEVEL_CUTOFF`] using one short
    /// read-write transaction over its predecessors.
    fn insert_short_rw(
        &self,
        w: &Window<'_, S>,
        level: usize,
        new_ptr: Word,
        thread: &mut S::Thread,
    ) -> bool {
        for lvl in 0..level {
            let observed = thread.rw_read(lvl, w.preds[lvl]);
            if !thread.rw_is_valid(lvl + 1) {
                return false;
            }
            if observed != w.succs[lvl] {
                thread.rw_abort(lvl + 1);
                return false;
            }
        }
        let values = vec![new_ptr; level];
        thread.rw_commit(level, &values)
    }

    /// Links a tower using one ordinary transaction (used for tall towers in
    /// Short mode, and for every tower in Full/Fine modes once the window is
    /// known).  Mirrors the paper's `AddLevelN`.
    fn insert_txn_linked(
        &self,
        w: &Window<'_, S>,
        level: usize,
        new_ptr: Word,
        _key: u64,
        thread: &mut S::Thread,
    ) -> bool {
        // A `None` outcome means the transaction was cancelled (the paper's
        // `STM_ABORT_TX`): nothing was published, so the caller retries with
        // a fresh search.  Returning a committed `false` here would be wrong:
        // writes to lower levels buffered before the mismatch was discovered
        // would still take effect, publishing a half-linked tower.
        thread
            .atomic(|tx| {
                // Raise the list's height hint if needed.
                let head_lvl = decode_int(tx.read(&self.level_hint)?);
                if level > head_lvl {
                    tx.write(&self.level_hint, encode_int(level))?;
                }
                for lvl in 0..level {
                    // Levels the search did not traverse are guaranteed empty
                    // (see `Window::top`), so the new tower hangs off the
                    // head there; traversed levels must still match the
                    // window the search computed.
                    let above_window = lvl >= w.top;
                    let pred = if above_window {
                        &self.head[lvl]
                    } else {
                        w.preds[lvl]
                    };
                    let observed = tx.read(pred)?;
                    let expected = if above_window { 0 } else { w.succs[lvl] };
                    if observed != expected || is_marked(observed) {
                        // The neighbourhood changed since the search.
                        return tx.cancel();
                    }
                    // Retarget the new tower's forward pointer in case this
                    // level hangs off the head.
                    // SAFETY: the new tower is still private.
                    let tower = unsafe { &*Self::tower(new_ptr) };
                    S::poke(&tower.next[lvl], observed);
                    tx.write(pred, new_ptr)?;
                }
                Ok(())
            })
            .is_some()
    }

    /// Full-mode insert: search and link inside a single ordinary transaction.
    fn insert_txn(&self, key: u64, level: usize, thread: &mut S::Thread) -> bool {
        let mut new_tower: *mut Tower<S> = std::ptr::null_mut();
        let inserted = thread
            .atomic(|tx| {
                let head_lvl = decode_int(tx.read(&self.level_hint)?).clamp(1, MAX_LEVEL);
                let mut preds: Vec<*const S::Cell> = Vec::with_capacity(MAX_LEVEL);
                let mut succs: Vec<Word> = vec![0; MAX_LEVEL];
                for lvl in 0..MAX_LEVEL {
                    preds.push(&self.head[lvl]);
                }
                let mut pred_cell: *const S::Cell = &self.head[head_lvl - 1];
                for lvl in (0..head_lvl).rev() {
                    // SAFETY: predecessor cells are either head cells or cells
                    // of towers read transactionally within this attempt; the
                    // transaction's epoch pin keeps them alive.
                    let mut curr = unmark(tx.read(unsafe { &*pred_cell })?);
                    loop {
                        if curr == 0 {
                            break;
                        }
                        // SAFETY: as above.
                        let tower = unsafe { &*Self::tower(curr) };
                        if tower.key >= key {
                            break;
                        }
                        let next = tx.read(&tower.next[lvl])?;
                        pred_cell = &tower.next[lvl];
                        curr = unmark(next);
                    }
                    preds[lvl] = pred_cell;
                    succs[lvl] = curr;
                    if lvl > 0 {
                        // SAFETY: as above.
                        pred_cell = self.step_down(unsafe { &*pred_cell }, lvl);
                    }
                }
                if succs[0] != 0 {
                    // SAFETY: as above.
                    let tower = unsafe { &*Self::tower(succs[0]) };
                    if tower.key == key && !is_marked(tx.read(&tower.next[0])?) {
                        return Ok(false);
                    }
                    if tower.key == key {
                        return tx.restart();
                    }
                }
                if level > head_lvl {
                    tx.write(&self.level_hint, encode_int(level))?;
                }
                if new_tower.is_null() {
                    new_tower = self.alloc_tower(key, level);
                }
                // SAFETY: still private to this thread.
                let tower = unsafe { &*new_tower };
                for lvl in 0..level {
                    let (pred, succ) = if lvl < head_lvl {
                        (preds[lvl], succs[lvl])
                    } else {
                        (&self.head[lvl] as *const S::Cell, tx.read(&self.head[lvl])?)
                    };
                    S::poke(&tower.next[lvl], succ);
                    // SAFETY: as above.
                    tx.write(unsafe { &*pred }, new_tower as Word)?;
                }
                Ok(true)
            })
            .expect("insert transaction is never cancelled");
        if !inserted && !new_tower.is_null() {
            // SAFETY: never published.
            drop(unsafe { Box::from_raw(new_tower) });
        }
        inserted
    }

    // ------------------------------------------------------------------
    // Remove
    // ------------------------------------------------------------------

    fn remove_split(&self, key: u64, thread: &mut S::Thread) -> bool {
        let mut attempts = 0u32;
        loop {
            if attempts > 0 {
                thread.backoff().wait();
            }
            attempts += 1;
            let pin = thread.epoch().pin();
            let w = self.search(key, thread);
            if w.succs[0] == 0 {
                return false;
            }
            let target = w.succs[0];
            // SAFETY: protected by the epoch pin.
            let tower = unsafe { &*Self::tower(target) };
            if tower.key != key {
                return false;
            }
            let level = tower.level;
            #[derive(PartialEq)]
            enum Outcome {
                Removed,
                AlreadyGone,
                Retry,
            }
            let outcome = if self.mode == ApiMode::Short && level <= SHORT_LEVEL_CUTOFF {
                self.remove_short_rw(&w, target, level, thread)
            } else {
                self.remove_txn_unlink(&w, target, level, thread)
            };
            let outcome = match outcome {
                0 => Outcome::Removed,
                1 => Outcome::AlreadyGone,
                _ => Outcome::Retry,
            };
            match outcome {
                Outcome::Removed => {
                    // SAFETY: unlinked and marked by the committed step above;
                    // unreachable for new operations.
                    unsafe { pin.defer_drop(Self::tower(target)) };
                    return true;
                }
                Outcome::AlreadyGone => return false,
                Outcome::Retry => {
                    drop(pin);
                    continue;
                }
            }
        }
    }

    /// Removes a tower of height ≤ [`SHORT_LEVEL_CUTOFF`] with one short
    /// read-write transaction covering the predecessors and the tower's own
    /// forward pointers.  Returns 0 = removed, 1 = already deleted, 2 = retry.
    fn remove_short_rw(
        &self,
        w: &Window<'_, S>,
        target: Word,
        level: usize,
        thread: &mut S::Thread,
    ) -> u8 {
        // SAFETY: the caller holds an epoch pin and verified the key.
        let tower = unsafe { &*Self::tower(target) };
        let mut values = [0 as Word; 2 * SHORT_LEVEL_CUTOFF];
        // First the predecessors (unlink), then the tower's own pointers
        // (mark).  All locations are distinct.
        for lvl in 0..level {
            let observed = thread.rw_read(lvl, w.preds[lvl]);
            if !thread.rw_is_valid(lvl + 1) {
                return 2;
            }
            if observed != target {
                thread.rw_abort(lvl + 1);
                return 2;
            }
        }
        for lvl in 0..level {
            let own = thread.rw_read(level + lvl, &tower.next[lvl]);
            if !thread.rw_is_valid(level + lvl + 1) {
                return 2;
            }
            if is_marked(own) {
                thread.rw_abort(level + lvl + 1);
                return 1;
            }
            values[lvl] = unmark(own);
            values[level + lvl] = mark(own);
        }
        if thread.rw_commit(2 * level, &values[..2 * level]) {
            0
        } else {
            2
        }
    }

    /// Removes a tower with one ordinary transaction (tall towers in Short
    /// mode; every tower in Full/Fine modes).  Returns 0/1/2 as above.
    fn remove_txn_unlink(
        &self,
        w: &Window<'_, S>,
        target: Word,
        level: usize,
        thread: &mut S::Thread,
    ) -> u8 {
        // SAFETY: the caller holds an epoch pin and verified the key.
        let tower = unsafe { &*Self::tower(target) };
        thread
            .atomic(|tx| {
                for lvl in 0..level {
                    if tx.read(w.preds[lvl])? != target {
                        return Ok(2);
                    }
                }
                let mut nexts = [0 as Word; MAX_LEVEL];
                for (lvl, next) in nexts.iter_mut().enumerate().take(level) {
                    let own = tx.read(&tower.next[lvl])?;
                    if is_marked(own) {
                        return Ok(1);
                    }
                    *next = own;
                }
                for (lvl, &next) in nexts.iter().enumerate().take(level) {
                    tx.write(w.preds[lvl], unmark(next))?;
                    tx.write(&tower.next[lvl], mark(next))?;
                }
                Ok(0)
            })
            .expect("remove transaction is never cancelled")
    }

    /// Full-mode remove: search and unlink inside one ordinary transaction.
    fn remove_txn(&self, key: u64, thread: &mut S::Thread) -> bool {
        let mut unlinked: Word = 0;
        let removed = thread
            .atomic(|tx| {
                unlinked = 0;
                let head_lvl = decode_int(tx.read(&self.level_hint)?).clamp(1, MAX_LEVEL);
                let mut preds: Vec<*const S::Cell> = Vec::with_capacity(MAX_LEVEL);
                for lvl in 0..MAX_LEVEL {
                    preds.push(&self.head[lvl]);
                }
                let mut succs: Vec<Word> = vec![0; MAX_LEVEL];
                let mut pred_cell: *const S::Cell = &self.head[head_lvl - 1];
                for lvl in (0..head_lvl).rev() {
                    // SAFETY: see `insert_txn`.
                    let mut curr = unmark(tx.read(unsafe { &*pred_cell })?);
                    loop {
                        if curr == 0 {
                            break;
                        }
                        // SAFETY: as above.
                        let tower = unsafe { &*Self::tower(curr) };
                        if tower.key >= key {
                            break;
                        }
                        let next = tx.read(&tower.next[lvl])?;
                        pred_cell = &tower.next[lvl];
                        curr = unmark(next);
                    }
                    preds[lvl] = pred_cell;
                    succs[lvl] = curr;
                    if lvl > 0 {
                        // SAFETY: as above.
                        pred_cell = self.step_down(unsafe { &*pred_cell }, lvl);
                    }
                }
                if succs[0] == 0 {
                    return Ok(false);
                }
                // SAFETY: as above.
                let tower = unsafe { &*Self::tower(succs[0]) };
                if tower.key != key {
                    return Ok(false);
                }
                let mut nexts = [0 as Word; MAX_LEVEL];
                for (lvl, next) in nexts.iter_mut().enumerate().take(tower.level) {
                    let own = tx.read(&tower.next[lvl])?;
                    if is_marked(own) {
                        return Ok(false);
                    }
                    *next = own;
                }
                for lvl in 0..tower.level {
                    let pred = if lvl < head_lvl {
                        preds[lvl]
                    } else {
                        &self.head[lvl] as *const S::Cell
                    };
                    // SAFETY: as above.
                    if tx.read(unsafe { &*pred })? == succs[0] {
                        tx.write(unsafe { &*pred }, unmark(nexts[lvl]))?;
                    } else {
                        return tx.restart();
                    }
                    tx.write(&tower.next[lvl], mark(nexts[lvl]))?;
                }
                unlinked = succs[0];
                Ok(true)
            })
            .expect("remove transaction is never cancelled");
        if removed && unlinked != 0 {
            let pin = thread.epoch().pin();
            // SAFETY: the committed transaction unlinked and marked the tower.
            unsafe { pin.defer_drop(Self::tower(unlinked)) };
        }
        removed
    }

    // ------------------------------------------------------------------
    // Full-mode lookup
    // ------------------------------------------------------------------

    fn contains_txn(&self, key: u64, thread: &mut S::Thread) -> bool {
        thread
            .atomic(|tx| {
                let head_lvl = decode_int(tx.read(&self.level_hint)?).clamp(1, MAX_LEVEL);
                let mut pred_cell: *const S::Cell = &self.head[head_lvl - 1];
                let mut found: Word = 0;
                for lvl in (0..head_lvl).rev() {
                    // SAFETY: see `insert_txn`.
                    let mut curr = unmark(tx.read(unsafe { &*pred_cell })?);
                    loop {
                        if curr == 0 {
                            break;
                        }
                        // SAFETY: as above.
                        let tower = unsafe { &*Self::tower(curr) };
                        if tower.key >= key {
                            if tower.key == key {
                                found = curr;
                            }
                            break;
                        }
                        let next = tx.read(&tower.next[lvl])?;
                        pred_cell = &tower.next[lvl];
                        curr = unmark(next);
                    }
                    if lvl > 0 {
                        // SAFETY: as above.
                        pred_cell = self.step_down(unsafe { &*pred_cell }, lvl);
                    }
                }
                if found == 0 {
                    return Ok(false);
                }
                // SAFETY: as above.
                let tower = unsafe { &*Self::tower(found) };
                Ok(!is_marked(tx.read(&tower.next[0])?))
            })
            .expect("contains transaction is never cancelled")
    }
}

impl<S: Stm> Drop for StmSkipList<S> {
    fn drop(&mut self) {
        // Exclusive access: free every remaining tower via level 0.
        let mut curr = S::peek(&self.head[0]);
        while unmark(curr) != 0 {
            // SAFETY: towers were allocated with `Box::into_raw`; during drop
            // nothing else references them.
            let tower = unsafe { Box::from_raw(Self::tower(curr)) };
            curr = S::peek(&tower.next[0]);
        }
    }
}

/// Geometric level distribution shared with the lock-free baseline so that
/// both skip lists have identical expected shapes.
fn lockfree_level() -> usize {
    use std::cell::Cell;
    thread_local! {
        static STATE: Cell<u64> = const { Cell::new(0x853c_49e6_748f_ea9b) };
    }
    STATE.with(|s| {
        let mut x = s.get();
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        s.set(x);
        let bits = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
        ((bits.trailing_ones() as usize) + 1).min(MAX_LEVEL)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectm::variants::{OrecFullG, OrecStm, TvarShortG, ValShort};
    use spectm::Config;
    use std::collections::BTreeSet;
    use std::sync::Arc;

    fn oracle_test<S: Stm + Clone>(stm: S, mode: ApiMode) {
        let list = StmSkipList::new(&stm, mode);
        let mut t = stm.register();
        let mut oracle = BTreeSet::new();
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..2_000 {
            let k = rng() % 200 + 1;
            match rng() % 3 {
                0 => assert_eq!(list.insert(k, &mut t), oracle.insert(k), "insert {k}"),
                1 => assert_eq!(list.remove(k, &mut t), oracle.remove(&k), "remove {k}"),
                _ => assert_eq!(
                    list.contains(k, &mut t),
                    oracle.contains(&k),
                    "contains {k}"
                ),
            }
        }
        assert_eq!(
            list.quiescent_snapshot(),
            oracle.into_iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn oracle_short_val() {
        oracle_test(ValShort::new(), ApiMode::Short);
    }

    #[test]
    fn oracle_short_tvar() {
        oracle_test(TvarShortG::new(), ApiMode::Short);
    }

    #[test]
    fn oracle_full_orec_global_and_local() {
        oracle_test(OrecFullG::new(), ApiMode::Full);
        oracle_test(OrecStm::with_config(Config::local()), ApiMode::Full);
    }

    #[test]
    fn oracle_fine_orec() {
        oracle_test(OrecFullG::new(), ApiMode::Fine);
    }

    #[test]
    fn oracle_full_val() {
        oracle_test(ValShort::new(), ApiMode::Full);
    }

    fn concurrent_disjoint<S: Stm + Clone>(stm: S, mode: ApiMode) {
        let stm = Arc::new(stm);
        let list = Arc::new(StmSkipList::new(&*stm, mode));
        const THREADS: u64 = 4;
        const RANGE: u64 = 250;
        let mut joins = Vec::new();
        for tid in 0..THREADS {
            let stm = Arc::clone(&stm);
            let list = Arc::clone(&list);
            joins.push(std::thread::spawn(move || {
                let mut t = stm.register();
                let base = 1 + tid * RANGE;
                for k in 0..RANGE {
                    assert!(list.insert(base + k, &mut t));
                }
                for k in (0..RANGE).step_by(2) {
                    assert!(list.remove(base + k, &mut t));
                }
                for k in 0..RANGE {
                    assert_eq!(list.contains(base + k, &mut t), k % 2 == 1);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(
            list.quiescent_snapshot().len(),
            (THREADS * RANGE / 2) as usize
        );
    }

    #[test]
    fn concurrent_disjoint_val_short() {
        concurrent_disjoint(ValShort::new(), ApiMode::Short);
    }

    #[test]
    fn concurrent_disjoint_tvar_short() {
        concurrent_disjoint(TvarShortG::new(), ApiMode::Short);
    }

    #[test]
    fn concurrent_disjoint_orec_full() {
        concurrent_disjoint(OrecFullG::new(), ApiMode::Full);
    }

    fn contended_churn<S: Stm + Clone>(stm: S, mode: ApiMode) {
        use std::sync::atomic::{AtomicI64, Ordering};
        let stm = Arc::new(stm);
        let list = Arc::new(StmSkipList::new(&*stm, mode));
        let balance: Arc<Vec<AtomicI64>> = Arc::new((0..48).map(|_| AtomicI64::new(0)).collect());
        let mut joins = Vec::new();
        for tid in 0..4u64 {
            let stm = Arc::clone(&stm);
            let list = Arc::clone(&list);
            let balance = Arc::clone(&balance);
            joins.push(std::thread::spawn(move || {
                let mut t = stm.register();
                let mut state = tid * 131 + 17;
                let mut rng = move || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                };
                for _ in 0..2_500 {
                    let k = rng() % 48 + 1;
                    if rng() % 2 == 0 {
                        if list.insert(k, &mut t) {
                            balance[(k - 1) as usize].fetch_add(1, Ordering::Relaxed);
                        }
                    } else if list.remove(k, &mut t) {
                        balance[(k - 1) as usize].fetch_sub(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let mut t = stm.register();
        for k in 1..=48u64 {
            let bal = balance[(k - 1) as usize].load(std::sync::atomic::Ordering::Relaxed);
            assert!(bal == 0 || bal == 1, "key {k} balance {bal}");
            assert_eq!(list.contains(k, &mut t), bal == 1, "key {k}");
        }
    }

    #[test]
    fn contended_churn_val_short() {
        contended_churn(ValShort::new(), ApiMode::Short);
    }

    #[test]
    fn contended_churn_tvar_short() {
        contended_churn(TvarShortG::new(), ApiMode::Short);
    }

    #[test]
    fn contended_churn_orec_full() {
        contended_churn(OrecFullG::new(), ApiMode::Full);
    }

    #[test]
    fn tall_towers_use_the_fallback_path() {
        // Insert enough keys that towers above the short cutoff certainly
        // appear, exercising the ordinary-transaction fallback.
        let stm = ValShort::new();
        let list = StmSkipList::new(&stm, ApiMode::Short);
        let mut t = stm.register();
        for k in 1..=800u64 {
            assert!(list.insert(k, &mut t));
        }
        for k in 1..=800u64 {
            assert!(list.contains(k, &mut t));
        }
        let snapshot = list.quiescent_snapshot();
        assert_eq!(snapshot.len(), 800);
        assert!(snapshot.windows(2).all(|w| w[0] < w[1]), "keys stay sorted");
        for k in (1..=800u64).step_by(3) {
            assert!(list.remove(k, &mut t));
        }
        for k in 1..=800u64 {
            assert_eq!(list.contains(k, &mut t), (k - 1) % 3 != 0);
        }
    }
}
