//! STM-based ordered skip list (the case study of Section 3), grown from an
//! integer set into an ordered `u64 -> u64` map.
//!
//! Towers store a key, a transactional value cell and one transactional
//! forward pointer per level; bit 1 of every forward pointer is the
//! "deleted" mark (bit 0 stays clear for the value-based layout's lock bit).
//! A removal marks the tower's own forward pointers *and* unlinks it from
//! every level in one atomic step, so a tower is either fully linked or
//! fully removed — this is precisely the simplification over the CAS-based
//! skip list that the paper advertises.
//!
//! Two API surfaces coexist on the same towers:
//!
//! * the original **set** API ([`StmSkipList::insert`] /
//!   [`StmSkipList::remove`] / [`StmSkipList::contains`]), used by the
//!   paper's microbenchmarks;
//! * a **map** API ([`StmSkipList::get`] / [`StmSkipList::put`] /
//!   [`StmSkipList::range`]) storing 63-bit values with the same
//!   [`spectm::encode_int`] convention as the hash structures.
//!
//! The `*_in` methods ([`StmSkipList::insert_in`], [`StmSkipList::remove_in`],
//! [`StmSkipList::collect_keys_in`], [`StmSkipList::collect_range_in`]) run
//! the same walks inside a caller-provided full transaction, which is what
//! lets the sharded KV store keep a per-shard ordered index transactionally
//! consistent with its hash shard and serve atomic range scans.
//!
//! The [`ApiMode`] selects how those atomic steps are expressed:
//!
//! * **Short** — towers of height 1 use a single-location CAS, towers of
//!   height 2 use a short read-write transaction, and taller towers (about
//!   25 % of inserts with p = ½) fall back to an ordinary transaction —
//!   exactly the split described in Section 3.
//! * **Full** — every insert/remove/search is one ordinary transaction.
//! * **Fine** — the same fine-grained steps as **Short**, but each step is an
//!   ordinary transaction (the `orec-full-g (fine)` line of Figure 6(a)).

use spectm::{
    decode_int, encode_int, is_marked, mark, unmark, FullTx, Stm, StmThread, TxResult, Word,
};

use crate::ApiMode;

/// Largest value storable in a tower (one bit of the word is reserved for
/// the value-based layout's lock bit).
pub const MAX_TOWER_VALUE: u64 = (1 << 63) - 1;

#[inline]
fn enc(value: u64) -> Word {
    assert!(value <= MAX_TOWER_VALUE, "value {value:#x} exceeds 63 bits");
    encode_int(value as usize)
}

#[inline]
fn dec(word: Word) -> u64 {
    decode_int(word) as u64
}

/// Maximum tower height (the paper sets it to 32).
pub const MAX_LEVEL: usize = 32;

/// Tallest tower that the Short mode handles with specialized transactions;
/// taller towers use ordinary transactions (Section 3 uses levels 1–2).
pub const SHORT_LEVEL_CUTOFF: usize = 2;

/// A skip-list tower.  The key and height are immutable after publication;
/// the value cell is accessed transactionally.
struct Tower<S: Stm> {
    key: u64,
    level: usize,
    value: S::Cell,
    next: Vec<S::Cell>,
}

/// Traversal window: predecessor cell and successor pointer per level.
struct Window<'a, S: Stm> {
    preds: Vec<&'a S::Cell>,
    succs: Vec<Word>,
    /// Number of levels the search actually traversed; predecessors at
    /// `top..` are just head cells.  Because a tower linked at level `L >= 2`
    /// can only have been created by a transaction that raised the height
    /// hint to at least `L + 1`, every level at or above `top` is guaranteed
    /// empty.
    top: usize,
}

/// Outcome of an insert-or-update attempt.
enum Upsert {
    /// The key was absent and has been inserted.
    Inserted,
    /// The key was present and `overwrite` was false; nothing changed.
    Exists,
    /// The key was present; the previous value was replaced.
    Updated(u64),
}

/// Reusable allocation slot for [`StmSkipList::insert_in`].
///
/// A full transaction's body may run several times (once per conflict
/// retry); the slot keeps the speculatively allocated tower alive across
/// retries so each logical insert allocates at most once.  After the
/// enclosing [`spectm::StmThread::atomic`] **commits an attempt in which
/// `insert_in` returned `true`**, the caller must call
/// [`TowerSlot::mark_published`]; otherwise dropping the slot frees the
/// never-published tower.
pub struct TowerSlot<S: Stm> {
    ptr: *mut Tower<S>,
    level: usize,
}

impl<S: Stm> TowerSlot<S> {
    /// Creates an empty slot.
    pub fn new() -> Self {
        Self {
            ptr: std::ptr::null_mut(),
            level: 0,
        }
    }

    /// Declares the slot's tower published: a transaction in which
    /// [`StmSkipList::insert_in`] returned `true` has committed, so the
    /// tower is now owned by the list.
    pub fn mark_published(&mut self) {
        self.ptr = std::ptr::null_mut();
    }
}

impl<S: Stm> Default for TowerSlot<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Stm> Drop for TowerSlot<S> {
    fn drop(&mut self) {
        if !self.ptr.is_null() {
            // SAFETY: per the contract above, a non-null pointer at drop time
            // means the tower was never published to the list.
            drop(unsafe { Box::from_raw(self.ptr) });
        }
    }
}

/// A tower unlinked by [`StmSkipList::remove_in`], awaiting epoch retirement.
///
/// After the enclosing transaction **commits**, call
/// [`RetiredTower::retire`] to hand the tower to the epoch collector.  If
/// the transaction aborted or was retried, simply drop the value (the tower
/// is still linked; dropping does nothing).
#[must_use = "call retire() after the transaction commits"]
pub struct RetiredTower<S: Stm> {
    ptr: *mut Tower<S>,
}

impl<S: Stm> RetiredTower<S> {
    /// Defers destruction of the unlinked tower through the thread's epoch
    /// collector.  Only call after the removing transaction committed.
    pub fn retire(self, thread: &mut S::Thread) {
        let pin = thread.epoch().pin();
        // SAFETY: the committed transaction unlinked and marked the tower,
        // so it is unreachable for new operations; pinned readers are
        // protected by the epoch.
        unsafe { pin.defer_drop(self.ptr) };
    }
}

/// An STM-based ordered skip list, usable as a set of `u64` keys or as an
/// ordered `u64 -> u64` map (values are 63-bit, see [`MAX_TOWER_VALUE`]).
///
/// # Examples
///
/// ```
/// use spectm::{Stm, variants::ValShort};
/// use spectm_ds::{ApiMode, StmSkipList};
///
/// let stm = ValShort::new();
/// let list = StmSkipList::new(&stm, ApiMode::Short);
/// let mut thread = stm.register();
/// // Set API.
/// assert!(list.insert(42, &mut thread));
/// assert!(list.contains(42, &mut thread));
/// assert!(list.remove(42, &mut thread));
/// // Map API: ordered, with range scans.
/// assert_eq!(list.put(3, 30, &mut thread), None);
/// assert_eq!(list.put(1, 10, &mut thread), None);
/// assert_eq!(list.put(3, 31, &mut thread), Some(30));
/// assert_eq!(list.get(3, &mut thread), Some(31));
/// assert_eq!(list.range(0, 10, &mut thread), vec![(1, 10), (3, 31)]);
/// ```
pub struct StmSkipList<S: Stm> {
    stm: S,
    head: Vec<S::Cell>,
    /// Encoded current height hint (the paper's `head.lvl`).
    level_hint: S::Cell,
    mode: ApiMode,
}

// SAFETY: raw tower pointers stored in cells are published by transactions,
// retired through epochs after being unlinked, and dereferenced only under an
// epoch pin (or inside a transaction, which pins for its duration).
unsafe impl<S: Stm> Send for StmSkipList<S> {}
// SAFETY: as above.
unsafe impl<S: Stm> Sync for StmSkipList<S> {}

impl<S: Stm> StmSkipList<S> {
    /// Creates an empty skip list driven through the given [`ApiMode`].
    pub fn new(stm: &S, mode: ApiMode) -> Self
    where
        S: Clone,
    {
        Self {
            stm: stm.clone(),
            head: (0..MAX_LEVEL).map(|_| stm.new_cell(0)).collect(),
            level_hint: stm.new_cell(encode_int(1)),
            mode,
        }
    }

    /// The API mode this instance drives.
    pub fn mode(&self) -> ApiMode {
        self.mode
    }

    #[inline]
    fn tower(ptr: Word) -> *mut Tower<S> {
        unmark(ptr) as *mut Tower<S>
    }

    fn alloc_tower(&self, key: u64, value: u64, level: usize) -> *mut Tower<S> {
        Box::into_raw(Box::new(Tower {
            key,
            level,
            value: self.stm.new_cell(enc(value)),
            next: (0..level).map(|_| self.stm.new_cell(0)).collect(),
        }))
    }

    /// Draws a tower height with the paper's geometric distribution.
    fn random_level() -> usize {
        lockfree_level()
    }

    /// Inserts `key` (set API; the value is set to 0); returns `false` if it
    /// was already present (whose value is then left untouched).
    pub fn insert(&self, key: u64, thread: &mut S::Thread) -> bool {
        matches!(self.upsert(key, 0, false, thread), Upsert::Inserted)
    }

    /// Stores `value` under `key` (map API), returning the previous value if
    /// the key was present.
    pub fn put(&self, key: u64, value: u64, thread: &mut S::Thread) -> Option<u64> {
        match self.upsert(key, value, true, thread) {
            Upsert::Inserted => None,
            Upsert::Updated(old) => Some(old),
            Upsert::Exists => unreachable!("overwriting upserts never report Exists"),
        }
    }

    fn upsert(&self, key: u64, value: u64, overwrite: bool, thread: &mut S::Thread) -> Upsert {
        match self.mode {
            ApiMode::Full => self.upsert_txn(key, value, overwrite, Self::random_level(), thread),
            ApiMode::Short | ApiMode::Fine => self.upsert_split(key, value, overwrite, thread),
        }
    }

    /// Removes `key`; returns `false` if it was not present.
    pub fn remove(&self, key: u64, thread: &mut S::Thread) -> bool {
        match self.mode {
            ApiMode::Full => self.remove_txn(key, thread),
            ApiMode::Short | ApiMode::Fine => self.remove_split(key, thread),
        }
    }

    /// Returns whether `key` is present.
    pub fn contains(&self, key: u64, thread: &mut S::Thread) -> bool {
        match self.mode {
            ApiMode::Full => self.contains_txn(key, thread),
            ApiMode::Short | ApiMode::Fine => self.contains_walk(key, thread),
        }
    }

    /// Returns the value stored under `key` (map API).
    pub fn get(&self, key: u64, thread: &mut S::Thread) -> Option<u64> {
        match self.mode {
            ApiMode::Full => thread
                .atomic(|tx| self.read_value_in(key, tx))
                .expect("get is never cancelled"),
            ApiMode::Short | ApiMode::Fine => self.get_walk(key, thread),
        }
    }

    /// Collects every `(key, value)` pair with `start <= key < end`, in key
    /// order, inside **one** full transaction — an atomically consistent
    /// range snapshot, serializable with all concurrent operations.
    pub fn range(&self, start: u64, end: u64, thread: &mut S::Thread) -> Vec<(u64, u64)> {
        thread
            .atomic(|tx| self.collect_range_in(start, end, usize::MAX, tx))
            .expect("range is never cancelled")
    }

    /// Collects every key currently present (non-transactional; only
    /// meaningful when no concurrent operations run).
    pub fn quiescent_snapshot(&self) -> Vec<u64> {
        self.quiescent_pairs().into_iter().map(|(k, _)| k).collect()
    }

    /// Collects every `(key, value)` pair currently present
    /// (non-transactional; only meaningful when no concurrent operations
    /// run).
    pub fn quiescent_pairs(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut curr = S::peek(&self.head[0]);
        while unmark(curr) != 0 {
            // SAFETY: quiescence is required by the contract.
            let tower = unsafe { &*Self::tower(curr) };
            let next = S::peek(&tower.next[0]);
            if !is_marked(next) {
                out.push((tower.key, dec(S::peek(&tower.value))));
            }
            curr = unmark(next);
        }
        out
    }

    // ------------------------------------------------------------------
    // Walk-based traversal (Short / Fine modes)
    // ------------------------------------------------------------------

    /// Reads one forward pointer, either with a single-location transaction
    /// (Short) or with a one-read ordinary transaction (Fine).
    #[inline]
    fn read_link(&self, cell: &S::Cell, thread: &mut S::Thread) -> Word {
        match self.mode {
            ApiMode::Fine => thread
                .atomic(|tx| tx.read(cell))
                .expect("read_link is never cancelled"),
            _ => thread.single_read(cell),
        }
    }

    /// The paper's `Skiplist::Search`: walks from the level hint down to
    /// level 0, recording the predecessor cell and successor pointer at every
    /// level.  The caller must hold an epoch pin.
    fn search<'a>(&'a self, key: u64, thread: &mut S::Thread) -> Window<'a, S> {
        // Traverse at least the levels covered by the short fast paths so the
        // window's low-level predecessors are always real, even before any
        // tall tower has raised the height hint.
        let top = decode_int(self.read_link(&self.level_hint, thread))
            .clamp(SHORT_LEVEL_CUTOFF, MAX_LEVEL);
        let mut preds: Vec<&S::Cell> = Vec::with_capacity(MAX_LEVEL);
        let mut succs: Vec<Word> = vec![0; MAX_LEVEL];
        preds.resize(MAX_LEVEL, &self.head[0]);
        for lvl in (0..MAX_LEVEL).rev() {
            preds[lvl] = &self.head[lvl];
        }
        let mut pred_cell: &S::Cell = &self.head[top - 1];
        for lvl in (0..top).rev() {
            // Step down: the predecessor found at the level above is also a
            // valid starting point at this level.
            let mut curr = unmark(self.read_link(pred_cell, thread));
            loop {
                if curr == 0 {
                    break;
                }
                // SAFETY: `curr` was read from a reachable link under the
                // caller's epoch pin.
                let tower = unsafe { &*Self::tower(curr) };
                if tower.key >= key {
                    break;
                }
                let next = self.read_link(&tower.next[lvl], thread);
                pred_cell = &tower.next[lvl];
                curr = unmark(next);
            }
            preds[lvl] = pred_cell;
            succs[lvl] = curr;
            if lvl > 0 {
                // Move the walking pointer to the same tower's next-lower
                // level; for the head this is just the lower head cell.
                pred_cell = self.step_down(preds[lvl], lvl);
            }
        }
        Window { preds, succs, top }
    }

    /// Given the predecessor cell at `lvl`, returns the same tower's cell at
    /// `lvl - 1` (head cells step down to head cells).
    fn step_down<'a>(&'a self, pred: &'a S::Cell, lvl: usize) -> &'a S::Cell {
        let head_cell = &self.head[lvl] as *const S::Cell;
        if std::ptr::eq(pred, head_cell) {
            &self.head[lvl - 1]
        } else {
            // `pred` is `&tower.next[lvl]`; recover the tower to index its
            // lower level.  The cells of one tower live in one `Vec`, so the
            // cell at `lvl - 1` sits one element earlier.
            // SAFETY: `pred` points into a live tower's `next` vector (it was
            // obtained under the caller's epoch pin), and `lvl >= 1`.
            unsafe {
                let base = (pred as *const S::Cell).sub(lvl);
                &*base.add(lvl - 1)
            }
        }
    }

    fn contains_walk(&self, key: u64, thread: &mut S::Thread) -> bool {
        let _pin = thread.epoch().pin();
        let w = self.search(key, thread);
        let curr = w.succs[0];
        if curr == 0 {
            return false;
        }
        // SAFETY: protected by the epoch pin above.
        let tower = unsafe { &*Self::tower(curr) };
        tower.key == key && !is_marked(self.read_link(&tower.next[0], thread))
    }

    /// Walk-based map lookup: liveness and value are observed together with
    /// a two-location read-only short transaction (Short mode) or one
    /// ordinary transaction over the same locations (Fine mode).
    fn get_walk(&self, key: u64, thread: &mut S::Thread) -> Option<u64> {
        let mut attempts = 0u32;
        loop {
            if attempts > 0 {
                thread.backoff().wait();
            }
            attempts += 1;
            let _pin = thread.epoch().pin();
            let w = self.search(key, thread);
            if w.succs[0] == 0 {
                return None;
            }
            // SAFETY: protected by the epoch pin above.
            let tower = unsafe { &*Self::tower(w.succs[0]) };
            if tower.key != key {
                return None;
            }
            if self.mode == ApiMode::Short {
                let next = thread.ro_read(0, &tower.next[0]);
                let value = thread.ro_read(1, &tower.value);
                if !thread.ro_is_valid(2) {
                    continue;
                }
                if is_marked(next) {
                    return None;
                }
                return Some(dec(value));
            }
            let read = thread
                .atomic(|tx| {
                    if is_marked(tx.read(&tower.next[0])?) {
                        return Ok(None);
                    }
                    Ok(Some(dec(tx.read(&tower.value)?)))
                })
                .expect("get_walk is never cancelled");
            return read;
        }
    }

    // ------------------------------------------------------------------
    // Insert
    // ------------------------------------------------------------------

    fn upsert_split(
        &self,
        key: u64,
        value: u64,
        overwrite: bool,
        thread: &mut S::Thread,
    ) -> Upsert {
        let level = Self::random_level();
        let mut new_tower: *mut Tower<S> = std::ptr::null_mut();
        let mut attempts = 0u32;
        loop {
            // Contention management between restarts breaks symmetric
            // conflict patterns (and matters when threads outnumber cores).
            if attempts > 0 {
                thread.backoff().wait();
            }
            attempts += 1;
            let pin = thread.epoch().pin();
            let w = self.search(key, thread);
            if w.succs[0] != 0 {
                // SAFETY: protected by the epoch pin.
                let tower = unsafe { &*Self::tower(w.succs[0]) };
                if tower.key == key {
                    if !overwrite {
                        if is_marked(self.read_link(&tower.next[0], thread)) {
                            // Deleted but still linked: wait for the remover.
                            drop(pin);
                            continue;
                        }
                        if !new_tower.is_null() {
                            // SAFETY: never published.
                            drop(unsafe { Box::from_raw(new_tower) });
                        }
                        return Upsert::Exists;
                    }
                    match self.update_value(tower, value, thread) {
                        // Updated in place.
                        Some(old) => {
                            if !new_tower.is_null() {
                                // SAFETY: never published.
                                drop(unsafe { Box::from_raw(new_tower) });
                            }
                            return Upsert::Updated(old);
                        }
                        // Deleted-but-linked or validation failure: retry
                        // (a fresh insert once the remover unlinks).
                        None => {
                            drop(pin);
                            continue;
                        }
                    }
                }
            }
            if new_tower.is_null() {
                new_tower = self.alloc_tower(key, value, level);
            }
            // SAFETY: still private to this thread.
            let tower = unsafe { &*new_tower };
            for lvl in 0..level {
                S::poke(&tower.next[lvl], w.succs[lvl]);
            }
            let published = if self.mode == ApiMode::Short {
                if level == 1 {
                    // The paper's AddLevelOne: one single-location CAS.
                    thread.single_cas(w.preds[0], w.succs[0], new_tower as Word) == w.succs[0]
                } else if level <= SHORT_LEVEL_CUTOFF {
                    self.insert_short_rw(&w, level, new_tower as Word, thread)
                } else {
                    self.insert_txn_linked(&w, level, new_tower as Word, key, thread)
                }
            } else {
                // Fine mode: every step is an ordinary transaction.
                self.insert_txn_linked(&w, level, new_tower as Word, key, thread)
            };
            if published {
                return Upsert::Inserted;
            }
            drop(pin);
        }
    }

    /// Overwrites a live tower's value: a two-location short read-write
    /// transaction over (liveness mark, value) in Short mode, the same two
    /// locations in one ordinary transaction in Fine mode.  Returns `None`
    /// if the tower is logically deleted or validation failed (retry).
    fn update_value(&self, tower: &Tower<S>, value: u64, thread: &mut S::Thread) -> Option<u64> {
        if self.mode == ApiMode::Short {
            let next = thread.rw_read(0, &tower.next[0]);
            if !thread.rw_is_valid(1) {
                return None;
            }
            if is_marked(next) {
                thread.rw_abort(1);
                return None;
            }
            let old = thread.rw_read(1, &tower.value);
            if !thread.rw_is_valid(2) {
                return None;
            }
            if thread.rw_commit(2, &[next, enc(value)]) {
                return Some(dec(old));
            }
            None
        } else {
            thread
                .atomic(|tx| {
                    if is_marked(tx.read(&tower.next[0])?) {
                        return Ok(None);
                    }
                    let old = tx.read(&tower.value)?;
                    tx.write(&tower.value, enc(value))?;
                    Ok(Some(dec(old)))
                })
                .expect("update_value is never cancelled")
        }
    }

    /// Links a tower of height ≤ [`SHORT_LEVEL_CUTOFF`] using one short
    /// read-write transaction over its predecessors.
    fn insert_short_rw(
        &self,
        w: &Window<'_, S>,
        level: usize,
        new_ptr: Word,
        thread: &mut S::Thread,
    ) -> bool {
        for lvl in 0..level {
            let observed = thread.rw_read(lvl, w.preds[lvl]);
            if !thread.rw_is_valid(lvl + 1) {
                return false;
            }
            if observed != w.succs[lvl] {
                thread.rw_abort(lvl + 1);
                return false;
            }
        }
        let values = vec![new_ptr; level];
        thread.rw_commit(level, &values)
    }

    /// Links a tower using one ordinary transaction (used for tall towers in
    /// Short mode, and for every tower in Full/Fine modes once the window is
    /// known).  Mirrors the paper's `AddLevelN`.
    fn insert_txn_linked(
        &self,
        w: &Window<'_, S>,
        level: usize,
        new_ptr: Word,
        _key: u64,
        thread: &mut S::Thread,
    ) -> bool {
        // A `None` outcome means the transaction was cancelled (the paper's
        // `STM_ABORT_TX`): nothing was published, so the caller retries with
        // a fresh search.  Returning a committed `false` here would be wrong:
        // writes to lower levels buffered before the mismatch was discovered
        // would still take effect, publishing a half-linked tower.
        thread
            .atomic(|tx| {
                // Raise the list's height hint if needed.
                let head_lvl = decode_int(tx.read(&self.level_hint)?);
                if level > head_lvl {
                    tx.write(&self.level_hint, encode_int(level))?;
                }
                for lvl in 0..level {
                    // Levels the search did not traverse are guaranteed empty
                    // (see `Window::top`), so the new tower hangs off the
                    // head there; traversed levels must still match the
                    // window the search computed.
                    let above_window = lvl >= w.top;
                    let pred = if above_window {
                        &self.head[lvl]
                    } else {
                        w.preds[lvl]
                    };
                    let observed = tx.read(pred)?;
                    let expected = if above_window { 0 } else { w.succs[lvl] };
                    if observed != expected || is_marked(observed) {
                        // The neighbourhood changed since the search.
                        return tx.cancel();
                    }
                    // Retarget the new tower's forward pointer in case this
                    // level hangs off the head.
                    // SAFETY: the new tower is still private.
                    let tower = unsafe { &*Self::tower(new_ptr) };
                    S::poke(&tower.next[lvl], observed);
                    tx.write(pred, new_ptr)?;
                }
                Ok(())
            })
            .is_some()
    }

    /// Body of a full-mode insert-or-update: search and link (or rewrite the
    /// value in place) inside the caller's transaction.  `new_tower` is the
    /// lazily filled allocation slot, reused across conflict retries.
    fn upsert_body(
        &self,
        key: u64,
        value: u64,
        overwrite: bool,
        level: usize,
        new_tower: &mut *mut Tower<S>,
        tx: &mut FullTx<'_, S::Thread>,
    ) -> TxResult<Upsert> {
        let head_lvl = decode_int(tx.read(&self.level_hint)?).clamp(1, MAX_LEVEL);
        let mut preds: Vec<*const S::Cell> = Vec::with_capacity(MAX_LEVEL);
        let mut succs: Vec<Word> = vec![0; MAX_LEVEL];
        for lvl in 0..MAX_LEVEL {
            preds.push(&self.head[lvl]);
        }
        let mut pred_cell: *const S::Cell = &self.head[head_lvl - 1];
        for lvl in (0..head_lvl).rev() {
            // SAFETY: predecessor cells are either head cells or cells
            // of towers read transactionally within this attempt; the
            // transaction's epoch pin keeps them alive.
            let mut curr = unmark(tx.read(unsafe { &*pred_cell })?);
            loop {
                if curr == 0 {
                    break;
                }
                // SAFETY: as above.
                let tower = unsafe { &*Self::tower(curr) };
                if tower.key >= key {
                    break;
                }
                let next = tx.read(&tower.next[lvl])?;
                pred_cell = &tower.next[lvl];
                curr = unmark(next);
            }
            preds[lvl] = pred_cell;
            succs[lvl] = curr;
            if lvl > 0 {
                // SAFETY: as above.
                pred_cell = self.step_down(unsafe { &*pred_cell }, lvl);
            }
        }
        if succs[0] != 0 {
            // SAFETY: as above.
            let tower = unsafe { &*Self::tower(succs[0]) };
            if tower.key == key && !is_marked(tx.read(&tower.next[0])?) {
                if !overwrite {
                    return Ok(Upsert::Exists);
                }
                let old = tx.read(&tower.value)?;
                tx.write(&tower.value, enc(value))?;
                return Ok(Upsert::Updated(dec(old)));
            }
            if tower.key == key {
                // Deleted but still linked: wait for the remover to unlink.
                return tx.restart();
            }
        }
        if level > head_lvl {
            tx.write(&self.level_hint, encode_int(level))?;
        }
        if new_tower.is_null() {
            *new_tower = self.alloc_tower(key, value, level);
        }
        // SAFETY: still private to this thread.
        let tower = unsafe { &**new_tower };
        S::poke(&tower.value, enc(value));
        for lvl in 0..level {
            let (pred, succ) = if lvl < head_lvl {
                (preds[lvl], succs[lvl])
            } else {
                (&self.head[lvl] as *const S::Cell, tx.read(&self.head[lvl])?)
            };
            S::poke(&tower.next[lvl], succ);
            // SAFETY: as above.
            tx.write(unsafe { &*pred }, *new_tower as Word)?;
        }
        Ok(Upsert::Inserted)
    }

    /// Full-mode insert-or-update: search and link inside a single ordinary
    /// transaction.
    fn upsert_txn(
        &self,
        key: u64,
        value: u64,
        overwrite: bool,
        level: usize,
        thread: &mut S::Thread,
    ) -> Upsert {
        let mut new_tower: *mut Tower<S> = std::ptr::null_mut();
        let outcome = thread
            .atomic(|tx| self.upsert_body(key, value, overwrite, level, &mut new_tower, tx))
            .expect("upsert transaction is never cancelled");
        if !matches!(outcome, Upsert::Inserted) && !new_tower.is_null() {
            // SAFETY: never published.
            drop(unsafe { Box::from_raw(new_tower) });
        }
        outcome
    }

    /// Inserts `(key, value)` inside an already-running full transaction,
    /// regardless of this instance's [`ApiMode`].  Returns `false` (writing
    /// nothing) if the key is already present.
    ///
    /// `slot` carries the speculative tower allocation across conflict
    /// retries of the enclosing transaction; see [`TowerSlot`] for the
    /// publication contract.
    pub fn insert_in(
        &self,
        key: u64,
        value: u64,
        slot: &mut TowerSlot<S>,
        tx: &mut FullTx<'_, S::Thread>,
    ) -> TxResult<bool> {
        if slot.ptr.is_null() {
            slot.level = Self::random_level();
            slot.ptr = self.alloc_tower(key, value, slot.level);
        }
        // SAFETY: the slot's tower is still private to this thread.
        debug_assert_eq!(unsafe { (*slot.ptr).key }, key, "one TowerSlot per key");
        let mut ptr = slot.ptr;
        let outcome = self.upsert_body(key, value, false, slot.level, &mut ptr, tx)?;
        Ok(matches!(outcome, Upsert::Inserted))
    }

    /// Reads the value under `key` inside an already-running full
    /// transaction, regardless of this instance's [`ApiMode`].
    pub fn read_value_in(&self, key: u64, tx: &mut FullTx<'_, S::Thread>) -> TxResult<Option<u64>> {
        let mut out = None;
        self.walk_range_in(key, key, 1, tx, |_, value_cell, tx| {
            out = Some(dec(tx.read(value_cell)?));
            Ok(())
        })?;
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Remove
    // ------------------------------------------------------------------

    fn remove_split(&self, key: u64, thread: &mut S::Thread) -> bool {
        let mut attempts = 0u32;
        loop {
            if attempts > 0 {
                thread.backoff().wait();
            }
            attempts += 1;
            let pin = thread.epoch().pin();
            let w = self.search(key, thread);
            if w.succs[0] == 0 {
                return false;
            }
            let target = w.succs[0];
            // SAFETY: protected by the epoch pin.
            let tower = unsafe { &*Self::tower(target) };
            if tower.key != key {
                return false;
            }
            let level = tower.level;
            #[derive(PartialEq)]
            enum Outcome {
                Removed,
                AlreadyGone,
                Retry,
            }
            let outcome = if self.mode == ApiMode::Short && level <= SHORT_LEVEL_CUTOFF {
                self.remove_short_rw(&w, target, level, thread)
            } else {
                self.remove_txn_unlink(&w, target, level, thread)
            };
            let outcome = match outcome {
                0 => Outcome::Removed,
                1 => Outcome::AlreadyGone,
                _ => Outcome::Retry,
            };
            match outcome {
                Outcome::Removed => {
                    // SAFETY: unlinked and marked by the committed step above;
                    // unreachable for new operations.
                    unsafe { pin.defer_drop(Self::tower(target)) };
                    return true;
                }
                Outcome::AlreadyGone => return false,
                Outcome::Retry => {
                    drop(pin);
                    continue;
                }
            }
        }
    }

    /// Removes a tower of height ≤ [`SHORT_LEVEL_CUTOFF`] with one short
    /// read-write transaction covering the predecessors and the tower's own
    /// forward pointers.  Returns 0 = removed, 1 = already deleted, 2 = retry.
    fn remove_short_rw(
        &self,
        w: &Window<'_, S>,
        target: Word,
        level: usize,
        thread: &mut S::Thread,
    ) -> u8 {
        // SAFETY: the caller holds an epoch pin and verified the key.
        let tower = unsafe { &*Self::tower(target) };
        let mut values = [0 as Word; 2 * SHORT_LEVEL_CUTOFF];
        // First the predecessors (unlink), then the tower's own pointers
        // (mark).  All locations are distinct.
        for lvl in 0..level {
            let observed = thread.rw_read(lvl, w.preds[lvl]);
            if !thread.rw_is_valid(lvl + 1) {
                return 2;
            }
            if observed != target {
                thread.rw_abort(lvl + 1);
                return 2;
            }
        }
        for lvl in 0..level {
            let own = thread.rw_read(level + lvl, &tower.next[lvl]);
            if !thread.rw_is_valid(level + lvl + 1) {
                return 2;
            }
            if is_marked(own) {
                thread.rw_abort(level + lvl + 1);
                return 1;
            }
            values[lvl] = unmark(own);
            values[level + lvl] = mark(own);
        }
        if thread.rw_commit(2 * level, &values[..2 * level]) {
            0
        } else {
            2
        }
    }

    /// Removes a tower with one ordinary transaction (tall towers in Short
    /// mode; every tower in Full/Fine modes).  Returns 0/1/2 as above.
    fn remove_txn_unlink(
        &self,
        w: &Window<'_, S>,
        target: Word,
        level: usize,
        thread: &mut S::Thread,
    ) -> u8 {
        // SAFETY: the caller holds an epoch pin and verified the key.
        let tower = unsafe { &*Self::tower(target) };
        thread
            .atomic(|tx| {
                for lvl in 0..level {
                    if tx.read(w.preds[lvl])? != target {
                        return Ok(2);
                    }
                }
                let mut nexts = [0 as Word; MAX_LEVEL];
                for (lvl, next) in nexts.iter_mut().enumerate().take(level) {
                    let own = tx.read(&tower.next[lvl])?;
                    if is_marked(own) {
                        return Ok(1);
                    }
                    *next = own;
                }
                for (lvl, &next) in nexts.iter().enumerate().take(level) {
                    tx.write(w.preds[lvl], unmark(next))?;
                    tx.write(&tower.next[lvl], mark(next))?;
                }
                Ok(0)
            })
            .expect("remove transaction is never cancelled")
    }

    /// Body of a full-mode remove: search and unlink inside the caller's
    /// transaction.  Returns the unlinked tower's word (0 if the key was
    /// absent or already deleted).
    fn remove_body(&self, key: u64, tx: &mut FullTx<'_, S::Thread>) -> TxResult<Word> {
        let head_lvl = decode_int(tx.read(&self.level_hint)?).clamp(1, MAX_LEVEL);
        let mut preds: Vec<*const S::Cell> = Vec::with_capacity(MAX_LEVEL);
        for lvl in 0..MAX_LEVEL {
            preds.push(&self.head[lvl]);
        }
        let mut succs: Vec<Word> = vec![0; MAX_LEVEL];
        let mut pred_cell: *const S::Cell = &self.head[head_lvl - 1];
        for lvl in (0..head_lvl).rev() {
            // SAFETY: see `upsert_body`.
            let mut curr = unmark(tx.read(unsafe { &*pred_cell })?);
            loop {
                if curr == 0 {
                    break;
                }
                // SAFETY: as above.
                let tower = unsafe { &*Self::tower(curr) };
                if tower.key >= key {
                    break;
                }
                let next = tx.read(&tower.next[lvl])?;
                pred_cell = &tower.next[lvl];
                curr = unmark(next);
            }
            preds[lvl] = pred_cell;
            succs[lvl] = curr;
            if lvl > 0 {
                // SAFETY: as above.
                pred_cell = self.step_down(unsafe { &*pred_cell }, lvl);
            }
        }
        if succs[0] == 0 {
            return Ok(0);
        }
        // SAFETY: as above.
        let tower = unsafe { &*Self::tower(succs[0]) };
        if tower.key != key {
            return Ok(0);
        }
        let mut nexts = [0 as Word; MAX_LEVEL];
        for (lvl, next) in nexts.iter_mut().enumerate().take(tower.level) {
            let own = tx.read(&tower.next[lvl])?;
            if is_marked(own) {
                return Ok(0);
            }
            *next = own;
        }
        for lvl in 0..tower.level {
            let pred = if lvl < head_lvl {
                preds[lvl]
            } else {
                &self.head[lvl] as *const S::Cell
            };
            // SAFETY: as above.
            if tx.read(unsafe { &*pred })? == succs[0] {
                // SAFETY: as above — the same pred cell just read.
                tx.write(unsafe { &*pred }, unmark(nexts[lvl]))?;
            } else {
                return tx.restart();
            }
            tx.write(&tower.next[lvl], mark(nexts[lvl]))?;
        }
        Ok(succs[0])
    }

    /// Full-mode remove: search and unlink inside one ordinary transaction.
    fn remove_txn(&self, key: u64, thread: &mut S::Thread) -> bool {
        let unlinked = thread
            .atomic(|tx| self.remove_body(key, tx))
            .expect("remove transaction is never cancelled");
        if unlinked != 0 {
            let pin = thread.epoch().pin();
            // SAFETY: the committed transaction unlinked and marked the tower.
            unsafe { pin.defer_drop(Self::tower(unlinked)) };
        }
        unlinked != 0
    }

    /// Removes `key` inside an already-running full transaction, regardless
    /// of this instance's [`ApiMode`].  Returns the unlinked tower (to be
    /// retired **after** the transaction commits; see [`RetiredTower`]) or
    /// `None` if the key was absent.
    pub fn remove_in(
        &self,
        key: u64,
        tx: &mut FullTx<'_, S::Thread>,
    ) -> TxResult<Option<RetiredTower<S>>> {
        let unlinked = self.remove_body(key, tx)?;
        if unlinked == 0 {
            return Ok(None);
        }
        Ok(Some(RetiredTower {
            ptr: Self::tower(unlinked),
        }))
    }

    // ------------------------------------------------------------------
    // Full-mode lookup
    // ------------------------------------------------------------------

    fn contains_txn(&self, key: u64, thread: &mut S::Thread) -> bool {
        thread
            .atomic(|tx| {
                let head_lvl = decode_int(tx.read(&self.level_hint)?).clamp(1, MAX_LEVEL);
                let mut pred_cell: *const S::Cell = &self.head[head_lvl - 1];
                let mut found: Word = 0;
                for lvl in (0..head_lvl).rev() {
                    // SAFETY: see `insert_txn`.
                    let mut curr = unmark(tx.read(unsafe { &*pred_cell })?);
                    loop {
                        if curr == 0 {
                            break;
                        }
                        // SAFETY: as above.
                        let tower = unsafe { &*Self::tower(curr) };
                        if tower.key >= key {
                            if tower.key == key {
                                found = curr;
                            }
                            break;
                        }
                        let next = tx.read(&tower.next[lvl])?;
                        pred_cell = &tower.next[lvl];
                        curr = unmark(next);
                    }
                    if lvl > 0 {
                        // SAFETY: as above.
                        pred_cell = self.step_down(unsafe { &*pred_cell }, lvl);
                    }
                }
                if found == 0 {
                    return Ok(false);
                }
                // SAFETY: as above.
                let tower = unsafe { &*Self::tower(found) };
                Ok(!is_marked(tx.read(&tower.next[0])?))
            })
            .expect("contains transaction is never cancelled")
    }

    // ------------------------------------------------------------------
    // Range scans (inside a caller-provided full transaction)
    // ------------------------------------------------------------------

    /// Walks the live towers with `start <= key <= last` in key order (at
    /// most `limit` of them), invoking `visit(key, value_cell, tx)` for
    /// each.  The descent to the start position and every level-0 link on
    /// the way enter the transaction's read set, so the visited range is an
    /// atomically consistent snapshot when the transaction commits.
    fn walk_range_in<F>(
        &self,
        start: u64,
        last: u64,
        limit: usize,
        tx: &mut FullTx<'_, S::Thread>,
        mut visit: F,
    ) -> TxResult<()>
    where
        F: FnMut(u64, &S::Cell, &mut FullTx<'_, S::Thread>) -> TxResult<()>,
    {
        if start > last || limit == 0 {
            return Ok(());
        }
        let head_lvl = decode_int(tx.read(&self.level_hint)?).clamp(1, MAX_LEVEL);
        let mut pred_cell: *const S::Cell = &self.head[head_lvl - 1];
        for lvl in (0..head_lvl).rev() {
            // SAFETY: see `upsert_body`.
            let mut curr = unmark(tx.read(unsafe { &*pred_cell })?);
            loop {
                if curr == 0 {
                    break;
                }
                // SAFETY: as above.
                let tower = unsafe { &*Self::tower(curr) };
                if tower.key >= start {
                    break;
                }
                let next = tx.read(&tower.next[lvl])?;
                pred_cell = &tower.next[lvl];
                curr = unmark(next);
            }
            if lvl > 0 {
                // SAFETY: as above.
                pred_cell = self.step_down(unsafe { &*pred_cell }, lvl);
            }
        }
        // `pred_cell` now points at the last level-0 link before `start`.
        // SAFETY: as above.
        let mut curr = unmark(tx.read(unsafe { &*pred_cell })?);
        let mut visited = 0usize;
        while curr != 0 && visited < limit {
            // SAFETY: as above.
            let tower = unsafe { &*Self::tower(curr) };
            if tower.key > last {
                break;
            }
            debug_assert!(tower.key >= start, "descent overshot the start key");
            let next = tx.read(&tower.next[0])?;
            if !is_marked(next) {
                visit(tower.key, &tower.value, tx)?;
                visited += 1;
            }
            curr = unmark(next);
        }
        Ok(())
    }

    /// Collects up to `limit` live keys with `start <= key < end`, in key
    /// order, inside an already-running full transaction.
    pub fn collect_keys_in(
        &self,
        start: u64,
        end: u64,
        limit: usize,
        tx: &mut FullTx<'_, S::Thread>,
    ) -> TxResult<Vec<u64>> {
        let Some(last) = end.checked_sub(1) else {
            return Ok(Vec::new());
        };
        let mut out = Vec::new();
        self.walk_range_in(start, last, limit, tx, |key, _, _| {
            out.push(key);
            Ok(())
        })?;
        Ok(out)
    }

    /// Collects up to `limit` live keys with `key >= start` (the whole tail
    /// of the key space, including `u64::MAX`), in key order, inside an
    /// already-running full transaction.
    pub fn collect_tail_keys_in(
        &self,
        start: u64,
        limit: usize,
        tx: &mut FullTx<'_, S::Thread>,
    ) -> TxResult<Vec<u64>> {
        let mut out = Vec::new();
        self.walk_range_in(start, u64::MAX, limit, tx, |key, _, _| {
            out.push(key);
            Ok(())
        })?;
        Ok(out)
    }

    /// Collects up to `limit` live `(key, value)` pairs with
    /// `start <= key < end`, in key order, inside an already-running full
    /// transaction.
    pub fn collect_range_in(
        &self,
        start: u64,
        end: u64,
        limit: usize,
        tx: &mut FullTx<'_, S::Thread>,
    ) -> TxResult<Vec<(u64, u64)>> {
        let Some(last) = end.checked_sub(1) else {
            return Ok(Vec::new());
        };
        let mut out = Vec::new();
        self.walk_range_in(start, last, limit, tx, |key, value_cell, tx| {
            out.push((key, dec(tx.read(value_cell)?)));
            Ok(())
        })?;
        Ok(out)
    }
}

impl<S: Stm> Drop for StmSkipList<S> {
    fn drop(&mut self) {
        // Exclusive access: free every remaining tower via level 0.
        let mut curr = S::peek(&self.head[0]);
        while unmark(curr) != 0 {
            // SAFETY: towers were allocated with `Box::into_raw`; during drop
            // nothing else references them.
            let tower = unsafe { Box::from_raw(Self::tower(curr)) };
            curr = S::peek(&tower.next[0]);
        }
    }
}

/// Geometric level distribution shared with the lock-free baseline so that
/// both skip lists have identical expected shapes.
fn lockfree_level() -> usize {
    use std::cell::Cell;
    thread_local! {
        static STATE: Cell<u64> = const { Cell::new(0x853c_49e6_748f_ea9b) };
    }
    STATE.with(|s| {
        let mut x = s.get();
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        s.set(x);
        let bits = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
        ((bits.trailing_ones() as usize) + 1).min(MAX_LEVEL)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectm::variants::{OrecFullG, OrecStm, TvarShortG, ValShort};
    use spectm::Config;
    use std::collections::BTreeSet;
    use std::sync::Arc;

    fn oracle_test<S: Stm + Clone>(stm: S, mode: ApiMode) {
        let list = StmSkipList::new(&stm, mode);
        let mut t = stm.register();
        let mut oracle = BTreeSet::new();
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..2_000 {
            let k = rng() % 200 + 1;
            match rng() % 3 {
                0 => assert_eq!(list.insert(k, &mut t), oracle.insert(k), "insert {k}"),
                1 => assert_eq!(list.remove(k, &mut t), oracle.remove(&k), "remove {k}"),
                _ => assert_eq!(
                    list.contains(k, &mut t),
                    oracle.contains(&k),
                    "contains {k}"
                ),
            }
        }
        assert_eq!(
            list.quiescent_snapshot(),
            oracle.into_iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn oracle_short_val() {
        oracle_test(ValShort::new(), ApiMode::Short);
    }

    #[test]
    fn oracle_short_tvar() {
        oracle_test(TvarShortG::new(), ApiMode::Short);
    }

    #[test]
    fn oracle_full_orec_global_and_local() {
        oracle_test(OrecFullG::new(), ApiMode::Full);
        oracle_test(OrecStm::with_config(Config::local()), ApiMode::Full);
    }

    #[test]
    fn oracle_fine_orec() {
        oracle_test(OrecFullG::new(), ApiMode::Fine);
    }

    #[test]
    fn oracle_full_val() {
        oracle_test(ValShort::new(), ApiMode::Full);
    }

    fn concurrent_disjoint<S: Stm + Clone>(stm: S, mode: ApiMode) {
        let stm = Arc::new(stm);
        let list = Arc::new(StmSkipList::new(&*stm, mode));
        const THREADS: u64 = 4;
        const RANGE: u64 = 250;
        let mut joins = Vec::new();
        for tid in 0..THREADS {
            let stm = Arc::clone(&stm);
            let list = Arc::clone(&list);
            joins.push(std::thread::spawn(move || {
                let mut t = stm.register();
                let base = 1 + tid * RANGE;
                for k in 0..RANGE {
                    assert!(list.insert(base + k, &mut t));
                }
                for k in (0..RANGE).step_by(2) {
                    assert!(list.remove(base + k, &mut t));
                }
                for k in 0..RANGE {
                    assert_eq!(list.contains(base + k, &mut t), k % 2 == 1);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(
            list.quiescent_snapshot().len(),
            (THREADS * RANGE / 2) as usize
        );
    }

    #[test]
    fn concurrent_disjoint_val_short() {
        concurrent_disjoint(ValShort::new(), ApiMode::Short);
    }

    #[test]
    fn concurrent_disjoint_tvar_short() {
        concurrent_disjoint(TvarShortG::new(), ApiMode::Short);
    }

    #[test]
    fn concurrent_disjoint_orec_full() {
        concurrent_disjoint(OrecFullG::new(), ApiMode::Full);
    }

    fn contended_churn<S: Stm + Clone>(stm: S, mode: ApiMode) {
        use std::sync::atomic::{AtomicI64, Ordering};
        let stm = Arc::new(stm);
        let list = Arc::new(StmSkipList::new(&*stm, mode));
        let balance: Arc<Vec<AtomicI64>> = Arc::new((0..48).map(|_| AtomicI64::new(0)).collect());
        let mut joins = Vec::new();
        for tid in 0..4u64 {
            let stm = Arc::clone(&stm);
            let list = Arc::clone(&list);
            let balance = Arc::clone(&balance);
            joins.push(std::thread::spawn(move || {
                let mut t = stm.register();
                let mut state = tid * 131 + 17;
                let mut rng = move || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                };
                for _ in 0..2_500 {
                    let k = rng() % 48 + 1;
                    if rng() % 2 == 0 {
                        if list.insert(k, &mut t) {
                            // ORDERING: test oracle counter, read after join.
                            balance[(k - 1) as usize].fetch_add(1, Ordering::Relaxed);
                        }
                    } else if list.remove(k, &mut t) {
                        // ORDERING: test oracle counter, read after join.
                        balance[(k - 1) as usize].fetch_sub(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let mut t = stm.register();
        for k in 1..=48u64 {
            // ORDERING: read after all workers joined; join synchronizes.
            let bal = balance[(k - 1) as usize].load(std::sync::atomic::Ordering::Relaxed);
            assert!(bal == 0 || bal == 1, "key {k} balance {bal}");
            assert_eq!(list.contains(k, &mut t), bal == 1, "key {k}");
        }
    }

    #[test]
    fn contended_churn_val_short() {
        contended_churn(ValShort::new(), ApiMode::Short);
    }

    #[test]
    fn contended_churn_tvar_short() {
        contended_churn(TvarShortG::new(), ApiMode::Short);
    }

    #[test]
    fn contended_churn_orec_full() {
        contended_churn(OrecFullG::new(), ApiMode::Full);
    }

    fn map_oracle_test<S: Stm + Clone>(stm: S, mode: ApiMode) {
        use std::collections::BTreeMap;
        let list = StmSkipList::new(&stm, mode);
        let mut t = stm.register();
        let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
        let mut state = 0xDEAD_BEEF_1234_5678u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..2_000 {
            let k = rng() % 128 + 1;
            let v = rng() >> 2;
            match rng() % 5 {
                0 | 1 => assert_eq!(list.put(k, v, &mut t), oracle.insert(k, v), "put {k}"),
                2 => assert_eq!(list.remove(k, &mut t), oracle.remove(&k).is_some()),
                3 => assert_eq!(list.get(k, &mut t), oracle.get(&k).copied(), "get {k}"),
                _ => {
                    let lo = rng() % 128;
                    let hi = lo + rng() % 32;
                    let expect: Vec<(u64, u64)> =
                        oracle.range(lo..hi).map(|(&k, &v)| (k, v)).collect();
                    assert_eq!(list.range(lo, hi, &mut t), expect, "range {lo}..{hi}");
                }
            }
        }
        assert_eq!(
            list.quiescent_pairs(),
            oracle.into_iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn map_oracle_short_val() {
        map_oracle_test(ValShort::new(), ApiMode::Short);
    }

    #[test]
    fn map_oracle_short_tvar() {
        map_oracle_test(TvarShortG::new(), ApiMode::Short);
    }

    #[test]
    fn map_oracle_full_orec() {
        map_oracle_test(OrecFullG::new(), ApiMode::Full);
    }

    #[test]
    fn map_oracle_fine_orec() {
        map_oracle_test(OrecFullG::new(), ApiMode::Fine);
    }

    #[test]
    fn set_insert_does_not_clobber_values() {
        let stm = ValShort::new();
        let list = StmSkipList::new(&stm, ApiMode::Short);
        let mut t = stm.register();
        assert_eq!(list.put(7, 70, &mut t), None);
        assert!(!list.insert(7, &mut t), "set insert sees the key");
        assert_eq!(list.get(7, &mut t), Some(70), "value survives set insert");
    }

    #[test]
    fn in_tx_helpers_compose_with_a_full_transaction() {
        let stm = ValShort::new();
        let list = StmSkipList::new(&stm, ApiMode::Short);
        let mut t = stm.register();
        list.put(2, 20, &mut t);
        list.put(4, 40, &mut t);
        // Insert 3 and remove 4 in one transaction, observing the range
        // before and after.
        let mut slot = TowerSlot::new();
        let mut retired = None;
        let (before, after) = t
            .atomic(|tx| {
                retired = None;
                let before = list.collect_range_in(0, 10, usize::MAX, tx)?;
                let inserted = list.insert_in(3, 30, &mut slot, tx)?;
                assert!(inserted);
                retired = list.remove_in(4, tx)?;
                let after = list.collect_range_in(0, 10, usize::MAX, tx)?;
                Ok((before, after))
            })
            .unwrap();
        slot.mark_published();
        retired.expect("key 4 was present").retire(&mut t);
        assert_eq!(before, vec![(2, 20), (4, 40)]);
        assert_eq!(after, vec![(2, 20), (3, 30)]);
        assert_eq!(list.quiescent_pairs(), vec![(2, 20), (3, 30)]);
        assert_eq!(t.atomic(|tx| list.read_value_in(3, tx)).unwrap(), Some(30));
    }

    #[test]
    fn range_respects_limits_and_bounds() {
        let stm = ValShort::new();
        let list = StmSkipList::new(&stm, ApiMode::Short);
        let mut t = stm.register();
        for k in (0..100u64).step_by(2) {
            list.put(k, k * 10, &mut t);
        }
        let keys = t.atomic(|tx| list.collect_keys_in(10, 30, 5, tx)).unwrap();
        assert_eq!(keys, vec![10, 12, 14, 16, 18]);
        let all = t
            .atomic(|tx| list.collect_keys_in(90, u64::MAX, usize::MAX, tx))
            .unwrap();
        assert_eq!(all, vec![90, 92, 94, 96, 98]);
        assert!(list.range(5, 5, &mut t).is_empty());
    }

    #[test]
    fn tall_towers_use_the_fallback_path() {
        // Insert enough keys that towers above the short cutoff certainly
        // appear, exercising the ordinary-transaction fallback.
        let stm = ValShort::new();
        let list = StmSkipList::new(&stm, ApiMode::Short);
        let mut t = stm.register();
        for k in 1..=800u64 {
            assert!(list.insert(k, &mut t));
        }
        for k in 1..=800u64 {
            assert!(list.contains(k, &mut t));
        }
        let snapshot = list.quiescent_snapshot();
        assert_eq!(snapshot.len(), 800);
        assert!(snapshot.windows(2).all(|w| w[0] < w[1]), "keys stay sorted");
        for k in (1..=800u64).step_by(3) {
            assert!(list.remove(k, &mut t));
        }
        for k in 1..=800u64 {
            assert_eq!(list.contains(k, &mut t), (k - 1) % 3 != 0);
        }
    }
}
