//! Double-compare-single-swap built from a combined RO/RW short transaction.
//!
//! This is the worked example of Section 2.2: check that two locations hold
//! expected values and, if they do, atomically install a new value in the
//! first one.  It demonstrates the `Tx_RO_*` / `Tx_Upgrade_RO_x_To_RW_y` /
//! `Tx_RO_x_RW_y_Commit` part of the API.

use spectm::{Stm, StmThread, Word};

/// Atomically performs: `if *a1 == o1 && *a2 == o2 { *a1 = n1; true } else { false }`.
///
/// # Examples
///
/// ```
/// use spectm::{Stm, variants::ValShort, encode_int};
/// use spectm_ds::dcss;
///
/// let stm = ValShort::new();
/// let a1 = stm.new_cell(encode_int(1));
/// let a2 = stm.new_cell(encode_int(2));
/// let mut t = stm.register();
/// assert!(dcss::<ValShort>(&a1, &a2, encode_int(1), encode_int(2), encode_int(9), &mut t));
/// assert!(!dcss::<ValShort>(&a1, &a2, encode_int(1), encode_int(2), encode_int(7), &mut t));
/// assert_eq!(ValShort::peek(&a1), encode_int(9));
/// ```
pub fn dcss<S: Stm>(
    a1: &S::Cell,
    a2: &S::Cell,
    o1: Word,
    o2: Word,
    n1: Word,
    thread: &mut S::Thread,
) -> bool {
    loop {
        let v1 = thread.ro_read(0, a1);
        let v2 = thread.ro_read(1, a2);
        if v1 == o1 && v2 == o2 && thread.upgrade_ro_to_rw(0, 0) {
            if thread.ro_rw_commit(2, 1, &[n1]) {
                return true;
            }
        } else if thread.ro_is_valid(2) {
            // The values genuinely differ from the expected ones.
            return false;
        }
        // Conflict: restart, exactly as the paper's listing does.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectm::variants::{OrecFullG, TvarShortG, ValShort};
    use spectm::{encode_int, Stm};
    use std::sync::Arc;

    fn basic<S: Stm>() {
        let stm = S::new();
        let a1 = stm.new_cell(encode_int(10));
        let a2 = stm.new_cell(encode_int(20));
        let mut t = stm.register();
        // Second comparison fails: no change.
        assert!(!dcss::<S>(
            &a1,
            &a2,
            encode_int(10),
            encode_int(99),
            encode_int(11),
            &mut t
        ));
        assert_eq!(S::peek(&a1), encode_int(10));
        // Both match: swap happens.
        assert!(dcss::<S>(
            &a1,
            &a2,
            encode_int(10),
            encode_int(20),
            encode_int(11),
            &mut t
        ));
        assert_eq!(S::peek(&a1), encode_int(11));
        assert_eq!(S::peek(&a2), encode_int(20));
    }

    #[test]
    fn dcss_works_on_all_layouts() {
        basic::<OrecFullG>();
        basic::<TvarShortG>();
        basic::<ValShort>();
    }

    #[test]
    fn concurrent_dcss_is_atomic() {
        // `a1` counts successful swaps gated on a guard cell `a2`; flipping
        // the guard concurrently must never produce a half-applied swap.
        let stm = Arc::new(ValShort::new());
        let counter = Arc::new(stm.new_cell(encode_int(0)));
        let guard = Arc::new(stm.new_cell(encode_int(0)));
        const THREADS: usize = 4;
        const OPS: usize = 1_500;
        let mut joins = Vec::new();
        for _ in 0..THREADS {
            let stm = Arc::clone(&stm);
            let counter = Arc::clone(&counter);
            let guard = Arc::clone(&guard);
            joins.push(std::thread::spawn(move || {
                let mut t = stm.register();
                let mut success = 0u64;
                for _ in 0..OPS {
                    let cur = spectm::StmThread::single_read(&mut t, &counter);
                    if dcss::<ValShort>(
                        &counter,
                        &guard,
                        cur,
                        encode_int(0),
                        encode_int(spectm::decode_int(cur) + 1),
                        &mut t,
                    ) {
                        success += 1;
                    }
                }
                success
            }));
        }
        let total: u64 = joins.into_iter().map(|j| j.join().unwrap()).sum();
        assert_eq!(
            spectm::decode_int(ValShort::peek(&counter)) as u64,
            total,
            "every successful DCSS must be reflected exactly once"
        );
    }
}
