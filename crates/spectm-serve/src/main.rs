//! The `spectm-serve` binary: a [`spectm::variants::ValShort`]-backed
//! sharded KV store behind the threaded cache server, for the `kv-loadgen`
//! client and the CI smoke.

use std::sync::Arc;
use std::time::Duration;

use spectm::variants::ValShort;
use spectm::Stm;
use spectm_ds::ApiMode;
use spectm_kv::{CacheConfig, EvictionPolicy, Reclaimer, ShardedKv};
use spectm_serve::Server;

const USAGE: &str = "\
Usage: spectm-serve [OPTIONS]

Serve a SpecTM sharded KV store over the batch wire protocol.

Options:
  --addr HOST:PORT    bind address (default 127.0.0.1:0 = ephemeral port)
  --workers N         worker threads, each multiplexing many connections
                      (default 4)
  --max-conns-per-worker N
                      connections one worker multiplexes before further
                      accepts are rejected (default 1024)
  --shards N          store shards (default 16)
  --capacity N        per-shard capacity hint in keys (default 65536)
  --max-bytes N       live-byte budget; the background reclaimer evicts
                      down to it (default: no budget, nothing is evicted)
  --default-ttl-ms N  TTL for puts that carry none; 0 = entries never
                      expire by default (default 0)
  --policy P          eviction victim selection, freq or fifo (default freq)
  --port-file PATH    write the bound address to PATH once listening
  --run-for-ms N      serve for N ms, then shut down cleanly (default: forever)
  --help              print this help
";

fn die(msg: &str) -> ! {
    eprintln!("spectm-serve: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(value) = value else {
        die(&format!("{flag} needs a value"));
    };
    match value.parse() {
        Ok(v) => v,
        Err(_) => die(&format!("bad value {value:?} for {flag}")),
    }
}

fn main() {
    let mut addr = String::from("127.0.0.1:0");
    let mut workers = 4usize;
    let mut max_conns_per_worker = spectm_serve::server::DEFAULT_MAX_CONNS_PER_WORKER;
    let mut shards = 16usize;
    let mut capacity = 1usize << 16;
    let mut max_bytes: Option<u64> = None;
    let mut default_ttl_ms = 0u64;
    let mut policy = EvictionPolicy::Freq;
    let mut port_file: Option<String> = None;
    let mut run_for_ms: Option<u64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = parse(&arg, args.next()),
            "--workers" => workers = parse(&arg, args.next()),
            "--max-conns-per-worker" => max_conns_per_worker = parse(&arg, args.next()),
            "--shards" => shards = parse(&arg, args.next()),
            "--capacity" => capacity = parse(&arg, args.next()),
            "--max-bytes" => max_bytes = Some(parse(&arg, args.next())),
            "--default-ttl-ms" => default_ttl_ms = parse(&arg, args.next()),
            "--policy" => {
                policy = match parse::<String>(&arg, args.next()).as_str() {
                    "freq" => EvictionPolicy::Freq,
                    "fifo" => EvictionPolicy::Fifo,
                    other => die(&format!("bad value {other:?} for --policy")),
                }
            }
            "--port-file" => port_file = Some(parse(&arg, args.next())),
            "--run-for-ms" => run_for_ms = Some(parse(&arg, args.next())),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => die(&format!("unknown flag {other:?}")),
        }
    }
    if workers == 0 {
        die("--workers must be at least 1");
    }
    if max_conns_per_worker == 0 {
        die("--max-conns-per-worker must be at least 1");
    }

    let stm = ValShort::new();
    let config = CacheConfig {
        max_bytes,
        default_ttl_ms,
        policy,
        ..CacheConfig::default()
    };
    let cache_enabled = max_bytes.is_some() || default_ttl_ms > 0;
    let store = Arc::new(ShardedKv::with_config(
        &stm,
        shards,
        capacity,
        ApiMode::Short,
        config,
    ));
    // One expiry pass over the whole table every ~40ms, in 5ms increments;
    // the eviction phase inside each step already drains to the budget.
    let reclaimer = cache_enabled.then(|| {
        Reclaimer::spawn(
            Arc::clone(&store),
            Duration::from_millis(5),
            (store.bucket_count() / 8).max(64),
        )
    });
    let server = match Server::start_with(
        Arc::clone(&store),
        addr.as_str(),
        workers,
        max_conns_per_worker,
    ) {
        Ok(server) => server,
        Err(e) => die(&format!("cannot bind {addr}: {e}")),
    };
    println!("listening on {}", server.local_addr());
    if let Some(path) = &port_file {
        // Written after the listener is live, so a script waiting on this
        // file can connect the moment it appears.
        if let Err(e) = std::fs::write(path, server.local_addr().to_string()) {
            die(&format!("cannot write port file {path}: {e}"));
        }
    }

    match run_for_ms {
        Some(ms) => std::thread::sleep(Duration::from_millis(ms)),
        None => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
    }
    let stats = server.shutdown();
    if let Some(reclaimer) = reclaimer {
        reclaimer.stop();
        // Final full sweep at quiescence: with the workers gone nothing can
        // outrun it, so afterwards the accounting invariant holds —
        // live_bytes is at or under the budget — and the smoke can assert
        // it straight off the stats line.
        let mut thread = store.register();
        store.sweep_step(store.bucket_count(), &mut thread);
    }
    let cache = store.cache_stats();
    // key=value tokens so shell smokes can awk out any field by name.
    println!(
        "served connections={} batches={} ops={} dispatches={} mean_frames={:.2} \
         wire_errors={} io_errors={} rejected={} hits={} misses={} hit_rate={:.4} \
         expired={} evicted={} live_bytes={}",
        stats.connections,
        stats.batches,
        stats.ops,
        stats.dispatches,
        stats.mean_coalesced_frames(),
        stats.wire_errors,
        stats.io_errors,
        stats.conns_rejected,
        cache.hits,
        cache.misses,
        cache.hit_rate(),
        cache.expired,
        cache.evicted,
        cache.live_bytes,
    );
}
