//! The `spectm-serve` binary: a [`spectm::variants::ValShort`]-backed
//! sharded KV store behind the threaded cache server, for the `kv-loadgen`
//! client and the CI smoke.

use std::sync::Arc;
use std::time::Duration;

use spectm::variants::ValShort;
use spectm::Stm;
use spectm_ds::ApiMode;
use spectm_kv::ShardedKv;
use spectm_serve::Server;

const USAGE: &str = "\
Usage: spectm-serve [OPTIONS]

Serve a SpecTM sharded KV store over the batch wire protocol.

Options:
  --addr HOST:PORT    bind address (default 127.0.0.1:0 = ephemeral port)
  --workers N         worker threads, each multiplexing many connections
                      (default 4)
  --max-conns-per-worker N
                      connections one worker multiplexes before further
                      accepts are rejected (default 1024)
  --shards N          store shards (default 16)
  --capacity N        per-shard capacity hint in keys (default 65536)
  --port-file PATH    write the bound address to PATH once listening
  --run-for-ms N      serve for N ms, then shut down cleanly (default: forever)
  --help              print this help
";

fn die(msg: &str) -> ! {
    eprintln!("spectm-serve: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(value) = value else {
        die(&format!("{flag} needs a value"));
    };
    match value.parse() {
        Ok(v) => v,
        Err(_) => die(&format!("bad value {value:?} for {flag}")),
    }
}

fn main() {
    let mut addr = String::from("127.0.0.1:0");
    let mut workers = 4usize;
    let mut max_conns_per_worker = spectm_serve::server::DEFAULT_MAX_CONNS_PER_WORKER;
    let mut shards = 16usize;
    let mut capacity = 1usize << 16;
    let mut port_file: Option<String> = None;
    let mut run_for_ms: Option<u64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = parse(&arg, args.next()),
            "--workers" => workers = parse(&arg, args.next()),
            "--max-conns-per-worker" => max_conns_per_worker = parse(&arg, args.next()),
            "--shards" => shards = parse(&arg, args.next()),
            "--capacity" => capacity = parse(&arg, args.next()),
            "--port-file" => port_file = Some(parse(&arg, args.next())),
            "--run-for-ms" => run_for_ms = Some(parse(&arg, args.next())),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => die(&format!("unknown flag {other:?}")),
        }
    }
    if workers == 0 {
        die("--workers must be at least 1");
    }
    if max_conns_per_worker == 0 {
        die("--max-conns-per-worker must be at least 1");
    }

    let stm = ValShort::new();
    let store = Arc::new(ShardedKv::new(&stm, shards, capacity, ApiMode::Short));
    let server = match Server::start_with(store, addr.as_str(), workers, max_conns_per_worker) {
        Ok(server) => server,
        Err(e) => die(&format!("cannot bind {addr}: {e}")),
    };
    println!("listening on {}", server.local_addr());
    if let Some(path) = &port_file {
        // Written after the listener is live, so a script waiting on this
        // file can connect the moment it appears.
        if let Err(e) = std::fs::write(path, server.local_addr().to_string()) {
            die(&format!("cannot write port file {path}: {e}"));
        }
    }

    match run_for_ms {
        Some(ms) => std::thread::sleep(Duration::from_millis(ms)),
        None => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
    }
    let stats = server.shutdown();
    // key=value tokens so shell smokes can awk out any field by name.
    println!(
        "served connections={} batches={} ops={} dispatches={} mean_frames={:.2} \
         wire_errors={} io_errors={} rejected={}",
        stats.connections,
        stats.batches,
        stats.ops,
        stats.dispatches,
        stats.mean_coalesced_frames(),
        stats.wire_errors,
        stats.io_errors,
        stats.conns_rejected,
    );
}
