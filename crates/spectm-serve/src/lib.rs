//! A threaded cache server fronting the SpecTM sharded key-value store.
//!
//! This crate is the network front-end ROADMAP item 1 calls for: it turns
//! [`spectm_kv::ShardedKv`] into a service in the Pelikan cache-server mold
//! — one acceptor thread plus N worker threads, each worker multiplexing
//! **many nonblocking connections** while owning its own STM thread handle
//! into the one shared store, speaking the length-prefixed binary protocol
//! of [`spectm_kv::wire`].  On each sweep a worker drains every decodable
//! frame from every ready connection into one [`spectm_kv::MultiBatch`],
//! executed under a single epoch entry by
//! [`spectm_kv::ShardedKv::execute_multi`], and scatters the responses
//! back per connection in request order — so the wire hot path is the
//! batched short-transaction pipeline the store already optimizes,
//! amortized across every ready peer.
//!
//! Design points (DESIGN.md § "Wire protocol and the cache server"):
//!
//! * **Connection state machines, not blocking I/O.** Each connection
//!   carries an incremental [`spectm_kv::wire::FrameReader`] and a write
//!   buffer with partial-write continuation, stepped through explicit
//!   Reading/Executing/Writing states; a peer that stops reading its
//!   responses stalls only itself, never its worker.
//! * **Cross-connection coalescing.** One dispatch per sweep covers the
//!   frames of every ready connection; per-connection ordering and the
//!   batch-atomicity contract are preserved (see
//!   [`spectm_kv::MultiBatch`]), so coalescing is a pure perf win.
//! * **Typed error teardown.** Any [`spectm_kv::wire::WireError`] — bad
//!   opcode, oversized length prefix, truncated frame — tears the
//!   connection down without a response and without executing any part of
//!   the offending frame.  The server never panics on peer input.
//! * **Graceful shutdown.** [`Server::shutdown`] (or dropping the
//!   [`Server`]) raises a flag; the acceptor and every worker observe it
//!   within a sweep — even with responses still queued for a slow reader —
//!   then drain and join.
//!
//! The matching load-generator client (`kv-loadgen`) lives in the harness
//! crate; the `spectm-serve` binary in this crate wires a
//! [`spectm::variants::ValShort`] store behind [`Server::start`].

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod server;

pub use server::{Server, StatsSnapshot, COALESCE_BUCKETS, DEFAULT_MAX_CONNS_PER_WORKER};
