//! A threaded cache server fronting the SpecTM sharded key-value store.
//!
//! This crate is the network front-end ROADMAP item 1 calls for: it turns
//! [`spectm_kv::ShardedKv`] into a service in the Pelikan cache-server mold
//! — one acceptor thread plus N worker threads, each worker owning its own
//! STM thread handle into the one shared store, speaking the
//! length-prefixed binary protocol of [`spectm_kv::wire`].  One connection
//! read becomes one [`spectm_kv::BatchRequest`], executed under a single
//! epoch entry by [`spectm_kv::ShardedKv::execute_batch_into`], and one
//! connection write returns the [`spectm_kv::BatchResponse`] — so the wire
//! hot path is exactly the batched short-transaction pipeline the store
//! already optimizes.
//!
//! Design points (DESIGN.md § "Wire protocol and the cache server"):
//!
//! * **Per-connection buffer reuse.** Each worker keeps one
//!   [`spectm_kv::wire::FrameReader`], one request, one response and one
//!   write buffer, reused across every frame and every connection it
//!   serves; the steady-state request loop allocates nothing for
//!   inline-sized values.
//! * **Typed error teardown.** Any [`spectm_kv::wire::WireError`] — bad
//!   opcode, oversized length prefix, truncated frame — tears the
//!   connection down without a response and without executing any part of
//!   the offending frame.  The server never panics on peer input.
//! * **Graceful shutdown.** [`Server::shutdown`] (or dropping the
//!   [`Server`]) raises a flag; the acceptor and every worker observe it
//!   within their poll interval, drain, and join.
//!
//! The matching load-generator client (`kv-loadgen`) lives in the harness
//! crate; the `spectm-serve` binary in this crate wires a
//! [`spectm::variants::ValShort`] store behind [`Server::start`].

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod server;

pub use server::{Server, StatsSnapshot};
