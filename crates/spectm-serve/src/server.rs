//! The server proper: acceptor + worker threads over `std::net`.
//!
//! The threading model trades connection capacity for simplicity and
//! per-worker STM affinity: the acceptor hands each accepted connection to
//! a worker over an mpsc queue, and a worker serves **one connection to
//! completion at a time** (further connections wait in the queue).  That
//! matches the load-generator deployment this repo measures — a fixed set
//! of long-lived connections, one per client thread — and keeps every STM
//! thread handle (`S::Thread` is deliberately not `Send`) pinned to the
//! worker that created it.
//!
//! All blocking points are bounded so shutdown is prompt: the listener is
//! non-blocking (the acceptor sleeps `POLL` between empty accepts),
//! workers wait on the connection queue with a `POLL` timeout, and
//! connection reads carry a `READ_TIMEOUT` so an idle peer cannot pin a
//! worker past shutdown.

use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use spectm::Stm;
use spectm_kv::wire::{self, FrameReader};
use spectm_kv::{BatchRequest, BatchResponse, ShardedKv};

/// How long the acceptor sleeps between empty accepts and how long workers
/// wait on the connection queue before re-checking the shutdown flag.
const POLL: Duration = Duration::from_millis(5);

/// Read timeout on served connections: the longest a quiet peer can delay a
/// worker's shutdown check.
const READ_TIMEOUT: Duration = Duration::from_millis(25);

/// Monotonic service counters, updated by workers and read by reporters.
#[derive(Default)]
struct ServerStats {
    connections: AtomicU64,
    batches: AtomicU64,
    ops: AtomicU64,
    wire_errors: AtomicU64,
}

/// A point-in-time copy of the server's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections accepted and handed to a worker.
    pub connections: u64,
    /// Batches executed and answered.
    pub batches: u64,
    /// Operations inside those batches.
    pub ops: u64,
    /// Connections torn down for malformed input (including closes
    /// mid-frame).  Nothing from such a frame reaches the store.
    pub wire_errors: u64,
}

impl ServerStats {
    fn snapshot(&self) -> StatsSnapshot {
        // ORDERING: monotonic counters read for reporting; no counter
        // guards any other memory.
        let load = |counter: &AtomicU64| counter.load(Ordering::Relaxed);
        StatsSnapshot {
            connections: load(&self.connections),
            batches: load(&self.batches),
            ops: load(&self.ops),
            wire_errors: load(&self.wire_errors),
        }
    }
}

/// Why [`serve_connection`] returned; only protocol violations are counted.
enum ConnEnd {
    /// Peer closed cleanly at a frame boundary, or the transport failed.
    Done,
    /// Peer broke the protocol (malformed frame or close mid-frame).
    WireError,
}

/// Per-worker reusable buffers: one set serves every connection the worker
/// ever handles, so the steady-state frame loop performs no allocations for
/// inline-sized values (buffers grow to their working size once and stay).
#[derive(Default)]
struct ConnScratch {
    reader: FrameReader,
    req: BatchRequest,
    resp: BatchResponse,
    out: Vec<u8>,
}

/// A running cache server.  Dropping it shuts it down and joins every
/// thread; [`Server::shutdown`] does the same while returning the final
/// counters.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use spectm::{variants::ValShort, Stm};
/// use spectm_ds::ApiMode;
/// use spectm_kv::ShardedKv;
/// use spectm_serve::Server;
///
/// let stm = ValShort::new();
/// let store = Arc::new(ShardedKv::new(&stm, 4, 64, ApiMode::Short));
/// let server = Server::start(store, "127.0.0.1:0", 2).unwrap();
/// let addr = server.local_addr(); // ephemeral port, ready for clients
/// let stats = server.shutdown();
/// assert_eq!(stats.wire_errors, 0);
/// # let _ = addr;
/// ```
pub struct Server {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// acceptor plus `workers` worker threads (at least one) over the
    /// shared `store`.  Returns once the listener is live; clients may
    /// connect immediately.
    pub fn start<S: Stm + Clone>(
        store: Arc<ShardedKv<S>>,
        addr: impl ToSocketAddrs,
        workers: usize,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let worker_handles = (0..workers.max(1))
            .map(|i| {
                let store = Arc::clone(&store);
                let rx = Arc::clone(&rx);
                let shutdown = Arc::clone(&shutdown);
                let stats = Arc::clone(&stats);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&store, &rx, &shutdown, &stats))
            })
            .collect::<io::Result<Vec<_>>>()?;
        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("serve-acceptor".to_string())
                .spawn(move || acceptor_loop(&listener, &tx, &shutdown))?
        };
        Ok(Self {
            local_addr,
            shutdown,
            stats,
            acceptor: Some(acceptor),
            workers: worker_handles,
        })
    }

    /// The address the server is listening on (with the real port when
    /// bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The current service counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Raises the shutdown flag, joins the acceptor and every worker, and
    /// returns the final counters.  In-flight frames finish; connections
    /// still queued for a worker are dropped unserved.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.stop();
        self.stats.snapshot()
    }

    fn stop(&mut self) {
        // ORDERING: the flag carries no data; the joins below synchronize
        // with everything the threads wrote.
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn acceptor_loop(listener: &TcpListener, tx: &Sender<TcpStream>, shutdown: &AtomicBool) {
    // ORDERING: shutdown flag only; see Server::stop.
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                if tx.send(stream).is_err() {
                    return; // every worker is gone
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            // Transient accept failures (e.g. the peer resetting before the
            // accept completes) must not kill the acceptor.
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

fn worker_loop<S: Stm + Clone>(
    store: &ShardedKv<S>,
    conns: &Mutex<Receiver<TcpStream>>,
    shutdown: &AtomicBool,
    stats: &ServerStats,
) {
    // The STM thread handle must be created on the thread that uses it.
    let mut thread = store.register();
    let mut scratch = ConnScratch::default();
    loop {
        let conn = {
            let queue = conns.lock().expect("connection queue poisoned");
            queue.recv_timeout(POLL)
        };
        match conn {
            Ok(stream) => {
                // ORDERING: monotonic counter; see ServerStats::snapshot.
                stats.connections.fetch_add(1, Ordering::Relaxed);
                let end =
                    serve_connection(store, &mut thread, &mut scratch, stream, shutdown, stats);
                if matches!(end, ConnEnd::WireError) {
                    // ORDERING: monotonic counter; see ServerStats::snapshot.
                    stats.wire_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                // ORDERING: shutdown flag only; see Server::stop.
                if shutdown.load(Ordering::Relaxed) {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Serves one connection until the peer closes, the transport fails, the
/// peer breaks the protocol, or shutdown is raised.  Never panics on peer
/// input; on a [`wire::WireError`] the connection is torn down with no
/// response and nothing from the offending frame reaches the store.
fn serve_connection<S: Stm + Clone>(
    store: &ShardedKv<S>,
    thread: &mut S::Thread,
    scratch: &mut ConnScratch,
    mut stream: TcpStream,
    shutdown: &AtomicBool,
    stats: &ServerStats,
) -> ConnEnd {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(READ_TIMEOUT)).is_err() {
        return ConnEnd::Done;
    }
    scratch.reader.reset();
    loop {
        match scratch.reader.try_frame() {
            Err(_) => return ConnEnd::WireError,
            Ok(Some((start, end))) => {
                let body = &scratch.reader.buffered()[start..end];
                if wire::decode_request(body, &mut scratch.req).is_err() {
                    return ConnEnd::WireError;
                }
                let op_count = scratch.req.len() as u64;
                // Unreachable for frames the decoder accepted (its caps
                // equal the store's), but a store refusal must still tear
                // down rather than answer out of position or panic.
                if store
                    .execute_batch_into(&mut scratch.req, &mut scratch.resp, thread)
                    .is_err()
                {
                    return ConnEnd::WireError;
                }
                if wire::encode_response(&scratch.resp, &mut scratch.out).is_err() {
                    return ConnEnd::WireError;
                }
                if stream.write_all(&scratch.out).is_err() {
                    return ConnEnd::Done;
                }
                // ORDERING: monotonic counters; see ServerStats::snapshot.
                stats.batches.fetch_add(1, Ordering::Relaxed);
                // ORDERING: monotonic counter; see ServerStats::snapshot.
                stats.ops.fetch_add(op_count, Ordering::Relaxed);
            }
            Ok(None) => match scratch.reader.fill_from(&mut stream) {
                Ok(0) => {
                    return if scratch.reader.mid_frame() {
                        ConnEnd::WireError
                    } else {
                        ConnEnd::Done
                    };
                }
                Ok(_) => {}
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    // ORDERING: shutdown flag only; see Server::stop.
                    if shutdown.load(Ordering::Relaxed) {
                        return ConnEnd::Done;
                    }
                }
                Err(_) => return ConnEnd::Done,
            },
        }
    }
}
