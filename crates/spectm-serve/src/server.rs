//! The server proper: acceptor + multiplexing worker threads over
//! `std::net`.
//!
//! The threading model is the Pelikan/memcached deployment shape: a small,
//! fixed set of workers, each **multiplexing many connections** over
//! nonblocking sockets.  The acceptor round-robins accepted connections to
//! workers; each worker owns a std-only poll loop — `set_nonblocking(true)`
//! plus a readiness sweep with a short park when fully idle — over
//! per-connection state machines (an incremental [`FrameReader`], a write
//! buffer with partial-write continuation, and explicit
//! Reading/Executing/Writing states so a slow-reading peer can never block
//! the worker).  Every STM thread handle (`S::Thread` is deliberately not
//! `Send`) stays pinned to the worker that created it.
//!
//! The payoff is **cross-connection batch coalescing**: on each sweep a
//! worker drains every decodable frame from every ready connection into
//! one [`MultiBatch`] and dispatches it as a single shard-grouped
//! [`ShardedKv`] call under **one epoch entry**, demultiplexing responses
//! back per connection in request order.  Per-connection ordering and the
//! batch-atomicity contract are untouched — see the [`MultiBatch`] docs
//! for why coalescing is performance-transparent — so the wire hot path
//! amortizes epoch entry and grouping over every ready peer, not just one.
//!
//! All blocking points are bounded so shutdown is prompt: the listener is
//! non-blocking (the acceptor sleeps `POLL` between empty accepts), a
//! worker with no connections waits on its queue with a `POLL` timeout,
//! and a worker with connections re-checks the shutdown flag every sweep —
//! including while a response is still queued for a peer that stopped
//! reading (the old one-connection design could pin a worker in
//! `write_all` there).

use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use spectm::Stm;
use spectm_kv::wire::{self, Fill, FrameReader};
use spectm_kv::{MultiBatch, ShardedKv};

/// How long the acceptor sleeps between empty accepts and how long an
/// empty worker waits on its connection queue before re-checking the
/// shutdown flag.
const POLL: Duration = Duration::from_millis(5);

/// Sweeps a worker spends yield-spinning after its last progress before it
/// starts parking: keeps latency at sub-microsecond cost while traffic is
/// flowing, without burning a core when every peer goes quiet.
const IDLE_SPINS: u32 = 64;

/// How long an idle worker parks between sweeps once past [`IDLE_SPINS`]:
/// the longest a newly ready connection waits for service on a quiet
/// worker, and the longest quiet-worker shutdown can lag the flag.
const IDLE_PARK: Duration = Duration::from_micros(500);

/// Queued-response bytes above which a worker stops *reading* from a
/// connection (backpressure): a peer that pipelines requests faster than
/// it drains responses bounds the worker's memory instead of growing it.
const WRITE_BACKLOG_CAP: usize = 1 << 20;

/// Socket reads per connection per sweep: bounds how long one firehose
/// peer can monopolize a sweep before the worker services its neighbours.
const MAX_FILLS_PER_SWEEP: usize = 4;

/// Default per-worker connection cap (see `--max-conns-per-worker`);
/// connections above it are dropped at admission and counted in
/// [`StatsSnapshot::conns_rejected`].
pub const DEFAULT_MAX_CONNS_PER_WORKER: usize = 1024;

/// Buckets in the coalesced-dispatch histogram: frame counts 1, 2, 3–4,
/// 5–8, 9–16, 17–32, 33–64, 65+.
pub const COALESCE_BUCKETS: usize = 8;

/// The [`COALESCE_BUCKETS`] histogram bucket for a dispatch coalescing
/// `frames` frames (power-of-two buckets, saturating at the last).
fn coalesce_bucket(frames: usize) -> usize {
    debug_assert!(frames >= 1);
    ((usize::BITS - (frames - 1).leading_zeros()) as usize).min(COALESCE_BUCKETS - 1)
}

/// Monotonic service counters, updated by workers and read by reporters.
#[derive(Default)]
struct ServerStats {
    connections: AtomicU64,
    batches: AtomicU64,
    ops: AtomicU64,
    dispatches: AtomicU64,
    wire_errors: AtomicU64,
    io_errors: AtomicU64,
    conns_rejected: AtomicU64,
    coalesce_hist: [AtomicU64; COALESCE_BUCKETS],
}

/// A point-in-time copy of the server's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections accepted and admitted to a worker's table.
    pub connections: u64,
    /// Request frames decoded, executed and answered (the response is
    /// queued for the peer in the same sweep that executes the frame).
    pub batches: u64,
    /// Operations inside those frames.
    pub ops: u64,
    /// Coalesced store dispatches: each executed one epoch entry covering
    /// the frames of every connection ready in that sweep, so
    /// `batches / dispatches` is the mean coalesced batch size.
    pub dispatches: u64,
    /// Connections torn down for malformed input (including closes
    /// mid-frame).  Nothing from such a frame reaches the store.
    pub wire_errors: u64,
    /// Local socket-configuration failures (`set_nonblocking`,
    /// `set_nodelay`) and connections dropped because no worker queue
    /// could take them — connections dropped or degraded for reasons that
    /// are the server's, not the peer's.
    pub io_errors: u64,
    /// Connections dropped at admission because the worker was at its
    /// `--max-conns-per-worker` cap.
    pub conns_rejected: u64,
    /// Histogram of frames-per-dispatch: buckets for 1, 2, 3–4, 5–8,
    /// 9–16, 17–32, 33–64 and 65+ frames.  Sums to `dispatches`.
    pub coalesce_hist: [u64; COALESCE_BUCKETS],
}

impl StatsSnapshot {
    /// Mean frames coalesced per store dispatch (0.0 before the first
    /// dispatch).  Above 1.0 means cross-connection coalescing is
    /// amortizing epoch entries; equal to 1.0 means every sweep found one
    /// ready frame — the per-connection behaviour this design subsumes.
    pub fn mean_coalesced_frames(&self) -> f64 {
        if self.dispatches == 0 {
            0.0
        } else {
            self.batches as f64 / self.dispatches as f64
        }
    }
}

impl ServerStats {
    fn snapshot(&self) -> StatsSnapshot {
        // ORDERING: monotonic counters read for reporting; no counter
        // guards any other memory.
        let load = |counter: &AtomicU64| counter.load(Ordering::Relaxed);
        let mut coalesce_hist = [0u64; COALESCE_BUCKETS];
        for (out, counter) in coalesce_hist.iter_mut().zip(&self.coalesce_hist) {
            *out = load(counter);
        }
        StatsSnapshot {
            connections: load(&self.connections),
            batches: load(&self.batches),
            ops: load(&self.ops),
            dispatches: load(&self.dispatches),
            wire_errors: load(&self.wire_errors),
            io_errors: load(&self.io_errors),
            conns_rejected: load(&self.conns_rejected),
            coalesce_hist,
        }
    }

    /// Accounts one coalesced dispatch of `frames` frames / `ops`
    /// operations.
    fn record_dispatch(&self, frames: usize, ops: u64) {
        // ORDERING: monotonic counters read only for reporting; no counter
        // guards any other memory (see ServerStats::snapshot).
        let bump = |counter: &AtomicU64, n: u64| counter.fetch_add(n, Ordering::Relaxed);
        bump(&self.dispatches, 1);
        bump(&self.batches, frames as u64);
        bump(&self.ops, ops);
        bump(&self.coalesce_hist[coalesce_bucket(frames)], 1);
    }
}

/// Why a connection is being torn down; only protocol violations are
/// counted in [`StatsSnapshot::wire_errors`].
#[derive(Clone, Copy)]
enum ConnEnd {
    /// Peer closed cleanly at a frame boundary, or the transport failed.
    Done,
    /// Peer broke the protocol (malformed frame or close mid-frame).
    WireError,
}

/// Where a connection's state machine stands between sweeps.
#[derive(Clone, Copy)]
enum ConnState {
    /// No queued output; waiting for request bytes.
    Reading,
    /// Frames read this sweep are committed into the worker's
    /// [`MultiBatch`], awaiting the coalesced dispatch (transient: the
    /// same sweep's execute phase moves the connection on).
    Executing,
    /// Queued response bytes awaiting socket capacity.  The connection
    /// keeps reading new requests while the backlog stays under
    /// [`WRITE_BACKLOG_CAP`]; a slow reader only ever stalls itself.
    Writing,
    /// No more reads; flush whatever is queued, then drop.  Frames decoded
    /// *before* the failure still execute and their responses still flush —
    /// a peer that pipelines a good frame and then garbage gets the good
    /// frame's answer before teardown.
    Closing(ConnEnd),
}

/// One multiplexed connection: socket, incremental frame reader, and a
/// write buffer with partial-write continuation (`wbuf[wpos..]` is not yet
/// accepted by the socket).
struct Conn {
    stream: TcpStream,
    reader: FrameReader,
    wbuf: Vec<u8>,
    wpos: usize,
    state: ConnState,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            reader: FrameReader::new(),
            wbuf: Vec::new(),
            wpos: 0,
            state: ConnState::Reading,
        }
    }

    /// Queued response bytes the socket has not accepted yet.
    fn pending(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// Whether the read phase should pull from this connection: reading
    /// states only, and only under the write-backlog cap.
    fn wants_read(&self) -> bool {
        matches!(self.state, ConnState::Reading | ConnState::Writing)
            && self.pending() < WRITE_BACKLOG_CAP
    }

    /// Pushes queued bytes into the nonblocking socket until it would
    /// block or the buffer drains, returning bytes written this call.
    /// On a fatal transport error the connection is marked for reaping
    /// (queued bytes are unsendable and dropped).
    fn flush(&mut self) -> usize {
        let mut written = 0usize;
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                // A zero-length write cannot make progress; treat it as a
                // dead transport rather than spin.
                Ok(0) => {
                    self.fail_transport();
                    return written;
                }
                Ok(n) => {
                    self.wpos += n;
                    written += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.fail_transport();
                    return written;
                }
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
            if matches!(self.state, ConnState::Writing) {
                self.state = ConnState::Reading;
            }
        }
        written
    }

    /// Transport death during a write: drop the unsendable backlog so the
    /// reaper collects the connection, preserving a pre-existing
    /// `WireError` verdict (the peer broke the protocol *and* vanished).
    fn fail_transport(&mut self) {
        self.wbuf.clear();
        self.wpos = 0;
        if !matches!(self.state, ConnState::Closing(_)) {
            self.state = ConnState::Closing(ConnEnd::Done);
        }
    }
}

/// A running cache server.  Dropping it shuts it down and joins every
/// thread; [`Server::shutdown`] does the same while returning the final
/// counters.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use spectm::{variants::ValShort, Stm};
/// use spectm_ds::ApiMode;
/// use spectm_kv::ShardedKv;
/// use spectm_serve::Server;
///
/// let stm = ValShort::new();
/// let store = Arc::new(ShardedKv::new(&stm, 4, 64, ApiMode::Short));
/// let server = Server::start(store, "127.0.0.1:0", 2).unwrap();
/// let addr = server.local_addr(); // ephemeral port, ready for clients
/// let stats = server.shutdown();
/// assert_eq!(stats.wire_errors, 0);
/// # let _ = addr;
/// ```
pub struct Server {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// acceptor plus `workers` multiplexing worker threads (at least one)
    /// over the shared `store`, with the default
    /// [`DEFAULT_MAX_CONNS_PER_WORKER`] connection cap per worker.
    /// Returns once the listener is live; clients may connect immediately.
    pub fn start<S: Stm + Clone>(
        store: Arc<ShardedKv<S>>,
        addr: impl ToSocketAddrs,
        workers: usize,
    ) -> io::Result<Self> {
        Self::start_with(store, addr, workers, DEFAULT_MAX_CONNS_PER_WORKER)
    }

    /// [`Server::start`] with an explicit per-worker connection cap:
    /// connections admitted while a worker already multiplexes
    /// `max_conns_per_worker` are dropped and counted in
    /// [`StatsSnapshot::conns_rejected`].
    pub fn start_with<S: Stm + Clone>(
        store: Arc<ShardedKv<S>>,
        addr: impl ToSocketAddrs,
        workers: usize,
        max_conns_per_worker: usize,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());
        let max_conns = max_conns_per_worker.max(1);
        let mut txs = Vec::new();
        let worker_handles = (0..workers.max(1))
            .map(|i| {
                let (tx, rx) = mpsc::channel::<TcpStream>();
                txs.push(tx);
                let store = Arc::clone(&store);
                let shutdown = Arc::clone(&shutdown);
                let stats = Arc::clone(&stats);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&store, &rx, max_conns, &shutdown, &stats))
            })
            .collect::<io::Result<Vec<_>>>()?;
        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            std::thread::Builder::new()
                .name("serve-acceptor".to_string())
                .spawn(move || acceptor_loop(&listener, &txs, &shutdown, &stats))?
        };
        Ok(Self {
            local_addr,
            shutdown,
            stats,
            acceptor: Some(acceptor),
            workers: worker_handles,
        })
    }

    /// The address the server is listening on (with the real port when
    /// bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The current service counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Raises the shutdown flag, joins the acceptor and every worker, and
    /// returns the final counters.  Multiplexed connections are dropped at
    /// the next sweep — even those with responses still queued for a peer
    /// that stopped reading; connections still queued for a worker are
    /// dropped unserved.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.stop();
        self.stats.snapshot()
    }

    fn stop(&mut self) {
        // ORDERING: the flag carries no data; the joins below synchronize
        // with everything the threads wrote.
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn acceptor_loop(
    listener: &TcpListener,
    txs: &[Sender<TcpStream>],
    shutdown: &AtomicBool,
    stats: &ServerStats,
) {
    let mut next = 0usize;
    // ORDERING: shutdown flag only; see Server::stop.
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                if let Err(refused) = dispatch_to_worker(stream, txs, &mut next) {
                    // Every worker queue is gone: the connection cannot be
                    // served.  Count the drop and stop accepting — closing
                    // the listener makes further connects fail fast instead
                    // of queueing behind a server that will never answer.
                    // ORDERING: monotonic counter; see ServerStats::snapshot.
                    stats.io_errors.fetch_add(1, Ordering::Relaxed);
                    drop(refused);
                    return;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            // Transient accept failures (e.g. the peer resetting before the
            // accept completes) must not kill the acceptor.
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

/// Offers `item` to each worker queue exactly once, round-robin starting
/// at `*next`.  A worker whose receiving end is gone hands the item back
/// inside the send error; the acceptor must *keep trying the rest* rather
/// than unwrap mid-loop — a panic here kills the acceptor thread and the
/// server silently stops accepting (the bug this replaces).  Returns the
/// item if every worker refused it, so the caller decides the drop policy.
fn dispatch_to_worker<T>(mut item: T, txs: &[Sender<T>], next: &mut usize) -> Result<(), T> {
    for _ in 0..txs.len() {
        let tx = &txs[*next];
        *next = (*next + 1) % txs.len();
        match tx.send(item) {
            Ok(()) => return Ok(()),
            Err(mpsc::SendError(back)) => item = back,
        }
    }
    Err(item)
}

/// One worker: a poll loop multiplexing up to `max_conns` connections.
///
/// Each sweep runs admit → flush → read/decode → coalesced execute →
/// flush → reap, then parks briefly if nothing moved.  The read phase
/// appends every decodable frame from every ready connection into one
/// [`MultiBatch`]; the execute phase dispatches it under a single epoch
/// entry and scatters responses into each source connection's write
/// buffer in request order.
fn worker_loop<S: Stm + Clone>(
    store: &ShardedKv<S>,
    queue: &Receiver<TcpStream>,
    max_conns: usize,
    shutdown: &AtomicBool,
    stats: &ServerStats,
) {
    // The STM thread handle must be created on the thread that uses it.
    let mut thread = store.register();
    let mut conns: Vec<Conn> = Vec::new();
    let mut multi = MultiBatch::new();
    let mut idle_sweeps = 0u32;
    loop {
        // ORDERING: shutdown flag only; see Server::stop.  Checked every
        // sweep, so neither a quiet peer nor one that stopped reading its
        // responses can delay shutdown.
        if shutdown.load(Ordering::Relaxed) {
            return;
        }
        let mut progressed = false;

        // Admit: with an empty table, block (briefly) on the queue; with
        // live connections, only drain what is already there.
        if conns.is_empty() {
            match queue.recv_timeout(POLL) {
                Ok(stream) => progressed |= admit(stream, &mut conns, max_conns, stats),
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => return,
            }
        }
        loop {
            match queue.try_recv() {
                Ok(stream) => progressed |= admit(stream, &mut conns, max_conns, stats),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    if conns.is_empty() {
                        return;
                    }
                    break;
                }
            }
        }

        // Flush before reading: freeing socket buffers early lets peers
        // that pipeline make progress within a single sweep.
        for conn in &mut conns {
            if conn.pending() > 0 {
                progressed |= conn.flush() > 0;
            }
        }

        // Read/decode: drain every decodable frame from every readable
        // connection into the shared MultiBatch, tagged by table slot.
        debug_assert!(multi.is_empty());
        for (slot, conn) in conns.iter_mut().enumerate() {
            if conn.wants_read() {
                progressed |= read_frames(conn, slot, &mut multi);
            }
        }

        // Execute: one shard-grouped dispatch, one epoch entry, covering
        // every frame the sweep found; then scatter responses per source.
        if !multi.is_empty() {
            let (frames, ops) = (multi.frame_count(), multi.op_count() as u64);
            if store.execute_multi(&mut multi, &mut thread).is_ok() {
                stats.record_dispatch(frames, ops);
                for (slot, results) in multi.frames() {
                    let conn = &mut conns[slot];
                    // Encoding can only refuse values larger than the store
                    // can hold — unreachable for store output, but a refusal
                    // must tear down rather than answer out of position.
                    if wire::encode_response_append(results, &mut conn.wbuf).is_err() {
                        conn.fail_transport();
                    } else if matches!(conn.state, ConnState::Executing) {
                        conn.state = ConnState::Writing;
                    }
                }
            } else {
                // Unreachable for frames the decoder accepted (its caps
                // equal the store's), but a store refusal must still tear
                // down every contributing connection rather than answer
                // out of position or panic.
                for slot in multi.sources().collect::<Vec<_>>() {
                    conns[slot].state = ConnState::Closing(ConnEnd::WireError);
                }
            }
            multi.clear();
            progressed = true;
        }

        // Second flush: answers computed this sweep usually fit the socket
        // buffer, so most request/response cycles complete in one sweep.
        for conn in &mut conns {
            if conn.pending() > 0 {
                progressed |= conn.flush() > 0;
            }
        }

        // Reap: closing connections leave once their queued responses are
        // flushed (or proved unsendable).  Backwards so swap_remove keeps
        // unvisited slots stable.
        for slot in (0..conns.len()).rev() {
            if let ConnState::Closing(end) = conns[slot].state {
                if conns[slot].pending() == 0 {
                    if matches!(end, ConnEnd::WireError) {
                        // ORDERING: monotonic counter; see
                        // ServerStats::snapshot.
                        stats.wire_errors.fetch_add(1, Ordering::Relaxed);
                    }
                    drop(conns.swap_remove(slot));
                }
            }
        }

        // Idle policy: spin politely right after traffic, park once quiet.
        if progressed {
            idle_sweeps = 0;
        } else {
            idle_sweeps = idle_sweeps.saturating_add(1);
            if idle_sweeps <= IDLE_SPINS {
                std::thread::yield_now();
            } else {
                std::thread::sleep(IDLE_PARK);
            }
        }
    }
}

/// Configures and admits one accepted connection into the worker's table,
/// enforcing the per-worker cap.  Returns whether the sweep made progress
/// (it did unless the queue handed us nothing — any outcome here, even a
/// rejection, is observable work).
fn admit(stream: TcpStream, conns: &mut Vec<Conn>, max_conns: usize, stats: &ServerStats) -> bool {
    if conns.len() >= max_conns {
        // ORDERING: monotonic counter; see ServerStats::snapshot.
        stats.conns_rejected.fetch_add(1, Ordering::Relaxed);
        return true; // dropping `stream` closes it
    }
    if stream.set_nonblocking(true).is_err() {
        // A blocking socket would stall the whole sweep: unusable here.
        // ORDERING: monotonic counter; see ServerStats::snapshot.
        stats.io_errors.fetch_add(1, Ordering::Relaxed);
        return true;
    }
    if stream.set_nodelay(true).is_err() {
        // Latency nicety only — count it, keep the connection.
        // ORDERING: monotonic counter; see ServerStats::snapshot.
        stats.io_errors.fetch_add(1, Ordering::Relaxed);
    }
    // ORDERING: monotonic counter; see ServerStats::snapshot.
    stats.connections.fetch_add(1, Ordering::Relaxed);
    conns.push(Conn::new(stream));
    true
}

/// Reads and decodes everything currently available on one connection:
/// alternates buffered-frame draining with nonblocking fills (at most
/// [`MAX_FILLS_PER_SWEEP`] so one firehose peer cannot monopolize the
/// sweep), committing each decoded frame into `multi` tagged with `slot`.
/// Returns whether any byte arrived or frame decoded.
///
/// Failure handling preserves the wire contract: a malformed frame rolls
/// its partial ops back out of `multi` and marks the connection
/// `Closing(WireError)` — frames committed before it still execute, and
/// their responses still flush before the reaper closes the socket.
fn read_frames(conn: &mut Conn, slot: usize, multi: &mut MultiBatch) -> bool {
    let committed_from = multi.frame_count();
    let mut progressed = false;
    let mut fills = 0usize;
    'sweep: loop {
        // Drain every complete frame already buffered.
        loop {
            match conn.reader.try_frame() {
                Ok(None) => break,
                Ok(Some((start, end))) => {
                    let body = &conn.reader.buffered()[start..end];
                    match wire::decode_request_append(body, multi.request_mut()) {
                        Ok(_) => {
                            multi.commit_frame(slot);
                            progressed = true;
                        }
                        Err(_) => {
                            multi.rollback_frame();
                            conn.state = ConnState::Closing(ConnEnd::WireError);
                            break 'sweep;
                        }
                    }
                }
                Err(_) => {
                    conn.state = ConnState::Closing(ConnEnd::WireError);
                    break 'sweep;
                }
            }
        }
        if fills == MAX_FILLS_PER_SWEEP {
            break;
        }
        fills += 1;
        match conn.reader.fill_nonblocking(&mut conn.stream) {
            Ok(Fill::Bytes(_)) => progressed = true,
            Ok(Fill::WouldBlock) => break,
            Ok(Fill::Eof) => {
                conn.state = ConnState::Closing(if conn.reader.mid_frame() {
                    ConnEnd::WireError
                } else {
                    ConnEnd::Done
                });
                break;
            }
            Err(_) => {
                conn.state = ConnState::Closing(ConnEnd::Done);
                break;
            }
        }
    }
    if multi.frame_count() > committed_from && !matches!(conn.state, ConnState::Closing(_)) {
        conn.state = ConnState::Executing;
    }
    progressed
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression: a worker whose receiver is gone hands the item back
    /// through the send error.  The dispatcher must fall through to the
    /// next worker — the old inline loop unwrapped an `Option` on exactly
    /// this path, and a panic here kills the acceptor thread, after which
    /// the server silently stops accepting.
    #[test]
    fn dispatch_skips_dead_workers_without_panicking() {
        let (tx_dead, rx_dead) = mpsc::channel::<u32>();
        let (tx_live, rx_live) = mpsc::channel::<u32>();
        drop(rx_dead);
        let txs = [tx_dead, tx_live];
        let mut next = 0;
        assert_eq!(dispatch_to_worker(7, &txs, &mut next), Ok(()));
        assert_eq!(rx_live.recv(), Ok(7));
    }

    /// With every worker gone the item comes back to the caller (which
    /// counts the drop) instead of being lost or panicking.
    #[test]
    fn dispatch_returns_the_item_when_every_worker_is_gone() {
        let (tx_a, rx_a) = mpsc::channel::<u32>();
        let (tx_b, rx_b) = mpsc::channel::<u32>();
        drop((rx_a, rx_b));
        let mut next = 1;
        assert_eq!(dispatch_to_worker(9, &[tx_a, tx_b], &mut next), Err(9));
    }

    /// The round-robin cursor keeps rotating across calls so load spreads
    /// instead of pinning to worker zero.
    #[test]
    fn dispatch_round_robins_across_live_workers() {
        let (tx_a, rx_a) = mpsc::channel::<u32>();
        let (tx_b, rx_b) = mpsc::channel::<u32>();
        let txs = [tx_a, tx_b];
        let mut next = 0;
        for item in 0..4u32 {
            assert_eq!(dispatch_to_worker(item, &txs, &mut next), Ok(()));
        }
        assert_eq!((rx_a.try_recv(), rx_a.try_recv()), (Ok(0), Ok(2)));
        assert_eq!((rx_b.try_recv(), rx_b.try_recv()), (Ok(1), Ok(3)));
    }
}
