//! Loopback end-to-end test: N client threads hammer a real server over
//! 127.0.0.1 with seeded mixed batches, checking **every** response
//! against a per-thread `BTreeMap` oracle, then drain their key ranges
//! over the wire and verify both oracle equality and the self-certifying
//! payload checksums (`--verify` style).
//!
//! Uses the deterministic scaffolding of the spectm-kv `tests/common/`
//! module (barrier-started workers, canonical per-thread seeds, bounded
//! iterations), so a failure reproduces from nothing but the seed.
//! Threads own disjoint key ranges — concurrency stresses the server's
//! accept/dispatch/epoch machinery while keeping a sequential oracle
//! sound per thread.

#[path = "../../spectm-kv/tests/common/mod.rs"]
mod common;

use std::collections::BTreeMap;
use std::sync::Arc;

use common::{run_workers, Xorshift};
use harness::kv::{fill_payload, payload_is_valid};
use harness::loadgen::WireConn;
use spectm::variants::ValShort;
use spectm::Stm;
use spectm_ds::ApiMode;
use spectm_kv::{BatchOp, ShardedKv};
use spectm_serve::Server;

const THREADS: u64 = 4;
/// Keys per thread; thread `tid` owns `[tid·RANGE, (tid+1)·RANGE)`.
const RANGE: u64 = 64;
const ROUNDS: usize = 80;
const BATCH: usize = 16;

/// Replays `ops` on the oracle, returning what the server must answer at
/// every position (request order and batch read-your-writes both fall out
/// of sequential replay).
fn oracle_replay(ops: &[BatchOp], oracle: &mut BTreeMap<u64, Vec<u8>>) -> Vec<Option<Vec<u8>>> {
    ops.iter()
        .map(|op| match op {
            BatchOp::Get(key) => oracle.get(key).cloned(),
            BatchOp::Put(key, value) | BatchOp::PutTtl(key, value, _) => {
                oracle.insert(*key, value.to_vec())
            }
            BatchOp::Del(key) => oracle.remove(key),
        })
        .collect()
}

fn draw_batch(rng: &mut Xorshift, base: u64, scratch: &mut Vec<u8>) -> Vec<BatchOp> {
    let n = (rng.next() % BATCH as u64) as usize + 1;
    (0..n)
        .map(|_| {
            let key = base + rng.next() % RANGE;
            let draw = rng.next();
            match draw % 10 {
                // 40% gets, 40% puts, 20% dels: plenty of churn and misses.
                0..=3 => BatchOp::Get(key),
                4..=7 => {
                    let len = (draw >> 8) as usize % 120;
                    fill_payload(key, draw, len, scratch);
                    BatchOp::put(key, scratch)
                }
                _ => BatchOp::Del(key),
            }
        })
        .collect()
}

#[test]
fn concurrent_clients_match_their_oracles_over_the_wire() {
    let stm = ValShort::new();
    let store = Arc::new(ShardedKv::new(&stm, 8, 256, ApiMode::Short));
    let server = Server::start(store, "127.0.0.1:0", THREADS as usize).expect("start server");
    let addr = server.local_addr();

    run_workers(THREADS, 0x0100_BACC_5EED, |tid, rng| {
        let base = tid * RANGE;
        let mut conn = WireConn::connect(addr).expect("client connect");
        let mut oracle: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        let mut scratch = Vec::new();

        for round in 0..ROUNDS {
            let ops = draw_batch(rng, base, &mut scratch);
            let expect = oracle_replay(&ops, &mut oracle);
            let got = conn.execute(&ops).expect("batch over the wire");
            assert_eq!(got.len(), expect.len());
            for (pos, (got, expect)) in got.iter().zip(&expect).enumerate() {
                assert_eq!(
                    got.as_deref(),
                    expect.as_deref(),
                    "thread {tid} round {round} position {pos} diverged"
                );
            }
        }

        // Final drain: the server's view of this thread's range must be
        // exactly the oracle, and every surviving payload must carry a
        // valid checksum for its key.
        let drain: Vec<BatchOp> = (base..base + RANGE).map(BatchOp::Get).collect();
        let mut server_view: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        for chunk in drain.chunks(BATCH) {
            let results = conn.execute(chunk).expect("drain batch").clone();
            for (op, result) in chunk.iter().zip(results) {
                if let Some(value) = result {
                    assert!(
                        payload_is_valid(op.key(), &value),
                        "thread {tid}: checksum failure for key {}",
                        op.key()
                    );
                    server_view.insert(op.key(), value.to_vec());
                }
            }
        }
        assert_eq!(server_view, oracle, "thread {tid}: final drain diverged");
    });

    let stats = server.shutdown();
    assert_eq!(stats.wire_errors, 0, "no client broke the protocol");
    assert_eq!(stats.connections, THREADS, "one connection per client");
    assert!(
        stats.batches >= THREADS * ROUNDS as u64,
        "every workload batch was served"
    );
}

/// The server answers a batch mixing hits, misses and same-key chains in
/// one frame — a direct, single-connection sanity check of wire-level
/// read-your-writes (the store-level property tests live in spectm-kv).
#[test]
fn single_connection_read_your_writes() {
    let stm = ValShort::new();
    let store = Arc::new(ShardedKv::new(&stm, 2, 64, ApiMode::Short));
    let server = Server::start(store, "127.0.0.1:0", 1).expect("start server");
    let mut conn = WireConn::connect(server.local_addr()).expect("connect");

    let big = vec![0x5Au8; 500]; // out-of-line value
    let results = conn
        .execute(&[
            BatchOp::Get(1),
            BatchOp::put(1, b"first"),
            BatchOp::put(1, &big),
            BatchOp::Get(1),
            BatchOp::Del(1),
            BatchOp::Get(1),
        ])
        .expect("mixed batch");
    assert_eq!(results[0], None);
    assert_eq!(results[1], None);
    assert_eq!(results[2].as_deref(), Some(&b"first"[..]));
    assert_eq!(results[3].as_deref(), Some(&big[..]));
    assert_eq!(results[4].as_deref(), Some(&big[..]));
    assert_eq!(results[5], None);

    // Values persist across frames on the same connection.
    let results = conn
        .execute(&[BatchOp::put(2, b"stay"), BatchOp::Get(2)])
        .expect("second frame");
    assert_eq!(results[1].as_deref(), Some(&b"stay"[..]));

    let stats = server.shutdown();
    assert_eq!(stats.wire_errors, 0);
    assert_eq!(stats.batches, 2);
}
