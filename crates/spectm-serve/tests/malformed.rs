//! Malformed-frame robustness: every way a peer can break the protocol —
//! truncated frames, oversized length prefixes, bad opcodes, value lengths
//! past `MAX_VALUE_LEN`, declared op counts past `MAX_WIRE_OPS`, trailing
//! bytes — must surface as a typed `WireError`, never a panic, and never a
//! partially-applied batch.
//!
//! The same corpus runs twice: against the **pure decoder** (frame
//! assembly plus `decode_request`, no sockets) and against a **live
//! loopback server**, where each case must tear its connection down
//! without a response while the server keeps serving well-formed
//! connections and counts one wire error per offender.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use harness::loadgen::WireConn;
use spectm::variants::ValShort;
use spectm::Stm;
use spectm_ds::ApiMode;
use spectm_kv::wire::{
    decode_request, decode_response, encode_request, read_frame, FrameError, FrameReader,
    WireError, MAX_FRAME_LEN, MAX_WIRE_OPS,
};
use spectm_kv::{BatchOp, BatchRequest, BatchResponse, ShardedKv, MAX_VALUE_LEN};
use spectm_serve::Server;

/// The key the leaking-put corpus cases write; the live test asserts it
/// never reaches the store.
const LEAK_KEY: u64 = 0xDEAD_0001;

/// One complete, valid frame to derive corruptions from.
fn good_frame() -> Vec<u8> {
    let mut frame = Vec::new();
    encode_request(
        &[
            BatchOp::Get(1),
            BatchOp::put(2, b"a payload longer than the inline buffer"),
            BatchOp::Del(3),
        ],
        &mut frame,
    )
    .unwrap();
    frame
}

/// The corpus: named byte streams, each of which must produce a
/// `WireError` (after however many well-formed frames precede the flaw).
fn corpus() -> Vec<(&'static str, Vec<u8>)> {
    let good = good_frame();
    let mut cases: Vec<(&'static str, Vec<u8>)> = Vec::new();

    // Truncations at every kind of boundary: inside the prefix, at the
    // body start, inside an op header, one byte short of complete.
    for (name, keep) in [
        ("truncated-inside-prefix", 2),
        ("truncated-at-body-start", 4),
        ("truncated-inside-ops", 4 + 4 + 5),
        ("truncated-one-byte-short", good.len() - 1),
    ] {
        cases.push((name, good[..keep].to_vec()));
    }

    // A length prefix beyond the largest legal frame.
    cases.push((
        "oversized-length-prefix",
        ((MAX_FRAME_LEN + 1) as u32).to_le_bytes().to_vec(),
    ));

    // An unknown opcode — after a put the server must NOT apply.
    {
        let mut body = 2u32.to_le_bytes().to_vec();
        body.push(1); // OP_PUT
        body.extend_from_slice(&LEAK_KEY.to_le_bytes());
        body.extend_from_slice(&4u32.to_le_bytes());
        body.extend_from_slice(b"leak");
        body.push(9); // no such opcode
        body.extend_from_slice(&7u64.to_le_bytes());
        let mut frame = (body.len() as u32).to_le_bytes().to_vec();
        frame.extend_from_slice(&body);
        cases.push(("bad-opcode-after-put", frame));
    }

    // A value length past MAX_VALUE_LEN (the frame itself stays small:
    // the decoder must reject the declared length, not wait for bytes).
    {
        let mut body = 1u32.to_le_bytes().to_vec();
        body.push(1); // OP_PUT
        body.extend_from_slice(&LEAK_KEY.to_le_bytes());
        body.extend_from_slice(&((MAX_VALUE_LEN + 1) as u32).to_le_bytes());
        let mut frame = (body.len() as u32).to_le_bytes().to_vec();
        frame.extend_from_slice(&body);
        cases.push(("value-length-past-cap", frame));
    }

    // More ops declared than MAX_WIRE_OPS allows.
    {
        let body = ((MAX_WIRE_OPS + 1) as u32).to_le_bytes().to_vec();
        let mut frame = (body.len() as u32).to_le_bytes().to_vec();
        frame.extend_from_slice(&body);
        cases.push(("too-many-ops", frame));
    }

    // A well-formed body with bytes after the last declared op.
    {
        let mut frame = good.clone();
        frame.push(0xFF);
        let body_len = (frame.len() - 4) as u32;
        frame[..4].copy_from_slice(&body_len.to_le_bytes());
        cases.push(("trailing-bytes", frame));
    }

    // A valid frame followed by garbage: the flaw surfaces only after one
    // good frame was served.
    {
        let mut frame = good.clone();
        frame.extend_from_slice(&((MAX_FRAME_LEN + 1) as u32).to_le_bytes());
        cases.push(("good-frame-then-oversized-prefix", frame));
    }

    cases
}

/// Runs one corpus stream through the pure decode path: reassemble frames
/// (one-byte reads, so split-across-read partial frames are the norm) and
/// decode each body.  Returns the error the stream must produce.
fn pure_decode(stream: &[u8]) -> Result<(), WireError> {
    // Dribble the bytes in to exercise reassembly, like the live socket.
    struct OneByte<'a>(&'a [u8]);
    impl Read for OneByte<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = 1.min(self.0.len()).min(buf.len());
            buf[..n].copy_from_slice(&self.0[..n]);
            self.0 = &self.0[n..];
            Ok(n)
        }
    }
    let mut reader = FrameReader::new();
    let mut source = OneByte(stream);
    let mut req = BatchRequest::new();
    loop {
        match read_frame(&mut reader, &mut source) {
            Ok(None) => return Ok(()),
            Ok(Some((start, end))) => {
                let body: Vec<u8> = reader.buffered()[start..end].to_vec();
                decode_request(&body, &mut req)?;
            }
            Err(FrameError::Wire(e)) => return Err(e),
            Err(FrameError::Io(e)) => panic!("in-memory stream cannot fail: {e}"),
        }
    }
}

#[test]
fn corpus_fails_the_pure_decoder_with_typed_errors() {
    for (name, stream) in corpus() {
        let err = pure_decode(&stream).expect_err(name);
        match name {
            "truncated-inside-prefix"
            | "truncated-at-body-start"
            | "truncated-inside-ops"
            | "truncated-one-byte-short" => assert_eq!(err, WireError::Truncated, "{name}"),
            "oversized-length-prefix" | "good-frame-then-oversized-prefix" => assert!(
                matches!(err, WireError::FrameTooLarge { .. }),
                "{name}: {err:?}"
            ),
            "bad-opcode-after-put" => {
                assert_eq!(err, WireError::BadOpcode { opcode: 9 }, "{name}")
            }
            "value-length-past-cap" => assert!(
                matches!(err, WireError::ValueTooLarge { .. }),
                "{name}: {err:?}"
            ),
            "too-many-ops" => assert!(
                matches!(err, WireError::TooManyOps { .. }),
                "{name}: {err:?}"
            ),
            "trailing-bytes" => assert!(
                matches!(err, WireError::TrailingBytes { .. }),
                "{name}: {err:?}"
            ),
            other => panic!("corpus case {other} has no expectation"),
        }
    }
}

/// The response decoder has one flaw of its own: an unknown result tag.
#[test]
fn bad_result_tags_fail_response_decoding() {
    let mut body = 1u32.to_le_bytes().to_vec();
    body.push(7); // neither absent (0) nor present (1)
    let mut out = BatchResponse::new();
    assert_eq!(
        decode_response(&body, &mut out),
        Err(WireError::BadResultTag { tag: 7 })
    );
}

/// Sends raw bytes to a live server and expects the connection to be torn
/// down (EOF on read) without a response frame beyond `expect_frames`
/// well-formed ones.
fn send_expect_teardown(addr: std::net::SocketAddr, stream_bytes: &[u8], expect_frames: usize) {
    let mut sock = TcpStream::connect(addr).expect("connect");
    sock.set_nodelay(true).unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    sock.write_all(stream_bytes).expect("send corpus bytes");
    // Close the write half so truncation cases read as EOF mid-frame on
    // the server instead of a stalled stream.
    sock.shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    // Read whatever the server sends back until it closes: exactly the
    // responses to the well-formed prefix of the stream, then EOF.
    let mut reader = FrameReader::new();
    let mut frames = 0usize;
    loop {
        match read_frame(&mut reader, &mut sock) {
            Ok(Some(_)) => frames += 1,
            Ok(None) => break, // server closed at a frame boundary
            Err(e) => panic!("server answered garbage: {e}"),
        }
    }
    assert_eq!(frames, expect_frames, "responses before teardown");
}

/// Closes the write half mid-frame: the server sees EOF inside a frame and
/// must count it as a wire error, not hang or panic.
#[test]
fn live_server_survives_the_whole_corpus_without_leaking_a_batch() {
    let stm = ValShort::new();
    let store = Arc::new(ShardedKv::new(&stm, 4, 128, ApiMode::Short));
    let server = Server::start(store, "127.0.0.1:0", 2).expect("start server");
    let addr = server.local_addr();

    let cases = corpus();
    let mut expected_errors = 0u64;
    for (name, stream) in &cases {
        let expect_frames = usize::from(*name == "good-frame-then-oversized-prefix");
        send_expect_teardown(addr, stream, expect_frames);
        expected_errors += 1;

        // After every offender the server still serves a fresh,
        // well-formed connection.
        let mut conn = WireConn::connect(addr).expect("reconnect after corpus case");
        let results = conn
            .execute(&[BatchOp::put(10, b"alive"), BatchOp::Get(10)])
            .unwrap_or_else(|e| panic!("server dead after {name}: {e}"));
        assert_eq!(results[1].as_deref(), Some(&b"alive"[..]), "after {name}");
    }

    // Split-across-read partial frames are NOT malformed: a frame sent in
    // two halves with a pause spanning many server sweeps must still be
    // answered (the event loop parks the connection mid-frame and resumes
    // when the rest arrives).
    {
        let frame = good_frame();
        let mut sock = TcpStream::connect(addr).expect("connect");
        sock.set_nodelay(true).unwrap();
        sock.set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let (a, b) = frame.split_at(7);
        sock.write_all(a).unwrap();
        std::thread::sleep(Duration::from_millis(120)); // many sweeps
        sock.write_all(b).unwrap();
        let mut reader = FrameReader::new();
        let got = read_frame(&mut reader, &mut sock).expect("split frame answered");
        assert!(got.is_some(), "split frame must produce a response");
    }

    // A clean shutdown of the write half mid-frame is a truncation.
    {
        let frame = good_frame();
        let mut sock = TcpStream::connect(addr).expect("connect");
        sock.write_all(&frame[..frame.len() - 3]).unwrap();
        sock.shutdown(std::net::Shutdown::Write).unwrap();
        sock.set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut buf = [0u8; 16];
        assert_eq!(
            sock.read(&mut buf).unwrap(),
            0,
            "no response to a truncated frame"
        );
        expected_errors += 1;
    }

    // The put in `bad-opcode-after-put` (and the capped-value put) must
    // never have reached the store: its frame failed validation whole.
    let mut conn = WireConn::connect(addr).expect("final connection");
    let results = conn.execute(&[BatchOp::Get(LEAK_KEY)]).expect("final get");
    assert_eq!(results[0], None, "a rejected frame leaked a partial batch");

    let stats = server.shutdown();
    assert_eq!(
        stats.wire_errors, expected_errors,
        "each offender counted exactly once"
    );
    assert!(stats.batches > 0, "the good connections were served");
}
