//! Multiplexing tests: the properties the event-loop server adds over the
//! one-connection-per-worker design.
//!
//! * **No starvation** — idle connections greatly outnumbering workers
//!   must not keep active connections from being served (the seed design
//!   fails this by construction: a worker parked on an idle connection is
//!   gone until that peer speaks).
//! * **Slow readers cannot block shutdown** — a peer holding unread
//!   responses pins only its own connection, never its worker; shutdown
//!   completes promptly with responses still queued (the seed design
//!   blocks in `write_all` forever).
//! * **Coalescing is invisible on the wire** — frames interleaved across
//!   K connections produce byte-identical responses to serial
//!   per-connection execution, no matter how the server batched them.
//! * **Coalescing is observable in stats** — pipelined frames from
//!   several connections coalesce into fewer dispatches than batches, and
//!   the histogram accounts for every dispatch.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use spectm::variants::ValShort;
use spectm::Stm;
use spectm_ds::ApiMode;
use spectm_kv::wire::{self, FrameReader};
use spectm_kv::{BatchOp, ShardedKv, Value};
use spectm_serve::Server;

use harness::loadgen::WireConn;

/// Answers within this bound or the run is starved (generous: CI machines
/// stall, but a starved connection waits *forever*).
const ANSWER_DEADLINE: Duration = Duration::from_secs(10);

fn start_server(workers: usize) -> Server {
    let stm = ValShort::new();
    let store = Arc::new(ShardedKv::new(&stm, 8, 256, ApiMode::Short));
    Server::start(store, "127.0.0.1:0", workers).expect("start server")
}

/// 2 workers, 32 connections that never speak, 4 that do: every active
/// connection gets every batch answered.  The seed design parks both
/// workers on the first two idle connections and never serves an active
/// one — this test fails there by construction.
#[test]
fn idle_connections_do_not_starve_active_ones() {
    const IDLE: usize = 32;
    const ACTIVE: usize = 4;
    const ROUNDS: u64 = 20;

    let server = start_server(2);
    let addr = server.local_addr();

    let _idle: Vec<WireConn> = (0..IDLE)
        .map(|_| WireConn::connect(addr).expect("idle connect"))
        .collect();
    let mut active: Vec<WireConn> = (0..ACTIVE)
        .map(|_| {
            let conn = WireConn::connect(addr).expect("active connect");
            conn.set_read_timeout(Some(ANSWER_DEADLINE))
                .expect("read timeout");
            conn
        })
        .collect();

    for round in 0..ROUNDS {
        for (i, conn) in active.iter_mut().enumerate() {
            let key = i as u64 * 1_000 + round;
            let results = conn
                .execute(&[BatchOp::put(key, b"live"), BatchOp::Get(key)])
                .unwrap_or_else(|e| panic!("active connection {i} starved at round {round}: {e}"));
            assert_eq!(results[1].as_deref(), Some(&b"live"[..]));
        }
    }

    drop(active);
    drop(_idle);
    let stats = server.shutdown();
    assert_eq!(stats.wire_errors, 0);
    assert_eq!(
        stats.connections,
        (IDLE + ACTIVE) as u64,
        "every connection was admitted, idle ones included"
    );
    assert_eq!(stats.batches, ACTIVE as u64 * ROUNDS);
}

/// A peer that stops reading its responses cannot delay shutdown: queue
/// ~20 MB of responses behind a full socket, then shut down and require it
/// to complete promptly.  The seed design sits in `write_all` on a
/// blocking socket until the peer drains — shutdown never returns.
#[test]
fn slow_reader_does_not_block_shutdown() {
    const VALUE_LEN: usize = 512 * 1024;
    const UNREAD_GETS: usize = 40;

    let server = start_server(1);
    let mut conn = WireConn::connect(server.local_addr()).expect("connect");

    let big = vec![0xB5u8; VALUE_LEN];
    conn.execute(&[BatchOp::put(9, &big)]).expect("seed value");

    // Pipeline responses far past what the socket and the server's write
    // backlog can absorb, and never read a byte of them.
    for _ in 0..UNREAD_GETS {
        conn.send(&[BatchOp::Get(9)]).expect("pipelined get");
    }
    // Let the worker pull the frames and wedge its flushes against the
    // full socket before the flag goes up.
    std::thread::sleep(Duration::from_millis(300));

    let begun = Instant::now();
    let stats = server.shutdown();
    let took = begun.elapsed();
    assert!(
        took < Duration::from_secs(5),
        "shutdown took {took:?} with a slow reader holding unread responses"
    );
    assert_eq!(stats.wire_errors, 0);
    assert_eq!(stats.connections, 1);
    drop(conn);
}

/// Two connections each pipeline 32 single-op frames in one write: the
/// server answers all 64, and its own stats show it coalesced them into
/// fewer dispatches — with the histogram accounting for every one.
#[test]
fn pipelined_connections_coalesce_into_fewer_dispatches() {
    const FRAMES_PER_CONN: usize = 32;

    let server = start_server(1);
    let addr = server.local_addr();

    let mut conns: Vec<RawConn> = (0..2).map(|_| RawConn::connect(addr)).collect();

    // One write syscall per connection carrying all of its frames, so the
    // worker's read phase finds them buffered together.
    let mut miss = Vec::new();
    wire::encode_response(&[None], &mut miss).expect("encode miss");
    for conn in &mut conns {
        let mut wire_bytes = Vec::new();
        for k in 0..FRAMES_PER_CONN as u64 {
            let mut frame = Vec::new();
            wire::encode_request(&[BatchOp::Get(k)], &mut frame).expect("encode");
            wire_bytes.extend_from_slice(&frame);
        }
        conn.send(&wire_bytes);
    }
    for conn in &mut conns {
        for _ in 0..FRAMES_PER_CONN {
            assert_eq!(conn.recv_body(), &miss[4..], "every get misses");
        }
    }

    let stats = server.shutdown();
    assert_eq!(stats.wire_errors, 0);
    assert_eq!(stats.batches, 2 * FRAMES_PER_CONN as u64);
    assert!(stats.dispatches >= 1);
    assert!(
        stats.dispatches < stats.batches,
        "64 pipelined frames must coalesce: {} dispatches for {} batches",
        stats.dispatches,
        stats.batches
    );
    assert!(stats.mean_coalesced_frames() > 1.0);
    assert_eq!(
        stats.coalesce_hist.iter().sum::<u64>(),
        stats.dispatches,
        "the histogram accounts for every dispatch"
    );
}

/// A raw protocol client for the interleaving proptest: sends prebuilt
/// frame bytes and reads raw response-frame bodies, so the comparison is
/// over exact wire bytes, not decoded values.
struct RawConn {
    stream: TcpStream,
    reader: FrameReader,
}

impl RawConn {
    fn connect(addr: std::net::SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("raw connect");
        stream
            .set_read_timeout(Some(ANSWER_DEADLINE))
            .expect("read timeout");
        Self {
            stream,
            reader: FrameReader::new(),
        }
    }

    fn send(&mut self, frame: &[u8]) {
        self.stream.write_all(frame).expect("raw send");
    }

    fn recv_body(&mut self) -> Vec<u8> {
        match wire::read_frame(&mut self.reader, &mut self.stream).expect("raw recv") {
            Some((start, end)) => self.reader.buffered()[start..end].to_vec(),
            None => panic!("server closed with a response due"),
        }
    }
}

/// Builds a [`BatchOp`] from one generated `(kind, key, draw)` triple,
/// with `key` offset into its connection's private range.
fn op_from(kind: u8, key: u64, draw: u64) -> BatchOp {
    match kind % 4 {
        0 => BatchOp::Get(key),
        1 => BatchOp::Del(key),
        _ => {
            let len = (draw % 40) as usize;
            let payload: Vec<u8> = (0..len)
                .map(|i| (key as u8) ^ (draw as u8).wrapping_add(i as u8))
                .collect();
            BatchOp::put(key, &payload)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        ..ProptestConfig::default()
    })]

    /// Frames from K connections, pipelined and interleaved frame-by-frame
    /// across connections, produce **byte-identical** responses to serial
    /// execution of each connection's frames against its own oracle.
    /// Connections own disjoint key ranges, so per-connection serial
    /// semantics pin every byte regardless of how the server coalesced.
    #[test]
    fn interleaved_connections_answer_identically_to_serial(
        per_conn in proptest::collection::vec(
            proptest::collection::vec(
                proptest::collection::vec((0u8..4, 0u64..32, 0u64..1 << 60), 1..8),
                1..6,
            ),
            2..5,
        ),
    ) {
        // One worker: every connection shares it, maximizing coalescing.
        let server = start_server(1);
        let addr = server.local_addr();

        let mut conns: Vec<RawConn> = (0..per_conn.len())
            .map(|_| RawConn::connect(addr))
            .collect();

        // Encode each connection's frames and the serial expectation of
        // their bodies (replay against a per-connection oracle).
        let mut frames: Vec<Vec<Vec<u8>>> = Vec::new();
        let mut expect: Vec<Vec<Vec<u8>>> = Vec::new();
        for (c, conn_frames) in per_conn.iter().enumerate() {
            let base = c as u64 * 1_000;
            let mut oracle = std::collections::BTreeMap::new();
            let mut encoded = Vec::new();
            let mut bodies = Vec::new();
            for frame in conn_frames {
                let ops: Vec<BatchOp> = frame
                    .iter()
                    .map(|&(kind, key, draw)| op_from(kind, base + key, draw))
                    .collect();
                let results: Vec<Option<Value>> = ops
                    .iter()
                    .map(|op| match op {
                        BatchOp::Get(k) => oracle.get(k).cloned(),
                        BatchOp::Put(k, v) | BatchOp::PutTtl(k, v, _) => {
                            oracle.insert(*k, v.clone())
                        }
                        BatchOp::Del(k) => oracle.remove(k),
                    })
                    .collect();
                let mut request = Vec::new();
                wire::encode_request(&ops, &mut request).expect("encode request");
                encoded.push(request);
                let mut response = Vec::new();
                wire::encode_response(&results, &mut response).expect("encode response");
                // Compare frame *bodies*; the length prefix is framing.
                bodies.push(response[4..].to_vec());
            }
            frames.push(encoded);
            expect.push(bodies);
        }

        // Interleave: round-robin one frame per connection per turn, all
        // pipelined before any response is read.
        let mut turn = 0usize;
        loop {
            let mut sent_any = false;
            for (c, conn_frames) in frames.iter().enumerate() {
                if let Some(frame) = conn_frames.get(turn) {
                    conns[c].send(frame);
                    sent_any = true;
                }
            }
            if !sent_any {
                break;
            }
            turn += 1;
        }

        // Gather: every connection's responses, in its own request order,
        // must be byte-identical to the serial replay.
        for (c, bodies) in expect.iter().enumerate() {
            for (f, body) in bodies.iter().enumerate() {
                let got = conns[c].recv_body();
                prop_assert_eq!(
                    &got,
                    body,
                    "connection {} frame {} diverged from serial execution",
                    c,
                    f
                );
            }
        }

        let stats = server.shutdown();
        prop_assert_eq!(stats.wire_errors, 0);
    }
}
