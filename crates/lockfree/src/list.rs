//! Harris-style lock-free sorted linked list.
//!
//! This is the classic CAS-based sorted list with a "deleted" mark stored in
//! bit 0 of each node's `next` pointer (Harris 2001, as used throughout
//! Fraser's thesis).  Removal is two-phase: the node is first *logically*
//! deleted by marking its `next` pointer, then *physically* unlinked — either
//! by the remover itself or by any later traversal that encounters the marked
//! node.  Unlinked nodes are retired through epoch-based reclamation.
//!
//! The list stores `u64` keys in ascending order and is used directly as the
//! bucket chain of [`crate::LockFreeHashTable`].

use std::sync::atomic::{AtomicUsize, Ordering};

use txepoch::{Collector, LocalHandle};

const MARK: usize = 1;

#[inline]
fn marked(p: usize) -> bool {
    p & MARK != 0
}

#[inline]
fn unmark(p: usize) -> usize {
    p & !MARK
}

#[inline]
fn with_mark(p: usize) -> usize {
    p | MARK
}

/// A list node.  `next` packs the successor pointer with the deletion mark.
struct Node {
    key: u64,
    next: AtomicUsize,
}

impl Node {
    fn alloc(key: u64, next: usize) -> *mut Node {
        Box::into_raw(Box::new(Node {
            key,
            next: AtomicUsize::new(next),
        }))
    }
}

/// A lock-free sorted linked list of `u64` keys.
///
/// # Examples
///
/// ```
/// use lockfree::HarrisList;
/// let collector = txepoch::Collector::new();
/// let list = HarrisList::new(collector.clone());
/// let handle = collector.register();
/// assert!(list.insert(3, &handle));
/// assert!(list.contains(3, &handle));
/// assert!(list.remove(3, &handle));
/// assert!(!list.contains(3, &handle));
/// ```
pub struct HarrisList {
    head: AtomicUsize,
    collector: Collector,
}

// SAFETY: the list is a standard lock-free structure; all shared mutation
// goes through atomics and reclamation is deferred via epochs.
unsafe impl Send for HarrisList {}
// SAFETY: as above.
unsafe impl Sync for HarrisList {}

/// Result of a search: the address of the predecessor's `next` field and the
/// (unmarked) pointer to the first node with `node.key >= key`.
struct Window {
    prev_link: *const AtomicUsize,
    curr: usize,
}

impl HarrisList {
    /// Creates an empty list tied to `collector`.
    pub fn new(collector: Collector) -> Self {
        Self {
            head: AtomicUsize::new(0),
            collector,
        }
    }

    /// The epoch collector used for node reclamation.
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// Finds the window for `key`, physically unlinking any marked nodes
    /// encountered on the way (the caller must hold an epoch guard).
    fn search(&self, key: u64, handle: &LocalHandle) -> Window {
        'retry: loop {
            let mut prev_link: *const AtomicUsize = &self.head;
            // SAFETY: `prev_link` starts at a field of `self` and is only ever
            // advanced to `next` fields of nodes protected by the epoch guard.
            let mut curr = unsafe { (*prev_link).load(Ordering::Acquire) };
            debug_assert!(!marked(curr), "head/next links store unmarked pointers");
            loop {
                if unmark(curr) == 0 {
                    return Window { prev_link, curr: 0 };
                }
                // SAFETY: `curr` was read from a reachable link while pinned,
                // so the node cannot have been freed yet.
                let curr_node = unsafe { &*(unmark(curr) as *const Node) };
                let next = curr_node.next.load(Ordering::Acquire);
                if marked(next) {
                    // `curr` is logically deleted: unlink it before moving on.
                    // SAFETY: `prev_link` is valid (see above).
                    let link = unsafe { &*prev_link };
                    if link
                        .compare_exchange(curr, unmark(next), Ordering::AcqRel, Ordering::Acquire)
                        .is_err()
                    {
                        continue 'retry;
                    }
                    let guard = handle.pin();
                    // SAFETY: the node has just been unlinked by the CAS above
                    // and can no longer be reached by new traversals.
                    unsafe { guard.defer_drop(unmark(curr) as *mut Node) };
                    curr = unmark(next);
                    continue;
                }
                if curr_node.key >= key {
                    return Window { prev_link, curr };
                }
                prev_link = &curr_node.next;
                curr = next;
            }
        }
    }

    /// Returns whether `key` is in the list.
    pub fn contains(&self, key: u64, handle: &LocalHandle) -> bool {
        let _guard = handle.pin();
        let w = self.search(key, handle);
        if unmark(w.curr) == 0 {
            return false;
        }
        // SAFETY: protected by the guard above.
        let node = unsafe { &*(unmark(w.curr) as *const Node) };
        node.key == key
    }

    /// Inserts `key`; returns `false` if it was already present.
    pub fn insert(&self, key: u64, handle: &LocalHandle) -> bool {
        let _guard = handle.pin();
        let mut new_node: *mut Node = std::ptr::null_mut();
        loop {
            let w = self.search(key, handle);
            if unmark(w.curr) != 0 {
                // SAFETY: protected by the guard above.
                let node = unsafe { &*(unmark(w.curr) as *const Node) };
                if node.key == key {
                    if !new_node.is_null() {
                        // SAFETY: the speculatively allocated node was never
                        // published.
                        drop(unsafe { Box::from_raw(new_node) });
                    }
                    return false;
                }
            }
            if new_node.is_null() {
                new_node = Node::alloc(key, w.curr);
            } else {
                // SAFETY: `new_node` is still private to this thread.
                unsafe { (*new_node).next.store(w.curr, Ordering::Relaxed) };
            }
            // SAFETY: `prev_link` is protected by the guard.
            let link = unsafe { &*w.prev_link };
            if link
                .compare_exchange(
                    w.curr,
                    new_node as usize,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                return true;
            }
        }
    }

    /// Removes `key`; returns `false` if it was not present.
    pub fn remove(&self, key: u64, handle: &LocalHandle) -> bool {
        let _guard = handle.pin();
        loop {
            let w = self.search(key, handle);
            if unmark(w.curr) == 0 {
                return false;
            }
            // SAFETY: protected by the guard above.
            let node = unsafe { &*(unmark(w.curr) as *const Node) };
            if node.key != key {
                return false;
            }
            let next = node.next.load(Ordering::Acquire);
            if marked(next) {
                // Someone else is already deleting it; help and report absent.
                continue;
            }
            // Logical deletion: mark the next pointer.
            if node
                .next
                .compare_exchange(next, with_mark(next), Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue;
            }
            // Physical deletion: try to unlink immediately; if the CAS fails a
            // later search will clean up (and retire) the node.
            // SAFETY: `prev_link` is protected by the guard.
            let link = unsafe { &*w.prev_link };
            if link
                .compare_exchange(w.curr, unmark(next), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                let guard = handle.pin();
                // SAFETY: unlinked by the CAS above; unreachable for new
                // traversals.
                unsafe { guard.defer_drop(unmark(w.curr) as *mut Node) };
            } else {
                let _ = self.search(key, handle);
            }
            return true;
        }
    }

    /// Iterates the current keys (not linearizable; test/diagnostic helper).
    pub fn snapshot(&self, handle: &LocalHandle) -> Vec<u64> {
        let _guard = handle.pin();
        let mut out = Vec::new();
        let mut curr = self.head.load(Ordering::Acquire);
        while unmark(curr) != 0 {
            // SAFETY: protected by the guard above.
            let node = unsafe { &*(unmark(curr) as *const Node) };
            let next = node.next.load(Ordering::Acquire);
            if !marked(next) {
                out.push(node.key);
            }
            curr = unmark(next);
        }
        out
    }
}

impl Drop for HarrisList {
    fn drop(&mut self) {
        // Exclusive access: free the remaining nodes directly.
        let mut curr = unmark(*self.head.get_mut());
        while curr != 0 {
            // SAFETY: nodes were allocated with `Box::into_raw` and nothing
            // else can reference them during drop.
            let node = unsafe { Box::from_raw(curr as *mut Node) };
            curr = unmark(node.next.load(Ordering::Relaxed));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::Arc;

    fn new_list() -> (HarrisList, Collector) {
        let collector = Collector::new();
        (HarrisList::new(collector.clone()), collector)
    }

    #[test]
    fn insert_remove_contains_basic() {
        let (list, collector) = new_list();
        let h = collector.register();
        assert!(!list.contains(5, &h));
        assert!(list.insert(5, &h));
        assert!(!list.insert(5, &h));
        assert!(list.contains(5, &h));
        assert!(list.remove(5, &h));
        assert!(!list.remove(5, &h));
        assert!(!list.contains(5, &h));
    }

    #[test]
    fn keys_stay_sorted_and_unique() {
        let (list, collector) = new_list();
        let h = collector.register();
        for k in [5u64, 1, 9, 3, 7, 3, 1] {
            list.insert(k, &h);
        }
        let snap = list.snapshot(&h);
        assert_eq!(snap, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn matches_btreeset_oracle_sequentially() {
        let (list, collector) = new_list();
        let h = collector.register();
        let mut oracle = BTreeSet::new();
        crate::rng::seed(99);
        for _ in 0..4_000 {
            let k = crate::rng::next_u64() % 128;
            match crate::rng::next_u64() % 3 {
                0 => assert_eq!(list.insert(k, &h), oracle.insert(k)),
                1 => assert_eq!(list.remove(k, &h), oracle.remove(&k)),
                _ => assert_eq!(list.contains(k, &h), oracle.contains(&k)),
            }
        }
        let snap = list.snapshot(&h);
        let expect: Vec<u64> = oracle.into_iter().collect();
        assert_eq!(snap, expect);
    }

    #[test]
    fn concurrent_inserts_and_removes_preserve_membership() {
        // Each thread owns a disjoint key range, so the final contents are
        // exactly predictable despite arbitrary interleavings.
        const THREADS: u64 = 4;
        const RANGE: u64 = 512;
        let (list, collector) = new_list();
        let list = Arc::new(list);
        let mut joins = Vec::new();
        for t in 0..THREADS {
            let list = Arc::clone(&list);
            let collector = collector.clone();
            joins.push(std::thread::spawn(move || {
                let h = collector.register();
                let base = t * RANGE;
                for k in 0..RANGE {
                    assert!(list.insert(base + k, &h));
                }
                for k in 0..RANGE {
                    if k % 2 == 0 {
                        assert!(list.remove(base + k, &h));
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let h = collector.register();
        for t in 0..THREADS {
            for k in 0..RANGE {
                let key = t * RANGE + k;
                assert_eq!(list.contains(key, &h), k % 2 == 1, "key {key}");
            }
        }
    }

    #[test]
    fn contended_single_key_has_exactly_one_winner() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let (list, collector) = new_list();
        let list = Arc::new(list);
        let wins = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for _ in 0..8 {
            let list = Arc::clone(&list);
            let collector = collector.clone();
            let wins = Arc::clone(&wins);
            joins.push(std::thread::spawn(move || {
                let h = collector.register();
                if list.insert(42, &h) {
                    wins.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(wins.load(Ordering::Relaxed), 1);
    }
}
