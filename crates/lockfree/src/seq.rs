//! Optimized sequential baselines.
//!
//! The paper normalizes throughput against "optimized sequential code; it is
//! not safe for multi-threaded use, but it provides a reference point of the
//! cost of an implementation without concurrency control."  These structures
//! mirror the shape of the concurrent ones (chained hash table, skip list)
//! but use plain loads and stores.

use crate::rng::random_level;
use crate::SequentialIntSet;

// ---------------------------------------------------------------------------
// Sequential chained hash table
// ---------------------------------------------------------------------------

/// A single-threaded chained hash table storing a set of `u64` keys.
///
/// # Examples
///
/// ```
/// use lockfree::{SeqHashTable, SequentialIntSet};
/// let mut t = SeqHashTable::new(1024);
/// assert!(t.insert(5));
/// assert!(t.contains(5));
/// assert!(t.remove(5));
/// assert!(t.is_empty());
/// ```
#[derive(Debug)]
pub struct SeqHashTable {
    buckets: Vec<Vec<u64>>,
    mask: u64,
    len: usize,
}

#[inline]
fn hash_key(key: u64) -> u64 {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17
}

impl SeqHashTable {
    /// Creates a table with `buckets` chains (rounded up to a power of two).
    pub fn new(buckets: usize) -> Self {
        let len = buckets.next_power_of_two().max(1);
        Self {
            buckets: vec![Vec::new(); len],
            mask: len as u64 - 1,
            len: 0,
        }
    }

    #[inline]
    fn bucket_mut(&mut self, key: u64) -> &mut Vec<u64> {
        let idx = (hash_key(key) & self.mask) as usize;
        &mut self.buckets[idx]
    }

    #[inline]
    fn bucket(&self, key: u64) -> &Vec<u64> {
        &self.buckets[(hash_key(key) & self.mask) as usize]
    }
}

impl SequentialIntSet for SeqHashTable {
    fn insert(&mut self, key: u64) -> bool {
        let chain = self.bucket_mut(key);
        if chain.contains(&key) {
            return false;
        }
        chain.push(key);
        self.len += 1;
        true
    }

    fn remove(&mut self, key: u64) -> bool {
        let chain = self.bucket_mut(key);
        if let Some(pos) = chain.iter().position(|&k| k == key) {
            chain.swap_remove(pos);
            self.len -= 1;
            true
        } else {
            false
        }
    }

    fn contains(&self, key: u64) -> bool {
        self.bucket(key).contains(&key)
    }

    fn len(&self) -> usize {
        self.len
    }
}

// ---------------------------------------------------------------------------
// Sequential skip list
// ---------------------------------------------------------------------------

const MAX_LEVEL: usize = 32;

struct SeqNode {
    key: u64,
    next: Vec<*mut SeqNode>,
}

/// A single-threaded skip list storing a set of `u64` keys.
///
/// # Examples
///
/// ```
/// use lockfree::{SeqSkipList, SequentialIntSet};
/// let mut l = SeqSkipList::new();
/// assert!(l.insert(3));
/// assert!(l.insert(1));
/// assert!(!l.insert(3));
/// assert_eq!(l.len(), 2);
/// ```
pub struct SeqSkipList {
    head: Vec<*mut SeqNode>,
    len: usize,
}

// SAFETY: the list exclusively owns every node it points to; moving the whole
// structure to another thread transfers that ownership wholesale.  It remains
// unsafe to *share* (`!Sync`), which is exactly the paper's "not safe for
// multi-threaded use" caveat.
unsafe impl Send for SeqSkipList {}

impl Default for SeqSkipList {
    fn default() -> Self {
        Self::new()
    }
}

impl SeqSkipList {
    /// Creates an empty skip list.
    pub fn new() -> Self {
        Self {
            head: vec![std::ptr::null_mut(); MAX_LEVEL],
            len: 0,
        }
    }

    /// Locates the predecessors of `key` at every level.
    fn find_preds(&mut self, key: u64) -> Vec<*mut *mut SeqNode> {
        let mut preds: Vec<*mut *mut SeqNode> = vec![std::ptr::null_mut(); MAX_LEVEL];
        for lvl in (0..MAX_LEVEL).rev() {
            let mut link: *mut *mut SeqNode = &mut self.head[lvl];
            loop {
                // SAFETY: `link` always points either at a head slot or at a
                // `next` slot of a live node owned by this list.
                let node = unsafe { *link };
                if node.is_null() {
                    break;
                }
                // SAFETY: nodes are owned by the list and alive until removed.
                let node_ref = unsafe { &mut *node };
                if node_ref.key < key {
                    link = &mut node_ref.next[lvl];
                } else {
                    break;
                }
            }
            preds[lvl] = link;
        }
        preds
    }
}

impl SequentialIntSet for SeqSkipList {
    fn insert(&mut self, key: u64) -> bool {
        let preds = self.find_preds(key);
        // SAFETY: see `find_preds`.
        let curr = unsafe { *preds[0] };
        if !curr.is_null() {
            // SAFETY: as above.
            if unsafe { (*curr).key } == key {
                return false;
            }
        }
        let level = random_level(MAX_LEVEL);
        let node = Box::into_raw(Box::new(SeqNode {
            key,
            next: vec![std::ptr::null_mut(); level],
        }));
        for (lvl, &pred) in preds.iter().enumerate().take(level) {
            // SAFETY: `pred` points into a live node (or the head) and `node`
            // is freshly allocated.
            unsafe {
                let node_ref = &mut *node;
                node_ref.next[lvl] = *pred;
                *pred = node;
            }
        }
        self.len += 1;
        true
    }

    fn remove(&mut self, key: u64) -> bool {
        let preds = self.find_preds(key);
        // SAFETY: see `find_preds`.
        let curr = unsafe { *preds[0] };
        if curr.is_null() {
            return false;
        }
        // SAFETY: as above.
        if unsafe { (*curr).key } != key {
            return false;
        }
        // SAFETY: the node is alive; its level equals its `next` length.
        let level = unsafe { (*curr).next.len() };
        for (lvl, &pred) in preds.iter().enumerate().take(level) {
            // SAFETY: predecessors at levels below the node's height point at
            // the node itself; splice it out.
            unsafe {
                if *pred == curr {
                    let curr_ref = &*curr;
                    *pred = curr_ref.next[lvl];
                }
            }
        }
        // SAFETY: the node is now unlinked and uniquely owned.
        drop(unsafe { Box::from_raw(curr) });
        self.len -= 1;
        true
    }

    fn contains(&self, key: u64) -> bool {
        let mut level = MAX_LEVEL;
        let mut next_slots: &[*mut SeqNode] = &self.head;
        while level > 0 {
            level -= 1;
            loop {
                let node = next_slots[level];
                if node.is_null() {
                    break;
                }
                // SAFETY: nodes are owned by the list and alive.
                let node_ref = unsafe { &*node };
                match node_ref.key.cmp(&key) {
                    std::cmp::Ordering::Less => next_slots = &node_ref.next,
                    std::cmp::Ordering::Equal => return true,
                    std::cmp::Ordering::Greater => break,
                }
            }
        }
        false
    }

    fn len(&self) -> usize {
        self.len
    }
}

impl Drop for SeqSkipList {
    fn drop(&mut self) {
        let mut curr = self.head[0];
        while !curr.is_null() {
            // SAFETY: level-0 links thread through every node exactly once.
            let node = unsafe { Box::from_raw(curr) };
            curr = node.next[0];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn oracle_check<S: SequentialIntSet>(mut set: S, seed: u64, range: u64, ops: usize) {
        let mut oracle = BTreeSet::new();
        crate::rng::seed(seed);
        for _ in 0..ops {
            let k = crate::rng::next_u64() % range;
            match crate::rng::next_u64() % 3 {
                0 => assert_eq!(set.insert(k), oracle.insert(k)),
                1 => assert_eq!(set.remove(k), oracle.remove(&k)),
                _ => assert_eq!(set.contains(k), oracle.contains(&k)),
            }
            assert_eq!(set.len(), oracle.len());
        }
    }

    #[test]
    fn hash_table_matches_oracle() {
        oracle_check(SeqHashTable::new(64), 1, 300, 10_000);
    }

    #[test]
    fn skip_list_matches_oracle() {
        oracle_check(SeqSkipList::new(), 2, 300, 10_000);
    }

    #[test]
    fn hash_table_basics() {
        let mut t = SeqHashTable::new(4);
        assert!(t.is_empty());
        assert!(t.insert(1));
        assert!(t.insert(2));
        assert!(!t.insert(2));
        assert_eq!(t.len(), 2);
        assert!(t.remove(1));
        assert!(!t.remove(1));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn skip_list_handles_many_sequential_keys() {
        let mut l = SeqSkipList::new();
        for k in 0..2_000u64 {
            assert!(l.insert(k));
        }
        for k in 0..2_000u64 {
            assert!(l.contains(k));
        }
        for k in (0..2_000u64).step_by(2) {
            assert!(l.remove(k));
        }
        assert_eq!(l.len(), 1_000);
        for k in 0..2_000u64 {
            assert_eq!(l.contains(k), k % 2 == 1);
        }
    }
}
