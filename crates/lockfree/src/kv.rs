//! Lock-free (CAS-based) key-value hash map, the non-STM baseline for the
//! sharded KV-store benchmarks.
//!
//! Structurally this is [`crate::LockFreeHashTable`] with a value word
//! attached to each node: a fixed array of bucket heads, each bucket a
//! Harris-style sorted chain with the deletion mark in bit 0 of the `next`
//! pointer.  Values use the **same representation as the STM store** (the
//! point of a baseline is an apples-to-apples comparison): each value is a
//! single word — small payloads inline, larger ones behind an immutable
//! epoch-reclaimed [`spectm_kv::ValueCell`] — held in a plain `AtomicUsize`
//! per node.  A `put` on an existing key is a single atomic swap of the
//! value word — the fastest update the hardware offers — after which the
//! put-ter owns the displaced word and retires its cell through the epoch
//! collector.  A node owns whatever word it holds when it dies, so its
//! `Drop` frees that cell (by then the grace period has passed).
//!
//! For range scans the map keeps a [`crate::LockFreeSkipList`] of keys next
//! to the hash table; [`LockFreeKvMap::scan`] walks it in order and looks
//! every key up in the table.
//!
//! Three caveats, all inherent to the CAS-based design and shared by the
//! paper's lock-free baselines:
//!
//! * a `put` racing with a `remove` of the same key may update the value of
//!   a node that is concurrently being logically deleted; the put retries as
//!   a fresh insert, but the previous-value it reports is advisory under such
//!   races;
//! * there is no multi-key atomicity: [`LockFreeKvMap::rmw_add`] applies a
//!   per-key CAS loop, so a concurrent reader can observe a partially
//!   applied multi-key update.  The STM store (the `spectm-kv` crate)
//!   provides the atomic variant; the contrast is the point of the
//!   benchmark;
//! * [`LockFreeKvMap::scan`] is **not a snapshot**: the key index and the
//!   value table are updated by separate CASes (and each value is read by a
//!   separate load), so a scan concurrent with writes can observe a torn
//!   multi-key update, miss a freshly inserted key, or return a value newer
//!   than a neighbour's.  `ShardedKv::scan` runs the same shape as one full
//!   transaction and rules all of that out — the contrast is, again, the
//!   point.

use std::sync::atomic::{AtomicUsize, Ordering};

use spectm_kv::value::{decode_value, encode_value, free_value, retire_value};
use spectm_kv::{BatchOp, KvError, Value, MAX_VALUE_LEN};
use txepoch::{Collector, LocalHandle};

use crate::skiplist::LockFreeSkipList;
use crate::ConcurrentIntSet;

const MARK: usize = 1;

#[inline]
fn marked(p: usize) -> bool {
    p & MARK != 0
}

#[inline]
fn unmark(p: usize) -> usize {
    p & !MARK
}

#[inline]
fn with_mark(p: usize) -> usize {
    p | MARK
}

/// A chain node.  `next` packs the successor pointer with the deletion mark;
/// `value` holds the current value word, swapped in place.  A value word of
/// zero is the "no value" sentinel used only on speculative nodes whose word
/// was published elsewhere (zero is never a legal encoded word).
struct Node {
    key: u64,
    value: AtomicUsize,
    next: AtomicUsize,
}

impl Node {
    fn alloc(key: u64, word: usize, next: usize) -> *mut Node {
        Box::into_raw(Box::new(Node {
            key,
            value: AtomicUsize::new(word),
            next: AtomicUsize::new(next),
        }))
    }
}

impl Drop for Node {
    fn drop(&mut self) {
        let word = *self.value.get_mut();
        if word != 0 {
            // SAFETY: a node is dropped either past its grace period (epoch
            // deferral) or under exclusive access (map drop / unpublished
            // speculative node); the word it still holds is owned by it.
            unsafe { free_value(word) };
        }
    }
}

/// Result of a chain search: the predecessor's `next` field and the
/// (possibly null) pointer to the first node with `node.key >= key`.
struct Window {
    prev_link: *const AtomicUsize,
    curr: usize,
}

/// A lock-free hash map from `u64` keys to byte values.
///
/// # Examples
///
/// ```
/// use lockfree::LockFreeKvMap;
/// use spectm_kv::Value;
///
/// let map = LockFreeKvMap::new(64, txepoch::Collector::new());
/// let handle = map.collector().register();
/// assert_eq!(map.put(7, b"seventy", &handle).unwrap(), None);
/// assert_eq!(map.get(7, &handle), Some(Value::new(b"seventy")));
/// assert_eq!(
///     map.put(7, b"a value long enough to live out of line", &handle).unwrap(),
///     Some(Value::new(b"seventy"))
/// );
/// assert_eq!(
///     map.del(7, &handle),
///     Some(Value::new(b"a value long enough to live out of line"))
/// );
/// assert_eq!(map.get(7, &handle), None);
/// ```
pub struct LockFreeKvMap {
    buckets: Box<[AtomicUsize]>,
    mask: u64,
    collector: Collector,
    /// Ordered key index for [`LockFreeKvMap::scan`]; maintained *next to*
    /// the hash table, not atomically with it (see the module docs).
    index: LockFreeSkipList,
}

// SAFETY: all shared mutation goes through atomics; node and value-cell
// reclamation is deferred through epochs, exactly as in the other lock-free
// structures.
unsafe impl Send for LockFreeKvMap {}
// SAFETY: as above.
unsafe impl Sync for LockFreeKvMap {}

#[inline]
fn hash_key(key: u64) -> u64 {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17
}

impl LockFreeKvMap {
    /// Creates a map with `buckets` chains (rounded up to a power of two),
    /// reclaiming memory through `collector`.
    pub fn new(buckets: usize, collector: Collector) -> Self {
        let len = buckets.next_power_of_two().max(1);
        // The index shares the collector (cloning yields a handle to the
        // same domain), so one registered `LocalHandle` serves both.
        let index = LockFreeSkipList::new(collector.clone());
        Self {
            buckets: (0..len).map(|_| AtomicUsize::new(0)).collect(),
            mask: len as u64 - 1,
            collector,
            index,
        }
    }

    /// The epoch collector threads must register with.
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// Number of bucket chains.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    #[inline]
    fn bucket(&self, key: u64) -> &AtomicUsize {
        &self.buckets[(hash_key(key) & self.mask) as usize]
    }

    /// Finds the window for `key` in its bucket, physically unlinking marked
    /// nodes on the way.  The caller must hold an epoch guard.
    fn search(&self, key: u64, handle: &LocalHandle) -> Window {
        'retry: loop {
            let mut prev_link: *const AtomicUsize = self.bucket(key);
            // SAFETY: `prev_link` starts at a bucket head of `self` and only
            // advances to `next` fields of epoch-protected nodes.
            let mut curr = unsafe { (*prev_link).load(Ordering::Acquire) };
            loop {
                if unmark(curr) == 0 {
                    return Window { prev_link, curr: 0 };
                }
                // SAFETY: read from a reachable link while pinned.
                let curr_node = unsafe { &*(unmark(curr) as *const Node) };
                let next = curr_node.next.load(Ordering::Acquire);
                if marked(next) {
                    // SAFETY: `prev_link` is valid (see above).
                    let link = unsafe { &*prev_link };
                    if link
                        .compare_exchange(curr, unmark(next), Ordering::AcqRel, Ordering::Acquire)
                        .is_err()
                    {
                        continue 'retry;
                    }
                    let guard = handle.pin();
                    // SAFETY: just unlinked; unreachable for new traversals.
                    // The node's drop frees whatever value word it holds.
                    unsafe { guard.defer_drop(unmark(curr) as *mut Node) };
                    curr = unmark(next);
                    continue;
                }
                if curr_node.key >= key {
                    return Window { prev_link, curr };
                }
                prev_link = &curr_node.next;
                curr = next;
            }
        }
    }

    /// Returns the value stored under `key`, if present.
    #[inline]
    pub fn get(&self, key: u64, handle: &LocalHandle) -> Option<Value> {
        let _guard = handle.pin();
        let w = self.search(key, handle);
        if unmark(w.curr) == 0 {
            return None;
        }
        // SAFETY: protected by the guard above.
        let node = unsafe { &*(unmark(w.curr) as *const Node) };
        if node.key != key {
            return None;
        }
        let word = node.value.load(Ordering::Acquire);
        // SAFETY: `_guard` predates any retirement of the cell behind a
        // word read from a reachable node, so the copy-out is protected.
        Some(unsafe { decode_value(word) })
    }

    /// Stores `value` under `key`, returning the previous value if the key
    /// was present (advisory under concurrent removal, see the module docs),
    /// or [`KvError::ValueTooLarge`] beyond [`MAX_VALUE_LEN`] bytes.
    #[inline]
    pub fn put(
        &self,
        key: u64,
        value: &[u8],
        handle: &LocalHandle,
    ) -> Result<Option<Value>, KvError> {
        if value.len() > MAX_VALUE_LEN {
            return Err(KvError::ValueTooLarge { len: value.len() });
        }
        let guard = handle.pin();
        let mut new_node: *mut Node = std::ptr::null_mut();
        // The speculative value word, owned by this operation until it is
        // published (swapped into a live node, or inserted with the node).
        let mut word: usize = 0;
        loop {
            let w = self.search(key, handle);
            if unmark(w.curr) != 0 {
                // SAFETY: protected by the guard above.
                let node = unsafe { &*(unmark(w.curr) as *const Node) };
                if node.key == key {
                    if word == 0 {
                        word = encode_value(value);
                    }
                    let old = node.value.swap(word, Ordering::AcqRel);
                    if marked(node.next.load(Ordering::Acquire)) {
                        // The node was logically deleted concurrently; the
                        // swapped-in word now belongs to the dying node
                        // (its drop frees it) and the displaced word to us.
                        // Retry as a fresh insert with a new word.
                        // SAFETY: the swap displaced `old` from its only
                        // reachable location, making us its owner.
                        unsafe { retire_value(old, &guard) };
                        word = 0;
                        continue;
                    }
                    if !new_node.is_null() {
                        // SAFETY: the speculative node was never published;
                        // zero its word first — the word was just published
                        // into the existing node and must survive the drop.
                        unsafe {
                            (*new_node).value.store(0, Ordering::Relaxed);
                            drop(Box::from_raw(new_node));
                        }
                    }
                    // SAFETY: the swap displaced `old`; we own it (see the
                    // module docs for the advisory caveat under races).
                    let out = unsafe { decode_value(old) };
                    // SAFETY: as above; pinned readers are protected.
                    unsafe { retire_value(old, &guard) };
                    return Ok(Some(out));
                }
            }
            if word == 0 {
                word = encode_value(value);
            }
            if new_node.is_null() {
                new_node = Node::alloc(key, word, w.curr);
            } else {
                // SAFETY: `new_node` is still private to this thread.  The
                // value word is refreshed too: a dying-node race above may
                // have consumed the word the node was allocated with.
                unsafe {
                    (*new_node).next.store(w.curr, Ordering::Relaxed);
                    (*new_node).value.store(word, Ordering::Relaxed);
                }
            }
            // SAFETY: `prev_link` is protected by the guard.
            let link = unsafe { &*w.prev_link };
            if link
                .compare_exchange(
                    w.curr,
                    new_node as usize,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                // Mirror the fresh key into the ordered index.  This is a
                // second, independent CAS: scans between the two steps miss
                // the key (see the module docs — no snapshot guarantee).
                self.index.insert(key, handle);
                return Ok(None);
            }
        }
    }

    /// Removes `key`, returning the value it held.
    #[inline]
    pub fn del(&self, key: u64, handle: &LocalHandle) -> Option<Value> {
        let _outer = handle.pin();
        loop {
            let w = self.search(key, handle);
            if unmark(w.curr) == 0 {
                return None;
            }
            // SAFETY: protected by the guard above.
            let node = unsafe { &*(unmark(w.curr) as *const Node) };
            if node.key != key {
                return None;
            }
            let next = node.next.load(Ordering::Acquire);
            if marked(next) {
                // Another remover is already deleting it; help and report
                // absent.
                continue;
            }
            let word = node.value.load(Ordering::Acquire);
            // Logical deletion first, then best-effort physical unlink.
            if node
                .next
                .compare_exchange(next, with_mark(next), Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue;
            }
            // Copy the payload out before the node can complete its grace
            // period.  The word stays owned by the node (a racing put may
            // still swap it; whoever holds it last frees it via Node::drop).
            // SAFETY: `_outer` predates any retirement of the cell.
            let out = unsafe { decode_value(word) };
            // SAFETY: `prev_link` is protected by the guard.
            let link = unsafe { &*w.prev_link };
            if link
                .compare_exchange(w.curr, unmark(next), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                let guard = handle.pin();
                // SAFETY: unlinked by the CAS above; its drop frees the
                // value word it holds at drop time.
                unsafe { guard.defer_drop(unmark(w.curr) as *mut Node) };
            } else {
                let _ = self.search(key, handle);
            }
            // Drop the key from the ordered index (again a separate step; a
            // racing re-insert of the same key can leave the index and the
            // table briefly — or, under unlucky interleavings, durably —
            // disagreeing.  The STM store's combined transactions are how
            // that is actually fixed).
            self.index.remove(key, handle);
            return Some(out);
        }
    }

    /// Adds `delta` to the value of each key in `keys` that is present,
    /// interpreting values as 8-byte little-endian counters (the same
    /// convention as `ShardedKv::rmw_add`).
    ///
    /// Each key's update is individually atomic (a CAS loop on the value
    /// word) but there is **no atomicity across keys** — the lock-free
    /// design has no way to compose updates.  Returns `false` if any key was
    /// absent (the updates to the keys that were present still took effect).
    pub fn rmw_add(&self, keys: &[u64], delta: u64, handle: &LocalHandle) -> bool {
        let mut all_present = true;
        for &key in keys {
            let guard = handle.pin();
            let mut found = false;
            loop {
                let w = self.search(key, handle);
                if unmark(w.curr) == 0 {
                    break;
                }
                // SAFETY: protected by the guard above.
                let node = unsafe { &*(unmark(w.curr) as *const Node) };
                if node.key != key || marked(node.next.load(Ordering::Acquire)) {
                    break;
                }
                let old = node.value.load(Ordering::Acquire);
                // SAFETY: `guard` predates any retirement of the cell.
                let counter = unsafe { decode_value(old) }.as_u64();
                let new_word = encode_value(&counter.wrapping_add(delta).to_le_bytes());
                match node.value.compare_exchange(
                    old,
                    new_word,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS displaced `old`; we own it.
                        unsafe { retire_value(old, &guard) };
                        found = true;
                        break;
                    }
                    Err(_) => {
                        // SAFETY: `new_word` was never published.
                        unsafe { free_value(new_word) };
                        // Re-search: the node may have been deleted.
                    }
                }
            }
            all_present &= found;
        }
        all_present
    }

    /// Executes `ops` in request order under **one epoch pin**, returning
    /// each operation's result at its request position (the stored value
    /// for a get, the displaced previous value for a put or delete) — the
    /// CAS-based twin of `ShardedKv::execute_batch`, kept API-compatible so
    /// the workload drivers compare the two apples-to-apples.
    ///
    /// The only amortization available here is the pin itself (there is no
    /// router and no transaction setup to share), and the only guarantees
    /// are the per-operation ones of the underlying map: same-key
    /// operations apply in request order on this thread, but there is no
    /// group atomicity of any kind — concurrent readers can observe any
    /// interleaving, exactly as for the map's single-key API.  An oversized
    /// put value rejects the whole batch before anything executes.
    pub fn execute_batch(
        &self,
        ops: &[BatchOp],
        handle: &LocalHandle,
    ) -> Result<Vec<Option<Value>>, KvError> {
        let mut out = Vec::new();
        self.execute_batch_into(ops, &mut out, handle)?;
        Ok(out)
    }

    /// [`LockFreeKvMap::execute_batch`] writing into a caller-provided
    /// buffer (cleared first), so a request loop can run allocation-free in
    /// the steady state.
    pub fn execute_batch_into(
        &self,
        ops: &[BatchOp],
        out: &mut Vec<Option<Value>>,
        handle: &LocalHandle,
    ) -> Result<(), KvError> {
        spectm_kv::batch::validate_ops(ops)?;
        out.clear();
        // A one-operation batch has nothing to amortize: skip the batch
        // guard (the operation pins for itself), so degenerate batches
        // cost what the plain API costs.
        let _batch_guard = if ops.len() > 1 {
            Some(handle.pin())
        } else {
            None
        };
        for op in ops {
            out.push(match op {
                BatchOp::Get(key) => self.get(*key, handle),
                BatchOp::Put(key, value) => self
                    .put(*key, value, handle)
                    .expect("batch values were validated above"),
                BatchOp::Del(key) => self.del(*key, handle),
            });
        }
        Ok(())
    }

    /// Returns up to `limit` `(key, value)` pairs with `key >= start`, in
    /// ascending key order, by walking the ordered key index and looking
    /// each key up in the hash table.
    ///
    /// **Not a snapshot**: every index link and every value is read by an
    /// independent atomic operation, so concurrent writers can make the
    /// result internally inconsistent (torn multi-key updates, missed
    /// fresh inserts, value/neighbour skew).  Compare `ShardedKv::scan` in
    /// `spectm-kv`, which runs the same shape as one full transaction.
    pub fn scan(&self, start: u64, limit: usize, handle: &LocalHandle) -> Vec<(u64, Value)> {
        let keys = self.index.collect_from(start, limit, handle);
        let mut out = Vec::with_capacity(keys.len());
        for key in keys {
            // A key can vanish between the index walk and this lookup;
            // skipping it is the honest behaviour for this baseline.
            if let Some(value) = self.get(key, handle) {
                out.push((key, value));
            }
        }
        out
    }

    /// Collects the current `(key, value)` pairs (not linearizable; only
    /// meaningful when no concurrent operations run).
    pub fn snapshot(&self, handle: &LocalHandle) -> Vec<(u64, Value)> {
        let _guard = handle.pin();
        let mut out = Vec::new();
        for b in self.buckets.iter() {
            let mut curr = b.load(Ordering::Acquire);
            while unmark(curr) != 0 {
                // SAFETY: protected by the guard above.
                let node = unsafe { &*(unmark(curr) as *const Node) };
                let next = node.next.load(Ordering::Acquire);
                if !marked(next) {
                    let word = node.value.load(Ordering::Acquire);
                    // SAFETY: protected by the guard above.
                    out.push((node.key, unsafe { decode_value(word) }));
                }
                curr = unmark(next);
            }
        }
        out.sort_unstable();
        out
    }
}

impl Drop for LockFreeKvMap {
    fn drop(&mut self) {
        // Exclusive access: free the remaining nodes directly (each node's
        // drop frees its value word).
        for b in self.buckets.iter_mut() {
            let mut curr = unmark(*b.get_mut());
            while curr != 0 {
                // SAFETY: nodes were allocated with `Box::into_raw` and
                // nothing else references them during drop.
                let node = unsafe { Box::from_raw(curr as *mut Node) };
                curr = unmark(node.next.load(Ordering::Relaxed));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::Arc;

    fn new_map(buckets: usize) -> LockFreeKvMap {
        LockFreeKvMap::new(buckets, Collector::new())
    }

    /// Deterministic payload crossing the inline and out-of-line regimes.
    fn payload(k: u64, v: u64) -> Vec<u8> {
        let len = (v % 33) as usize;
        (0..len)
            .map(|i| (k as u8) ^ (v as u8).wrapping_mul(43) ^ i as u8)
            .collect()
    }

    #[test]
    fn get_put_del_roundtrip() {
        let map = new_map(16);
        let h = map.collector().register();
        assert_eq!(map.get(3, &h), None);
        assert_eq!(map.put(3, b"thirty", &h).unwrap(), None);
        assert_eq!(map.get(3, &h), Some(Value::new(b"thirty")));
        let big = vec![9u8; 100];
        assert_eq!(map.put(3, &big, &h).unwrap(), Some(Value::new(b"thirty")));
        assert_eq!(map.get(3, &h), Some(Value::new(&big)));
        assert_eq!(map.del(3, &h), Some(Value::new(&big)));
        assert_eq!(map.del(3, &h), None);
        assert_eq!(map.get(3, &h), None);
    }

    #[test]
    fn oversized_values_are_rejected() {
        let map = new_map(16);
        let h = map.collector().register();
        assert_eq!(
            map.put(1, &vec![0u8; MAX_VALUE_LEN + 1], &h),
            Err(KvError::ValueTooLarge {
                len: MAX_VALUE_LEN + 1
            })
        );
        assert_eq!(map.get(1, &h), None);
    }

    #[test]
    fn matches_btreemap_oracle_sequentially() {
        let map = new_map(8); // few buckets => long chains
        let h = map.collector().register();
        let mut oracle = BTreeMap::new();
        crate::rng::seed(2024);
        for _ in 0..4_000 {
            let k = crate::rng::next_u64() % 128;
            let v = crate::rng::next_u64();
            let bytes = payload(k, v);
            match crate::rng::next_u64() % 3 {
                0 => assert_eq!(
                    map.put(k, &bytes, &h).unwrap(),
                    oracle.insert(k, Value::from(bytes))
                ),
                1 => assert_eq!(map.del(k, &h), oracle.remove(&k)),
                _ => assert_eq!(map.get(k, &h), oracle.get(&k).cloned()),
            }
        }
        let expect: Vec<(u64, Value)> = oracle.into_iter().collect();
        assert_eq!(map.snapshot(&h), expect);
    }

    #[test]
    fn batches_match_the_single_op_api() {
        let map = new_map(16);
        let h = map.collector().register();
        let mut oracle = BTreeMap::new();
        crate::rng::seed(77);
        for _ in 0..60 {
            let len = (crate::rng::next_u64() % 24) as usize;
            let batch: Vec<BatchOp> = (0..len)
                .map(|_| {
                    let k = crate::rng::next_u64() % 48;
                    let v = crate::rng::next_u64();
                    match crate::rng::next_u64() % 4 {
                        0 => BatchOp::Get(k),
                        1 => BatchOp::Del(k),
                        _ => BatchOp::put(k, &payload(k, v)),
                    }
                })
                .collect();
            let expect: Vec<Option<Value>> = batch
                .iter()
                .map(|op| match op {
                    BatchOp::Get(k) => oracle.get(k).cloned(),
                    BatchOp::Put(k, v) => oracle.insert(*k, v.clone()),
                    BatchOp::Del(k) => oracle.remove(k),
                })
                .collect();
            assert_eq!(map.execute_batch(&batch, &h).unwrap(), expect);
        }
        let expect: Vec<(u64, Value)> = oracle.into_iter().collect();
        assert_eq!(map.snapshot(&h), expect);
    }

    #[test]
    fn oversized_batch_puts_reject_everything() {
        let map = new_map(16);
        let h = map.collector().register();
        map.put(1, b"keep", &h).unwrap();
        let huge = vec![0u8; MAX_VALUE_LEN + 1];
        assert_eq!(
            map.execute_batch(
                &[
                    BatchOp::put(1, b"clobbered?"),
                    BatchOp::Put(2, Value::from(huge))
                ],
                &h
            ),
            Err(KvError::ValueTooLarge {
                len: MAX_VALUE_LEN + 1
            })
        );
        assert_eq!(map.get(1, &h), Some(Value::new(b"keep")));
        assert_eq!(map.get(2, &h), None);
    }

    #[test]
    fn rmw_add_updates_present_keys() {
        let map = new_map(16);
        let h = map.collector().register();
        map.put(1, &10u64.to_le_bytes(), &h).unwrap();
        map.put(2, &20u64.to_le_bytes(), &h).unwrap();
        assert!(map.rmw_add(&[1, 2], 5, &h));
        assert_eq!(map.get(1, &h).unwrap().as_u64(), 15);
        assert_eq!(map.get(2, &h).unwrap().as_u64(), 25);
        assert!(!map.rmw_add(&[1, 99], 5, &h));
        assert_eq!(map.get(1, &h).unwrap().as_u64(), 20);
    }

    #[test]
    fn scan_returns_sorted_live_pairs_sequentially() {
        let map = new_map(16);
        let h = map.collector().register();
        for k in (0..50u64).step_by(2) {
            map.put(k, &(k + 1).to_le_bytes(), &h).unwrap();
        }
        map.del(10, &h);
        let run: Vec<(u64, u64)> = map
            .scan(6, 4, &h)
            .iter()
            .map(|(k, v)| (*k, v.as_u64()))
            .collect();
        assert_eq!(run, vec![(6, 7), (8, 9), (12, 13), (14, 15)]);
        assert!(map.scan(100, 8, &h).is_empty());
        assert!(map.scan(0, 0, &h).is_empty());
        // Re-inserting a deleted key restores it to scans.
        map.put(10, &99u64.to_le_bytes(), &h).unwrap();
        let run: Vec<(u64, u64)> = map
            .scan(9, 2, &h)
            .iter()
            .map(|(k, v)| (*k, v.as_u64()))
            .collect();
        assert_eq!(run, vec![(10, 99), (12, 13)]);
    }

    #[test]
    fn concurrent_disjoint_ranges_are_exact() {
        let map = Arc::new(new_map(64));
        const THREADS: u64 = 4;
        const RANGE: u64 = 400;
        let mut joins = Vec::new();
        for tid in 0..THREADS {
            let map = Arc::clone(&map);
            joins.push(std::thread::spawn(move || {
                let h = map.collector().register();
                let base = tid * RANGE;
                for k in 0..RANGE {
                    assert_eq!(map.put(base + k, &payload(base + k, k), &h).unwrap(), None);
                }
                for k in (0..RANGE).step_by(2) {
                    assert_eq!(
                        map.del(base + k, &h),
                        Some(Value::from(payload(base + k, k)))
                    );
                }
                for k in 0..RANGE {
                    let expect = if k % 2 == 1 {
                        Some(Value::from(payload(base + k, k)))
                    } else {
                        None
                    };
                    assert_eq!(map.get(base + k, &h), expect);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let h = map.collector().register();
        assert_eq!(map.snapshot(&h).len(), (THREADS * RANGE / 2) as usize);
    }

    #[test]
    fn concurrent_counters_conserve_increments() {
        let map = Arc::new(new_map(16));
        {
            let h = map.collector().register();
            for k in 0..8u64 {
                map.put(k, &0u64.to_le_bytes(), &h).unwrap();
            }
        }
        const THREADS: usize = 4;
        const INCS: u64 = 2_000;
        let mut joins = Vec::new();
        for t in 0..THREADS {
            let map = Arc::clone(&map);
            joins.push(std::thread::spawn(move || {
                let h = map.collector().register();
                for i in 0..INCS {
                    let k = (i + t as u64) % 8;
                    assert!(map.rmw_add(&[k], 1, &h));
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let h = map.collector().register();
        let total: u64 = (0..8u64).map(|k| map.get(k, &h).unwrap().as_u64()).sum();
        assert_eq!(total, THREADS as u64 * INCS);
    }
}
