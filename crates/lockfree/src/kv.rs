//! Lock-free-read key-value hash map, the non-STM baseline for the sharded
//! KV-store benchmarks.
//!
//! The layout is the **same cache-line bulk-chaining bucket scheme as
//! `spectm_kv::StmHashMap`** (the point of a baseline is an apples-to-apples
//! comparison): a flat array of 64-byte home buckets, each holding
//! [`BUCKET_SLOTS`] tagged item words plus one stat word, with rare
//! 512-byte-aligned overflow buckets chained off the stat word.  An item
//! word packs 5 hash-tag bits (bits 1..=5) beside a 64-byte-aligned node
//! pointer so mismatched probes never dereference; a stat word packs the
//! overflow-chain pointer, a reserved frequency byte (bits 1..=8), and —
//! this is where the baseline differs from the STM map — a **per-chain
//! writer spinlock in bit 0** of the *home* bucket's stat word, the
//! Segcache discipline: readers are lock-free, writers to the same chain
//! serialize briefly.
//!
//! Values use the same representation as the STM store too: each value is a
//! single word — small payloads inline, larger ones behind an immutable
//! epoch-reclaimed [`spectm_kv::ValueCell`] — held in a plain `AtomicUsize`
//! per node.  A `put` on an existing key swaps the value word in place;
//! the put-ter owns the displaced word and retires its cell through the
//! epoch collector.  A node owns whatever word it holds when it dies, so
//! its `Drop` frees that cell (by then the grace period has passed).
//! Overflow buckets are write-once (freed only when the map drops), so a
//! lock-free reader can never race bucket reclamation; deleted *nodes* are
//! retired through the epoch collector after their slot is zeroed.
//!
//! For range scans the map keeps a [`crate::LockFreeSkipList`] of keys next
//! to the hash table; [`LockFreeKvMap::scan`] walks it in order and looks
//! every key up in the table.
//!
//! Two caveats, both inherent to the CAS-composed design and shared by the
//! paper's non-transactional baselines:
//!
//! * there is no multi-key atomicity: [`LockFreeKvMap::rmw_add`] applies a
//!   per-key update loop, so a concurrent reader can observe a partially
//!   applied multi-key update.  The STM store (the `spectm-kv` crate)
//!   provides the atomic variant; the contrast is the point of the
//!   benchmark;
//! * [`LockFreeKvMap::scan`] is **not a snapshot**: the key index and the
//!   value table are updated by separate steps (and each value is read by a
//!   separate load), so a scan concurrent with writes can observe a torn
//!   multi-key update, miss a freshly inserted key, or return a value newer
//!   than a neighbour's.  `ShardedKv::scan` runs the same shape as one full
//!   transaction and rules all of that out — the contrast is, again, the
//!   point.
//!
//! (The old per-node-chain version had a third caveat — a `put` racing a
//! `del` of the same key reported an advisory previous value.  Per-chain
//! writer serialization removes that race: the previous value a `put` or
//! `del` reports is now exact.)

use std::sync::atomic::{AtomicUsize, Ordering};

use spectm_kv::value::{decode_value, encode_value, free_value, retire_value};
use spectm_kv::{BatchOp, KvError, MapStats, Value, BUCKET_SLOTS, MAX_VALUE_LEN};
use txepoch::{Collector, LocalHandle};

use crate::skiplist::LockFreeSkipList;
use crate::ConcurrentIntSet;

/// Bit 0 of a *home* bucket's stat word: the per-chain writer spinlock.
/// (The STM map leaves this bit to the `val` layout's orec lock; here it is
/// ours to use.)
const LOCK: usize = 1;

/// Bits 1..=5 of an item word: the hash tag stored beside the node pointer
/// (same packing as `spectm_kv`'s map).
const TAG_MASK: usize = 0x3E;

/// Mask recovering the node pointer from an item word.
const ITEM_PTR_MASK: usize = !(TAG_MASK | LOCK);

/// Bits 1..=8 of a stat word: the reserved frequency-counter byte (always
/// zero until the TTL/eviction work lands; preserved by chain updates).
const FREQ_MASK: usize = 0x1FE;

/// Mask recovering the overflow-bucket pointer from a stat word.
const CHAIN_PTR_MASK: usize = !(FREQ_MASK | LOCK);

/// Keys budgeted per bucket when sizing from a capacity hint: 7 slots at
/// the ~0.75 target load factor (same rule as `StmHashMap::new`).
const CAPACITY_PER_BUCKET: usize = 5;

/// A node: the immutable key plus the value word, swapped in place.  A
/// value word of zero is the "no value" sentinel (zero is never a legal
/// encoded word).  The 64-byte alignment keeps bits 0..=5 of the address
/// clear for the tag bits packed into the item word.
#[repr(align(64))]
struct Node {
    key: u64,
    value: AtomicUsize,
}

impl Node {
    fn alloc(key: u64, word: usize) -> *mut Node {
        Box::into_raw(Box::new(Node {
            key,
            value: AtomicUsize::new(word),
        }))
    }
}

impl Drop for Node {
    fn drop(&mut self) {
        let word = *self.value.get_mut();
        if word != 0 {
            // SAFETY: a node is dropped either past its grace period (epoch
            // deferral) or under exclusive access (map drop); the word it
            // still holds is owned by it.
            unsafe { free_value(word) };
        }
    }
}

/// One 64-byte bucket: 7 tagged item words and a stat word, contiguous so
/// a probe touches a single cache line.
#[repr(align(64))]
struct Bucket {
    item: [AtomicUsize; BUCKET_SLOTS],
    stat: AtomicUsize,
}

impl Bucket {
    fn new() -> Self {
        Bucket {
            item: std::array::from_fn(|_| AtomicUsize::new(0)),
            stat: AtomicUsize::new(0),
        }
    }
}

/// A heap-allocated overflow bucket.  The 512-byte alignment frees the low
/// 9 bits of the chain pointer for the lock bit and the reserved frequency
/// byte.
#[repr(align(512))]
struct OverflowBucket {
    bucket: Bucket,
}

/// A hash map from `u64` keys to byte values with lock-free reads and
/// per-chain-serialized writes.
///
/// # Examples
///
/// ```
/// use lockfree::LockFreeKvMap;
/// use spectm_kv::Value;
///
/// let map = LockFreeKvMap::new(64, txepoch::Collector::new());
/// let handle = map.collector().register();
/// assert_eq!(map.put(7, b"seventy", &handle).unwrap(), None);
/// assert_eq!(map.get(7, &handle), Some(Value::new(b"seventy")));
/// assert_eq!(
///     map.put(7, b"a value long enough to live out of line", &handle).unwrap(),
///     Some(Value::new(b"seventy"))
/// );
/// assert_eq!(
///     map.del(7, &handle),
///     Some(Value::new(b"a value long enough to live out of line"))
/// );
/// assert_eq!(map.get(7, &handle), None);
/// ```
pub struct LockFreeKvMap {
    buckets: Box<[Bucket]>,
    mask: u64,
    collector: Collector,
    /// Ordered key index for [`LockFreeKvMap::scan`]; maintained *next to*
    /// the hash table, not atomically with it (see the module docs).
    index: LockFreeSkipList,
}

// SAFETY: slots and stat words are only mutated through atomics (writers
// additionally serialize per chain via the stat-word spinlock); node and
// value-cell reclamation is deferred through epochs; overflow buckets are
// write-once until the map drops.
unsafe impl Send for LockFreeKvMap {}
// SAFETY: as above.
unsafe impl Sync for LockFreeKvMap {}

#[inline]
fn hash_key(key: u64) -> u64 {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Tag bits for a hash: the top 5 bits of `h`, shifted into the item-word
/// tag position (bits 1..=5) — identical to `spectm_kv`'s map.
#[inline]
fn tag_of(h: u64) -> usize {
    (((h >> 59) as usize) << 1) & TAG_MASK
}

impl LockFreeKvMap {
    /// Creates a map sized for about `capacity` keys (a hint targeting the
    /// ~0.75 bucket load factor, not a limit — overflow buckets absorb any
    /// excess), reclaiming memory through `collector`.  The sizing rule is
    /// the same as `StmHashMap::new`'s, so the two sides of a benchmark
    /// probe identically shaped tables.
    pub fn new(capacity: usize, collector: Collector) -> Self {
        let len = capacity
            .div_ceil(CAPACITY_PER_BUCKET)
            .next_power_of_two()
            .max(1);
        // The index shares the collector (cloning yields a handle to the
        // same domain), so one registered `LocalHandle` serves both.
        let index = LockFreeSkipList::new(collector.clone());
        Self {
            buckets: (0..len).map(|_| Bucket::new()).collect(),
            mask: len as u64 - 1,
            collector,
            index,
        }
    }

    /// The epoch collector threads must register with.
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// Number of home buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    #[inline]
    fn home_bucket(&self, h: u64) -> &Bucket {
        &self.buckets[((h >> 17) & self.mask) as usize]
    }

    /// Follows a stat word's chain pointer, if any.
    #[inline]
    fn chain(stat: usize) -> Option<&'static Bucket> {
        let ptr = stat & CHAIN_PTR_MASK;
        if ptr == 0 {
            None
        } else {
            // SAFETY: chain pointers are write-once and point at overflow
            // buckets freed only when the map drops, so any pointer read
            // from a reachable stat word stays valid for the map's life
            // (the 'static is bounded by the caller's borrow of the map).
            Some(unsafe { &(*(ptr as *const OverflowBucket)).bucket })
        }
    }

    /// Spins until this thread holds the chain lock of `home`, returning
    /// the stat word as it was at acquisition (lock bit clear).
    #[inline]
    fn lock_chain(home: &Bucket) -> usize {
        loop {
            let prev = home.stat.fetch_or(LOCK, Ordering::Acquire);
            if prev & LOCK == 0 {
                return prev;
            }
            while home.stat.load(Ordering::Relaxed) & LOCK != 0 {
                std::hint::spin_loop();
            }
        }
    }

    #[inline]
    fn unlock_chain(home: &Bucket) {
        home.stat.fetch_and(!LOCK, Ordering::Release);
    }

    /// Walks the chain for `key` **with the chain lock held**, returning
    /// the matching `(slot, node)` and, separately, the first empty slot
    /// and the last bucket of the chain (for inserts).
    #[inline]
    #[allow(clippy::type_complexity)]
    fn locked_find<'a>(
        &'a self,
        home: &'a Bucket,
        key: u64,
        tag: usize,
    ) -> (
        Option<(&'a AtomicUsize, &'a Node)>,
        Option<&'a AtomicUsize>,
        &'a Bucket,
    ) {
        let mut bucket = home;
        let mut empty = None;
        loop {
            for slot in &bucket.item {
                let w = slot.load(Ordering::Acquire);
                if w == 0 {
                    if empty.is_none() {
                        empty = Some(slot);
                    }
                    continue;
                }
                if w & TAG_MASK != tag {
                    continue;
                }
                // SAFETY: the chain lock excludes every writer, so the
                // slot's node cannot be retired under us.
                let node = unsafe { &*((w & ITEM_PTR_MASK) as *const Node) };
                if node.key == key {
                    return (Some((slot, node)), empty, bucket);
                }
            }
            match Self::chain(bucket.stat.load(Ordering::Acquire)) {
                Some(next) => bucket = next,
                None => return (None, empty, bucket),
            }
        }
    }

    /// Returns the value stored under `key`, if present.  Lock-free: a
    /// probe is a tag-filtered scan of the home cache line (plus overflow
    /// lines for the rare chained key) and never observes the writer lock.
    #[inline]
    pub fn get(&self, key: u64, handle: &LocalHandle) -> Option<Value> {
        let _guard = handle.pin();
        let h = hash_key(key);
        let tag = tag_of(h);
        let mut bucket = self.home_bucket(h);
        loop {
            for slot in &bucket.item {
                let w = slot.load(Ordering::Acquire);
                if w == 0 || w & TAG_MASK != tag {
                    continue;
                }
                // SAFETY: the pin above predates the load, so a node whose
                // pointer we read from a slot cannot complete its grace
                // period before we are done with it.
                let node = unsafe { &*((w & ITEM_PTR_MASK) as *const Node) };
                if node.key != key {
                    continue;
                }
                let word = node.value.load(Ordering::Acquire);
                // SAFETY: `_guard` predates any retirement of the cell
                // behind a word read from a reachable node.
                return Some(unsafe { decode_value(word) });
            }
            // A continuously present key occupies one fixed slot (writers
            // serialize; a key moves only via delete, an instant of
            // absence), so a full scan that missed it witnessed a moment of
            // absence — the miss linearizes there.
            bucket = Self::chain(bucket.stat.load(Ordering::Acquire))?;
        }
    }

    /// Stores `value` under `key`, returning the previous value if the key
    /// was present, or [`KvError::ValueTooLarge`] beyond [`MAX_VALUE_LEN`]
    /// bytes.
    #[inline]
    pub fn put(
        &self,
        key: u64,
        value: &[u8],
        handle: &LocalHandle,
    ) -> Result<Option<Value>, KvError> {
        if value.len() > MAX_VALUE_LEN {
            return Err(KvError::ValueTooLarge { len: value.len() });
        }
        let guard = handle.pin();
        let h = hash_key(key);
        let tag = tag_of(h);
        let home = self.home_bucket(h);
        let word = encode_value(value);
        Self::lock_chain(home);
        let (found, empty, last) = self.locked_find(home, key, tag);
        if let Some((_slot, node)) = found {
            // Overwrite in place: swap the value word, retire the displaced
            // one.  Readers racing the swap see either word — both are
            // committed states.
            let old = node.value.swap(word, Ordering::AcqRel);
            Self::unlock_chain(home);
            // SAFETY: the swap displaced `old` from its only reachable
            // location under the chain lock, making us its sole owner;
            // `guard` protects the copy-out and pinned readers.
            let out = unsafe { decode_value(old) };
            // SAFETY: same ownership — the displaced word is ours to retire.
            unsafe { retire_value(old, &guard) };
            return Ok(Some(out));
        }
        let node = Node::alloc(key, word);
        let tagged = node as usize | tag;
        match empty {
            Some(slot) => slot.store(tagged, Ordering::Release),
            None => {
                // Chain full: link a fresh overflow bucket off the last
                // one, then publish the node in its first slot.  The link
                // `fetch_or` preserves the reserved frequency byte and (on
                // the home bucket) the held lock bit.
                let overflow = Box::into_raw(Box::new(OverflowBucket {
                    bucket: Bucket::new(),
                }));
                // SAFETY: `overflow` is still private to this thread.
                unsafe {
                    (*overflow).bucket.item[0].store(tagged, Ordering::Relaxed);
                }
                last.stat.fetch_or(overflow as usize, Ordering::Release);
            }
        }
        Self::unlock_chain(home);
        // Mirror the fresh key into the ordered index.  This is a separate
        // step: scans between the two miss the key (see the module docs —
        // no snapshot guarantee).
        self.index.insert(key, handle);
        Ok(None)
    }

    /// Removes `key`, returning the value it held.
    #[inline]
    pub fn del(&self, key: u64, handle: &LocalHandle) -> Option<Value> {
        let guard = handle.pin();
        let h = hash_key(key);
        let tag = tag_of(h);
        let home = self.home_bucket(h);
        Self::lock_chain(home);
        let (found, _, _) = self.locked_find(home, key, tag);
        let Some((slot, node)) = found else {
            Self::unlock_chain(home);
            return None;
        };
        let word = node.value.load(Ordering::Acquire);
        // Zero the slot (the freed slot is reused by later inserts), then
        // retire the node; its drop frees the value word it still holds.
        slot.store(0, Ordering::Release);
        Self::unlock_chain(home);
        // SAFETY: `guard` predates the retirement below, protecting the
        // copy-out.
        let out = unsafe { decode_value(word) };
        // SAFETY: the node is unreachable (its slot is zero) and its key
        // cannot be reinserted into *it* — inserts allocate fresh nodes.
        unsafe { guard.defer_drop(node as *const Node as *mut Node) };
        // Drop the key from the ordered index (again a separate step; a
        // racing re-insert of the same key can leave the index and the
        // table briefly disagreeing.  The STM store's combined transactions
        // are how that is actually fixed).
        self.index.remove(key, handle);
        Some(out)
    }

    /// Adds `delta` to the value of each key in `keys` that is present,
    /// interpreting values as 8-byte little-endian counters (the same
    /// convention as `ShardedKv::rmw_add`).
    ///
    /// Each key's update is individually atomic (performed under that
    /// chain's writer lock) but there is **no atomicity across keys** — the
    /// CAS-composed design has no way to compose updates.  Returns `false`
    /// if any key was absent (the updates to the keys that were present
    /// still took effect).
    pub fn rmw_add(&self, keys: &[u64], delta: u64, handle: &LocalHandle) -> bool {
        let mut all_present = true;
        for &key in keys {
            let guard = handle.pin();
            let h = hash_key(key);
            let tag = tag_of(h);
            let home = self.home_bucket(h);
            Self::lock_chain(home);
            let (found, _, _) = self.locked_find(home, key, tag);
            match found {
                Some((_slot, node)) => {
                    let old = node.value.load(Ordering::Acquire);
                    // SAFETY: `guard` predates any retirement of the cell.
                    let counter = unsafe { decode_value(old) }.as_u64();
                    let new_word = encode_value(&counter.wrapping_add(delta).to_le_bytes());
                    node.value.store(new_word, Ordering::Release);
                    Self::unlock_chain(home);
                    // SAFETY: the store displaced `old` under the chain
                    // lock; we own it, and pinned readers are protected.
                    unsafe { retire_value(old, &guard) };
                }
                None => {
                    Self::unlock_chain(home);
                    all_present = false;
                }
            }
        }
        all_present
    }

    /// Executes `ops` in request order under **one epoch pin**, returning
    /// each operation's result at its request position (the stored value
    /// for a get, the displaced previous value for a put or delete) — the
    /// non-STM twin of `ShardedKv::execute_batch`, kept API-compatible so
    /// the workload drivers compare the two apples-to-apples.
    ///
    /// The only amortization available here is the pin itself (there is no
    /// router and no transaction setup to share), and the only guarantees
    /// are the per-operation ones of the underlying map: same-key
    /// operations apply in request order on this thread, but there is no
    /// group atomicity of any kind — concurrent readers can observe any
    /// interleaving, exactly as for the map's single-key API.  An oversized
    /// put value rejects the whole batch before anything executes.
    pub fn execute_batch(
        &self,
        ops: &[BatchOp],
        handle: &LocalHandle,
    ) -> Result<Vec<Option<Value>>, KvError> {
        let mut out = Vec::new();
        self.execute_batch_into(ops, &mut out, handle)?;
        Ok(out)
    }

    /// [`LockFreeKvMap::execute_batch`] writing into a caller-provided
    /// buffer (cleared first), so a request loop can run allocation-free in
    /// the steady state.
    pub fn execute_batch_into(
        &self,
        ops: &[BatchOp],
        out: &mut Vec<Option<Value>>,
        handle: &LocalHandle,
    ) -> Result<(), KvError> {
        spectm_kv::batch::validate_ops(ops)?;
        out.clear();
        // A one-operation batch has nothing to amortize: skip the batch
        // guard (the operation pins for itself), so degenerate batches
        // cost what the plain API costs.
        let _batch_guard = if ops.len() > 1 {
            Some(handle.pin())
        } else {
            None
        };
        for op in ops {
            out.push(match op {
                BatchOp::Get(key) => self.get(*key, handle),
                BatchOp::Put(key, value) => self
                    .put(*key, value, handle)
                    .expect("batch values were validated above"),
                // The baseline has no TTL machinery; a TTL-carrying put
                // stores the value and drops the deadline, which is the
                // honest comparison (expiry costs it nothing).
                BatchOp::PutTtl(key, value, _ttl_ms) => self
                    .put(*key, value, handle)
                    .expect("batch values were validated above"),
                BatchOp::Del(key) => self.del(*key, handle),
            });
        }
        Ok(())
    }

    /// Returns up to `limit` `(key, value)` pairs with `key >= start`, in
    /// ascending key order, by walking the ordered key index and looking
    /// each key up in the hash table.
    ///
    /// **Not a snapshot**: every index link and every value is read by an
    /// independent atomic operation, so concurrent writers can make the
    /// result internally inconsistent (torn multi-key updates, missed
    /// fresh inserts, value/neighbour skew).  Compare `ShardedKv::scan` in
    /// `spectm-kv`, which runs the same shape as one full transaction.
    pub fn scan(&self, start: u64, limit: usize, handle: &LocalHandle) -> Vec<(u64, Value)> {
        let keys = self.index.collect_from(start, limit, handle);
        let mut out = Vec::with_capacity(keys.len());
        for key in keys {
            // A key can vanish between the index walk and this lookup;
            // skipping it is the honest behaviour for this baseline.
            if let Some(value) = self.get(key, handle) {
                out.push((key, value));
            }
        }
        out
    }

    /// Collects the current `(key, value)` pairs (not linearizable; only
    /// meaningful when no concurrent operations run).
    pub fn snapshot(&self, handle: &LocalHandle) -> Vec<(u64, Value)> {
        let _guard = handle.pin();
        let mut out = Vec::new();
        for home in self.buckets.iter() {
            let mut bucket = Some(home);
            while let Some(b) = bucket {
                for slot in &b.item {
                    let w = slot.load(Ordering::Acquire);
                    if w == 0 {
                        continue;
                    }
                    // SAFETY: protected by the guard above.
                    let node = unsafe { &*((w & ITEM_PTR_MASK) as *const Node) };
                    let word = node.value.load(Ordering::Acquire);
                    // SAFETY: protected by the guard above.
                    out.push((node.key, unsafe { decode_value(word) }));
                }
                bucket = Self::chain(b.stat.load(Ordering::Acquire));
            }
        }
        out.sort_unstable();
        out
    }

    /// Occupancy and probe-length statistics, in the same [`MapStats`]
    /// shape the STM store reports (non-transactional; only meaningful when
    /// no concurrent operations run).
    pub fn stats(&self, handle: &LocalHandle) -> MapStats {
        let _guard = handle.pin();
        let mut stats = MapStats {
            home_buckets: self.buckets.len(),
            ..MapStats::default()
        };
        for home in self.buckets.iter() {
            let mut depth = 0usize;
            let mut bucket = Some(home);
            while let Some(b) = bucket {
                let occupied = b
                    .item
                    .iter()
                    .filter(|slot| slot.load(Ordering::Acquire) != 0)
                    .count();
                stats.keys += occupied;
                if depth == 0 {
                    stats.occupied_home_slots += occupied;
                } else {
                    stats.overflow_buckets += 1;
                }
                if occupied > 0 {
                    if stats.probe_histogram.len() <= depth {
                        stats.probe_histogram.resize(depth + 1, 0);
                    }
                    stats.probe_histogram[depth] += occupied;
                }
                depth += 1;
                bucket = Self::chain(b.stat.load(Ordering::Acquire));
            }
        }
        stats
    }
}

impl Drop for LockFreeKvMap {
    fn drop(&mut self) {
        // Exclusive access: free the remaining nodes directly (each node's
        // drop frees its value word), then the overflow boxes.
        fn free_bucket_nodes(bucket: &Bucket) {
            for slot in &bucket.item {
                let w = slot.load(Ordering::Relaxed);
                if w != 0 {
                    // SAFETY: nodes were allocated with `Box::into_raw` and
                    // nothing else references them during drop.
                    unsafe { drop(Box::from_raw((w & ITEM_PTR_MASK) as *mut Node)) };
                }
            }
        }
        for home in self.buckets.iter() {
            free_bucket_nodes(home);
            let mut chain = home.stat.load(Ordering::Relaxed) & CHAIN_PTR_MASK;
            while chain != 0 {
                // SAFETY: overflow buckets were allocated with
                // `Box::into_raw` and are reachable exactly once.
                let overflow = unsafe { Box::from_raw(chain as *mut OverflowBucket) };
                free_bucket_nodes(&overflow.bucket);
                chain = overflow.bucket.stat.load(Ordering::Relaxed) & CHAIN_PTR_MASK;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::Arc;

    fn new_map(capacity: usize) -> LockFreeKvMap {
        LockFreeKvMap::new(capacity, Collector::new())
    }

    /// Deterministic payload crossing the inline and out-of-line regimes.
    fn payload(k: u64, v: u64) -> Vec<u8> {
        let len = (v % 33) as usize;
        (0..len)
            .map(|i| (k as u8) ^ (v as u8).wrapping_mul(43) ^ i as u8)
            .collect()
    }

    #[test]
    fn get_put_del_roundtrip() {
        let map = new_map(64);
        let h = map.collector().register();
        assert_eq!(map.get(3, &h), None);
        assert_eq!(map.put(3, b"thirty", &h).unwrap(), None);
        assert_eq!(map.get(3, &h), Some(Value::new(b"thirty")));
        let big = vec![9u8; 100];
        assert_eq!(map.put(3, &big, &h).unwrap(), Some(Value::new(b"thirty")));
        assert_eq!(map.get(3, &h), Some(Value::new(&big)));
        assert_eq!(map.del(3, &h), Some(Value::new(&big)));
        assert_eq!(map.del(3, &h), None);
        assert_eq!(map.get(3, &h), None);
    }

    #[test]
    fn oversized_values_are_rejected() {
        let map = new_map(64);
        let h = map.collector().register();
        assert_eq!(
            map.put(1, &vec![0u8; MAX_VALUE_LEN + 1], &h),
            Err(KvError::ValueTooLarge {
                len: MAX_VALUE_LEN + 1
            })
        );
        assert_eq!(map.get(1, &h), None);
    }

    #[test]
    fn matches_btreemap_oracle_sequentially() {
        let map = new_map(1); // single home bucket => deep overflow chains
        let h = map.collector().register();
        let mut oracle = BTreeMap::new();
        crate::rng::seed(2024);
        for _ in 0..4_000 {
            let k = crate::rng::next_u64() % 128;
            let v = crate::rng::next_u64();
            let bytes = payload(k, v);
            match crate::rng::next_u64() % 3 {
                0 => assert_eq!(
                    map.put(k, &bytes, &h).unwrap(),
                    oracle.insert(k, Value::from(bytes))
                ),
                1 => assert_eq!(map.del(k, &h), oracle.remove(&k)),
                _ => assert_eq!(map.get(k, &h), oracle.get(&k).cloned()),
            }
        }
        let stats = map.stats(&h);
        assert_eq!(stats.keys, oracle.len());
        assert_eq!(stats.probe_histogram.iter().sum::<usize>(), oracle.len());
        let expect: Vec<(u64, Value)> = oracle.into_iter().collect();
        assert_eq!(map.snapshot(&h), expect);
    }

    #[test]
    fn bucket_boundary_overflow_and_slot_reuse() {
        let map = new_map(1); // single home bucket
        assert_eq!(map.bucket_count(), 1);
        let h = map.collector().register();
        for k in 0..BUCKET_SLOTS as u64 {
            map.put(k, &payload(k, k), &h).unwrap();
        }
        let stats = map.stats(&h);
        assert_eq!(
            (
                stats.keys,
                stats.overflow_buckets,
                stats.occupied_home_slots
            ),
            (BUCKET_SLOTS, 0, BUCKET_SLOTS)
        );
        // The 8th key forces an overflow bucket.
        map.put(100, b"overflow", &h).unwrap();
        let stats = map.stats(&h);
        assert_eq!(stats.overflow_buckets, 1);
        assert_eq!(stats.probe_histogram, vec![BUCKET_SLOTS, 1]);
        // Deleting a home-slot key frees its slot; the next insert reuses
        // it instead of growing the chain.
        map.del(3, &h).unwrap();
        map.put(200, b"reuse", &h).unwrap();
        let stats = map.stats(&h);
        assert_eq!(stats.occupied_home_slots, BUCKET_SLOTS);
        assert_eq!(stats.overflow_buckets, 1);
        assert_eq!(map.get(200, &h), Some(Value::new(b"reuse")));
        assert_eq!(map.get(3, &h), None);
    }

    #[test]
    fn batches_match_the_single_op_api() {
        let map = new_map(64);
        let h = map.collector().register();
        let mut oracle = BTreeMap::new();
        crate::rng::seed(77);
        for _ in 0..60 {
            let len = (crate::rng::next_u64() % 24) as usize;
            let batch: Vec<BatchOp> = (0..len)
                .map(|_| {
                    let k = crate::rng::next_u64() % 48;
                    let v = crate::rng::next_u64();
                    match crate::rng::next_u64() % 4 {
                        0 => BatchOp::Get(k),
                        1 => BatchOp::Del(k),
                        _ => BatchOp::put(k, &payload(k, v)),
                    }
                })
                .collect();
            let expect: Vec<Option<Value>> = batch
                .iter()
                .map(|op| match op {
                    BatchOp::Get(k) => oracle.get(k).cloned(),
                    BatchOp::Put(k, v) | BatchOp::PutTtl(k, v, _) => oracle.insert(*k, v.clone()),
                    BatchOp::Del(k) => oracle.remove(k),
                })
                .collect();
            assert_eq!(map.execute_batch(&batch, &h).unwrap(), expect);
        }
        let expect: Vec<(u64, Value)> = oracle.into_iter().collect();
        assert_eq!(map.snapshot(&h), expect);
    }

    #[test]
    fn oversized_batch_puts_reject_everything() {
        let map = new_map(64);
        let h = map.collector().register();
        map.put(1, b"keep", &h).unwrap();
        let huge = vec![0u8; MAX_VALUE_LEN + 1];
        assert_eq!(
            map.execute_batch(
                &[
                    BatchOp::put(1, b"clobbered?"),
                    BatchOp::Put(2, Value::from(huge))
                ],
                &h
            ),
            Err(KvError::ValueTooLarge {
                len: MAX_VALUE_LEN + 1
            })
        );
        assert_eq!(map.get(1, &h), Some(Value::new(b"keep")));
        assert_eq!(map.get(2, &h), None);
    }

    #[test]
    fn rmw_add_updates_present_keys() {
        let map = new_map(64);
        let h = map.collector().register();
        map.put(1, &10u64.to_le_bytes(), &h).unwrap();
        map.put(2, &20u64.to_le_bytes(), &h).unwrap();
        assert!(map.rmw_add(&[1, 2], 5, &h));
        assert_eq!(map.get(1, &h).unwrap().as_u64(), 15);
        assert_eq!(map.get(2, &h).unwrap().as_u64(), 25);
        assert!(!map.rmw_add(&[1, 99], 5, &h));
        assert_eq!(map.get(1, &h).unwrap().as_u64(), 20);
    }

    #[test]
    fn scan_returns_sorted_live_pairs_sequentially() {
        let map = new_map(64);
        let h = map.collector().register();
        for k in (0..50u64).step_by(2) {
            map.put(k, &(k + 1).to_le_bytes(), &h).unwrap();
        }
        map.del(10, &h);
        let run: Vec<(u64, u64)> = map
            .scan(6, 4, &h)
            .iter()
            .map(|(k, v)| (*k, v.as_u64()))
            .collect();
        assert_eq!(run, vec![(6, 7), (8, 9), (12, 13), (14, 15)]);
        assert!(map.scan(100, 8, &h).is_empty());
        assert!(map.scan(0, 0, &h).is_empty());
        // Re-inserting a deleted key restores it to scans.
        map.put(10, &99u64.to_le_bytes(), &h).unwrap();
        let run: Vec<(u64, u64)> = map
            .scan(9, 2, &h)
            .iter()
            .map(|(k, v)| (*k, v.as_u64()))
            .collect();
        assert_eq!(run, vec![(10, 99), (12, 13)]);
    }

    #[test]
    fn concurrent_disjoint_ranges_are_exact() {
        // Undersized on purpose: ~0.9+ occupancy forces overflow chains
        // under concurrency.
        let map = Arc::new(new_map(512));
        const THREADS: u64 = 4;
        const RANGE: u64 = 400;
        let mut joins = Vec::new();
        for tid in 0..THREADS {
            let map = Arc::clone(&map);
            joins.push(std::thread::spawn(move || {
                let h = map.collector().register();
                let base = tid * RANGE;
                for k in 0..RANGE {
                    assert_eq!(map.put(base + k, &payload(base + k, k), &h).unwrap(), None);
                }
                for k in (0..RANGE).step_by(2) {
                    assert_eq!(
                        map.del(base + k, &h),
                        Some(Value::from(payload(base + k, k)))
                    );
                }
                for k in 0..RANGE {
                    let expect = if k % 2 == 1 {
                        Some(Value::from(payload(base + k, k)))
                    } else {
                        None
                    };
                    assert_eq!(map.get(base + k, &h), expect);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let h = map.collector().register();
        assert_eq!(map.snapshot(&h).len(), (THREADS * RANGE / 2) as usize);
        assert_eq!(map.stats(&h).keys, (THREADS * RANGE / 2) as usize);
    }

    #[test]
    fn concurrent_counters_conserve_increments() {
        let map = Arc::new(new_map(8));
        {
            let h = map.collector().register();
            for k in 0..8u64 {
                map.put(k, &0u64.to_le_bytes(), &h).unwrap();
            }
        }
        const THREADS: usize = 4;
        const INCS: u64 = 2_000;
        let mut joins = Vec::new();
        for t in 0..THREADS {
            let map = Arc::clone(&map);
            joins.push(std::thread::spawn(move || {
                let h = map.collector().register();
                for i in 0..INCS {
                    let k = (i + t as u64) % 8;
                    assert!(map.rmw_add(&[k], 1, &h));
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let h = map.collector().register();
        let total: u64 = (0..8u64).map(|k| map.get(k, &h).unwrap().as_u64()).sum();
        assert_eq!(total, THREADS as u64 * INCS);
    }
}
