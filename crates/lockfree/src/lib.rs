//! Lock-free (CAS-based) and sequential baseline data structures.
//!
//! The SpecTM paper compares every STM variant against lock-free hash tables
//! and skip lists "implemented from Fraser's design" and against optimized
//! sequential code.  This crate provides those baselines:
//!
//! * [`HarrisList`] — the sorted lock-free linked list with marked pointers
//!   (Harris / Fraser) used as the bucket chain of the hash table;
//! * [`LockFreeHashTable`] — a fixed-bucket-count lock-free integer set;
//! * [`LockFreeSkipList`] — Fraser's lock-free skip list;
//! * [`LockFreeKvMap`] — a `u64 -> bytes` hash map over the same
//!   cache-line bulk-chaining buckets as `spectm_kv::StmHashMap` (lock-free
//!   tag-filtered reads, per-chain-serialized writes), the non-STM baseline
//!   for the sharded KV-store workloads (values swapped in place, no
//!   multi-key atomicity);
//! * [`SeqHashTable`] and [`SeqSkipList`] — single-threaded reference
//!   implementations used to normalize throughput ("sequential" in the
//!   paper's figures) and as oracles in tests.
//!
//! All concurrent structures reclaim memory through the [`txepoch`] crate —
//! the same epoch-based scheme the STM variants use — so the comparison
//! between STM and CAS designs is not skewed by different reclamation costs.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod hashtable;
pub mod kv;
pub mod list;
pub mod rng;
pub mod seq;
pub mod skiplist;

pub use hashtable::LockFreeHashTable;
pub use kv::LockFreeKvMap;
pub use list::HarrisList;
pub use seq::{SeqHashTable, SeqSkipList};
pub use skiplist::LockFreeSkipList;

use txepoch::LocalHandle;

/// A concurrent set of `u64` keys.
///
/// The per-thread [`LocalHandle`] carries the epoch-reclamation state; obtain
/// one per worker thread from the structure's collector (see
/// [`ConcurrentIntSet::collector`]).
pub trait ConcurrentIntSet: Send + Sync {
    /// Inserts `key`, returning `true` if it was not already present.
    fn insert(&self, key: u64, handle: &LocalHandle) -> bool;
    /// Removes `key`, returning `true` if it was present.
    fn remove(&self, key: u64, handle: &LocalHandle) -> bool;
    /// Returns whether `key` is present.
    fn contains(&self, key: u64, handle: &LocalHandle) -> bool;
    /// The epoch collector threads must register with.
    fn collector(&self) -> &txepoch::Collector;
}

/// A single-threaded set of `u64` keys, used as the sequential baseline and
/// as a test oracle.
pub trait SequentialIntSet {
    /// Inserts `key`, returning `true` if it was not already present.
    fn insert(&mut self, key: u64) -> bool;
    /// Removes `key`, returning `true` if it was present.
    fn remove(&mut self, key: u64) -> bool;
    /// Returns whether `key` is present.
    fn contains(&self, key: u64) -> bool;
    /// Number of keys currently stored.
    fn len(&self) -> usize;
    /// Returns whether the set is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
