//! Small thread-local PRNG used for skip-list level generation.
//!
//! The benchmark structures need a cheap source of randomness on the insert
//! fast path; a thread-local xorshift avoids both shared state and the cost
//! of a cryptographic generator.

use std::cell::Cell;

thread_local! {
    static STATE: Cell<u64> = const { Cell::new(0x9E37_79B9_7F4A_7C15) };
}

/// Seeds the calling thread's generator (useful for reproducible tests).
pub fn seed(value: u64) {
    STATE.with(|s| s.set(value | 1));
}

/// Returns the next pseudo-random 64-bit value for the calling thread.
pub fn next_u64() -> u64 {
    STATE.with(|s| {
        let mut x = s.get();
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        s.set(x);
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    })
}

/// Draws a geometric skip-list level in `1..=max_level` with `p = 1/2`.
///
/// A node is assigned level `l` with probability `2^-l`, exactly as in the
/// paper's skip lists.
pub fn random_level(max_level: usize) -> usize {
    let bits = next_u64();
    let level = bits.trailing_ones() as usize + 1;
    level.min(max_level)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_in_range() {
        seed(0xA5A5_5A5A);
        for _ in 0..10_000 {
            let l = random_level(32);
            assert!((1..=32).contains(&l));
        }
    }

    #[test]
    fn level_distribution_is_roughly_geometric() {
        seed(12345);
        let mut counts = [0usize; 33];
        const N: usize = 100_000;
        for _ in 0..N {
            counts[random_level(32)] += 1;
        }
        // About half the nodes are level 1, about a quarter level 2.
        assert!(counts[1] > N * 4 / 10 && counts[1] < N * 6 / 10);
        assert!(counts[2] > N * 2 / 10 && counts[2] < N * 3 / 10);
    }

    #[test]
    fn seed_makes_sequences_reproducible() {
        seed(7);
        let a: Vec<u64> = (0..5).map(|_| next_u64()).collect();
        seed(7);
        let b: Vec<u64> = (0..5).map(|_| next_u64()).collect();
        assert_eq!(a, b);
    }
}
