//! Lock-free hash table integer set (Fraser-style).
//!
//! A fixed array of bucket heads, each bucket being a [`HarrisList`] chain.
//! With the paper's default of 64k keys over 16k buckets the expected chain
//! length is two, so operations are dominated by the bucket-head access plus
//! one or two node traversals — exactly the "short operation" regime the
//! paper's hash-table workloads are designed to stress.

use txepoch::{Collector, LocalHandle};

use crate::list::HarrisList;
use crate::ConcurrentIntSet;

/// A lock-free hash table storing a set of `u64` keys.
///
/// # Examples
///
/// ```
/// use lockfree::{ConcurrentIntSet, LockFreeHashTable};
/// let table = LockFreeHashTable::new(1024, txepoch::Collector::new());
/// let handle = table.collector().register();
/// assert!(table.insert(7, &handle));
/// assert!(table.contains(7, &handle));
/// assert!(table.remove(7, &handle));
/// ```
pub struct LockFreeHashTable {
    buckets: Box<[HarrisList]>,
    mask: u64,
    collector: Collector,
}

#[inline]
fn hash_key(key: u64) -> u64 {
    // Fibonacci hashing; the integer-set benchmark draws keys uniformly, but
    // a real table cannot rely on that.
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17
}

impl LockFreeHashTable {
    /// Creates a table with `buckets` bucket chains (rounded up to a power of
    /// two), reclaiming memory through `collector`.
    pub fn new(buckets: usize, collector: Collector) -> Self {
        let len = buckets.next_power_of_two().max(1);
        let chains: Vec<HarrisList> = (0..len)
            .map(|_| HarrisList::new(collector.clone()))
            .collect();
        Self {
            buckets: chains.into_boxed_slice(),
            mask: len as u64 - 1,
            collector,
        }
    }

    /// Number of bucket chains.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    #[inline]
    fn bucket(&self, key: u64) -> &HarrisList {
        &self.buckets[(hash_key(key) & self.mask) as usize]
    }

    /// Collects every key currently present (test/diagnostic helper).
    pub fn snapshot(&self, handle: &LocalHandle) -> Vec<u64> {
        let mut out = Vec::new();
        for b in self.buckets.iter() {
            out.extend(b.snapshot(handle));
        }
        out.sort_unstable();
        out
    }
}

impl ConcurrentIntSet for LockFreeHashTable {
    fn insert(&self, key: u64, handle: &LocalHandle) -> bool {
        self.bucket(key).insert(key, handle)
    }

    fn remove(&self, key: u64, handle: &LocalHandle) -> bool {
        self.bucket(key).remove(key, handle)
    }

    fn contains(&self, key: u64, handle: &LocalHandle) -> bool {
        self.bucket(key).contains(key, handle)
    }

    fn collector(&self) -> &Collector {
        &self.collector
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::Arc;

    #[test]
    fn bucket_count_rounds_up() {
        let t = LockFreeHashTable::new(1000, Collector::new());
        assert_eq!(t.bucket_count(), 1024);
    }

    #[test]
    fn basic_set_semantics() {
        let t = LockFreeHashTable::new(64, Collector::new());
        let h = t.collector().register();
        assert!(t.insert(1, &h));
        assert!(t.insert(2, &h));
        assert!(!t.insert(1, &h));
        assert!(t.contains(1, &h));
        assert!(t.remove(1, &h));
        assert!(!t.contains(1, &h));
        assert!(t.contains(2, &h));
    }

    #[test]
    fn matches_oracle_with_colliding_buckets() {
        // A 1-bucket table degenerates to a single Harris list, exercising
        // long chains (the Figure 10(b) regime).
        let t = LockFreeHashTable::new(1, Collector::new());
        let h = t.collector().register();
        let mut oracle = BTreeSet::new();
        crate::rng::seed(4242);
        for _ in 0..3_000 {
            let k = crate::rng::next_u64() % 256;
            match crate::rng::next_u64() % 3 {
                0 => assert_eq!(t.insert(k, &h), oracle.insert(k)),
                1 => assert_eq!(t.remove(k, &h), oracle.remove(&k)),
                _ => assert_eq!(t.contains(k, &h), oracle.contains(&k)),
            }
        }
        assert_eq!(t.snapshot(&h), oracle.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_mixed_workload_conserves_keys() {
        let t = Arc::new(LockFreeHashTable::new(256, Collector::new()));
        const THREADS: u64 = 4;
        const RANGE: u64 = 600;
        let mut joins = Vec::new();
        for tid in 0..THREADS {
            let t = Arc::clone(&t);
            joins.push(std::thread::spawn(move || {
                let h = t.collector().register();
                // Disjoint ranges per thread; final state is deterministic.
                let base = tid * RANGE;
                for k in 0..RANGE {
                    assert!(t.insert(base + k, &h), "insert {k}");
                }
                for k in (0..RANGE).step_by(3) {
                    assert!(t.remove(base + k, &h), "remove {k}");
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let h = t.collector().register();
        for tid in 0..THREADS {
            for k in 0..RANGE {
                let expect = k % 3 != 0;
                assert_eq!(t.contains(tid * RANGE + k, &h), expect);
            }
        }
    }
}
