//! Fraser-style lock-free skip list.
//!
//! The skip list stores `u64` keys in towers of probabilistically chosen
//! height.  Like the linked list, deletion is logical-then-physical: a
//! remover first marks every level's `next` pointer (top-down, finishing with
//! level 0, which decides the winner among concurrent removers), and marked
//! towers are physically unlinked by subsequent searches.  Towers are retired
//! through the shared epoch collector once they are no longer reachable.
//!
//! This is the `lock-free` baseline of the paper's skip-list figures and also
//! illustrates the complexity the SpecTM version avoids: partially inserted
//! and partially removed towers must be handled explicitly here, whereas the
//! STM version makes each insertion/removal atomic.

use std::sync::atomic::{AtomicUsize, Ordering};

use txepoch::{Collector, LocalHandle};

use crate::rng::random_level;
use crate::ConcurrentIntSet;

/// Maximum tower height (the paper uses 32).
pub const MAX_LEVEL: usize = 32;

const MARK: usize = 1;

#[inline]
fn marked(p: usize) -> bool {
    p & MARK != 0
}

#[inline]
fn unmark(p: usize) -> usize {
    p & !MARK
}

struct Tower {
    key: u64,
    level: usize,
    next: [AtomicUsize; MAX_LEVEL],
}

impl Tower {
    fn alloc(key: u64, level: usize) -> *mut Tower {
        Box::into_raw(Box::new(Tower {
            key,
            level,
            next: std::array::from_fn(|_| AtomicUsize::new(0)),
        }))
    }
}

/// A lock-free skip list storing a set of `u64` keys.
///
/// # Examples
///
/// ```
/// use lockfree::{ConcurrentIntSet, LockFreeSkipList};
/// let list = LockFreeSkipList::new(txepoch::Collector::new());
/// let handle = list.collector().register();
/// assert!(list.insert(10, &handle));
/// assert!(list.contains(10, &handle));
/// assert!(list.remove(10, &handle));
/// ```
pub struct LockFreeSkipList {
    head: Tower,
    collector: Collector,
}

// SAFETY: shared mutation goes through atomics; reclamation is epoch-based.
unsafe impl Send for LockFreeSkipList {}
// SAFETY: as above.
unsafe impl Sync for LockFreeSkipList {}

struct Window {
    preds: [*const Tower; MAX_LEVEL],
    succs: [usize; MAX_LEVEL],
    found: bool,
}

impl LockFreeSkipList {
    /// Creates an empty skip list tied to `collector`.
    pub fn new(collector: Collector) -> Self {
        Self {
            head: Tower {
                key: 0,
                level: MAX_LEVEL,
                next: std::array::from_fn(|_| AtomicUsize::new(0)),
            },
            collector,
        }
    }

    /// The epoch collector used for tower reclamation.
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// Searches for `key`, recording the predecessor and successor at every
    /// level and physically unlinking marked towers along the way.
    ///
    /// The caller must hold an epoch guard.
    fn search(&self, key: u64, handle: &LocalHandle) -> Window {
        'retry: loop {
            let mut preds = [std::ptr::null::<Tower>(); MAX_LEVEL];
            let mut succs = [0usize; MAX_LEVEL];
            let mut pred: &Tower = &self.head;
            for lvl in (0..MAX_LEVEL).rev() {
                let mut curr = pred.next[lvl].load(Ordering::Acquire);
                if marked(curr) {
                    // `pred` itself is being deleted; restart from the head.
                    continue 'retry;
                }
                loop {
                    if unmark(curr) == 0 {
                        break;
                    }
                    // SAFETY: `curr` was read from a reachable link while the
                    // caller is pinned, so the tower has not been freed.
                    let node = unsafe { &*(unmark(curr) as *const Tower) };
                    let next = node.next[lvl].load(Ordering::Acquire);
                    if marked(next) {
                        // Logically deleted at this level: unlink it.
                        if pred.next[lvl]
                            .compare_exchange(
                                curr,
                                unmark(next),
                                Ordering::AcqRel,
                                Ordering::Acquire,
                            )
                            .is_err()
                        {
                            continue 'retry;
                        }
                        curr = unmark(next);
                        continue;
                    }
                    if node.key < key {
                        pred = node;
                        curr = next;
                        continue;
                    }
                    break;
                }
                preds[lvl] = pred as *const Tower;
                succs[lvl] = unmark(curr);
            }
            let found = succs[0] != 0 && {
                // SAFETY: see above.
                let node = unsafe { &*(succs[0] as *const Tower) };
                node.key == key
            };
            let _ = handle;
            return Window {
                preds,
                succs,
                found,
            };
        }
    }

    /// Returns whether `key` is reachable and not logically deleted.
    fn do_contains(&self, key: u64, handle: &LocalHandle) -> bool {
        let _guard = handle.pin();
        let mut pred: &Tower = &self.head;
        for lvl in (0..MAX_LEVEL).rev() {
            let mut curr = unmark(pred.next[lvl].load(Ordering::Acquire));
            loop {
                if curr == 0 {
                    break;
                }
                // SAFETY: protected by the guard above.
                let node = unsafe { &*(curr as *const Tower) };
                let next = node.next[lvl].load(Ordering::Acquire);
                if node.key < key {
                    pred = node;
                    curr = unmark(next);
                    continue;
                }
                if node.key == key {
                    return !marked(next);
                }
                break;
            }
        }
        false
    }

    /// Collects up to `limit` unmarked keys with `key >= start`, in key
    /// order.
    ///
    /// The walk is **not** a snapshot: each link is read independently, so
    /// the result can mix states from different points in time (keys
    /// inserted or removed mid-walk may or may not appear).  This is the
    /// best an unsynchronized CAS-based structure can offer and exactly the
    /// guarantee gap the STM store's transactional scans close.
    pub fn collect_from(&self, start: u64, limit: usize, handle: &LocalHandle) -> Vec<u64> {
        let mut out = Vec::new();
        if limit == 0 {
            return out;
        }
        let _guard = handle.pin();
        // Descend to the last tower strictly before `start`.
        let mut pred: &Tower = &self.head;
        for lvl in (0..MAX_LEVEL).rev() {
            let mut curr = unmark(pred.next[lvl].load(Ordering::Acquire));
            loop {
                if curr == 0 {
                    break;
                }
                // SAFETY: read from a reachable link while pinned.
                let node = unsafe { &*(curr as *const Tower) };
                if node.key >= start {
                    break;
                }
                pred = node;
                curr = unmark(node.next[lvl].load(Ordering::Acquire));
            }
        }
        // Walk level 0, skipping logically deleted towers.
        let mut curr = unmark(pred.next[0].load(Ordering::Acquire));
        while curr != 0 && out.len() < limit {
            // SAFETY: as above.
            let node = unsafe { &*(curr as *const Tower) };
            let next = node.next[0].load(Ordering::Acquire);
            if node.key >= start && !marked(next) {
                out.push(node.key);
            }
            curr = unmark(next);
        }
        out
    }

    fn do_insert(&self, key: u64, handle: &LocalHandle) -> bool {
        let _guard = handle.pin();
        let level = random_level(MAX_LEVEL);
        let mut new_tower: *mut Tower = std::ptr::null_mut();
        loop {
            let w = self.search(key, handle);
            if w.found {
                if !new_tower.is_null() {
                    // SAFETY: the tower was never published.
                    drop(unsafe { Box::from_raw(new_tower) });
                }
                return false;
            }
            if new_tower.is_null() {
                new_tower = Tower::alloc(key, level);
            }
            // SAFETY: `new_tower` is still private to this thread.
            let tower = unsafe { &*new_tower };
            for lvl in 0..level {
                tower.next[lvl].store(w.succs[lvl], Ordering::Relaxed);
            }
            // Publish at level 0; this is the linearization point of insert.
            // SAFETY: `preds[0]` is protected by the guard.
            let pred0 = unsafe { &*w.preds[0] };
            if pred0.next[0]
                .compare_exchange(
                    w.succs[0],
                    new_tower as usize,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_err()
            {
                continue;
            }

            // Link the remaining levels, tolerating concurrent removals of the
            // freshly inserted tower and concurrent structural changes.
            for lvl in 1..level {
                loop {
                    let succ = tower.next[lvl].load(Ordering::Acquire);
                    if marked(succ) {
                        // The new tower is already being removed; stop linking.
                        return true;
                    }
                    // SAFETY: predecessors returned by search are protected by
                    // the guard.
                    let pred = unsafe { &*w.preds[lvl] };
                    if pred.next[lvl]
                        .compare_exchange(
                            w.succs[lvl],
                            new_tower as usize,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        break;
                    }
                    // The neighbourhood changed: recompute it and retarget the
                    // new tower's successor at this level.
                    let w2 = self.search(key, handle);
                    if w2.succs[0] != new_tower as usize {
                        // The tower has been removed entirely; stop linking.
                        return true;
                    }
                    let new_succ = w2.succs[lvl];
                    if tower.next[lvl]
                        .compare_exchange(succ, new_succ, Ordering::AcqRel, Ordering::Acquire)
                        .is_err()
                    {
                        // Marked concurrently.
                        return true;
                    }
                    // SAFETY: as above.
                    let pred = unsafe { &*w2.preds[lvl] };
                    if pred.next[lvl]
                        .compare_exchange(
                            new_succ,
                            new_tower as usize,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        break;
                    }
                }
            }
            return true;
        }
    }

    fn do_remove(&self, key: u64, handle: &LocalHandle) -> bool {
        let _guard = handle.pin();
        let w = self.search(key, handle);
        if !w.found {
            return false;
        }
        let node_ptr = w.succs[0];
        // SAFETY: protected by the guard above.
        let node = unsafe { &*(node_ptr as *const Tower) };

        // Mark the upper levels first (top-down).
        for lvl in (1..node.level).rev() {
            loop {
                let next = node.next[lvl].load(Ordering::Acquire);
                if marked(next) {
                    break;
                }
                if node.next[lvl]
                    .compare_exchange(next, next | MARK, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    break;
                }
            }
        }

        // Level 0 decides which of several concurrent removers wins.
        loop {
            let next = node.next[0].load(Ordering::Acquire);
            if marked(next) {
                // Someone else deleted it first.
                return false;
            }
            if node.next[0]
                .compare_exchange(next, next | MARK, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // We own the deletion: unlink the tower everywhere and
                // retire it once it is unreachable.
                loop {
                    let w2 = self.search(key, handle);
                    if !w2.succs.contains(&node_ptr) {
                        break;
                    }
                }
                let guard = handle.pin();
                // SAFETY: the tower is marked at every level and no longer
                // reachable from the head; epoch reclamation protects any
                // readers that still hold references.
                unsafe { guard.defer_drop(node_ptr as *mut Tower) };
                return true;
            }
        }
    }

    /// Collects every key currently present in ascending order
    /// (test/diagnostic helper; not linearizable).
    pub fn snapshot(&self, handle: &LocalHandle) -> Vec<u64> {
        let _guard = handle.pin();
        let mut out = Vec::new();
        let mut curr = unmark(self.head.next[0].load(Ordering::Acquire));
        while curr != 0 {
            // SAFETY: protected by the guard above.
            let node = unsafe { &*(curr as *const Tower) };
            let next = node.next[0].load(Ordering::Acquire);
            if !marked(next) {
                out.push(node.key);
            }
            curr = unmark(next);
        }
        out
    }
}

impl ConcurrentIntSet for LockFreeSkipList {
    fn insert(&self, key: u64, handle: &LocalHandle) -> bool {
        self.do_insert(key, handle)
    }

    fn remove(&self, key: u64, handle: &LocalHandle) -> bool {
        self.do_remove(key, handle)
    }

    fn contains(&self, key: u64, handle: &LocalHandle) -> bool {
        self.do_contains(key, handle)
    }

    fn collector(&self) -> &Collector {
        &self.collector
    }
}

impl Drop for LockFreeSkipList {
    fn drop(&mut self) {
        // Exclusive access: walk level 0 and free every tower.
        let mut curr = unmark(self.head.next[0].load(Ordering::Relaxed));
        while curr != 0 {
            // SAFETY: towers were allocated with `Box::into_raw`; during drop
            // nothing else references them.
            let tower = unsafe { Box::from_raw(curr as *mut Tower) };
            curr = unmark(tower.next[0].load(Ordering::Relaxed));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::Arc;

    #[test]
    fn basic_set_semantics() {
        let l = LockFreeSkipList::new(Collector::new());
        let h = l.collector().register();
        assert!(!l.contains(9, &h));
        assert!(l.insert(9, &h));
        assert!(!l.insert(9, &h));
        assert!(l.contains(9, &h));
        assert!(l.remove(9, &h));
        assert!(!l.remove(9, &h));
        assert!(!l.contains(9, &h));
    }

    #[test]
    fn snapshot_is_sorted_and_unique() {
        let l = LockFreeSkipList::new(Collector::new());
        let h = l.collector().register();
        for k in [9u64, 2, 5, 7, 2, 9, 1] {
            l.insert(k, &h);
        }
        assert_eq!(l.snapshot(&h), vec![1, 2, 5, 7, 9]);
    }

    #[test]
    fn matches_btreeset_oracle_sequentially() {
        let l = LockFreeSkipList::new(Collector::new());
        let h = l.collector().register();
        let mut oracle = BTreeSet::new();
        crate::rng::seed(31337);
        for _ in 0..5_000 {
            let k = crate::rng::next_u64() % 512 + 1;
            match crate::rng::next_u64() % 3 {
                0 => assert_eq!(l.insert(k, &h), oracle.insert(k)),
                1 => assert_eq!(l.remove(k, &h), oracle.remove(&k)),
                _ => assert_eq!(l.contains(k, &h), oracle.contains(&k)),
            }
        }
        assert_eq!(l.snapshot(&h), oracle.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn disjoint_concurrent_updates_are_all_applied() {
        let l = Arc::new(LockFreeSkipList::new(Collector::new()));
        const THREADS: u64 = 4;
        const RANGE: u64 = 400;
        let mut joins = Vec::new();
        for tid in 0..THREADS {
            let l = Arc::clone(&l);
            joins.push(std::thread::spawn(move || {
                let h = l.collector().register();
                let base = 1 + tid * RANGE;
                for k in 0..RANGE {
                    assert!(l.insert(base + k, &h));
                }
                for k in (0..RANGE).step_by(2) {
                    assert!(l.remove(base + k, &h));
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let h = l.collector().register();
        for tid in 0..THREADS {
            for k in 0..RANGE {
                let key = 1 + tid * RANGE + k;
                assert_eq!(l.contains(key, &h), k % 2 == 1, "key {key}");
            }
        }
    }

    #[test]
    fn contended_same_key_inserts_have_one_winner() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let l = Arc::new(LockFreeSkipList::new(Collector::new()));
        let wins = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for _ in 0..8 {
            let l = Arc::clone(&l);
            let wins = Arc::clone(&wins);
            joins.push(std::thread::spawn(move || {
                let h = l.collector().register();
                if l.insert(77, &h) {
                    wins.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(wins.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn concurrent_insert_remove_churn_on_small_range() {
        // High contention on a small key range, checked against per-key
        // winner counts: every successful remove must match a successful
        // insert of the same key.
        use std::sync::atomic::{AtomicI64, Ordering};
        let l = Arc::new(LockFreeSkipList::new(Collector::new()));
        let balance: Arc<Vec<AtomicI64>> = Arc::new((0..64).map(|_| AtomicI64::new(0)).collect());
        let mut joins = Vec::new();
        for t in 0..4u64 {
            let l = Arc::clone(&l);
            let balance = Arc::clone(&balance);
            joins.push(std::thread::spawn(move || {
                let h = l.collector().register();
                crate::rng::seed(t * 7 + 1);
                for _ in 0..6_000 {
                    let k = crate::rng::next_u64() % 64 + 1;
                    if crate::rng::next_u64() % 2 == 0 {
                        if l.insert(k, &h) {
                            balance[(k - 1) as usize].fetch_add(1, Ordering::Relaxed);
                        }
                    } else if l.remove(k, &h) {
                        balance[(k - 1) as usize].fetch_sub(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let h = l.collector().register();
        for k in 1..=64u64 {
            let present = l.contains(k, &h);
            let bal = balance[(k - 1) as usize].load(std::sync::atomic::Ordering::Relaxed);
            assert!(bal == 0 || bal == 1, "key {k} balance {bal}");
            assert_eq!(present, bal == 1, "key {k}");
        }
    }
}
