//! The unified SpecTM API: the [`Stm`] and [`StmThread`] traits.
//!
//! Every STM variant studied by the paper (orec table / TVar / value-based
//! layouts, global / local clocks) implements these traits, so that the data
//! structures in `spectm-ds` and the benchmark harness are written once and
//! instantiated for each point in the design space.
//!
//! The trait surface mirrors the C API of the paper's Figure 2:
//!
//! | Paper (C)                              | This crate                              |
//! |----------------------------------------|-----------------------------------------|
//! | `Tx_Single_Read/Write/CAS`             | [`StmThread::single_read`] / [`StmThread::single_write`] / [`StmThread::single_cas`] |
//! | `Tx_RW_R1..R4`                         | [`StmThread::rw_read`] with a static index |
//! | `Tx_RW_n_Is_Valid`                     | [`StmThread::rw_is_valid`]              |
//! | `Tx_RW_n_Commit` / `Tx_RW_n_Abort`     | [`StmThread::rw_commit`] / [`StmThread::rw_abort`] |
//! | `Tx_RO_R1..R4` / `Tx_RO_n_Is_Valid`    | [`StmThread::ro_read`] / [`StmThread::ro_is_valid`] |
//! | `Tx_RO_x_RW_y_Commit`                  | [`StmThread::ro_rw_commit`]             |
//! | `Tx_Upgrade_RO_x_To_RW_y`              | [`StmThread::upgrade_ro_to_rw`]         |
//! | `Tx_Start` / `Tx_Read` / `Tx_Write` / `Tx_Commit` | [`StmThread::atomic`] + [`FullTx`] |
//!
//! The sequence numbers that the C API bakes into function names (`_R1`,
//! `_R2`, …) are passed as explicit index arguments here; callers use literal
//! constants, preserving the property that the *program*, not the STM, tracks
//! operation indices.

use crate::backoff::Backoff;
use crate::config::Config;
use crate::stats::StatsSnapshot;
use crate::word::Word;

/// Maximum number of locations a short transaction may access in each of its
/// read-only and read-write sets.
///
/// The paper uses four; we use eight, which it notes "can be increased in a
/// straightforward manner".
pub const MAX_SHORT: usize = 8;

/// Why a full transaction's body did not run to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxAbort {
    /// A conflict with a concurrent transaction was detected; the transaction
    /// will be rolled back and retried by [`StmThread::atomic`].
    Conflict,
    /// The user cancelled the transaction; it is rolled back and **not**
    /// retried ([`StmThread::atomic`] returns `None`).
    Cancel,
}

/// Result type used inside full-transaction bodies.
pub type TxResult<T> = Result<T, TxAbort>;

/// Convenience alias: the cell type manipulated by a thread handle.
pub type CellOf<T> = <<T as StmThread>::Stm as Stm>::Cell;

/// A software transactional memory instance.
///
/// The instance owns shared state (version clock, orec table, epoch
/// collector); it is `Send + Sync` and normally wrapped in an `Arc` shared by
/// all worker threads, each of which calls [`Stm::register`] to obtain its own
/// [`StmThread`] handle.
pub trait Stm: Send + Sync + Sized + 'static {
    /// The transactional cell type for this variant's memory layout.
    type Cell: Send + Sync;
    /// The per-thread handle type.
    type Thread: StmThread<Stm = Self>;

    /// Creates an instance with the default [`Config`].
    fn new() -> Self {
        Self::with_config(Config::default())
    }

    /// Creates an instance with an explicit configuration.
    fn with_config(config: Config) -> Self;

    /// Returns the configuration the instance was created with.
    fn config(&self) -> &Config;

    /// Registers the calling thread, returning its handle.
    ///
    /// Handles are intentionally **not** `Send`: create them on the thread
    /// that will use them (after `thread::spawn`), sharing the `Stm` itself
    /// through an `Arc`.
    fn register(&self) -> Self::Thread;

    /// Creates a new transactional cell holding `initial`.
    ///
    /// For the value-based layout the initial value must keep bit 0 clear
    /// (see [`crate::word`]); this is checked by a debug assertion.
    fn new_cell(&self, initial: Word) -> Self::Cell;

    /// Reads a cell non-transactionally.
    ///
    /// Only safe to use for initialization and post-mortem verification, when
    /// no concurrent transactions are running.
    fn peek(cell: &Self::Cell) -> Word;

    /// Writes a cell non-transactionally.
    ///
    /// Only for initializing cells that are not yet reachable by other
    /// threads (e.g. the fields of a node that a later transaction will
    /// publish) — the equivalent of the paper's `TmPtrWrite` on private
    /// nodes.  Using it on shared cells forfeits all transactional
    /// guarantees.
    fn poke(cell: &Self::Cell, value: Word);

    /// A human-readable label in the paper's naming scheme (e.g.
    /// `"orec-full-g"` territory is decided by how the caller uses the
    /// instance, so this reports layout + clock, e.g. `"orec-g"`).
    fn label(&self) -> String;

    /// The epoch-reclamation domain shared by this instance's threads.
    fn collector(&self) -> &txepoch::Collector;
}

/// A per-thread handle onto an [`Stm`] instance.
///
/// All transactional operations go through a thread handle.  The handle owns
/// the thread's transaction descriptor, its short-transaction record, its
/// statistics and its epoch-reclamation handle.
pub trait StmThread {
    /// The STM variant this handle belongs to.
    type Stm: Stm<Thread = Self>;

    // ------------------------------------------------------------------
    // Infrastructure
    // ------------------------------------------------------------------

    /// The thread's epoch-reclamation handle (pin before traversing nodes
    /// that other threads may concurrently retire).
    fn epoch(&self) -> &txepoch::LocalHandle;

    /// The thread's contention-management state.
    fn backoff(&self) -> &Backoff;

    /// A snapshot of this thread's statistics counters.
    fn stats(&self) -> StatsSnapshot;

    // ------------------------------------------------------------------
    // Single-location transactions (Figure 2, `Tx_Single_*`)
    // ------------------------------------------------------------------

    /// Performs a single-location transactional read (linearizable).
    fn single_read(&mut self, cell: &CellOf<Self>) -> Word;

    /// Performs a single-location transactional write (linearizable).
    fn single_write(&mut self, cell: &CellOf<Self>, value: Word);

    /// Performs a single-location transactional compare-and-swap.
    ///
    /// Returns the value observed immediately before the operation's
    /// linearization point; the swap happened iff the returned value equals
    /// `expected`.
    fn single_cas(&mut self, cell: &CellOf<Self>, expected: Word, new: Word) -> Word;

    // ------------------------------------------------------------------
    // Short read-write transactions (`Tx_RW_*`)
    // ------------------------------------------------------------------

    /// Reads location `idx` of a short read-write transaction and eagerly
    /// acquires ownership of it (encounter-time locking).
    ///
    /// `idx == 0` implicitly starts the transaction.  Indices must be passed
    /// in order (`0, 1, 2, …`), must be less than [`MAX_SHORT`] and each call
    /// must name a distinct location.  If ownership cannot be acquired the
    /// transaction becomes invalid: the returned value is meaningless, any
    /// locations acquired so far are released, and [`rw_is_valid`] will
    /// return `false`.
    ///
    /// [`rw_is_valid`]: StmThread::rw_is_valid
    fn rw_read(&mut self, idx: usize, cell: &CellOf<Self>) -> Word;

    /// Returns whether the short read-write transaction covering locations
    /// `0..n` is still valid.  Callers must check this before committing.
    fn rw_is_valid(&mut self, n: usize) -> bool;

    /// Commits a short read-write transaction covering locations `0..n`,
    /// storing `values[i]` to location `i`.
    ///
    /// Returns `true` if the commit took effect.  With encounter-time locking
    /// (the default) a valid transaction always commits; with the commit-time
    /// locking ablation the commit itself may fail, in which case the caller
    /// restarts exactly as for an invalid transaction.
    fn rw_commit(&mut self, n: usize, values: &[Word]) -> bool;

    /// Abandons a short read-write transaction covering locations `0..n`,
    /// releasing ownership without modifying any data.
    fn rw_abort(&mut self, n: usize);

    // ------------------------------------------------------------------
    // Short read-only transactions (`Tx_RO_*`)
    // ------------------------------------------------------------------

    /// Reads location `idx` of a short read-only transaction (invisible
    /// read).  `idx == 0` implicitly starts the transaction.
    fn ro_read(&mut self, idx: usize, cell: &CellOf<Self>) -> Word;

    /// Validates a short read-only transaction covering locations `0..n`.
    ///
    /// Successful validation takes the place of a commit; there is nothing to
    /// undo on failure (simply restart).
    fn ro_is_valid(&mut self, n: usize) -> bool;

    // ------------------------------------------------------------------
    // Combined read-only / read-write short transactions
    // ------------------------------------------------------------------

    /// Upgrades the location previously read at read-only index `ro_idx` to
    /// become read-write index `rw_idx`, acquiring ownership of it.
    ///
    /// Returns `false` (leaving the transaction invalid for the read-write
    /// part) if the location changed since it was read or is owned by another
    /// transaction.
    fn upgrade_ro_to_rw(&mut self, ro_idx: usize, rw_idx: usize) -> bool;

    /// Commits a combined transaction with `n_ro` read-only locations and
    /// `n_rw` read-write locations, storing `values[i]` to read-write
    /// location `i`.
    ///
    /// Returns `false` and releases ownership if the read-only locations fail
    /// validation (the caller restarts).
    fn ro_rw_commit(&mut self, n_ro: usize, n_rw: usize, values: &[Word]) -> bool;

    // ------------------------------------------------------------------
    // Full (traditional) transactions
    // ------------------------------------------------------------------

    /// Begins a full transaction.  Prefer [`StmThread::atomic`].
    fn full_begin(&mut self);

    /// Transactionally reads a cell inside a full transaction.
    fn full_read(&mut self, cell: &CellOf<Self>) -> TxResult<Word>;

    /// Transactionally writes a cell inside a full transaction (deferred
    /// update: the store is buffered until commit).
    fn full_write(&mut self, cell: &CellOf<Self>, value: Word) -> TxResult<()>;

    /// Attempts to commit the current full transaction.  Returns `true` on
    /// success; on failure the transaction has been rolled back.
    fn full_try_commit(&mut self) -> bool;

    /// Rolls back the current full transaction.
    fn full_rollback(&mut self);

    /// Runs `body` as an atomic transaction, retrying on conflicts.
    ///
    /// * `Ok(r)` from the body attempts to commit; on success `Some(r)` is
    ///   returned, otherwise the body is re-executed.
    /// * `Err(TxAbort::Conflict)` rolls back and retries (with contention
    ///   management).
    /// * `Err(TxAbort::Cancel)` rolls back and returns `None` without
    ///   retrying — the equivalent of the paper's `STM_ABORT_TX`.
    ///
    /// The thread is pinned against the epoch collector for the duration of
    /// each attempt, so cells read inside the body remain valid even if other
    /// threads concurrently retire the nodes containing them.
    fn atomic<R, F>(&mut self, mut body: F) -> Option<R>
    where
        F: FnMut(&mut FullTx<'_, Self>) -> TxResult<R>,
        Self: Sized,
    {
        loop {
            // `Some(outcome)` means the attempt finished (committed or was
            // cancelled); `None` means it must be retried.
            let finished = {
                let _guard = self.epoch().pin();
                self.full_begin();
                match body(&mut FullTx { thread: self }) {
                    Ok(result) => {
                        if self.full_try_commit() {
                            Some(Some(result))
                        } else {
                            None
                        }
                    }
                    Err(TxAbort::Cancel) => {
                        self.full_rollback();
                        Some(None)
                    }
                    Err(TxAbort::Conflict) => {
                        self.full_rollback();
                        None
                    }
                }
            };
            match finished {
                Some(outcome) => {
                    self.backoff().reset();
                    return outcome;
                }
                None => {
                    if self.stm().config().backoff {
                        self.backoff().wait();
                    }
                }
            }
        }
    }

    /// Returns the [`Stm`] instance this handle was registered with.
    fn stm(&self) -> &Self::Stm;
}

/// Handle used inside [`StmThread::atomic`] bodies to perform transactional
/// reads and writes.
///
/// # Examples
///
/// ```
/// use spectm::{Stm, StmThread};
/// let stm = spectm::variants::OrecFullG::new();
/// let a = stm.new_cell(1);
/// let b = stm.new_cell(2);
/// let mut t = stm.register();
/// // Swap two cells atomically.
/// t.atomic(|tx| {
///     let va = tx.read(&a)?;
///     let vb = tx.read(&b)?;
///     tx.write(&a, vb)?;
///     tx.write(&b, va)?;
///     Ok(())
/// });
/// assert_eq!(spectm::variants::OrecFullG::peek(&a), 2);
/// ```
pub struct FullTx<'a, T: StmThread> {
    thread: &'a mut T,
}

impl<T: StmThread> FullTx<'_, T> {
    /// Transactionally reads `cell`.
    #[inline]
    pub fn read(&mut self, cell: &CellOf<T>) -> TxResult<Word> {
        self.thread.full_read(cell)
    }

    /// Transactionally writes `value` to `cell` (deferred until commit).
    #[inline]
    pub fn write(&mut self, cell: &CellOf<T>, value: Word) -> TxResult<()> {
        self.thread.full_write(cell, value)
    }

    /// Cancels the transaction: it is rolled back and **not** retried.
    #[inline]
    pub fn cancel<R>(&mut self) -> TxResult<R> {
        Err(TxAbort::Cancel)
    }

    /// Requests a restart of the transaction (for example after observing an
    /// application-level inconsistency).
    #[inline]
    pub fn restart<R>(&mut self) -> TxResult<R> {
        Err(TxAbort::Conflict)
    }

    /// Access to the underlying thread handle (e.g. for statistics).
    #[inline]
    pub fn thread(&mut self) -> &mut T {
        self.thread
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_abort_is_small_and_copyable() {
        assert_eq!(std::mem::size_of::<TxAbort>(), 1);
        let a = TxAbort::Conflict;
        let b = a;
        assert_eq!(a, b);
    }

    #[test]
    fn max_short_is_at_least_the_papers_four() {
        const { assert!(MAX_SHORT >= 4) };
    }
}
