//! Contention management: randomized linear backoff.
//!
//! The paper uses a simple contention manager (the first phase of SwissTM's
//! two-phase scheme): a transaction that detects a conflict aborts itself and
//! waits for a randomized, linearly growing interval before restarting.

use std::cell::Cell;

/// Exponential cap on the number of spin iterations per wait.
const MAX_WAIT_UNITS: u32 = 1 << 14;

/// Per-thread backoff state used between transaction restarts.
///
/// Not shared between threads; embed one in each transaction descriptor or
/// restart loop.
///
/// # Examples
///
/// ```
/// let backoff = spectm::Backoff::new(42);
/// for _attempt in 0..3 {
///     // ... try an operation, it conflicts ...
///     backoff.wait();
/// }
/// backoff.reset();
/// ```
#[derive(Debug)]
pub struct Backoff {
    /// Consecutive failures since the last success.
    failures: Cell<u32>,
    /// xorshift PRNG state for randomizing the wait length.
    rng: Cell<u64>,
}

impl Backoff {
    /// Creates a backoff helper seeded from `seed` (use the thread id).
    pub fn new(seed: u64) -> Self {
        Self {
            failures: Cell::new(0),
            rng: Cell::new(seed | 1),
        }
    }

    /// Records a success, resetting the wait interval.
    #[inline]
    pub fn reset(&self) {
        self.failures.set(0);
    }

    /// Number of consecutive failures recorded since the last [`reset`].
    ///
    /// [`reset`]: Backoff::reset
    #[inline]
    pub fn failures(&self) -> u32 {
        self.failures.get()
    }

    #[inline]
    fn next_rand(&self) -> u64 {
        // xorshift64*: cheap, no shared state, good enough for jitter.
        let mut x = self.rng.get();
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng.set(x);
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Records a failure and spins for a randomized interval that grows
    /// linearly with the number of consecutive failures.
    pub fn wait(&self) {
        let failures = self.failures.get().saturating_add(1);
        self.failures.set(failures);
        let ceiling = (failures.min(64) * 32).min(MAX_WAIT_UNITS) as u64;
        let spins = self.next_rand() % (ceiling.max(1));
        for _ in 0..spins {
            std::hint::spin_loop();
        }
        if failures > 16 {
            // Under persistent contention also yield the time slice so that
            // over-subscribed configurations (more threads than cores) make
            // progress.
            std::thread::yield_now();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failures_accumulate_and_reset() {
        let b = Backoff::new(1);
        assert_eq!(b.failures(), 0);
        b.wait();
        b.wait();
        assert_eq!(b.failures(), 2);
        b.reset();
        assert_eq!(b.failures(), 0);
    }

    #[test]
    fn rng_produces_distinct_values() {
        let b = Backoff::new(7);
        let a = b.next_rand();
        let c = b.next_rand();
        assert_ne!(a, c);
    }

    #[test]
    fn wait_terminates_quickly_for_low_failure_counts() {
        let b = Backoff::new(3);
        let start = std::time::Instant::now();
        for _ in 0..100 {
            b.wait();
        }
        assert!(start.elapsed() < std::time::Duration::from_secs(2));
    }
}
