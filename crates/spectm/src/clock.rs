//! Version clocks.
//!
//! The paper's `*-g` variants use a single shared version clock in the style
//! of TL2: non-read-only transactions increment it at commit time, and
//! readers snapshot it to obtain opacity cheaply.  The `*-l` variants do away
//! with the shared clock (each orec carries an independent version), trading
//! the commit-time increment for incremental read-set validation.
//!
//! The `val` layout additionally supports a *per-thread* commit counter
//! scheme (Section 2.4): each thread bumps its own counter, and "reading the
//! clock" sums every thread's counter.  This keeps the common case free of
//! shared-counter contention at the cost of a scan in the general case.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Which version-management strategy a [`crate::VersionedStm`] instance uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClockMode {
    /// TL2-style shared global version clock (`*-g` labels in the paper).
    #[default]
    Global,
    /// Per-orec version numbers with incremental validation (`*-l` labels).
    Local,
}

/// A shared, monotonically increasing version clock.
///
/// Padded to a cache line so that the heavily CASed counter does not share a
/// line with neighbouring data.
#[derive(Debug)]
#[repr(align(64))]
pub struct GlobalClock {
    now: AtomicUsize,
}

impl Default for GlobalClock {
    fn default() -> Self {
        Self::new()
    }
}

impl GlobalClock {
    /// Creates a clock starting at zero.
    pub const fn new() -> Self {
        Self {
            now: AtomicUsize::new(0),
        }
    }

    /// Returns the current time without advancing it.
    #[inline]
    pub fn now(&self) -> usize {
        self.now.load(Ordering::Acquire)
    }

    /// Advances the clock and returns the *new* value (the commit timestamp).
    #[inline]
    pub fn tick(&self) -> usize {
        self.now.fetch_add(1, Ordering::AcqRel) + 1
    }
}

/// The maximum number of threads whose private commit counters are tracked by
/// a [`ThreadClocks`] instance.
pub const MAX_CLOCK_THREADS: usize = 256;

/// One cache-line-padded per-thread counter.
#[derive(Debug)]
#[repr(align(64))]
struct PaddedCounter {
    value: AtomicUsize,
}

/// Per-thread commit counters (the "logically shared" clock of Section 2.4).
///
/// Incrementing is a store to a thread-private cache line; reading the
/// logical clock sums all slots.
#[derive(Debug)]
pub struct ThreadClocks {
    slots: Vec<PaddedCounter>,
    registered: AtomicUsize,
}

impl ThreadClocks {
    /// Creates a set of per-thread counters.
    pub fn new() -> Self {
        let mut slots = Vec::with_capacity(MAX_CLOCK_THREADS);
        for _ in 0..MAX_CLOCK_THREADS {
            slots.push(PaddedCounter {
                value: AtomicUsize::new(0),
            });
        }
        Self {
            slots,
            registered: AtomicUsize::new(0),
        }
    }

    /// Allocates a slot for a new thread.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_CLOCK_THREADS`] threads register.
    pub fn register(&self) -> usize {
        let id = self.registered.fetch_add(1, Ordering::AcqRel);
        assert!(id < MAX_CLOCK_THREADS, "too many threads registered");
        id
    }

    /// Bumps the calling thread's private counter.
    #[inline]
    pub fn bump(&self, slot: usize) {
        // A release store is enough: the counter orders with the data writes
        // that precede it in the committing transaction.
        let c = &self.slots[slot].value;
        c.store(c.load(Ordering::Relaxed) + 1, Ordering::Release);
    }

    /// Reads the logical clock: the sum of every thread's counter.
    pub fn read(&self) -> usize {
        let n = self
            .registered
            .load(Ordering::Acquire)
            .min(MAX_CLOCK_THREADS);
        let mut sum = 0usize;
        for slot in &self.slots[..n] {
            sum = sum.wrapping_add(slot.value.load(Ordering::Acquire));
        }
        sum
    }
}

impl Default for ThreadClocks {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn tick_is_monotonic() {
        let c = GlobalClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.tick(), 1);
        assert_eq!(c.tick(), 2);
        assert_eq!(c.now(), 2);
    }

    #[test]
    fn concurrent_ticks_are_unique() {
        let c = Arc::new(GlobalClock::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| c.tick()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<usize> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000);
        assert_eq!(c.now(), 4000);
    }

    #[test]
    fn thread_clocks_sum() {
        let tc = ThreadClocks::new();
        let a = tc.register();
        let b = tc.register();
        assert_ne!(a, b);
        tc.bump(a);
        tc.bump(a);
        tc.bump(b);
        assert_eq!(tc.read(), 3);
    }

    #[test]
    fn clock_mode_default_is_global() {
        assert_eq!(ClockMode::default(), ClockMode::Global);
    }
}
