//! Specialized short transactions over the value-based layout (`val-short`).
//!
//! This is the paper's most specialized — and fastest — design point:
//!
//! * Short read-write transactions lock every accessed word eagerly by
//!   replacing its value with the owner's descriptor pointer (bit 0 set);
//!   because every read location is also written, no version numbers and no
//!   validation are needed (special case 1 of Section 2.4).
//! * Short read-only transactions use invisible reads and validate by value
//!   comparison, relying on the single-read-only-location and non-re-use
//!   special cases (2 and 3).
//! * Single-location operations reduce to a plain load / store / CAS that
//!   merely respects the lock bit, with no shared clock whatsoever.

use std::sync::atomic::Ordering;

use crate::word::Word;
use crate::MAX_SHORT;

use super::{is_locked, ValCell, ValRoEntry, ValRwEntry, ValThread, LOCK_BIT};

impl ValThread {
    // ------------------------------------------------------------------
    // Single-location transactions
    // ------------------------------------------------------------------

    pub(crate) fn do_single_read(&mut self, cell: &ValCell) -> Word {
        self.stats.singles += 1;
        cell.load_unlocked()
    }

    pub(crate) fn do_single_write(&mut self, cell: &ValCell, value: Word) {
        debug_assert_eq!(
            value & LOCK_BIT,
            0,
            "val-layout values must keep bit 0 clear"
        );
        self.stats.singles += 1;
        loop {
            let cur = cell.load(Ordering::Acquire);
            if is_locked(cur) {
                std::thread::yield_now();
                continue;
            }
            if cell.compare_exchange(cur, value).is_ok() {
                return;
            }
        }
    }

    pub(crate) fn do_single_cas(&mut self, cell: &ValCell, expected: Word, new: Word) -> Word {
        debug_assert_eq!(new & LOCK_BIT, 0, "val-layout values must keep bit 0 clear");
        self.stats.singles += 1;
        loop {
            let cur = cell.load(Ordering::Acquire);
            if is_locked(cur) {
                std::thread::yield_now();
                continue;
            }
            if cur != expected {
                return cur;
            }
            match cell.compare_exchange(cur, new) {
                Ok(_) => return cur,
                Err(actual) => {
                    if !is_locked(actual) && actual != expected {
                        return actual;
                    }
                    // Lost the race to a lock holder or to an equal value
                    // being re-installed; retry.
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Short read-write transactions
    // ------------------------------------------------------------------

    fn release_rw_locks(&mut self) {
        for i in 0..self.rw_count {
            let e = self.rw_entries[i];
            if !e.locked_here {
                continue;
            }
            // SAFETY: cells are kept alive by the caller (epoch-pinned or
            // owned) for the duration of the short transaction.
            let cell = unsafe { &*e.cell };
            cell.store(e.old_value, Ordering::Release);
            self.rw_entries[i].locked_here = false;
        }
    }

    pub(crate) fn do_rw_read(&mut self, idx: usize, cell: &ValCell) -> Word {
        assert!(idx < MAX_SHORT, "short transaction index out of range");
        if idx == 0 {
            self.rw_count = 0;
            self.rw_valid = true;
            self.stats.short_rw_starts += 1;
        }
        // An earlier read of this transaction may have failed to acquire a
        // lock, invalidating the attempt and resetting `rw_count`; later
        // reads of the same attempt must fall through here (the caller only
        // discovers the conflict at `rw_is_valid`).
        if !self.rw_valid {
            return 0;
        }
        debug_assert_eq!(idx, self.rw_count, "short RW indices must be sequential");
        let lock_word = self.lock_word();
        let cur = cell.load(Ordering::Acquire);
        // Deadlock avoidance is conservative: if the word is owned (even by a
        // transaction that is about to release it), give up immediately.
        if is_locked(cur) || cell.compare_exchange(cur, lock_word).is_err() {
            self.stats.short_rw_conflicts += 1;
            self.rw_valid = false;
            self.release_rw_locks();
            self.rw_count = 0;
            return 0;
        }
        self.rw_entries[self.rw_count] = ValRwEntry {
            cell: cell as *const ValCell,
            old_value: cur,
            locked_here: true,
        };
        self.rw_count += 1;
        cur
    }

    pub(crate) fn do_rw_is_valid(&mut self, n: usize) -> bool {
        debug_assert!(n <= MAX_SHORT);
        self.rw_valid && self.rw_count >= n
    }

    pub(crate) fn do_rw_commit(&mut self, n: usize, values: &[Word]) -> bool {
        assert!(values.len() >= n, "missing commit values");
        if !self.rw_valid || self.rw_count < n {
            self.release_rw_locks();
            self.rw_count = 0;
            return false;
        }
        for (i, &value) in values.iter().enumerate().take(n) {
            debug_assert_eq!(
                value & LOCK_BIT,
                0,
                "val-layout values must keep bit 0 clear"
            );
            let e = self.rw_entries[i];
            // SAFETY: see `release_rw_locks`.
            let cell = unsafe { &*e.cell };
            // A single store publishes the value and releases the lock.
            cell.store(value, Ordering::Release);
            self.rw_entries[i].locked_here = false;
        }
        self.rw_count = 0;
        self.stats.short_rw_commits += 1;
        true
    }

    pub(crate) fn do_rw_abort(&mut self, n: usize) {
        debug_assert!(n <= MAX_SHORT);
        self.release_rw_locks();
        self.rw_count = 0;
        self.rw_valid = true;
    }

    // ------------------------------------------------------------------
    // Short read-only transactions
    // ------------------------------------------------------------------

    pub(crate) fn do_ro_read(&mut self, idx: usize, cell: &ValCell) -> Word {
        assert!(idx < MAX_SHORT, "short transaction index out of range");
        if idx == 0 {
            self.ro_count = 0;
            self.ro_valid = true;
        }
        debug_assert_eq!(idx, self.ro_count, "short RO indices must be sequential");
        let value = cell.load_unlocked();
        self.ro_entries[self.ro_count] = ValRoEntry {
            cell: cell as *const ValCell,
            value,
            upgraded: false,
        };
        self.ro_count += 1;
        value
    }

    /// Validates the first `n` read-only locations by value comparison.
    ///
    /// This is only a correct conflict check under the special cases of
    /// Section 2.4 (in particular the non-re-use property for pointer
    /// values); it is exactly what `val-short` relies on.
    fn validate_ro(&self, n: usize) -> bool {
        let own_lock = self.lock_word();
        for e in &self.ro_entries[..n] {
            // SAFETY: see `release_rw_locks`.
            let cell = unsafe { &*e.cell };
            let cur = cell.load(Ordering::Acquire);
            if e.upgraded {
                if cur != own_lock {
                    return false;
                }
                continue;
            }
            if cur != e.value {
                return false;
            }
        }
        true
    }

    pub(crate) fn do_ro_is_valid(&mut self, n: usize) -> bool {
        debug_assert!(n <= MAX_SHORT);
        let ok = self.ro_valid && self.ro_count >= n && self.validate_ro(n);
        if ok {
            self.stats.short_ro_commits += 1;
        } else {
            self.stats.short_ro_conflicts += 1;
        }
        ok
    }

    // ------------------------------------------------------------------
    // Combined read-only / read-write short transactions
    // ------------------------------------------------------------------

    pub(crate) fn do_upgrade(&mut self, ro_idx: usize, rw_idx: usize) -> bool {
        assert!(ro_idx < MAX_SHORT && rw_idx < MAX_SHORT);
        if !self.ro_valid || ro_idx >= self.ro_count {
            return false;
        }
        if rw_idx == 0 {
            self.rw_count = 0;
            self.rw_valid = true;
            self.stats.short_rw_starts += 1;
        }
        debug_assert_eq!(rw_idx, self.rw_count, "upgrade must use the next RW index");
        let entry = self.ro_entries[ro_idx];
        // SAFETY: see `release_rw_locks`.
        let cell = unsafe { &*entry.cell };
        if cell
            .compare_exchange(entry.value, self.lock_word())
            .is_err()
        {
            self.stats.short_rw_conflicts += 1;
            self.rw_valid = false;
            self.release_rw_locks();
            self.rw_count = 0;
            return false;
        }
        self.rw_entries[rw_idx] = ValRwEntry {
            cell: entry.cell,
            old_value: entry.value,
            locked_here: true,
        };
        self.ro_entries[ro_idx].upgraded = true;
        self.rw_count = rw_idx + 1;
        true
    }

    pub(crate) fn do_ro_rw_commit(&mut self, n_ro: usize, n_rw: usize, values: &[Word]) -> bool {
        assert!(values.len() >= n_rw, "missing commit values");
        if !self.rw_valid || !self.ro_valid || self.rw_count < n_rw || self.ro_count < n_ro {
            self.release_rw_locks();
            self.rw_count = 0;
            return false;
        }
        // All written locations are already owned; the single validation of
        // the read-only locations is the linearization point.
        if !self.validate_ro(n_ro) {
            self.stats.short_ro_conflicts += 1;
            self.release_rw_locks();
            self.rw_count = 0;
            return false;
        }
        self.do_rw_commit(n_rw, values)
    }
}

#[cfg(test)]
mod tests {
    use crate::api::{Stm, StmThread};
    use crate::val::ValStm;
    use crate::word::{decode_int, encode_int};
    use std::sync::Arc;

    #[test]
    fn single_ops_respect_lock_bit_encoding() {
        let stm = ValStm::new();
        let c = stm.new_cell(encode_int(3));
        let mut t = stm.register();
        assert_eq!(decode_int(t.single_read(&c)), 3);
        t.single_write(&c, encode_int(4));
        assert_eq!(decode_int(t.single_read(&c)), 4);
        let prev = t.single_cas(&c, encode_int(4), encode_int(5));
        assert_eq!(decode_int(prev), 4);
        assert_eq!(decode_int(t.single_read(&c)), 5);
    }

    #[test]
    fn rw_locks_are_visible_to_other_threads() {
        let stm = ValStm::new();
        let c = stm.new_cell(encode_int(1));
        let mut t1 = stm.register();
        let mut t2 = stm.register();
        let v = t1.rw_read(0, &c);
        assert!(t1.rw_is_valid(1));
        // t2 sees the location as owned and conservatively gives up.
        let _ = t2.rw_read(0, &c);
        assert!(!t2.rw_is_valid(1));
        assert!(t1.rw_commit(1, &[encode_int(decode_int(v) + 1)]));
        assert_eq!(decode_int(t2.single_read(&c)), 2);
    }

    #[test]
    fn rw_abort_restores_original_values() {
        let stm = ValStm::new();
        let a = stm.new_cell(encode_int(10));
        let b = stm.new_cell(encode_int(20));
        let mut t = stm.register();
        let _ = t.rw_read(0, &a);
        let _ = t.rw_read(1, &b);
        assert!(t.rw_is_valid(2));
        t.rw_abort(2);
        assert_eq!(decode_int(ValStm::peek(&a)), 10);
        assert_eq!(decode_int(ValStm::peek(&b)), 20);
    }

    #[test]
    fn ro_validation_by_value_detects_change() {
        let stm = ValStm::new();
        let a = stm.new_cell(encode_int(1));
        let mut reader = stm.register();
        let mut writer = stm.register();
        let _ = reader.ro_read(0, &a);
        assert!(reader.ro_is_valid(1));
        writer.single_write(&a, encode_int(2));
        assert!(!reader.ro_is_valid(1));
    }

    #[test]
    fn dcss_style_upgrade_commit() {
        // Double-compare-single-swap built exactly as in the paper's listing.
        let stm = ValStm::new();
        let a1 = stm.new_cell(encode_int(1));
        let a2 = stm.new_cell(encode_int(2));
        let mut t = stm.register();
        // Matching expected values: the swap must happen.
        let v1 = t.ro_read(0, &a1);
        let v2 = t.ro_read(1, &a2);
        assert_eq!((decode_int(v1), decode_int(v2)), (1, 2));
        assert!(t.upgrade_ro_to_rw(0, 0));
        assert!(t.ro_rw_commit(2, 1, &[encode_int(100)]));
        assert_eq!(decode_int(ValStm::peek(&a1)), 100);
        assert_eq!(decode_int(ValStm::peek(&a2)), 2);
    }

    #[test]
    fn concurrent_two_location_transfers_preserve_sum() {
        let stm = Arc::new(ValStm::new());
        let a = Arc::new(stm.new_cell(encode_int(10_000)));
        let b = Arc::new(stm.new_cell(encode_int(0)));
        const THREADS: usize = 4;
        const OPS: usize = 2_000;
        let mut joins = Vec::new();
        for _ in 0..THREADS {
            let stm = Arc::clone(&stm);
            let a = Arc::clone(&a);
            let b = Arc::clone(&b);
            joins.push(std::thread::spawn(move || {
                let mut t = stm.register();
                for i in 0..OPS {
                    loop {
                        let va = t.rw_read(0, &a);
                        let vb = t.rw_read(1, &b);
                        if !t.rw_is_valid(2) {
                            continue;
                        }
                        let (da, db) = (decode_int(va), decode_int(vb));
                        let (na, nb) = if i % 2 == 0 && da > 0 {
                            (da - 1, db + 1)
                        } else if db > 0 {
                            (da + 1, db - 1)
                        } else {
                            (da, db)
                        };
                        if t.rw_commit(2, &[encode_int(na), encode_int(nb)]) {
                            break;
                        }
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let sum = decode_int(ValStm::peek(&a)) + decode_int(ValStm::peek(&b));
        assert_eq!(sum, 10_000);
    }

    #[test]
    fn short_and_full_val_transactions_interoperate() {
        let stm = ValStm::new();
        let c = stm.new_cell(encode_int(0));
        let mut t = stm.register();
        t.atomic(|tx| {
            let v = decode_int(tx.read(&c)?);
            tx.write(&c, encode_int(v + 10))?;
            Ok(())
        });
        loop {
            let v = t.rw_read(0, &c);
            if !t.rw_is_valid(1) {
                continue;
            }
            if t.rw_commit(1, &[encode_int(decode_int(v) + 1)]) {
                break;
            }
        }
        assert_eq!(decode_int(ValStm::peek(&c)), 11);
    }
}
