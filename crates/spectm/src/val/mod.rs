//! The value-based STM variant (`val-*` labels; Section 2.4 of the paper).
//!
//! Instead of a separate ownership record, each transactional cell is a single
//! word of application data with **bit 0 reserved as a lock bit**.  When a
//! transaction owns the cell, the word temporarily holds a pointer to the
//! owner's descriptor with bit 0 set; committing stores the new application
//! value (bit 0 clear), which releases the lock in the same atomic write.
//!
//! Without version numbers, transactions that read locations they do not
//! write validate *by value*.  The paper identifies three special cases in
//! which this is safe without any global clock (all-read-locations-written,
//! a single read-only location forming the linearization point, and the
//! non-re-use property for pointer values); the short-transaction API below
//! relies on those cases.  For general-purpose full transactions the variant
//! falls back to a NOrec-style global commit counter (Dalessandro et al.),
//! exactly as Section 2.4 describes.

mod full;
mod short;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::api::{Stm, StmThread, TxResult};
use crate::backoff::Backoff;
use crate::clock::ThreadClocks;
use crate::config::Config;
use crate::stats::{Stats, StatsSnapshot};
use crate::versioned::writeset::WriteSet;
use crate::word::Word;
use crate::MAX_SHORT;

/// Bit 0 of a [`ValCell`] word: set while the cell is owned by a transaction.
pub(crate) const LOCK_BIT: Word = 1;

#[inline]
pub(crate) fn is_locked(word: Word) -> bool {
    word & LOCK_BIT != 0
}

/// A transactional cell of the value-based layout: one application word with
/// bit 0 reserved for the STM.
///
/// Stored values must keep bit 0 clear: pointers to 2-byte-or-better aligned
/// data qualify directly, integers must be encoded with
/// [`crate::word::encode_int`].
#[derive(Debug)]
#[repr(transparent)]
pub struct ValCell {
    word: AtomicUsize,
}

impl ValCell {
    /// Creates a cell holding `initial` (bit 0 must be clear).
    pub fn new(initial: Word) -> Self {
        debug_assert_eq!(
            initial & LOCK_BIT,
            0,
            "val-layout values must keep bit 0 clear"
        );
        Self {
            word: AtomicUsize::new(initial),
        }
    }

    #[inline]
    pub(crate) fn load(&self, order: Ordering) -> Word {
        self.word.load(order)
    }

    #[inline]
    pub(crate) fn store(&self, value: Word, order: Ordering) {
        self.word.store(value, order)
    }

    #[inline]
    pub(crate) fn compare_exchange(&self, current: Word, new: Word) -> Result<Word, Word> {
        self.word
            .compare_exchange(current, new, Ordering::AcqRel, Ordering::Acquire)
    }

    /// Spins until the cell is unlocked and returns the stored value.
    #[inline]
    pub(crate) fn load_unlocked(&self) -> Word {
        loop {
            let w = self.load(Ordering::Acquire);
            if !is_locked(w) {
                return w;
            }
            std::thread::yield_now();
        }
    }
}

/// Shared state of a [`ValStm`] instance.
#[derive(Debug)]
pub(crate) struct ValInner {
    pub(crate) config: Config,
    pub(crate) collector: txepoch::Collector,
    /// NOrec-style commit sequence lock: even = idle, odd = a full
    /// transaction is writing back.
    pub(crate) commit_seq: AtomicUsize,
    /// Per-thread commit counters (Section 2.4's contention-avoiding
    /// alternative); maintained so the harness can exercise both designs.
    pub(crate) thread_clocks: ThreadClocks,
    pub(crate) thread_seq: AtomicUsize,
}

/// The value-based STM instance (`val-short` / `val-full` in the paper).
#[derive(Debug, Clone)]
pub struct ValStm {
    pub(crate) inner: Arc<ValInner>,
}

/// One location owned by an in-flight short read-write transaction.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ValRwEntry {
    pub(crate) cell: *const ValCell,
    /// The application value the cell held when ownership was acquired.
    pub(crate) old_value: Word,
    pub(crate) locked_here: bool,
}

impl Default for ValRwEntry {
    fn default() -> Self {
        Self {
            cell: std::ptr::null(),
            old_value: 0,
            locked_here: false,
        }
    }
}

/// One location read by an in-flight short read-only transaction.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ValRoEntry {
    pub(crate) cell: *const ValCell,
    pub(crate) value: Word,
    pub(crate) upgraded: bool,
}

impl Default for ValRoEntry {
    fn default() -> Self {
        Self {
            cell: std::ptr::null(),
            value: 0,
            upgraded: false,
        }
    }
}

/// Stable-address descriptor identifying the owning thread inside locked
/// cells.
#[derive(Debug, Default)]
#[repr(align(64))]
pub(crate) struct ValDescriptor {
    pub(crate) id: usize,
}

/// A per-thread handle onto a [`ValStm`].
pub struct ValThread {
    pub(crate) stm: ValStm,
    pub(crate) descriptor: Box<ValDescriptor>,
    pub(crate) epoch: txepoch::LocalHandle,
    pub(crate) backoff: Backoff,
    pub(crate) stats: Stats,
    pub(crate) clock_slot: usize,

    // ---- full-transaction state ----
    pub(crate) in_tx: bool,
    pub(crate) snapshot: usize,
    pub(crate) read_set: Vec<(*const ValCell, Word)>,
    pub(crate) write_set: WriteSet,

    // ---- short-transaction state ----
    pub(crate) rw_entries: [ValRwEntry; MAX_SHORT],
    pub(crate) rw_count: usize,
    pub(crate) rw_valid: bool,
    pub(crate) ro_entries: [ValRoEntry; MAX_SHORT],
    pub(crate) ro_count: usize,
    pub(crate) ro_valid: bool,
}

impl ValThread {
    /// The word stored into cells this thread has locked.
    #[inline]
    pub(crate) fn lock_word(&self) -> Word {
        (&*self.descriptor as *const ValDescriptor as usize) | LOCK_BIT
    }
}

impl Stm for ValStm {
    type Cell = ValCell;
    type Thread = ValThread;

    fn with_config(config: Config) -> Self {
        Self {
            inner: Arc::new(ValInner {
                config,
                collector: txepoch::Collector::new(),
                commit_seq: AtomicUsize::new(0),
                thread_clocks: ThreadClocks::new(),
                thread_seq: AtomicUsize::new(0),
            }),
        }
    }

    fn config(&self) -> &Config {
        &self.inner.config
    }

    fn register(&self) -> Self::Thread {
        let id = self.inner.thread_seq.fetch_add(1, Ordering::Relaxed);
        ValThread {
            stm: self.clone(),
            descriptor: Box::new(ValDescriptor { id }),
            epoch: self.inner.collector.register(),
            backoff: Backoff::new(id as u64 + 1),
            stats: Stats::new(),
            clock_slot: self.inner.thread_clocks.register(),
            in_tx: false,
            snapshot: 0,
            read_set: Vec::with_capacity(64),
            write_set: WriteSet::new(self.inner.config.write_set),
            rw_entries: [ValRwEntry::default(); MAX_SHORT],
            rw_count: 0,
            rw_valid: true,
            ro_entries: [ValRoEntry::default(); MAX_SHORT],
            ro_count: 0,
            ro_valid: true,
        }
    }

    fn new_cell(&self, initial: Word) -> Self::Cell {
        ValCell::new(initial)
    }

    fn peek(cell: &Self::Cell) -> Word {
        cell.load_unlocked()
    }

    fn poke(cell: &Self::Cell, value: Word) {
        debug_assert_eq!(
            value & LOCK_BIT,
            0,
            "val-layout values must keep bit 0 clear"
        );
        cell.store(value, Ordering::Release);
    }

    fn label(&self) -> String {
        "val".to_string()
    }

    fn collector(&self) -> &txepoch::Collector {
        &self.inner.collector
    }
}

impl StmThread for ValThread {
    type Stm = ValStm;

    fn epoch(&self) -> &txepoch::LocalHandle {
        &self.epoch
    }

    fn backoff(&self) -> &Backoff {
        &self.backoff
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn stm(&self) -> &Self::Stm {
        &self.stm
    }

    fn single_read(&mut self, cell: &ValCell) -> Word {
        self.do_single_read(cell)
    }

    fn single_write(&mut self, cell: &ValCell, value: Word) {
        self.do_single_write(cell, value);
    }

    fn single_cas(&mut self, cell: &ValCell, expected: Word, new: Word) -> Word {
        self.do_single_cas(cell, expected, new)
    }

    fn rw_read(&mut self, idx: usize, cell: &ValCell) -> Word {
        self.do_rw_read(idx, cell)
    }

    fn rw_is_valid(&mut self, n: usize) -> bool {
        self.do_rw_is_valid(n)
    }

    fn rw_commit(&mut self, n: usize, values: &[Word]) -> bool {
        self.do_rw_commit(n, values)
    }

    fn rw_abort(&mut self, n: usize) {
        self.do_rw_abort(n);
    }

    fn ro_read(&mut self, idx: usize, cell: &ValCell) -> Word {
        self.do_ro_read(idx, cell)
    }

    fn ro_is_valid(&mut self, n: usize) -> bool {
        self.do_ro_is_valid(n)
    }

    fn upgrade_ro_to_rw(&mut self, ro_idx: usize, rw_idx: usize) -> bool {
        self.do_upgrade(ro_idx, rw_idx)
    }

    fn ro_rw_commit(&mut self, n_ro: usize, n_rw: usize, values: &[Word]) -> bool {
        self.do_ro_rw_commit(n_ro, n_rw, values)
    }

    fn full_begin(&mut self) {
        self.do_full_begin();
    }

    fn full_read(&mut self, cell: &ValCell) -> TxResult<Word> {
        self.do_full_read(cell)
    }

    fn full_write(&mut self, cell: &ValCell, value: Word) -> TxResult<()> {
        self.do_full_write(cell, value)
    }

    fn full_try_commit(&mut self) -> bool {
        self.do_full_commit()
    }

    fn full_rollback(&mut self) {
        self.do_full_rollback();
    }
}

impl std::fmt::Debug for ValThread {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ValThread")
            .field("id", &self.descriptor.id)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_rejects_odd_values_in_debug() {
        let c = ValCell::new(2);
        assert_eq!(c.load_unlocked(), 2);
    }

    #[test]
    fn lock_word_has_bit_zero_set_and_is_unique_per_thread() {
        let stm = ValStm::new();
        let t1 = stm.register();
        let t2 = stm.register();
        assert_eq!(t1.lock_word() & LOCK_BIT, 1);
        assert_ne!(t1.lock_word(), t2.lock_word());
    }

    #[test]
    fn peek_spins_past_locks_only_when_needed() {
        let stm = ValStm::new();
        let c = stm.new_cell(10);
        assert_eq!(ValStm::peek(&c), 10);
    }

    #[test]
    fn label_is_val() {
        assert_eq!(ValStm::new().label(), "val");
    }
}
